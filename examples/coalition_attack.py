#!/usr/bin/env python3
"""Watching a rational coalition try (and fail) to steal an election.

Story line of the paper in one script:

1. A network where 10% of the agents support "blue"; a blue supporter
   cheats the *naive* min-gossip election (no commitments, no
   verification) by declaring k = 0 — he wins every single time.
2. The same cheat against Protocol P: the forged certificate spreads
   (k = 0 beats everyone), but Verification catches the inconsistency
   with the committed vote intentions — the protocol fails, the cheater
   gains nothing and everybody gets the -chi payoff.
3. The *pooled adaptive* coalition — the strongest attack we know —
   checks its own exposure first, finds that some honest agent holds
   every member's commitment, and rationally plays honest instead.

Usage:
    python examples/coalition_attack.py [trials]
"""

import sys
from collections import Counter

from repro.agents.plans import plan
from repro.baselines.naive_gossip import run_naive_gossip
from repro.core.protocol import ProtocolConfig, run_protocol


def main(trials: int = 30) -> None:
    n = 64
    colors = ["red"] * 58 + ["blue"] * 6
    blue_ids = [i for i, c in enumerate(colors) if c == "blue"]
    cheater = blue_ids[0]

    print(f"network: {n} agents, blue = {len(blue_ids)} supporters "
          f"({len(blue_ids)/n:.0%}); the cheater supports blue\n")

    # --- Act 1: the naive protocol falls instantly --------------------
    naive = Counter(
        run_naive_gossip(colors, seed=s, cheaters=frozenset({cheater})).outcome
        for s in range(trials)
    )
    print("1) naive min-gossip + k=0 cheater:")
    print(f"   outcomes over {trials} runs: {dict(naive)}")
    print(f"   -> the cheater's color won {naive['blue']}/{trials} times\n")

    # --- Act 2: the same lie against Protocol P -----------------------
    protocol = Counter(
        run_protocol(ProtocolConfig(
            colors=colors, gamma=3.0, seed=s,
            deviation=plan("underbid_alter", frozenset({cheater})),
        )).outcome
        for s in range(trials)
    )
    print("2) Protocol P + the same forged-certificate lie:")
    print(f"   outcomes over {trials} runs: "
          f"{ {str(k): v for k, v in protocol.items()} }")
    print(f"   -> blue won {protocol['blue']}/{trials}; "
          f"{protocol[None]}/{trials} runs FAILED (the lie was caught; "
          f"cheater utility = -chi)\n")

    # --- Act 3: the rational coalition gives up -----------------------
    pooled_outcomes = []
    forged = 0
    for s in range(trials):
        res = run_protocol(ProtocolConfig(
            colors=colors, gamma=3.0, seed=s,
            deviation=plan("pooled", frozenset(blue_ids[:4])),
        ))
        pooled_outcomes.append(res.outcome)
        shared = res.extras["nodes"][blue_ids[0]].shared
        forged += shared.forged is not None
    wins = sum(1 for o in pooled_outcomes if o == "blue")
    print("3) Protocol P + pooled adaptive coalition (4 members):")
    print(f"   forgeries attempted: {forged}/{trials} "
          f"(every member was exposed by Commitment pulls -> no safe forgery)")
    print(f"   blue wins: {wins}/{trials} "
          f"(~= its fair share {len(blue_ids)/n:.0%}) — the coalition "
          f"rationally played honest.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
