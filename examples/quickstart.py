#!/usr/bin/env python3
"""Quickstart: one protocol run, then the structured experiment API.

Part 1 builds a 100-agent network with a 60/40 red/blue split, runs one
full execution of the rational fair consensus protocol, and prints the
outcome, the winning agent, the good-execution report and the
communication costs (the quantities Theorem 4 bounds).

Part 2 shows the structured-results API the experiment harness is built
on: look an experiment up in the registry, run it with overridden
options, inspect its typed records, and save/load the result through
the JSON persistence layer (DESIGN.md §7).

Usage:
    python examples/quickstart.py [seed]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    ProtocolConfig,
    get_experiment,
    load_result,
    run_protocol,
    save_result,
)


def single_run(seed: int) -> None:
    colors = ["red"] * 60 + ["blue"] * 40
    config = ProtocolConfig(colors=colors, gamma=3.0, seed=seed)
    result = run_protocol(config)

    params = result.extras["params"]
    print("=== Rational Fair Consensus — quickstart ===")
    print(f"network size        : {config.n} agents")
    print(f"initial support     : 60% red / 40% blue")
    print(f"phase length q      : {params.q} rounds (gamma = {config.gamma})")
    print()
    print(f"outcome             : {result.outcome!r}"
          + ("  (consensus reached)" if result.succeeded else "  (FAILED)"))
    print(f"winning agent       : {result.winner}")
    print(f"rounds executed     : {result.rounds}  (= 4q, fixed schedule)")
    print()
    print("--- good-execution report (Definition 2) ---")
    print(f"votes per agent     : {result.good.min_votes} .. {result.good.max_votes}")
    print(f"k-value collision   : {result.good.k_collision}")
    print(f"Find-Min agreement  : {result.good.find_min_agreement}")
    print()
    print("--- communication (Theorem 4) ---")
    m = result.metrics
    print(f"total messages      : {m.total_messages}   (all-to-all would be {config.n * (config.n - 1)})")
    print(f"total traffic       : {m.total_bits / 8 / 1024:.1f} KiB")
    print(f"largest message     : {m.max_message_bits} bits  (the winning certificate)")
    print()
    agreeing = sum(1 for d in result.decisions.values() if d == result.outcome)
    print(f"{agreeing}/{len(result.decisions)} active agents decided {result.outcome!r}.")


def structured_experiment(seed: int) -> None:
    print()
    print("=== Structured results (E1 fairness, tiny) ===")
    spec = get_experiment("e1")          # registry: options class + runner
    opts = spec.options_cls(sizes=(64,), workloads=("balanced", "skewed"),
                            trials=100, seed=seed, parallel=False)
    result = spec.run(opts)              # ExperimentResult, not printed text

    print(f"experiment          : {result.experiment}  ({result.title})")
    print(f"claim               : {result.claim}")
    print(f"engine tier         : {result.meta.resolved_engine}"
          f"  (wall time {result.meta.wall_time_s:.3f}s)")
    print(f"resume key          : {result.key}")
    print()
    for rec in result.records():         # typed, header-keyed row dicts
        print(f"  {rec['workload']:<10} TV={rec['TV distance']:.4f} "
              f"(noise floor {rec['TV noise floor']:.4f}) "
              f"fair={rec['fair at 5%?']}")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        paths = save_result(result, Path(tmp))        # e1-<hash>.json
        loaded = load_result(paths[0])
        assert loaded.canonical() == result.canonical()
        print(f"saved + reloaded    : {paths[0].name} (round trip exact)")

    print()
    print(result.tables()[0].render())   # the classic text table, unchanged


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    single_run(seed)
    structured_experiment(seed)
