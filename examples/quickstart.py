#!/usr/bin/env python3
"""Quickstart: run Protocol P once and inspect everything it did.

Builds a 100-agent network with a 60/40 red/blue split, runs one full
execution of the rational fair consensus protocol, and prints the
outcome, the winning agent, the good-execution report and the
communication costs (the quantities Theorem 4 bounds).

Usage:
    python examples/quickstart.py [seed]
"""

import sys

from repro import ProtocolConfig, run_protocol


def main(seed: int = 7) -> None:
    colors = ["red"] * 60 + ["blue"] * 40
    config = ProtocolConfig(colors=colors, gamma=3.0, seed=seed)
    result = run_protocol(config)

    params = result.extras["params"]
    print("=== Rational Fair Consensus — quickstart ===")
    print(f"network size        : {config.n} agents")
    print(f"initial support     : 60% red / 40% blue")
    print(f"phase length q      : {params.q} rounds (gamma = {config.gamma})")
    print()
    print(f"outcome             : {result.outcome!r}"
          + ("  (consensus reached)" if result.succeeded else "  (FAILED)"))
    print(f"winning agent       : {result.winner}")
    print(f"rounds executed     : {result.rounds}  (= 4q, fixed schedule)")
    print()
    print("--- good-execution report (Definition 2) ---")
    print(f"votes per agent     : {result.good.min_votes} .. {result.good.max_votes}")
    print(f"k-value collision   : {result.good.k_collision}")
    print(f"Find-Min agreement  : {result.good.find_min_agreement}")
    print()
    print("--- communication (Theorem 4) ---")
    m = result.metrics
    print(f"total messages      : {m.total_messages}   (all-to-all would be {config.n * (config.n - 1)})")
    print(f"total traffic       : {m.total_bits / 8 / 1024:.1f} KiB")
    print(f"largest message     : {m.max_message_bits} bits  (the winning certificate)")
    print()
    agreeing = sum(1 for d in result.decisions.values() if d == result.outcome)
    print(f"{agreeing}/{len(result.decisions)} active agents decided {result.outcome!r}.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
