#!/usr/bin/env python3
"""Fault tolerance: consensus survives any constant fraction of crashes.

The worst-case permanent adversary crashes alpha*n agents before round 0
— here it deliberately targets the supporters of one color.  The script
sweeps alpha, showing (a) the success rate and how it depends on the
schedule constant gamma(alpha), and (b) that fairness follows the
*active* agents: once all red supporters are crashed, blue simply wins.

Usage:
    python examples/fault_tolerance.py [n] [trials]
"""

import sys

from repro.adversary.faults import color_targeted_faults
from repro.analysis.fairness import empirical_distribution
from repro.experiments.workloads import balanced
from repro.fastpath.simulate import simulate_protocol_fast
from repro.util.tables import Table


def main(n: int = 256, trials: int = 150) -> None:
    colors = balanced(n)
    table = Table(
        headers=["alpha", "gamma", "success", "P[red wins]",
                 "red share among active"],
        title=f"Color-targeted permanent faults, n = {n} "
              f"(adversary crashes red supporters first)",
    )
    for alpha in (0.0, 0.2, 0.4, 0.6):
        faulty = color_targeted_faults(colors, "red", alpha)
        active = [i for i in range(n) if i not in faulty]
        red_share = sum(1 for i in active if colors[i] == "red") / len(active)
        for gamma in (2.0, 5.0):
            outcomes = [
                simulate_protocol_fast(
                    colors, gamma=gamma, faulty=faulty, seed=1000 + s
                ).outcome
                for s in range(trials)
            ]
            success = sum(1 for o in outcomes if o is not None) / trials
            dist = empirical_distribution(outcomes)
            table.add_row(alpha, gamma, success,
                          dist.get("red", 0.0), red_share)
    print(table.render())
    print()
    print("Read it as: fairness tracks the red share AMONG ACTIVE agents")
    print("(third vs fourth column), and heavy fault loads need the")
    print("longer schedule gamma(alpha) to keep succeeding (Lemma 3).")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    main(n, trials)
