#!/usr/bin/env python3
"""Fair leader election: the paper's motivating special case.

Every agent supports his own ID as a color, so fair consensus means
every active agent is elected with probability exactly 1/|A|.  This
script runs many elections (with the fast vectorised engine), tallies
how often each agent wins, and prints a uniformity summary: win-count
histogram, TV distance to uniform versus the fair-sampling noise floor,
and a binned chi-square p-value.

Usage:
    python examples/leader_election.py [n] [elections]
"""

import sys
from collections import Counter

from repro.analysis.fairness import total_variation
from repro.experiments.e1_fairness import tv_noise_floor
from repro.experiments.workloads import leader_election
from repro.fastpath.simulate import simulate_protocol_fast
from scipy import stats


def main(n: int = 64, elections: int = 2000) -> None:
    colors = leader_election(n)
    print(f"Running {elections} fair leader elections over {n} agents...")
    wins: Counter[int] = Counter()
    failures = 0
    for seed in range(elections):
        res = simulate_protocol_fast(colors, gamma=3.0, seed=seed)
        if res.succeeded:
            wins[res.winner] += 1
        else:
            failures += 1

    successes = elections - failures
    empirical = {i: wins.get(i, 0) / successes for i in range(n)}
    uniform = {i: 1.0 / n for i in range(n)}
    tv = total_variation(empirical, uniform)
    floor = tv_noise_floor(uniform, successes)

    # Bin agents into 8 groups for a valid chi-square test.
    bins = 8
    binned = [0] * bins
    for agent, count in wins.items():
        binned[min(bins - 1, agent * bins // n)] += count
    _stat, pvalue = stats.chisquare(binned, [successes / bins] * bins)

    print(f"failures            : {failures}/{elections}")
    print(f"expected wins/agent : {successes / n:.1f}")
    print(f"min..max wins       : {min(wins.values())} .. {max(wins.values())}")
    print(f"TV to uniform       : {tv:.4f}   (fair-sampling noise floor ~ {floor:.4f})")
    print(f"chi-square p-value  : {pvalue:.3f}  ({'uniformity NOT rejected' if pvalue > 0.05 else 'REJECTED'})")
    print()
    print("win-count histogram (by agent-ID octile):")
    for b in range(bins):
        lo, hi = b * n // bins, (b + 1) * n // bins - 1
        bar = "#" * round(50 * binned[b] / max(binned))
        print(f"  ids {lo:3d}-{hi:3d}: {binned[b]:5d} {bar}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    elections = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    main(n, elections)
