#!/usr/bin/env python3
"""The headline: o(n^2) messages — where GOSSIP beats all-to-all.

Compares Protocol P's measured communication against the LOCAL-model
commit-reveal election (the prior art's Theta(n^2) pattern) across
network sizes, printing the crossover and the growth rates.

Usage:
    python examples/message_complexity.py
"""

from repro.baselines.local_broadcast import run_local_fair_election
from repro.experiments.workloads import balanced
from repro.fastpath.simulate import simulate_protocol_fast
from repro.util.tables import Table


def main() -> None:
    table = Table(
        headers=["n", "P msgs", "LOCAL msgs", "P/LOCAL", "P KiB", "LOCAL KiB",
                 "P max msg (bits)"],
        title="Protocol P (GOSSIP) vs commit-reveal (LOCAL), one run each",
        floatfmt=".3g",
    )
    crossover = None
    for n in (32, 64, 128, 256, 512, 1024, 2048, 4096):
        fast = simulate_protocol_fast(balanced(n), gamma=3.0, seed=42)
        local = run_local_fair_election(balanced(n), seed=42)
        ratio = fast.total_messages / local.messages
        if crossover is None and ratio < 1:
            crossover = n
        table.add_row(
            n, fast.total_messages, local.messages, ratio,
            fast.total_bits / 8192, local.total_bits / 8192,
            fast.max_message_bits,
        )
    print(table.render())
    print()
    if crossover:
        print(f"Protocol P sends fewer messages from n = {crossover} onward;")
    print("P grows like n log n (messages) / n log^3 n (bits) — the LOCAL")
    print("baseline grows like n^2.  P's largest message stays polylog")
    print("(last column ~ log^2 n), versus the LOCAL protocol's Theta(n)")
    print("per-agent memory for commitments.")


if __name__ == "__main__":
    main()
