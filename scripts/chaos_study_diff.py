#!/usr/bin/env python
"""CI acceptance check: a SIGKILLed study resumes byte-identically.

Runs one multi-cell :class:`repro.study.Study` three ways —

1. uninterrupted at ``jobs=1`` (the reference archive),
2. in a child process that is SIGKILLed after its first cell completes,
   then resumed in-process (only incomplete cells re-run),
3. the resumed archive again (everything must now load from cache),

— and diffs the per-cell payload bytes (``payload_json``, metadata
stripped) across all three.  Any mismatch, or a resume that recomputes
an already-journaled cell, fails the job.

Usage::

    PYTHONPATH=src python scripts/chaos_study_diff.py [workdir]

Exit status 0 on success, 1 on any divergence.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

from repro.study import Study, StudyJournal  # noqa: E402

# batch-parity at these sizes makes each cell ~0.5 s, so the SIGKILL
# genuinely lands mid-sweep instead of after the study already finished.
GRID = {"gamma": [1.5, 2.0, 3.0, 4.0]}
BASE = dict(trials=3000, sizes=(64,), workloads=("balanced",),
            engine="batch-parity", parallel=False)

_CHILD = textwrap.dedent("""
    import sys
    from repro.study import Study
    Study("e1", {"gamma": [1.5, 2.0, 3.0, 4.0]}, trials=3000, sizes=(64,),
          workloads=("balanced",), engine="batch-parity",
          parallel=False).run(out_dir=sys.argv[1])
""")


def _payloads(study_result) -> list[str]:
    return [cell.result.payload_json() for cell in study_result.cells]


def _run_and_kill(out_dir: Path) -> int:
    """Start the study in a child, SIGKILL it after >=1 journaled cell.

    Returns the number of cells the child completed before the kill.
    """
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(out_dir)],
        env={"PYTHONPATH": str(SRC)},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    journal = StudyJournal.for_study(out_dir, "e1")
    deadline = time.monotonic() + 300
    done = 0
    while time.monotonic() < deadline:
        if journal.path.is_file():
            done = len(journal.done_keys())
            if done >= 1:
                break
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    proc.kill()
    proc.wait(timeout=60)
    return done


def main(argv: list[str]) -> int:
    if argv:
        work = Path(argv[0])
        work.mkdir(parents=True, exist_ok=True)
    else:
        work = Path(tempfile.mkdtemp(prefix="chaos-study-diff-"))
    print(f"workdir: {work}")

    reference = Study("e1", GRID, **BASE).run(
        out_dir=work / "reference", jobs=1
    )
    ref_payloads = _payloads(reference)
    print(f"reference: {len(ref_payloads)} cells")

    killed_dir = work / "killed"
    done_before_kill = _run_and_kill(killed_dir)
    print(f"child SIGKILLed after {done_before_kill} journaled cell(s)")

    resumed = Study("e1", GRID, **BASE).run(out_dir=killed_dir)
    cached = sum(cell.cached for cell in resumed.cells)
    print(f"resume: {cached} cell(s) loaded from cache, "
          f"{len(resumed.cells) - cached} recomputed, "
          f"{len(resumed.quarantined)} quarantined")

    failures = []
    if _payloads(resumed) != ref_payloads:
        failures.append("resumed payloads differ from uninterrupted run")
    if cached < done_before_kill:
        failures.append(
            f"resume recomputed journaled cells "
            f"(journal had {done_before_kill}, cache served {cached})"
        )

    rerun = Study("e1", GRID, **BASE).run(out_dir=killed_dir)
    if not all(cell.cached for cell in rerun.cells):
        failures.append("post-resume archive is not fully cached")
    if _payloads(rerun) != ref_payloads:
        failures.append("post-resume cached payloads differ")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: killed-and-resumed archive is byte-identical "
          "to the uninterrupted run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
