#!/usr/bin/env python
"""CI acceptance check: the experiment service end to end, over HTTP.

Boots a real daemon (``repro serve`` in a child process), then drives
the service contract (DESIGN.md §11) through the public surfaces only
— the HTTP API and the CLI:

1. **Serve** — ``repro serve`` against a fresh store; wait for
   ``/healthz``.
2. **Submit** — POST an E1 cell, poll the job to completion, fetch the
   stored document.
3. **Fidelity** — diff the service-computed payload (meta stripped)
   against a direct ``repro experiment e1 --format json`` run of the
   same options in a separate process.  They must be byte-identical.
4. **Dedup** — resubmit the same cell: the reply must be an immediate
   store answer (``status: done``, ``cached: true``, no job id) and
   ``/stats`` must show **zero additional executions**.
5. **CLI round trip** — ``repro submit`` of the same cell prints the
   same payload and exercises the cache-hit path from the CLI.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [workdir]

Exit status 0 on success, 1 on any divergence.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

PORT = int(os.environ.get("REPRO_SMOKE_PORT", "18731"))
URL = f"http://127.0.0.1:{PORT}"

# The smoke cell: small but a real sync sweep, two sizes.
CELL = {"trials": 16, "sizes": [16, 32], "workloads": ["balanced"],
        "seed": 901, "parallel": False}
CELL_FLAGS = ["--set", "trials=16", "--set", "sizes=16,32",
              "--set", "workloads=balanced", "--set", "seed=901",
              "--set", "parallel=false"]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return env


def _get(path: str) -> dict:
    with urllib.request.urlopen(f"{URL}{path}", timeout=10) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _post(path: str, body: dict) -> dict:
    req = urllib.request.Request(
        f"{URL}{path}", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _wait_healthy(proc: subprocess.Popen, deadline_s: float = 30) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            sys.exit(f"FAIL: serve process died: "
                     f"{proc.stderr.read()}")
        try:
            if _get("/healthz").get("ok"):
                return
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.1)
    sys.exit("FAIL: service never became healthy")


def _stripped(doc: dict) -> dict:
    doc = dict(doc)
    doc.pop("meta", None)
    return doc


def main(workdir: str | None = None) -> int:
    work = Path(workdir) if workdir else Path(tempfile.mkdtemp())
    work.mkdir(parents=True, exist_ok=True)
    store = work / "smoke-store.sqlite3"
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store),
         "--port", str(PORT)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    try:
        _wait_healthy(serve)
        print(f"[smoke] service healthy at {URL}")

        # -- submit + poll over raw HTTP --------------------------------
        sub = _post("/jobs", {"experiment": "e1", "options": CELL})
        assert sub["status"] in ("queued", "running"), sub
        assert sub["id"], sub
        print(f"[smoke] submitted {sub['id']} (key {sub['key']})")
        deadline = time.monotonic() + 120
        while True:
            job = _get(f"/jobs/{sub['id']}")
            if job["state"] == "done":
                break
            if job["state"] == "failed":
                sys.exit(f"FAIL: job failed: {job['error']}")
            if time.monotonic() > deadline:
                sys.exit("FAIL: job never completed")
            time.sleep(0.05)
        assert not job["cached"], "first submission cannot be a cache hit"
        service_doc = _get(f"/results/{sub['key']}")
        print(f"[smoke] job done in {job['run_wall_s']:.2f}s, "
              "document fetched")

        # -- byte fidelity vs a direct CLI run --------------------------
        direct = subprocess.run(
            [sys.executable, "-m", "repro", "experiment", "e1",
             *CELL_FLAGS, "--format", "json"],
            env=_env(), capture_output=True, text=True, timeout=300,
        )
        if direct.returncode != 0:
            sys.exit(f"FAIL: direct CLI run failed: {direct.stderr}")
        direct_doc = json.loads(direct.stdout)
        if _stripped(service_doc) != _stripped(direct_doc):
            sys.exit("FAIL: service payload != direct CLI payload "
                     "(meta stripped)")
        print("[smoke] byte fidelity: service == direct CLI run")

        # -- dedup: resubmit answers from the store, zero re-execution --
        executed_before = _get("/stats")["daemon"]["executed"]
        again = _post("/jobs", {"experiment": "e1", "options": CELL})
        assert again["status"] == "done" and again["cached"] is True, again
        assert again["id"] is None, again
        assert again["key"] == sub["key"], again
        executed_after = _get("/stats")["daemon"]["executed"]
        if executed_after != executed_before:
            sys.exit(f"FAIL: resubmission re-executed "
                     f"({executed_before} -> {executed_after})")
        print("[smoke] dedup: resubmission store-served, "
              f"executions stayed at {executed_after}")

        # -- the CLI client path: repro submit (cache hit) --------------
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "e1", "--url", URL,
             *CELL_FLAGS, "--format", "json"],
            env=_env(), capture_output=True, text=True, timeout=300,
        )
        if cli.returncode != 0:
            sys.exit(f"FAIL: repro submit failed: {cli.stderr}")
        if "cache hit" not in cli.stderr:
            sys.exit(f"FAIL: repro submit missed the cache: {cli.stderr}")
        if _stripped(json.loads(cli.stdout)) != _stripped(service_doc):
            sys.exit("FAIL: repro submit payload != service payload")
        if _get("/stats")["daemon"]["executed"] != executed_after:
            sys.exit("FAIL: repro submit re-executed a cached cell")
        print("[smoke] CLI: repro submit served from cache, "
              "payload identical")

        # -- store contents visible through repro list ------------------
        listing = subprocess.run(
            [sys.executable, "-m", "repro", "list", "--json",
             "--store", str(store)],
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        stats = json.loads(listing.stdout)["store"]
        assert stats["results"] == 1 and stats["by_experiment"] == \
            {"e1": 1}, stats
        print("[smoke] list --store sees the cached cell")
    finally:
        serve.send_signal(signal.SIGINT)
        try:
            serve.wait(timeout=15)
        except subprocess.TimeoutExpired:
            serve.kill()
    print("[smoke] OK: serve/submit/poll/fidelity/dedup all green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1] if len(sys.argv) > 1 else None))
