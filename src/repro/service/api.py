"""The HTTP front door: a stdlib JSON API over store + queue + daemon.

Routes (all JSON)::

    POST /jobs            {"experiment": "e1", "options": {...}}
        -> 200 {"status": "done", "cached": true, ...}   store hit
        -> 202 {"status": "queued"|"running", "id": ...}  queued/coalesced
        -> 400 bad experiment/options, 429 queue full
    GET  /jobs            every known job, oldest first
    GET  /jobs/<id>       one job's state + telemetry (404 unknown)
    GET  /results/<key>   the stored result document (404 unknown)
    GET  /healthz         {"ok": true, ...} liveness probe
    GET  /stats           store + queue + daemon + warm-pool counters

Dedup contract: ``POST /jobs`` computes the submission's content-hash
``result_key`` from the fully-resolved options, answers **immediately
from the store** on a hit (no job is created), and otherwise enqueues —
where an in-flight job with the same key coalesces the submission
(DESIGN.md §11).  Execution-only fields (``jobs``) never enter the key.

:class:`ExperimentService` wires the four layers together and runs the
server on a ``ThreadingHTTPServer`` (one handler thread per client, a
single daemon worker draining the queue); it is what ``repro serve``,
the tests and the load benchmark all drive.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Mapping

from repro.exec.backends import FaultPolicy
from repro.experiments.registry import get_experiment, options_dict
from repro.results import result_key
from repro.service.daemon import Daemon
from repro.service.queue import JobQueue, QueueFull
from repro.service.store import ResultStore

__all__ = ["ExperimentService"]


class _BadRequest(ValueError):
    """A submission the service refuses (HTTP 400)."""


def _resolve_submission(body: Mapping[str, Any]) -> tuple[str, dict, str]:
    """Validate a POST /jobs body -> (experiment, options, result_key).

    ``options`` holds field overrides applied over the experiment's
    defaults (exactly the CLI's ``--set`` semantics); the key is
    computed from the fully-resolved options so a service-run cell and
    a locally-run one share their identity.
    """
    if not isinstance(body, Mapping):
        raise _BadRequest("request body must be a JSON object")
    name = body.get("experiment")
    if not isinstance(name, str) or not name:
        raise _BadRequest("missing required field 'experiment'")
    try:
        spec = get_experiment(name)
    except KeyError as exc:
        raise _BadRequest(str(exc.args[0])) from None
    overrides = body.get("options") or {}
    if not isinstance(overrides, Mapping):
        raise _BadRequest("'options' must be a JSON object of field "
                          "overrides")
    valid = {f.name for f in spec.option_fields()}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise _BadRequest(
            f"unknown option field(s) {unknown} for {spec.name}; "
            f"valid fields: {sorted(valid)}"
        )
    # JSON arrays arrive as lists where the dataclasses hold tuples;
    # canonical_json treats them identically, so the key is stable.
    try:
        opts = spec.options_cls(**dict(overrides))
    except (TypeError, ValueError) as exc:
        raise _BadRequest(
            f"cannot build {spec.options_cls.__name__}: {exc}"
        ) from None
    return spec.name, dict(overrides), result_key(spec.name,
                                                  options_dict(opts))


class _Handler(BaseHTTPRequestHandler):
    """One request; the service instance rides on the server object."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> "ExperimentService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.service.verbose:
            super().log_message(fmt, *args)

    def _reply(self, status: int, doc: Any) -> None:
        data = (json.dumps(doc) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        svc = self.service
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._reply(200, {"ok": True, "uptime_s": svc.uptime_s()})
        elif path == "/stats":
            self._reply(200, svc.stats())
        elif path == "/jobs":
            self._reply(200, {"jobs": [j.to_json_dict()
                                       for j in svc.queue.jobs()]})
        elif path.startswith("/jobs/"):
            job = svc.queue.get(path[len("/jobs/"):])
            if job is None:
                self._reply(404, {"error": "unknown job id"})
            else:
                self._reply(200, job.to_json_dict())
        elif path.startswith("/results/"):
            doc = svc.store.get_document(path[len("/results/"):])
            if doc is None:
                self._reply(404, {"error": "unknown result key"})
            else:
                self._reply(200, doc)
        else:
            self._reply(404, {"error": f"no route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        svc = self.service
        if self.path.rstrip("/") != "/jobs":
            self._reply(404, {"error": f"no route {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError):
            self._reply(400, {"error": "request body is not valid JSON"})
            return
        try:
            status, doc = svc.submit(body)
        except _BadRequest as exc:
            self._reply(400, {"error": str(exc)})
            return
        except QueueFull as exc:
            self._reply(429, {"error": str(exc),
                              "queue": svc.queue.stats()})
            return
        self._reply(status, doc)


class _Server(ThreadingHTTPServer):
    """One handler thread per client; sized for concurrent load.

    ``socketserver``'s default listen backlog of 5 drops (resets)
    connections when more clients connect at once than the accept loop
    has drained — the load benchmark's 16 pollers hit that immediately.
    """

    daemon_threads = True
    request_queue_size = 128


class ExperimentService:
    """Store + queue + daemon + HTTP server, wired and lifecycle-managed.

    Parameters
    ----------
    store:
        A :class:`ResultStore`, or a path to create/open one.
    host / port:
        Bind address; ``port=0`` picks a free port (tests, benchmark).
    queue_size:
        Pending-queue bound (the 429 threshold).
    jobs / policy:
        Passed to the :class:`Daemon` (plan-backend workers per
        executed job; fault policy around executions).
    """

    def __init__(
        self,
        store: ResultStore | str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 256,
        jobs: int | None = None,
        policy: FaultPolicy | None = None,
        verbose: bool = False,
    ):
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        self.queue = JobQueue(maxsize=queue_size)
        self.daemon = Daemon(self.store, self.queue, jobs=jobs,
                             policy=policy)
        self.verbose = verbose
        self._httpd = _Server((host, port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]
        self._server_thread: threading.Thread | None = None
        self._started_unix: float | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def uptime_s(self) -> float:
        if self._started_unix is None:
            return 0.0
        return time.time() - self._started_unix

    def start(self) -> "ExperimentService":
        """Start the daemon and the HTTP server (both in threads)."""
        self._started_unix = time.time()
        self.daemon.start()
        self._server_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-http",
            daemon=True,
        )
        self._server_thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for ``repro serve`` (Ctrl-C to stop)."""
        self._started_unix = time.time()
        self.daemon.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self.daemon.stop()
        self.store.close()

    def __enter__(self) -> "ExperimentService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- request logic ------------------------------------------------------

    def submit(self, body: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        """The POST /jobs decision: store hit, coalesce, or enqueue."""
        experiment, overrides, key = _resolve_submission(body)
        if key in self.store:
            # Dedup hit: answer from the store, no job, no execution.
            return 200, {
                "status": "done", "cached": True, "key": key,
                "experiment": experiment, "id": None,
            }
        job, created = self.queue.submit(experiment, overrides, key)
        return 202, {
            "status": job.state, "cached": False, "key": key,
            "experiment": experiment, "id": job.id, "created": created,
        }

    def stats(self) -> dict[str, Any]:
        return {
            "uptime_s": self.uptime_s(),
            "store": self.store.stats(),
            "queue": self.queue.stats(),
            "daemon": self.daemon.stats(),
        }
