"""The service's HTTP client (stdlib ``urllib``; no dependencies).

:class:`ServiceClient` speaks the JSON API of
:mod:`repro.service.api`: submit a job, poll it to completion, fetch
the stored result document.  ``repro submit`` / ``repro jobs`` are
thin CLI skins over it; tests and the load benchmark drive it
directly.

Every non-2xx response raises :class:`ServiceError` carrying the HTTP
status and the server's error message — callers can branch on
``err.status == 429`` for backpressure retries.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response (``status`` holds the HTTP code)."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """A client for one service endpoint, e.g. ``http://127.0.0.1:8765``."""

    def __init__(self, url: str, *, timeout_s: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Mapping[str, Any] | None = None) -> dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(dict(body)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            f"{self.url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", exc.reason
                )
            except (ValueError, AttributeError):
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.url}: {exc.reason}"
            ) from None

    # -- API calls ----------------------------------------------------------

    def submit(self, experiment: str,
               options: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """POST /jobs; returns the submission document.

        ``status == "done"`` with ``cached: true`` means the store
        answered without creating a job; otherwise ``id`` names the
        (possibly coalesced) job to poll.
        """
        return self._request("POST", "/jobs", {
            "experiment": experiment, "options": dict(options or {}),
        })

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, key: str) -> dict[str, Any]:
        """GET /results/<key> — the full stored result document."""
        return self._request("GET", f"/results/{key}")

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    # -- conveniences -------------------------------------------------------

    def wait(self, submission: Mapping[str, Any], *,
             timeout_s: float = 300.0,
             poll_s: float = 0.05) -> dict[str, Any]:
        """Poll a :meth:`submit` response until terminal; return the job.

        A store-served submission (``status == "done"``, no job id) is
        returned as-is.  Raises :class:`ServiceError` on a failed job
        or ``TimeoutError`` past ``timeout_s``.
        """
        if submission.get("id") is None:
            return dict(submission)
        deadline = time.monotonic() + timeout_s
        pause = poll_s
        while True:
            job = self.job(submission["id"])
            if job["state"] == "done":
                return job
            if job["state"] == "failed":
                raise ServiceError(500, f"job {job['id']} failed: "
                                        f"{job.get('error')}")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job['id']} still {job['state']} after "
                    f"{timeout_s:.0f}s"
                )
            time.sleep(pause)
            pause = min(pause * 1.5, 1.0)

    def submit_and_fetch(
        self, experiment: str,
        options: Mapping[str, Any] | None = None, *,
        timeout_s: float = 300.0,
    ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Submit, wait, fetch: returns ``(terminal_status, document)``."""
        submission = self.submit(experiment, options)
        terminal = self.wait(submission, timeout_s=timeout_s)
        return terminal, self.result(terminal["key"])
