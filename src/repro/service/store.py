"""``ResultStore``: the archive as one queryable sqlite database.

Loose ``<experiment>-<key>.json`` files served the single-writer resume
path well, but a service with many concurrent clients wants one store
that (a) answers "is this cell cached?" in one indexed lookup instead
of a filesystem probe, (b) tolerates concurrent writers, and (c) can be
queried ("how many e7 cells do we hold?") without globbing a tree.

One table, keyed by the same content-hash ``result_key`` the loose
archive used::

    results(result_key PRIMARY KEY, experiment, payload, document,
            backend, jobs, wall_time_s, retries, version, created_unix)

``payload`` is the canonical meta-stripped JSON — the bytes the
determinism contract covers (DESIGN.md §9); ``document`` is the full
round-trippable result.  The meta columns are denormalised copies for
querying; the document stays the source of truth.

Concurrency contract
--------------------
The database runs in WAL mode with a ``busy_timeout``: readers never
block writers and writes from separate processes queue briefly instead
of failing.  ``put`` is **idempotent for identical payloads** — two
writers racing on the same key both succeed, the loser observing the
winner's row — and raises :class:`StoreConflictError` *naming the key*
when an existing key holds a different payload (that would mean a
broken determinism contract or a corrupted archive; silently replacing
either would be worse than stopping).  SQLite transactions make a
``put`` all-or-nothing: a SIGKILL mid-put leaves the store readable
with the previous contents.

Connections are per-thread (sqlite3 connections are not thread-safe by
default); a single :class:`ResultStore` instance may be shared freely
across the daemon's worker thread and the HTTP handler threads.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.results import ExperimentResult, load_result

__all__ = [
    "STORE_FILENAME",
    "ImportReport",
    "ResultStore",
    "StoreConflictError",
    "locate_store",
]

#: The store database's conventional name inside an archive directory.
STORE_FILENAME = "repro-store.sqlite3"

#: Suffixes that mark a path as "configured as a store database".
_DB_SUFFIXES = (".sqlite3", ".sqlite", ".db")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    result_key  TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    payload     TEXT NOT NULL,
    document    TEXT NOT NULL,
    backend     TEXT,
    jobs        INTEGER,
    wall_time_s REAL,
    retries     INTEGER NOT NULL DEFAULT 0,
    version     TEXT,
    created_unix REAL
);
CREATE INDEX IF NOT EXISTS results_by_experiment ON results(experiment);
"""


class StoreConflictError(ValueError):
    """An existing ``result_key`` holds a *different* payload.

    Raised instead of overwriting: two distinct payloads under one
    content-hash key mean a violated determinism contract (or archive
    corruption), and the error names the key so the offending cell can
    be audited.
    """

    def __init__(self, key: str, experiment: str):
        self.key = key
        self.experiment = experiment
        super().__init__(
            f"result store already holds a different payload for "
            f"result_key {key!r} (experiment {experiment!r}); refusing to "
            "overwrite — same options must produce identical payloads"
        )


@dataclass
class ImportReport:
    """What :meth:`ResultStore.import_tree` did to a legacy archive."""

    imported: int = 0
    skipped: int = 0
    corrupt: int = 0
    conflicts: int = 0
    corrupt_files: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"imported={self.imported} skipped={self.skipped} "
            f"corrupt={self.corrupt} conflicts={self.conflicts}"
        )


def locate_store(path: str | Path) -> Path | None:
    """The store database configured at ``path``, if any.

    ``path`` may *be* a database (a ``.sqlite3``/``.sqlite``/``.db``
    file path — it need not exist yet) or a directory *containing* the
    conventional :data:`STORE_FILENAME`.  Returns ``None`` when neither
    holds, which callers read as "use the loose-JSON archive".
    """
    path = Path(path)
    if path.suffix.lower() in _DB_SUFFIXES:
        return path
    candidate = path / STORE_FILENAME
    if candidate.is_file():
        return candidate
    return None


class ResultStore:
    """A sqlite-backed result archive keyed by content-hash.

    Parameters
    ----------
    path:
        Database file (created, with parents, if missing).
    busy_timeout_s:
        How long a write waits on a concurrent writer's lock before
        failing; generous by default because service writes are rare
        and losing one to a transient lock would cost a re-run.
    """

    def __init__(self, path: str | Path, *, busy_timeout_s: float = 30.0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._busy_timeout_s = float(busy_timeout_s)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._connections: list[sqlite3.Connection] = []
        # Create the schema eagerly so concurrent openers see a valid
        # database instead of racing CREATE TABLE.
        self._connection()

    @classmethod
    def for_dir(cls, out_dir: str | Path, **kwargs: Any) -> "ResultStore":
        """The store at ``out_dir``'s conventional database path."""
        out_dir = Path(out_dir)
        path = locate_store(out_dir) or out_dir / STORE_FILENAME
        return cls(path, **kwargs)

    # -- connection plumbing ------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                self.path, timeout=self._busy_timeout_s,
                isolation_level=None,  # autocommit; explicit BEGIN below
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(
                f"PRAGMA busy_timeout={int(self._busy_timeout_s * 1000)}"
            )
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            self._local.conn = conn
            with self._lock:
                self._connections.append(conn)
        return conn

    def close(self) -> None:
        """Close every thread's connection (idempotent)."""
        with self._lock:
            conns, self._connections = self._connections, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - already closed
                pass
        self._local = threading.local()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- core operations ----------------------------------------------------

    def put(self, result: ExperimentResult) -> bool:
        """Publish a result under its content-hash key.

        Returns ``True`` when the row is new, ``False`` for an
        idempotent duplicate (identical payload already stored — the
        common dedup case).  A *different* payload under an existing
        key raises :class:`StoreConflictError` naming the key.
        """
        payload = result.payload_json()
        document = json.dumps(result.to_json_dict(), sort_keys=False)
        meta = result.meta
        conn = self._connection()
        try:
            conn.execute(
                "INSERT INTO results (result_key, experiment, payload, "
                "document, backend, jobs, wall_time_s, retries, version, "
                "created_unix) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    result.key, result.experiment, payload, document,
                    meta.backend, meta.jobs, meta.wall_time_s, meta.retries,
                    meta.version, meta.created_unix or time.time(),
                ),
            )
            return True
        except sqlite3.IntegrityError:
            existing = conn.execute(
                "SELECT payload FROM results WHERE result_key = ?",
                (result.key,),
            ).fetchone()
            if existing is not None and existing["payload"] == payload:
                return False
            raise StoreConflictError(result.key, result.experiment) from None

    def get(self, key: str) -> ExperimentResult | None:
        """The stored result under ``key``, or ``None``."""
        doc = self.get_document(key)
        if doc is None:
            return None
        return ExperimentResult.from_json_dict(doc)

    def get_document(self, key: str) -> dict[str, Any] | None:
        """The raw JSON document under ``key`` (what the API serves)."""
        row = self._connection().execute(
            "SELECT document FROM results WHERE result_key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row["document"])

    def __contains__(self, key: str) -> bool:
        row = self._connection().execute(
            "SELECT 1 FROM results WHERE result_key = ?", (key,)
        ).fetchone()
        return row is not None

    def query(
        self,
        experiment: str | None = None,
        *,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Row metadata (no documents), newest first.

        Filter by ``experiment`` and cap with ``limit``; each row is a
        plain dict of the meta columns.
        """
        sql = (
            "SELECT result_key, experiment, backend, jobs, wall_time_s, "
            "retries, version, created_unix FROM results"
        )
        args: list[Any] = []
        if experiment is not None:
            sql += " WHERE experiment = ?"
            args.append(experiment)
        sql += " ORDER BY created_unix DESC, result_key"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        rows = self._connection().execute(sql, args).fetchall()
        return [dict(r) for r in rows]

    def keys(self, experiment: str | None = None) -> Iterator[str]:
        sql = "SELECT result_key FROM results"
        args: list[Any] = []
        if experiment is not None:
            sql += " WHERE experiment = ?"
            args.append(experiment)
        for row in self._connection().execute(sql, args):
            yield row["result_key"]

    def stats(self) -> dict[str, Any]:
        """Store-level counters: total rows, per-experiment counts."""
        conn = self._connection()
        total = conn.execute("SELECT COUNT(*) AS n FROM results").fetchone()
        per = conn.execute(
            "SELECT experiment, COUNT(*) AS n FROM results "
            "GROUP BY experiment ORDER BY experiment"
        ).fetchall()
        return {
            "path": str(self.path),
            "results": int(total["n"]),
            "by_experiment": {r["experiment"]: int(r["n"]) for r in per},
        }

    # -- legacy-archive import ----------------------------------------------

    def import_tree(self, tree: str | Path) -> ImportReport:
        """Import a loose ``results/`` archive tree into the store.

        Walks ``tree`` recursively for result JSON files (study
        manifests, ``.corrupt`` quarantines and this store's own
        database are skipped), loading and ``put``-ing each.  Counts:
        ``imported`` new rows, ``skipped`` identical duplicates,
        ``corrupt`` unparseable files, ``conflicts`` keys already held
        with different payloads.
        """
        report = ImportReport()
        for path in sorted(Path(tree).rglob("*.json")):
            if path.name.endswith("-study.manifest.json"):
                continue
            try:
                result = load_result(path)
            except (ValueError, KeyError, TypeError, OSError):
                report.corrupt += 1
                report.corrupt_files.append(str(path))
                continue
            try:
                if self.put(result):
                    report.imported += 1
                else:
                    report.skipped += 1
            except StoreConflictError:
                report.conflicts += 1
        return report


def store_result(
    out_dir: str | Path, result: ExperimentResult
) -> Path | None:
    """Publish ``result`` to the store configured at ``out_dir``, if any.

    The store-aware twin of :func:`repro.results.save_result`: returns
    the database path on a store write (idempotent duplicates
    included), or ``None`` when no store is configured — the caller
    then falls back to the loose-JSON archive.
    """
    db = locate_store(out_dir)
    if db is None:
        return None
    with ResultStore(db) as store:
        store.put(result)
    return db


def find_stored(
    out_dir: str | Path, key: str
) -> ExperimentResult | None:
    """Look a key up in the store configured at ``out_dir``, if any."""
    db = locate_store(out_dir)
    if db is None or not db.is_file():
        return None
    with ResultStore(db) as store:
        return store.get(key)
