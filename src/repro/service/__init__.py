"""The experiment service: serve studies, don't just run them.

Four layers compose the existing pieces (content-hash ``result_key``
resume, the registry, the sharded exec backend) into a long-running
daemon many clients can share:

* :mod:`repro.service.store` — :class:`ResultStore`, a single sqlite
  database (WAL mode) backing the archive instead of loose JSON files:
  one ``results`` table keyed by ``result_key``, idempotent
  ``put``/``get``/``query``/``stats`` plus an importer for legacy
  ``results/`` trees.
* :mod:`repro.service.queue` — a bounded in-process :class:`JobQueue`
  with FIFO ordering, reject-when-full backpressure (HTTP 429
  semantics) and in-flight dedup: identical submissions coalesce onto
  one execution.
* :mod:`repro.service.daemon` — the :class:`Daemon` worker loop:
  lease a job, serve it from the store (cache hit) or run it through
  the exec backend (reusing the parked warm pool across jobs), publish
  to the store, record per-job telemetry.
* :mod:`repro.service.api` / :mod:`repro.service.client` — a stdlib
  ``http.server`` JSON API (``POST /jobs``, ``GET /jobs/<id>``,
  ``GET /results/<key>``, ``GET /healthz``, ``GET /stats``) and the
  ``urllib`` client behind ``repro submit`` / ``repro jobs``.

At-most-once execution per key: the store is consulted before queueing
and before running, in-flight submissions coalesce by key, and
``ResultStore.put`` is idempotent for identical payloads — so N
concurrent identical submissions run the simulation exactly once.
See DESIGN.md §11 for the service contract.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import Daemon
from repro.service.queue import Job, JobQueue, QueueFull
from repro.service.store import (
    STORE_FILENAME,
    ImportReport,
    ResultStore,
    StoreConflictError,
)

__all__ = [
    "Daemon",
    "ExperimentService",
    "ImportReport",
    "Job",
    "JobQueue",
    "QueueFull",
    "ResultStore",
    "STORE_FILENAME",
    "ServiceClient",
    "ServiceError",
    "StoreConflictError",
]


def __getattr__(name: str):
    # api imports http.server machinery; keep `import repro.service`
    # cheap for store-only users (results.find_result's lazy probe).
    if name == "ExperimentService":
        from repro.service.api import ExperimentService

        return ExperimentService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
