"""The worker loop: lease jobs, run or cache-serve them, publish.

One :class:`Daemon` thread drains the :class:`~repro.service.queue.
JobQueue`.  Per job, in order:

1. **Store check** — the job's ``result_key`` is looked up in the
   :class:`~repro.service.store.ResultStore`; a hit completes the job
   immediately (``cached=True``) with zero execution.
2. **Execution** — on a miss the experiment runs through the normal
   registry path, hence the exec-plan backend: shard fan-out, fault
   recovery (the ambient or daemon-configured
   :class:`~repro.exec.FaultPolicy`), and the *parked warm pool* — the
   forkserver pool a parallel run leaves behind is reused by the next
   job instead of being respawned, so a busy daemon pays pool start-up
   once (``repro.exec.pool``; prewarmed at daemon start when ``jobs``
   is set).
3. **Publish** — the result is ``put`` into the store (idempotent; a
   concurrent identical writer is harmless) and the job completed,
   waking every coalesced subscriber.

Telemetry: per-job queue wait and run wall are accumulated into
counters (``executed``, ``cache_hits``, ``failed``) served by
``GET /stats`` — the load benchmark's cache-hit rate comes from here.
"""

from __future__ import annotations

import dataclasses
import threading
import traceback
from typing import Any

from repro.exec.backends import FaultPolicy, fault_policy
from repro.exec.pool import prewarm, warm_pool_stats
from repro.service.queue import Job, JobQueue
from repro.service.store import ResultStore

__all__ = ["Daemon"]


class Daemon:
    """The service's single worker loop (a daemon thread).

    Parameters
    ----------
    store / queue:
        The shared result store and job queue.
    jobs:
        Plan-backend worker count injected into every executed job's
        options (execution-only: never part of the result key).  When
        > 1 the process pool is prewarmed at :meth:`start` so the
        first job doesn't pay pool spawn latency.
    policy:
        Optional :class:`FaultPolicy` applied around every execution;
        defaults to the ambient policy (env knobs included).
    poll_s:
        Lease timeout — how often the loop re-checks ``stop()``.
    """

    def __init__(
        self,
        store: ResultStore,
        queue: JobQueue,
        *,
        jobs: int | None = None,
        policy: FaultPolicy | None = None,
        poll_s: float = 0.2,
    ):
        self.store = store
        self.queue = queue
        self.jobs = jobs
        self.policy = policy
        self.poll_s = poll_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.executed = 0
        self.cache_hits = 0
        self.failed = 0
        self.queue_wait_s = 0.0
        self.run_wall_s = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Daemon":
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        if self.jobs is not None and self.jobs > 1:
            prewarm(self.jobs)
        self._thread = threading.Thread(
            target=self._loop, name="repro-daemon", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- the loop -----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.lease(timeout=self.poll_s)
            if job is None:
                continue
            try:
                self._serve(job)
            except Exception as exc:  # never kill the loop on one job
                self.queue.fail(job, f"{type(exc).__name__}: {exc}")
                with self._lock:
                    self.failed += 1
                traceback.print_exc()

    def _serve(self, job: Job) -> None:
        cached = self.store.get_document(job.key) is not None
        if cached:
            self.queue.complete(job, cached=True)
            with self._lock:
                self.cache_hits += 1
                self.queue_wait_s += job.queue_wait_s or 0.0
            return
        result = self._execute(job)
        self.store.put(result)
        self.queue.complete(job, cached=False)
        with self._lock:
            self.executed += 1
            self.queue_wait_s += job.queue_wait_s or 0.0
            self.run_wall_s += job.run_wall_s or 0.0

    def _execute(self, job: Job) -> Any:
        from repro.experiments.registry import get_experiment

        spec = get_experiment(job.experiment)
        opts = spec.options_cls(**dict(job.options))
        if self.jobs is not None and any(
            f.name == "jobs" for f in spec.option_fields()
        ):
            opts = dataclasses.replace(opts, jobs=self.jobs)
        if self.policy is not None:
            with fault_policy(self.policy):
                result = spec.run(opts)
        else:
            result = spec.run(opts)
        if result.key != job.key:  # pragma: no cover - registry bug guard
            raise RuntimeError(
                f"executed result key {result.key} != job key {job.key} "
                f"for {job.experiment}"
            )
        return result

    # -- telemetry ----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        from repro.workloads import active_cache, cache_stats

        wl_cache = active_cache()
        with self._lock:
            done = self.executed + self.cache_hits
            return {
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "failed": self.failed,
                "cache_hit_rate": (self.cache_hits / done) if done else None,
                "queue_wait_s": self.queue_wait_s,
                "run_wall_s": self.run_wall_s,
                "jobs": self.jobs,
                "running": self.running,
                "warm_pool": warm_pool_stats(),
                "workload_cache": (
                    {"root": str(wl_cache.root), **cache_stats().as_dict()}
                    if wl_cache is not None else None
                ),
            }
