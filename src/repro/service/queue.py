"""A bounded in-process job queue with in-flight dedup.

The queue holds :class:`Job` records between ``POST /jobs`` and the
daemon's worker loop.  Three properties the service contract
(DESIGN.md §11) depends on:

* **FIFO ordering** — jobs lease in submission order; no priorities,
  no starvation.
* **Backpressure** — the pending queue is bounded; a submission that
  would exceed it raises :class:`QueueFull`, which the HTTP layer maps
  to ``429 Too Many Requests``.  Rejecting loudly at the front door
  beats queueing unboundedly and timing every client out.
* **In-flight dedup** — two submissions with the same ``result_key``
  coalesce onto one :class:`Job` while it is queued or running: the
  second submitter gets the same job id and attaches as a subscriber.
  Together with the store-first check in the daemon this gives
  at-most-once execution per key.

Thread-safety: one lock guards all state; ``lease`` blocks on a
condition variable so the daemon wakes immediately on submission
instead of polling.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Job", "JobQueue", "QueueFull"]

#: Job lifecycle: queued -> running -> done | failed.  ``done`` covers
#: both executed and cache-served jobs (``cached`` distinguishes them).
JOB_STATES = ("queued", "running", "done", "failed")


class QueueFull(RuntimeError):
    """The pending queue is at capacity (HTTP 429 semantics)."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        super().__init__(
            f"job queue is full ({maxsize} pending); retry later"
        )


@dataclass
class Job:
    """One submission: its identity, lifecycle state and telemetry.

    ``options`` are the submitted field overrides (applied over the
    experiment's defaults by the daemon); ``key`` is the content-hash
    ``result_key`` of the fully-resolved options — the dedup identity.
    """

    id: str
    experiment: str
    options: Mapping[str, Any]
    key: str
    state: str = "queued"
    cached: bool = False
    error: str | None = None
    submitted_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    subscribers: int = 1
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    @property
    def queue_wait_s(self) -> float | None:
        if self.started_unix is None:
            return None
        return self.started_unix - self.submitted_unix

    @property
    def run_wall_s(self) -> float | None:
        if self.started_unix is None or self.finished_unix is None:
            return None
        return self.finished_unix - self.started_unix

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "experiment": self.experiment,
            "options": dict(self.options),
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "error": self.error,
            "subscribers": self.subscribers,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "queue_wait_s": self.queue_wait_s,
            "run_wall_s": self.run_wall_s,
        }


class JobQueue:
    """Bounded FIFO of :class:`Job`\\ s with by-key coalescing.

    ``maxsize`` bounds the *pending* (not-yet-leased) jobs; running
    and finished jobs don't count against it.  Finished jobs are kept
    (capped at ``history``) so ``GET /jobs/<id>`` stays answerable
    after completion.
    """

    def __init__(self, maxsize: int = 256, *, history: int = 1024):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.history = history
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: list[Job] = []
        self._by_key: dict[str, Job] = {}      # queued/running only
        self._by_id: dict[str, Job] = {}
        self._order: list[str] = []            # insertion order, for trim
        self._seq = 0
        self.rejected = 0
        self.coalesced = 0

    # -- submission ---------------------------------------------------------

    def submit(
        self, experiment: str, options: Mapping[str, Any], key: str
    ) -> tuple[Job, bool]:
        """Enqueue (or coalesce onto) the job for ``key``.

        Returns ``(job, created)``: ``created`` is ``False`` when an
        in-flight job with the same key absorbed this submission.
        Raises :class:`QueueFull` when a new job would exceed the
        pending bound.
        """
        with self._lock:
            inflight = self._by_key.get(key)
            if inflight is not None and inflight.state in ("queued",
                                                           "running"):
                inflight.subscribers += 1
                self.coalesced += 1
                return inflight, False
            if len(self._pending) >= self.maxsize:
                self.rejected += 1
                raise QueueFull(self.maxsize)
            self._seq += 1
            job = Job(
                id=f"j{self._seq:06d}", experiment=experiment,
                options=dict(options), key=key,
            )
            self._pending.append(job)
            self._by_key[key] = job
            self._by_id[job.id] = job
            self._order.append(job.id)
            self._trim_history()
            self._not_empty.notify()
            return job, True

    # -- daemon side --------------------------------------------------------

    def lease(self, timeout: float | None = None) -> Job | None:
        """Pop the oldest pending job (blocking up to ``timeout``)."""
        with self._not_empty:
            if not self._pending:
                self._not_empty.wait(timeout)
            if not self._pending:
                return None
            job = self._pending.pop(0)
            job.state = "running"
            job.started_unix = time.time()
            return job

    def complete(self, job: Job, *, cached: bool = False) -> None:
        """Mark a leased job done (``cached`` when store-served)."""
        self._finish(job, "done", cached=cached)

    def fail(self, job: Job, error: str) -> None:
        self._finish(job, "failed", error=error)

    def _finish(self, job: Job, state: str, *, cached: bool = False,
                error: str | None = None) -> None:
        with self._lock:
            job.state = state
            job.cached = cached
            job.error = error
            if job.started_unix is None:  # completed without a lease
                job.started_unix = time.time()
            job.finished_unix = time.time()
            if self._by_key.get(job.key) is job:
                del self._by_key[job.key]
        job._done.set()

    # -- introspection ------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._by_id.get(job_id)

    def jobs(self) -> list[Job]:
        """All known jobs, oldest first (bounded by ``history``)."""
        with self._lock:
            return [self._by_id[i] for i in self._order]

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._by_id.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "pending": len(self._pending),
                "maxsize": self.maxsize,
                "rejected": self.rejected,
                "coalesced": self.coalesced,
                "by_state": states,
            }

    def _trim_history(self) -> None:
        # Under the lock.  Drop oldest *terminal* jobs past the cap;
        # queued/running jobs are never dropped.
        while len(self._order) > self.history:
            for i, job_id in enumerate(self._order):
                job = self._by_id[job_id]
                if job.state in ("done", "failed"):
                    del self._by_id[job_id]
                    del self._order[i]
                    break
            else:
                return
