"""Workload artifacts: content-hash-cached, memory-mapped Monte-Carlo inputs.

The public face of :mod:`repro.workloads.cache` — see DESIGN.md §12 for
the cache contract (keying, mmap ownership, invalidation on
:data:`~repro.extensions.families.SAMPLER_VERSION` bumps).
"""

from repro.workloads.cache import (
    ENV_VAR,
    MANIFEST_SCHEMA,
    CacheStats,
    WorkloadArtifact,
    WorkloadCache,
    WorkloadRef,
    active_cache,
    attach_artifact,
    cache_stats,
    cached_scenario_workload,
    detach_artifacts,
    reset_cache_stats,
    set_workload_cache,
    workload_cache,
    workload_key,
    workload_spec,
)

__all__ = [
    "ENV_VAR",
    "MANIFEST_SCHEMA",
    "CacheStats",
    "WorkloadArtifact",
    "WorkloadCache",
    "WorkloadRef",
    "active_cache",
    "attach_artifact",
    "cache_stats",
    "cached_scenario_workload",
    "detach_artifacts",
    "reset_cache_stats",
    "set_workload_cache",
    "workload_cache",
    "workload_key",
    "workload_spec",
]
