"""The workload-artifact cache: sample once, memory-map everywhere.

``BENCH_graphs.json`` showed the simulator outrunning its own input
pipeline ~3x — sampling the n=512 E10 scenario grid cost more wall time
than simulating it.  This module closes that gap the same way results
are cached: every sampled scenario workload (per-trial CSR batch, churn
fault sets, trial seeds) is keyed by the sha256 content hash of its
fully normalised spec (:func:`workload_key`, same ``canonical_json``
convention as :func:`repro.results.result_key`), generated exactly once,
published atomically, and served back as **zero-copy read-only
memory-mapped views** to studies, benchmarks, the service daemon and the
conformance suite.

Artifact layout (one directory per workload)::

    <root>/<scenario>-<key>/
        manifest.json     # schema, spec, shapes — written last, fsynced
        seeds.npy         # (T,) int64 trial seeds
        indptr.npy        # (G, n+1) int64 CSR row offsets
        nbrs.npy          # flat int64 neighbour arrays, concatenated
        nbrs_offsets.npy  # (G+1,) int64 slice bounds into nbrs
        patched.npy       # (G,) int64 Hamiltonian-patch edge counts
        faulty.npy        # flat sorted fault labels
        faulty_offsets.npy  # (T+1,) int64 slice bounds into faulty

``G`` is 1 for the deterministic kinds (one graph shared by every
trial — attachment replicates it *by reference*, preserving the object
identity the batch tier's block-adjacency fast path keys on) and ``T``
otherwise.

Publish protocol (crash-safe, multi-process): arrays and manifest are
written into a pid-suffixed temp directory, each file fsynced, the
manifest last; the directory is fsynced and then :func:`os.rename`\\ d
over the final name.  The rename is atomic on POSIX — concurrent
writers of the same key race to one winner, and the losers adopt the
winner's artifact.  A crash at any point leaves only a ``.tmp.<pid>``
directory that ``repro workloads gc`` can sweep.  Corrupt or torn
artifacts (chaos-truncated manifests, short arrays) are quarantined to
``<name>.corrupt`` and transparently resampled, mirroring the
``study.py`` convention for torn result archives.

Invalidation is by construction: the spec hashed into the key carries
:data:`repro.extensions.families.SAMPLER_VERSION`, so any change to the
byte-level sampler spec keys new artifacts instead of serving stale
pre-change bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.extensions.families import (
    SAMPLER_VERSION,
    GraphCSR,
    GraphSample,
    ScenarioWorkload,
    sample_scenario_workload,
    split_scenario,
)
from repro.results import canonical_json
from repro.util.faults import decode_fault_sets, encode_fault_sets

__all__ = [
    "ENV_VAR",
    "MANIFEST_SCHEMA",
    "CacheStats",
    "WorkloadArtifact",
    "WorkloadCache",
    "WorkloadRef",
    "active_cache",
    "attach_artifact",
    "cache_stats",
    "cached_scenario_workload",
    "detach_artifacts",
    "reset_cache_stats",
    "set_workload_cache",
    "workload_cache",
    "workload_key",
    "workload_spec",
]

#: Environment variable naming the cache root; when set, the experiment
#: front doors route scenario sampling through the artifact cache.
ENV_VAR = "REPRO_WORKLOAD_CACHE"

MANIFEST_SCHEMA = "repro.workload/v1"

_ARRAY_NAMES = (
    "seeds", "indptr", "nbrs", "nbrs_offsets", "patched",
    "faulty", "faulty_offsets",
)


# ---------------------------------------------------------------------------
# Keying
# ---------------------------------------------------------------------------

def workload_spec(
    scenario: str,
    n: int,
    trials: int,
    base_seed: int,
    churn_rate: float = 0.05,
    seed_stride: int = 41,
) -> dict[str, Any]:
    """The *fully normalised* spec a workload is keyed on.

    Every sampling input is in here — scenario (kind + churn flag), n,
    trials, the seed spine, the churn rate, and the sampler version —
    so two scenarios that share a kind but differ in any sampled input
    (e.g. only the fault fraction) can never collide on one artifact.
    ``churn_rate`` is normalised to 0.0 for non-churn scenarios: it is
    not a sampling input there, and folding it in would needlessly
    split identical workloads across keys.
    """
    kind, churn = split_scenario(scenario)
    return {
        "family": "scenario",
        "scenario": scenario,
        "kind": kind,
        "churn": churn,
        "n": int(n),
        "trials": int(trials),
        "base_seed": int(base_seed),
        "seed_stride": int(seed_stride),
        "churn_rate": float(churn_rate) if churn else 0.0,
        "sampler_version": SAMPLER_VERSION,
    }


def workload_key(spec: Mapping[str, Any]) -> str:
    """sha256 content hash of the canonical spec (16 hex chars)."""
    payload = canonical_json(dict(spec))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Process-wide cache counters (hits/misses/sampled work)."""

    hits: int = 0
    misses: int = 0
    quarantined: int = 0
    sampled_edges: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "sampled_edges": self.sampled_edges,
        }


_STATS = CacheStats()


def cache_stats() -> CacheStats:
    """The live process-wide counters (mutated by every fetch)."""
    return _STATS


def reset_cache_stats() -> None:
    global _STATS
    _STATS = CacheStats()


# ---------------------------------------------------------------------------
# Attached artifacts (memory-mapped, shared per process)
# ---------------------------------------------------------------------------

class WorkloadArtifact:
    """One published workload directory, memory-mapped read-only.

    Arrays are ``np.load(..., mmap_mode="r")`` views — the OS page
    cache owns the bytes, attachment costs no copies, and the arrays
    are not writeable, so no consumer can corrupt the shared artifact.
    Construction validates the manifest and every array shape; any
    mismatch raises (the cache quarantines and resamples).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        manifest_path = self.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"unknown workload schema {manifest.get('schema')!r}"
            )
        self.manifest = manifest
        self.spec: dict[str, Any] = manifest["spec"]
        self.key: str = manifest["key"]
        self.arrays: dict[str, np.ndarray] = {
            name: np.load(self.path / f"{name}.npy", mmap_mode="r")
            for name in _ARRAY_NAMES
        }
        self._samples: tuple[GraphSample, ...] | None = None
        self._validate()

    def _validate(self) -> None:
        a = self.arrays
        trials = int(self.manifest["trials"])
        graphs = int(self.manifest["graphs"])
        n = int(self.spec["n"])
        if a["seeds"].shape != (trials,):
            raise ValueError("seeds array shape mismatch")
        if a["indptr"].shape != (graphs, n + 1):
            raise ValueError("indptr array shape mismatch")
        if a["patched"].shape != (graphs,):
            raise ValueError("patched array shape mismatch")
        if a["nbrs_offsets"].shape != (graphs + 1,):
            raise ValueError("nbrs_offsets array shape mismatch")
        if a["faulty_offsets"].shape != (trials + 1,):
            raise ValueError("faulty_offsets array shape mismatch")
        for name in ("nbrs_offsets", "faulty_offsets"):
            off = a[name]
            if off[0] != 0 or np.any(np.diff(off) < 0):
                raise ValueError(f"{name} not monotone from 0")
        if int(a["nbrs_offsets"][-1]) != a["nbrs"].size:
            raise ValueError("nbrs length does not match offsets")
        if int(a["faulty_offsets"][-1]) != a["faulty"].size:
            raise ValueError("faulty length does not match offsets")

    @property
    def trials(self) -> int:
        return int(self.manifest["trials"])

    @property
    def sampled_edges(self) -> int:
        return int(self.manifest["sampled_edges"])

    def graph_samples(self) -> tuple[GraphSample, ...]:
        """The distinct graphs (1 for deterministic kinds, T otherwise)."""
        if self._samples is None:
            a = self.arrays
            n = int(self.spec["n"])
            kind = self.spec["kind"]
            samples = []
            for g in range(int(self.manifest["graphs"])):
                lo, hi = int(a["nbrs_offsets"][g]), \
                    int(a["nbrs_offsets"][g + 1])
                csr = GraphCSR(
                    n=n, indptr=a["indptr"][g], nbrs=a["nbrs"][lo:hi],
                )
                samples.append(GraphSample(
                    kind=kind, csr=csr,
                    patched_edges=int(a["patched"][g]),
                ))
            self._samples = tuple(samples)
        return self._samples

    def csr_list(self, lo: int = 0, hi: int | None = None) -> list[GraphCSR]:
        """Per-trial CSRs for trials ``[lo, hi)`` — shared object when
        the artifact holds one deterministic graph (the batch tier's
        block-adjacency fast path keys on that ``is`` identity)."""
        hi = self.trials if hi is None else hi
        samples = self.graph_samples()
        if len(samples) == 1:
            return [samples[0].csr] * (hi - lo)
        return [s.csr for s in samples[lo:hi]]

    def workload(self) -> ScenarioWorkload:
        """Reconstruct the full :class:`ScenarioWorkload`, artifact-backed."""
        a = self.arrays
        samples = self.graph_samples()
        if len(samples) == 1:
            samples = samples * self.trials
        faulty = tuple(decode_fault_sets(a["faulty"], a["faulty_offsets"]))
        return ScenarioWorkload(
            scenario=self.spec["scenario"],
            samples=samples,
            faulty=faulty,
            seeds=tuple(int(s) for s in a["seeds"]),
            ref=WorkloadRef(str(self.path), self.key, 0, self.trials),
        )


_ATTACHED: dict[str, WorkloadArtifact] = {}


def attach_artifact(path: str | Path) -> WorkloadArtifact:
    """Attach (memory-map) an artifact, shared per process.

    Raises on a missing or corrupt artifact — shard workers let that
    fail the shard, and the retry/degrade machinery falls back to the
    parent's in-memory copy.
    """
    key = str(Path(path).resolve())
    art = _ATTACHED.get(key)
    if art is None:
        art = WorkloadArtifact(path)
        _ATTACHED[key] = art
    return art


def detach_artifacts() -> None:
    """Drop every process-cached attachment (tests / cold-cache timing)."""
    _ATTACHED.clear()


@dataclass(frozen=True)
class WorkloadRef:
    """A picklable handle to a trial window of a published artifact.

    Execution plans carry this instead of the CSR bytes: shard workers
    re-attach the memory-mapped artifact by path and slice their trial
    window, so sharding a cached workload ships ~100 bytes per shard
    instead of repickling every neighbour array.
    """

    path: str
    key: str
    lo: int
    hi: int

    def narrow(self, lo: int, hi: int) -> "WorkloadRef":
        """The sub-window for a shard's ``[lo, hi)`` trial slice."""
        return replace(
            self, lo=self.lo + lo, hi=min(self.lo + hi, self.hi),
        )

    def csrs(self) -> list[GraphCSR]:
        return attach_artifact(self.path).csr_list(self.lo, self.hi)


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

class WorkloadCache:
    """Content-addressed store of sampled workload artifacts."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- fetch ------------------------------------------------------------

    def fetch(self, spec: Mapping[str, Any]) -> ScenarioWorkload:
        """The workload for ``spec``: attach if published, else sample,
        publish and attach.  Always returns a usable workload — corrupt
        artifacts are quarantined and resampled, and if chaos tears the
        publish the freshly sampled in-memory workload is returned."""
        spec = dict(spec)
        path = self._artifact_path(spec)
        art = self._attach(path, spec)
        if art is not None:
            _STATS.hits += 1
            return art.workload()
        _STATS.misses += 1
        wl = sample_scenario_workload(
            spec["scenario"], spec["n"], spec["trials"], spec["base_seed"],
            churn_rate=spec["churn_rate"], seed_stride=spec["seed_stride"],
        )
        _STATS.sampled_edges += sum(
            s.csr.nbrs.size for s in _distinct_samples(wl)
        ) // 2
        final = self._publish(spec, wl)
        art = self._attach(final, spec)
        if art is None:
            # Publish was torn (chaos) or lost to a corrupt racer: the
            # in-memory workload is still correct — serve it un-reffed.
            return wl
        return art.workload()

    # -- layout -----------------------------------------------------------

    def _artifact_path(self, spec: Mapping[str, Any]) -> Path:
        return self.root / f"{spec['scenario']}-{workload_key(spec)}"

    def _attach(
        self, path: Path, spec: Mapping[str, Any] | None = None
    ) -> WorkloadArtifact | None:
        if not path.is_dir():
            return None
        try:
            art = attach_artifact(path)
            if spec is not None and \
                    canonical_json(art.spec) != canonical_json(dict(spec)):
                raise ValueError("artifact spec does not match key")
        except (ValueError, KeyError, OSError, json.JSONDecodeError):
            self._quarantine(path)
            return None
        return art

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt artifact aside (``<name>.corrupt``), so the
        next fetch resamples — mirroring the study archive convention."""
        _ATTACHED.pop(str(path.resolve()), None)
        target = path.with_name(path.name + ".corrupt")
        if target.exists():
            shutil.rmtree(target, ignore_errors=True)
        try:
            path.rename(target)
        except OSError:
            shutil.rmtree(path, ignore_errors=True)
        _STATS.quarantined += 1
        print(
            f"warning: quarantined corrupt workload artifact {path.name}; "
            "re-sampling", file=sys.stderr,
        )

    # -- publish ----------------------------------------------------------

    def _publish(
        self, spec: Mapping[str, Any], wl: ScenarioWorkload
    ) -> Path:
        """Atomic multi-file publish: temp dir + fsync + rename.

        Concurrent writers of one key race on the final rename; exactly
        one wins, the losers remove their temp dir and adopt the
        winner's artifact.
        """
        final = self._artifact_path(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = final.with_name(f"{final.name}.tmp.{os.getpid()}")
        try:
            tmp.mkdir()
            arrays = _encode_workload(wl)
            total = 0
            for name, arr in arrays.items():
                apath = tmp / f"{name}.npy"
                with apath.open("wb") as fh:
                    np.save(fh, arr)
                    fh.flush()
                    os.fsync(fh.fileno())
                total += apath.stat().st_size
            manifest = {
                "schema": MANIFEST_SCHEMA,
                "key": workload_key(spec),
                "spec": dict(spec),
                "trials": len(wl.seeds),
                "graphs": int(arrays["patched"].size),
                "sampled_edges": int(arrays["nbrs"].size) // 2,
                "arrays": list(_ARRAY_NAMES),
                "bytes": total,
                "version": 1,
            }
            mpath = tmp / "manifest.json"
            with mpath.open("w") as fh:
                fh.write(json.dumps(manifest, indent=2, sort_keys=True)
                         + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            dfd = os.open(tmp, os.O_RDONLY)
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)
            try:
                os.rename(tmp, final)
            except OSError:
                # Lost the publish race: a complete artifact (or a
                # pre-existing one) already holds the final name.
                shutil.rmtree(tmp, ignore_errors=True)
                return final
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        _chaos_tear_artifact(final)
        return final

    # -- maintenance ------------------------------------------------------

    def artifacts(self) -> list[WorkloadArtifact]:
        """Every readable published artifact under the root."""
        out = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.iterdir()):
            if not path.is_dir() or ".tmp." in path.name \
                    or path.name.endswith(".corrupt"):
                continue
            art = self._attach(path)
            if art is not None:
                out.append(art)
        return out

    def orphans(self) -> list[Path]:
        """Leftover temp dirs and quarantined artifacts (gc targets)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.iterdir()
            if p.is_dir()
            and (".tmp." in p.name or p.name.endswith(".corrupt"))
        )

    def gc(self, dry_run: bool = False,
           all_artifacts: bool = False) -> dict[str, Any]:
        """Sweep orphans (and, with ``all_artifacts``, everything)."""
        targets = [p.name for p in self.orphans()]
        removed_artifacts = []
        if all_artifacts:
            removed_artifacts = [a.path.name for a in self.artifacts()]
        if not dry_run:
            for name in targets + removed_artifacts:
                path = self.root / name
                _ATTACHED.pop(str(path.resolve()), None)
                shutil.rmtree(path, ignore_errors=True)
        return {
            "root": str(self.root),
            "orphans": targets,
            "artifacts_removed": removed_artifacts,
            "dry_run": dry_run,
        }


def _distinct_samples(wl: ScenarioWorkload) -> list[GraphSample]:
    first = wl.samples[0] if wl.samples else None
    if first is not None and all(s is first for s in wl.samples):
        return [first]
    return list(wl.samples)


def _encode_workload(wl: ScenarioWorkload) -> dict[str, np.ndarray]:
    samples = _distinct_samples(wl)
    indptr = np.stack([s.csr.indptr for s in samples])
    nbrs_offsets = np.zeros(len(samples) + 1, dtype=np.int64)
    for i, s in enumerate(samples):
        nbrs_offsets[i + 1] = nbrs_offsets[i] + s.csr.nbrs.size
    nbrs = (np.concatenate([s.csr.nbrs for s in samples])
            if samples else np.zeros(0, dtype=np.int64))
    faulty, faulty_offsets = encode_fault_sets(list(wl.faulty))
    return {
        "seeds": np.array(wl.seeds, dtype=np.int64),
        "indptr": np.asarray(indptr, dtype=np.int64),
        "nbrs": np.asarray(nbrs, dtype=np.int64),
        "nbrs_offsets": nbrs_offsets,
        "patched": np.array([s.patched_edges for s in samples],
                            dtype=np.int64),
        "faulty": faulty,
        "faulty_offsets": faulty_offsets,
    }


def _chaos_tear_artifact(path: Path) -> None:
    """Fault injection: tear a just-published artifact's manifest.

    Mirrors :func:`repro.results._chaos_tear` — active only inside
    chaos blocks, keyed on the artifact directory name, and exercises
    the quarantine-and-resample path end to end.
    """
    from repro.exec import chaos  # deferred, matching results.py

    cfg = chaos.active_config()
    if cfg is not None and cfg.truncates(path.name):
        mpath = path / "manifest.json"
        data = mpath.read_text()
        mpath.write_text(data[: len(data) // 2])
        _ATTACHED.pop(str(path.resolve()), None)


# ---------------------------------------------------------------------------
# Activation (env var / explicit override) and the front door
# ---------------------------------------------------------------------------

_OVERRIDE: WorkloadCache | None = None
_OVERRIDE_SET = False
_ENV_CACHE: WorkloadCache | None = None
_ENV_ROOT: str | None = None


def set_workload_cache(cache: WorkloadCache | None) -> None:
    """Install (or, with ``None``, clear) an explicit cache override.

    The override wins over :data:`ENV_VAR`; clearing it restores the
    environment-driven behaviour.
    """
    global _OVERRIDE, _OVERRIDE_SET
    _OVERRIDE = cache
    _OVERRIDE_SET = cache is not None


def active_cache() -> WorkloadCache | None:
    """The cache in effect: the override, else ``$REPRO_WORKLOAD_CACHE``."""
    global _ENV_CACHE, _ENV_ROOT
    if _OVERRIDE_SET:
        return _OVERRIDE
    root = os.environ.get(ENV_VAR)
    if not root:
        return None
    if _ENV_CACHE is None or _ENV_ROOT != root:
        _ENV_CACHE = WorkloadCache(root)
        _ENV_ROOT = root
    return _ENV_CACHE


@contextmanager
def workload_cache(root: str | Path) -> Iterator[WorkloadCache]:
    """Scoped activation: the block's fetches route through ``root``."""
    cache = WorkloadCache(root)
    set_workload_cache(cache)
    try:
        yield cache
    finally:
        set_workload_cache(None)


def cached_scenario_workload(
    scenario: str,
    n: int,
    trials: int,
    base_seed: int,
    churn_rate: float = 0.05,
    seed_stride: int = 41,
    cache: WorkloadCache | None = None,
) -> ScenarioWorkload:
    """The cache-aware front door the experiments sample through.

    With no cache (argument, override, or env), this *is*
    :func:`sample_scenario_workload` — byte-identical outputs, no
    artifacts.  With one, the workload round-trips through the artifact
    store and comes back memory-mapped with a :class:`WorkloadRef`.
    """
    cache = cache if cache is not None else active_cache()
    if cache is None:
        return sample_scenario_workload(
            scenario, n, trials, base_seed,
            churn_rate=churn_rate, seed_stride=seed_stride,
        )
    spec = workload_spec(
        scenario, n, trials, base_seed,
        churn_rate=churn_rate, seed_stride=seed_stride,
    )
    return cache.fetch(spec)
