"""Shared coalition state.

Members of a coalition may coordinate arbitrarily outside the network
(that is exactly what a t-*strong* equilibrium must resist), so strategies
share a :class:`CoalitionState`: a blackboard carrying membership, shared
randomness and whatever observations a concrete strategy pools.

The base state tracks the observation every strategy needs: *exposure* —
which members have been pulled by a non-member during the Commitment
phase.  An exposed member's declared intention sits in at least one honest
ledger and can no longer be contradicted safely; Lemma 6.1 says w.h.p.
every agent is exposed, which is precisely what makes forgery unprofitable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.params import ProtocolParams
from repro.util.rng import SeedTree

if TYPE_CHECKING:  # pragma: no cover
    from repro.agents.base import DeviantAgent

__all__ = ["CoalitionState"]


class CoalitionState:
    """Blackboard shared by all members of one coalition, one run."""

    def __init__(self, params: ProtocolParams, members: frozenset[int],
                 tree: SeedTree):
        self.params = params
        self.members = members
        self.tree = tree
        self.rng = tree.child("shared").generator()
        self.agents: dict[int, "DeviantAgent"] = {}
        # member -> labels of non-members that pulled it in Commitment
        self.exposure: dict[int, set[int]] = {m: set() for m in members}

    # -- registration -------------------------------------------------------
    def register(self, agent: "DeviantAgent") -> None:
        """Called by each member agent at construction."""
        self.agents[agent.node_id] = agent

    # -- observations ---------------------------------------------------------
    def record_commitment_pull(self, member: int, requester: int) -> None:
        if requester not in self.members:
            self.exposure[member].add(requester)

    def exposed(self, member: int) -> bool:
        """Has any non-member pulled this member's intention?"""
        return bool(self.exposure[member])

    def unexposed_members(self) -> list[int]:
        return sorted(m for m in self.members if not self.exposed(m))

    # -- conveniences ---------------------------------------------------------
    def coalition_colors(self) -> list[object]:
        """Colors supported by members (by label order)."""
        return [self.agents[m].color for m in sorted(self.agents)]

    def most_common_color(self) -> object | None:
        colors = self.coalition_colors()
        if not colors:
            return None
        counts: dict[object, int] = {}
        for c in colors:
            counts[c] = counts.get(c, 0) + 1
        return max(counts, key=lambda c: (counts[c],))

    def members_supporting(self, color: object) -> list[int]:
        return sorted(
            m for m, a in self.agents.items() if a.color == color
        )

    def members_sorted(self) -> Iterable[int]:
        return sorted(self.members)
