"""Deviation plans: bind a coalition to a strategy.

A :class:`StrategyPlan` implements the
:class:`repro.core.protocol.DeviationPlan` protocol: it owns the member
set, builds the shared blackboard once per run, and instantiates one
agent per member.  The :func:`plan` factory builds plans by strategy
name — the experiment harness and benchmarks select strategies by these
names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.agents.base import DeviantAgent
from repro.agents.coalition import CoalitionState
from repro.agents.effects import EFFECT_SPECS, EffectSpec
from repro.agents.equivocate import EquivocatingAgent
from repro.agents.griefing import GriefingAgent
from repro.agents.pooled import PooledAttackAgent, PooledState
from repro.agents.pretend_faulty import PretendFaultyAgent
from repro.agents.silent import SilentAgent
from repro.agents.suppress import FindMinSuppressAgent
from repro.agents.underbid import ForgedCertificateAgent
from repro.agents.vote_switch import VoteSwitchAgent
from repro.core.params import ProtocolParams
from repro.gossip.node import Node
from repro.util.rng import SeedTree

__all__ = ["StrategyPlan", "plan", "STRATEGY_NAMES"]


@dataclass
class StrategyPlan:
    """members + agent class + kwargs, satisfying ``DeviationPlan``.

    ``effects`` is the declarative counterpart of ``agent_cls``: the
    same strategy expressed as vectorised effects on trial tensors,
    consumed by the batched strategy engine
    (:mod:`repro.fastpath.strategies`).  Both are bound here so the two
    simulation tiers are compiled from one registry entry.
    """

    members: frozenset[int]
    agent_cls: type[DeviantAgent]
    state_cls: type[CoalitionState] = CoalitionState
    agent_kwargs: dict[str, Any] = field(default_factory=dict)
    state_kwargs: dict[str, Any] = field(default_factory=dict)
    name: str = ""
    effects: EffectSpec | None = None

    def build_shared(self, params: ProtocolParams, tree: SeedTree) -> object:
        shared = self.state_cls(params, self.members, tree)
        for key, value in self.state_kwargs.items():
            setattr(shared, key, value)
        return shared

    def build_agent(self, node_id: int, params: ProtocolParams,
                    color: Hashable, tree: SeedTree, shared: object) -> Node:
        return self.agent_cls(
            node_id, params, color, tree, shared, **self.agent_kwargs
        )


def _simple(cls: type[DeviantAgent], **kwargs: Any) -> Callable[[frozenset[int]], StrategyPlan]:
    def make(members: frozenset[int]) -> StrategyPlan:
        return StrategyPlan(members=members, agent_cls=cls, agent_kwargs=dict(kwargs))
    return make


_REGISTRY: dict[str, Callable[[frozenset[int]], StrategyPlan]] = {
    "honest_shadow": _simple(DeviantAgent),  # deviation that does nothing
    "silent": _simple(SilentAgent),
    "pretend_faulty": _simple(PretendFaultyAgent),
    "underbid_alter": _simple(ForgedCertificateAgent, mode="alter"),
    "underbid_drop": _simple(ForgedCertificateAgent, mode="drop_all"),
    "underbid_fabricate": _simple(ForgedCertificateAgent, mode="fabricate"),
    "underbid_klie": _simple(ForgedCertificateAgent, mode="klie"),
    "equivocate": _simple(EquivocatingAgent),
    "vote_switch": _simple(VoteSwitchAgent),
    "vote_switch_targets": _simple(VoteSwitchAgent, switch_targets=True),
    "griefing": _simple(GriefingAgent),
    "findmin_suppress": _simple(FindMinSuppressAgent),
}


def _pooled(members: frozenset[int]) -> StrategyPlan:
    return StrategyPlan(
        members=members, agent_cls=PooledAttackAgent, state_cls=PooledState
    )


def _pooled_gamble(members: frozenset[int]) -> StrategyPlan:
    return StrategyPlan(
        members=members, agent_cls=PooledAttackAgent, state_cls=PooledState,
        state_kwargs={"gamble": True},
    )


_REGISTRY["pooled"] = _pooled
_REGISTRY["pooled_gamble"] = _pooled_gamble

STRATEGY_NAMES = tuple(sorted(_REGISTRY))


def plan(strategy: str, members: frozenset[int] | set[int]) -> StrategyPlan:
    """Build the named strategy's plan for the given coalition."""
    try:
        factory = _REGISTRY[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; known: {', '.join(STRATEGY_NAMES)}"
        ) from None
    built = factory(frozenset(members))
    built.name = strategy
    built.effects = EFFECT_SPECS[strategy]
    return built
