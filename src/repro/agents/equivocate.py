"""Commitment equivocation: tell different pullers different intentions.

The member keeps two intention lists.  It answers Commitment pulls with
alternating versions, then votes according to version A.  The hope is to
keep options open about what it "committed" to.

Why it fails: the ledger is a set union (Algorithm 1's ``L_u := L_u ∪``).
Any verifier that heard *both* versions can be satisfied by neither
whenever our votes appear in the winning certificate; any verifier that
heard only version B sees our actual (version-A) votes as altered.  Either
way the protocol fails (utility -chi) as soon as our votes matter; if they
never matter, the deviation was pointless.  E7 measures exactly this.
"""

from __future__ import annotations

from typing import Hashable

from repro.agents.base import DeviantAgent
from repro.agents.coalition import CoalitionState
from repro.core.agent import TOPIC_INTENTION
from repro.core.params import Phase, ProtocolParams
from repro.core.votes import IntentionPayload, generate_intention
from repro.gossip.node import PullResponse
from repro.util.rng import SeedTree

__all__ = ["EquivocatingAgent"]


class EquivocatingAgent(DeviantAgent):
    """Alternates between two declared intentions; votes the first."""

    def __init__(self, node_id: int, params: ProtocolParams, color: Hashable,
                 seed_tree: SeedTree, shared: CoalitionState):
        super().__init__(node_id, params, color, seed_tree, shared)
        self.alt_intention = generate_intention(
            params, seed_tree.child("alt-intention").generator(), node_id
        )
        self._answers = 0

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COMMITMENT and topic == TOPIC_INTENTION:
            self.shared.record_commitment_pull(self.node_id, requester)
            self._answers += 1
            chosen = self.intention if self._answers % 2 == 1 else self.alt_intention
            return IntentionPayload(chosen, self.params.intention_bits())
        return super().on_pull_request(requester, topic, rnd)
