"""Find-Min suppression: passive sabotage of the dissemination phase.

The member behaves honestly through Voting, then goes dark for Find-Min
and Coherence: it answers no certificate pulls and initiates nothing.
The hope is to stall the spread of the minimal certificate so the run
fails (or splits) whenever the member dislikes the emerging winner.

Why it fails: with ``t = o(n / log n)`` suppressors the pull-broadcast
analysis (Lemma 3.3 with an adjusted active fraction) is unaffected —
losing ``t`` relay nodes is indistinguishable from ``t`` extra faults,
which the schedule already absorbs.  E7 measures: the failure rate under
suppression stays ~0 and the winning distribution does not move.

A variant (``also_coherence=False``) keeps pushing in Coherence while
refusing Find-Min service, which is strictly weaker; the default
suppresses both.
"""

from __future__ import annotations

from repro.agents.base import DeviantAgent
from repro.core.agent import TOPIC_CERTIFICATE
from repro.core.params import Phase
from repro.gossip.actions import Action
from repro.gossip.messages import NO_REPLY
from repro.gossip.node import PullResponse

__all__ = ["FindMinSuppressAgent"]


class FindMinSuppressAgent(DeviantAgent):
    """Honest until Voting ends; then refuses all certificate service."""

    def begin_round(self, rnd: int) -> Action | None:
        phase, _ = self.params.phase_of(rnd)
        if phase in (Phase.FIND_MIN, Phase.COHERENCE):
            return None
        return super().begin_round(rnd)

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        if topic == TOPIC_CERTIFICATE:
            return NO_REPLY
        return super().on_pull_request(requester, topic, rnd)

    def on_push(self, sender, payload, rnd):
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COHERENCE:
            return  # it does not care about coherence checks
        super().on_push(sender, payload, rnd)

    def finalize(self) -> None:
        # Suppressors never fail themselves; they just free-ride.
        self.decision = self.color
