"""Vote switching: declare honestly, vote differently.

The member answers Commitment pulls with its genuine intention but pushes
*different* values (fresh uniform draws) during the Voting phase.  The
goal would be to manipulate the receivers' ``k`` values after seeing who
pulls whom.

Why it fails: the receivers' ``k`` stays uniform regardless (our switched
vote is still added to at least one honest vote we cannot see —
Lemma 6.3), and whenever a certificate carrying one of our switched votes
wins, verifiers that pulled us in Commitment see a declared-vs-carried
mismatch (``VOTE_ALTERED``) and fail the protocol.  Switching *targets*
additionally triggers ``VOTE_OMITTED`` at the declared target's
certificate.  E7 measures both failure modes.
"""

from __future__ import annotations

from typing import Hashable

from repro.agents.base import DeviantAgent
from repro.agents.coalition import CoalitionState
from repro.core.params import Phase, ProtocolParams
from repro.core.votes import VotePayload
from repro.gossip.actions import Action, Push
from repro.util.rng import SeedTree

__all__ = ["VoteSwitchAgent"]


class VoteSwitchAgent(DeviantAgent):
    """Pushes fresh random values instead of the declared ones."""

    def __init__(self, node_id: int, params: ProtocolParams, color: Hashable,
                 seed_tree: SeedTree, shared: CoalitionState, *,
                 switch_targets: bool = False):
        super().__init__(node_id, params, color, seed_tree, shared)
        self._switch_rng = seed_tree.child("switch").generator()
        self.switch_targets = switch_targets

    def begin_round(self, rnd: int) -> Action | None:
        phase, idx = self.params.phase_of(rnd)
        if phase is Phase.VOTING:
            planned = self.intention[idx]
            value = int(self._switch_rng.integers(self.params.m))
            target = planned.target
            if self.switch_targets:
                target = int(self._switch_rng.integers(self.params.n - 1))
                if target >= self.node_id:
                    target += 1
            return Push(target, VotePayload(value, self.params.vote_message_bits()))
        return super().begin_round(rnd)
