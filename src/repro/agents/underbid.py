"""Underbidding Find-Min: lie about ``k`` to win the election.

The winner is the agent with the minimal ``k``, so the obvious deviation
is to declare ``k = 0``.  Since the certificate must stay self-consistent
(``k = sum(W) mod m`` is checked by everyone), the liar must also cook the
vote list.  Three cooking modes, each tripping a different defence:

* ``alter`` — keep all received votes, rewrite one value so the sum is 0.
  Caught by ``VOTE_ALTERED``/``VOTE_MISTARGETED`` at any verifier that
  pulled the rewritten vote's sender in Commitment (Lemma 6.1 makes that
  near-certain).
* ``drop_all`` — present an empty ``W`` (k = 0).  Caught by
  ``VOTE_OMITTED`` at any verifier that pulled *any* honest agent who
  declared a vote for us (Lemma 6 property 3 + Claim 1).
* ``fabricate`` — invent a vote list from scratch summing to 0.
  Caught by the same checks, plus ``VOTE_MISTARGETED`` when fabricated
  senders declared other targets.
* ``klie`` — declare ``k = 0`` while keeping the genuine ``W``
  (not even self-consistent).  Caught by the ``k = sum(W) mod m`` check
  alone — the ablation that disables ``verify_k`` re-enables it (E9).

Against the full protocol every mode yields protocol failure w.h.p.
(utility -chi) — against the unverified baseline the same move wins with
probability ~1 (``repro.baselines.naive_gossip``, experiment E8).
"""

from __future__ import annotations

from typing import Hashable

from repro.agents.base import DeviantAgent
from repro.agents.coalition import CoalitionState
from repro.core.certificate import Certificate, CertificatePayload, ReceivedVote
from repro.core.params import Phase, ProtocolParams
from repro.gossip.actions import Action, Pull, Push
from repro.gossip.messages import Payload
from repro.gossip.node import PullResponse
from repro.util.rng import SeedTree

__all__ = ["ForgedCertificateAgent", "UNDERBID_MODES"]

UNDERBID_MODES = ("alter", "drop_all", "fabricate", "klie")


class ForgedCertificateAgent(DeviantAgent):
    """Behaves honestly until Find-Min, then pushes a forged minimum."""

    def __init__(self, node_id: int, params: ProtocolParams, color: Hashable,
                 seed_tree: SeedTree, shared: CoalitionState, *,
                 mode: str = "alter"):
        super().__init__(node_id, params, color, seed_tree, shared)
        if mode not in UNDERBID_MODES:
            raise ValueError(f"unknown underbid mode {mode!r}")
        self.mode = mode
        self.forged: Certificate | None = None

    def _forge(self) -> Certificate:
        if self.forged is None:
            if self.mode == "alter":
                self.forged = self.forge_certificate_with_k(0)
            elif self.mode == "drop_all":
                self.forged = self.certificate_dropping_all_votes()
            elif self.mode == "klie":
                honest_cert = Certificate.build(
                    self.received_votes, self.color, self.node_id,
                    self.params.m,
                )
                self.forged = Certificate(
                    0, honest_cert.votes, self.color, self.node_id
                )
            else:  # fabricate
                m = self.params.m
                voters = [v for v in range(min(3, self.params.n))
                          if v != self.node_id][:2]
                votes = [ReceivedVote(voters[0], 0, 0)]
                if len(voters) > 1:
                    votes.append(ReceivedVote(voters[1], 1, 0))
                self.forged = Certificate.build(
                    votes, self.color, self.node_id, m
                )
            # The forged certificate replaces our world view: we are
            # certain it is the global minimum (k = 0).
            self.certificate = self.forged
            self.min_certificate = self.forged
        return self.forged

    # -- phase behaviour ----------------------------------------------------
    def begin_round(self, rnd: int) -> Action | None:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.FIND_MIN:
            self._forge()
            # Pull like an honest agent (staying silent would look odd
            # and gains nothing); we simply never adopt anything.
            return Pull(self._random_peer(), "CE")
        if phase is Phase.COHERENCE:
            cert = self._forge()
            return Push(self._random_peer(), self._certificate_payload(cert))
        return super().begin_round(rnd)

    def on_pull_reply(self, responder: int, payload: Payload, rnd: int) -> None:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.FIND_MIN:
            return  # never adopt: our forged k=0 "wins"
        super().on_pull_reply(responder, payload, rnd)

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        if topic == "CE" and self.forged is not None:
            return CertificatePayload(
                self.forged, self.forged.size_bits(self.params)
            )
        return super().on_pull_request(requester, topic, rnd)

    def on_push(self, sender: int, payload: Payload, rnd: int) -> None:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COHERENCE:
            return  # we never "fail"; we keep pushing the forgery
        super().on_push(sender, payload, rnd)

    def finalize(self) -> None:
        # A cheater always claims his own color.
        self.decision = self.color
