"""The pooled adaptive coalition attack — the strongest strategy here.

This strategy plays the proof of Theorem 7 *against* the protocol: it
forges only what no honest agent can check, and falls back to honest play
whenever forgery is detectable (a rational coalition never volunteers for
the -chi payoff).

Plan:

1. **Pre-coordination** (before round 0, out of band): members rewrite
   their vote intentions so that half of each member's votes target
   fellow members round-robin.  These intra-coalition votes are the raw
   material for forgery: the coalition knows both endpoints.
2. **Commitment**: members answer pulls honestly (refusing would get them
   faulty-marked) but log every non-member puller on the blackboard —
   after the phase the coalition knows exactly which members are
   *exposed* (their declared intention sits in an honest ledger).
3. **After Voting**: the coalition searches for a member ``b`` holding a
   received vote from an *unexposed* member ``v``.  Such a vote can be
   rewritten freely: no honest ledger holds ``v``'s declaration, so no
   verifier can contradict the altered value.  The coalition rewrites it
   to make ``k_b = 0`` and circulates the forged certificate — an
   *undetectable* win.
4. **Fallback**: if every member is exposed (Lemma 6.1 says this happens
   w.h.p.), the coalition plays honestly — deviating further could only
   trigger a failure.

The optional ``gamble`` mode replaces the fallback with a reckless
alteration of an honest vote, betting that its sender was pulled by
nobody; it loses the bet w.h.p. and shows up in E7 as a sharply negative
utility.

What E7 measures: the attack's win probability equals the probability
that some member is unexposed — which decays as ``n^{-Theta(gamma)}``
(property 1 of Lemma 6).  At sane γ the measured gain is ~0; lowering γ
(E9 ablation) re-opens the window and the attack starts winning.
"""

from __future__ import annotations

from typing import Hashable

from repro.agents.base import DeviantAgent
from repro.agents.coalition import CoalitionState
from repro.core.certificate import Certificate, CertificatePayload, ReceivedVote
from repro.core.agent import TOPIC_CERTIFICATE
from repro.core.params import Phase, ProtocolParams
from repro.core.votes import PlannedVote, VoteIntention
from repro.gossip.actions import Action, Pull, Push
from repro.gossip.messages import Payload
from repro.gossip.node import PullResponse
from repro.util.rng import SeedTree

__all__ = ["PooledAttackAgent", "PooledState"]


class PooledState(CoalitionState):
    """Blackboard extension: forgery preparation after the Voting phase."""

    def __init__(self, params, members, tree):
        super().__init__(params, members, tree)
        self.prepared = False
        self.forged: Certificate | None = None
        self.designated: int | None = None
        self.gamble = False

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Pick a designated winner and forge, or decide to play honest.

        Called once, by whichever member reaches Find-Min first; by then
        every member's ``W`` is complete.
        """
        if self.prepared:
            return
        self.prepared = True
        m = self.params.m

        # Prefer designating a supporter of the coalition's main color.
        preferred = self.most_common_color()
        candidates = sorted(
            self.agents.values(),
            key=lambda a: (a.color != preferred, a.node_id),
        )
        for agent in candidates:
            for i, vote in enumerate(agent.received_votes):
                if vote.voter in self.members and not self.exposed(vote.voter):
                    votes = list(agent.received_votes)
                    current_k = Certificate.build(
                        votes, agent.color, agent.node_id, m
                    ).k
                    votes[i] = ReceivedVote(
                        vote.voter, vote.round_index,
                        (vote.value - current_k) % m,
                    )
                    self.forged = Certificate.build(
                        votes, agent.color, agent.node_id, m
                    )
                    self.designated = agent.node_id
                    return

        if self.gamble:
            # Reckless fallback: alter an honest vote and hope its sender
            # was pulled by nobody.  Loses w.h.p. (-> protocol failure).
            for agent in candidates:
                if agent.received_votes:
                    votes = list(agent.received_votes)
                    current_k = Certificate.build(
                        votes, agent.color, agent.node_id, m
                    ).k
                    v0 = votes[0]
                    votes[0] = ReceivedVote(
                        v0.voter, v0.round_index, (v0.value - current_k) % m
                    )
                    self.forged = Certificate.build(
                        votes, agent.color, agent.node_id, m
                    )
                    self.designated = agent.node_id
                    return
        # Otherwise: every member is exposed -> play honest (rational
        # fallback; Lemma 6.1 is what forces us here w.h.p.).


class PooledAttackAgent(DeviantAgent):
    """One member of the pooled adaptive coalition."""

    def __init__(self, node_id: int, params: ProtocolParams, color: Hashable,
                 seed_tree: SeedTree, shared: PooledState, *,
                 intra_fraction: float = 0.5):
        super().__init__(node_id, params, color, seed_tree, shared)
        self.shared: PooledState = shared
        self._rewrite_intention(intra_fraction)

    # ------------------------------------------------------------------
    def _rewrite_intention(self, intra_fraction: float) -> None:
        """Aim a slice of our votes at fellow members (round-robin).

        Values stay as originally drawn (uniform); only targets change.
        This is legal: intentions are self-chosen, and we declare the
        rewritten intention consistently to every puller.
        """
        others = sorted(self.shared.members - {self.node_id})
        if not others:
            return
        q = self.params.q
        n_intra = min(q, max(1, round(q * intra_fraction)))
        votes = list(self.intention.votes)
        # Stagger the round-robin by our label so coverage is even.
        for slot in range(n_intra):
            target = others[(slot + self.node_id) % len(others)]
            votes[slot] = PlannedVote(votes[slot].value, target)
        self.intention = VoteIntention(tuple(votes))

    # ------------------------------------------------------------------
    def begin_round(self, rnd: int) -> Action | None:
        phase, idx = self.params.phase_of(rnd)
        if phase is Phase.FIND_MIN:
            if idx == 0:
                self._ensure_certificate()
                self.shared.prepare()
            if self.shared.forged is not None:
                self.min_certificate = self.shared.forged
                return Pull(self._random_peer(), TOPIC_CERTIFICATE)
            return super().begin_round(rnd)
        if phase is Phase.COHERENCE and self.shared.forged is not None:
            payload = CertificatePayload(
                self.shared.forged, self.shared.forged.size_bits(self.params)
            )
            return Push(self._random_peer(), payload)
        return super().begin_round(rnd)

    def on_pull_reply(self, responder: int, payload: Payload, rnd: int) -> None:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.FIND_MIN and self.shared.forged is not None:
            return  # the forgery is the minimum; adopt nothing
        super().on_pull_reply(responder, payload, rnd)

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        if topic == TOPIC_CERTIFICATE and self.shared.forged is not None:
            return CertificatePayload(
                self.shared.forged, self.shared.forged.size_bits(self.params)
            )
        return super().on_pull_request(requester, topic, rnd)

    def on_push(self, sender: int, payload: Payload, rnd: int) -> None:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COHERENCE and self.shared.forged is not None:
            return  # never "fail": we know what we are doing
        super().on_push(sender, payload, rnd)

    def finalize(self) -> None:
        if self.shared.forged is not None:
            self.decision = self.shared.forged.color
            return
        super().finalize()
