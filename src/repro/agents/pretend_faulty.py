"""Pretend-faulty-in-Commitment: dodge the commitment, keep voting.

The member ignores Commitment pulls (so every honest puller marks it
faulty and expects *zero* votes from it, footnote 4) but still votes in
the Voting phase, hoping to influence ``k`` values without being
accountable to any declared intention.

Why it fails (and what E7 measures): his votes land in some agents' ``W``
sets.  If any certificate carrying such a vote wins Find-Min, every
honest agent that pulled the member rejects it (``VOTE_FROM_FAULTY``) and
the protocol fails — the member gains nothing and risks the -chi payoff.
If his votes happen to reach only certificates that lose, the deviation
changed nothing: ``k`` values remain uniform thanks to the honest votes
(Lemma 6.3).
"""

from __future__ import annotations

from repro.agents.base import DeviantAgent
from repro.core.agent import TOPIC_INTENTION
from repro.core.params import Phase
from repro.gossip.messages import NO_REPLY
from repro.gossip.node import PullResponse

__all__ = ["PretendFaultyAgent"]


class PretendFaultyAgent(DeviantAgent):
    """Silent during Commitment pulls; honest elsewhere."""

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COMMITMENT and topic == TOPIC_INTENTION:
            # No answer, hence no exposure: the puller marks us faulty
            # instead of learning our intention.
            return NO_REPLY
        return super().on_pull_request(requester, topic, rnd)
