"""Rational deviation strategies (the coalition's side of Theorem 7).

Theorem 7 quantifies over *every* restricted protocol P'_C of a coalition
C.  A simulation cannot enumerate all strategies, but the proof machinery
identifies exactly the deviation surfaces that could pay off; this package
implements the strongest concrete attack on each surface, plus a pooled
adaptive attack that combines them, and a positive control (the same
attacks demolish the unverified baseline — see ``repro.baselines``).

==========================  =================================================
Strategy                    Deviation surface / proof ingredient it probes
==========================  =================================================
:class:`SilentAgent`        Full abstention (pretend faulty everywhere);
                            tests that shrinking A never helps a color.
:class:`PretendFaulty-      Ignore Commitment pulls only (footnote 4's
Agent`                      faulty-marking) but still vote.
:class:`ForgedCertificate-  Lie about ``k`` in Find-Min: underbid with
Agent`                      altered / dropped / fabricated votes
                            (Verification's k and ledger checks).
:class:`EquivocatingAgent`  Declare different intentions to different
                            pullers (set-union ledger, Lemma 6.1).
:class:`VoteSwitchAgent`    Vote differently than declared (alteration
                            check at the winner's verifiers).
:class:`GriefingAgent`      Split-brain certificates in Coherence
                            (Lemma 6.2); pure sabotage, utility -chi.
:class:`PooledAttackAgent`  Adaptive coalition: pool exposure knowledge,
                            forge only votes no honest agent can check
                            (directly probes Lemma 6 properties 1+3).
==========================  =================================================

All strategies obey the communication model (the engine enforces it); they
only choose payloads, targets and whether to reply — the paper's feasible
local rules.
"""

from repro.agents.base import DeviantAgent
from repro.agents.coalition import CoalitionState
from repro.agents.equivocate import EquivocatingAgent
from repro.agents.griefing import GriefingAgent
from repro.agents.plans import StrategyPlan, plan
from repro.agents.pooled import PooledAttackAgent, PooledState
from repro.agents.pretend_faulty import PretendFaultyAgent
from repro.agents.silent import SilentAgent
from repro.agents.suppress import FindMinSuppressAgent
from repro.agents.underbid import ForgedCertificateAgent
from repro.agents.vote_switch import VoteSwitchAgent

__all__ = [
    "CoalitionState",
    "DeviantAgent",
    "EquivocatingAgent",
    "FindMinSuppressAgent",
    "ForgedCertificateAgent",
    "GriefingAgent",
    "PooledAttackAgent",
    "PooledState",
    "PretendFaultyAgent",
    "SilentAgent",
    "StrategyPlan",
    "VoteSwitchAgent",
    "plan",
]
