"""Declarative effect specs: what a strategy *does* to a run's tensors.

Every strategy in :mod:`repro.agents` is implemented twice:

* as a :class:`~repro.agents.base.DeviantAgent` subclass driving the
  message-level agent engine (tier 1), and
* as a set of *vectorised effects* on the batched trial tensors of the
  strategy fastpath (:mod:`repro.fastpath.strategies`, tier 3).

The :class:`EffectSpec` is the shared contract between the two: a purely
declarative record of which protocol obligations the coalition honours
(answering Commitment pulls, casting the declared votes, serving
Find-Min, pushing in Coherence) and which forgery it attempts.  The
strategy registry in :mod:`repro.agents.plans` binds one spec to each
agent class, so both tiers are compiled from one source of truth and the
cross-tier conformance matrix (``tests/test_strategy_conformance.py``)
can hold them to the same verdicts.

The spec describes *intent*; the detection machinery (which verifier
fails, Lemma 6's exposure event for the pooled attack) is derived from
the sampled pull/vote tensors by the strategy fastpath and from the
actual message flow by the agent engine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EffectSpec", "EFFECT_SPECS"]


@dataclass(frozen=True)
class EffectSpec:
    """How coalition members deviate, phase by phase.

    Commitment
    ----------
    ``pulls_commitment``
        Member initiates its own Commitment pulls (accounting + ledger
        building; a member's ledger never matters for the outcome).
    ``answers_commitment``
        ``False`` makes every puller mark the member faulty (footnote 4)
        and expect zero votes from it.
    ``equivocates``
        Answer pulls with two alternating intention versions (A first);
        votes follow version A.

    Voting
    ------
    ``casts_votes``
        ``False`` drops all of the member's vote pushes.
    ``fresh_vote_values`` / ``fresh_vote_targets``
        Push freshly drawn values / targets instead of the declared ones
        (the vote-switch family).
    ``intra_fraction``
        Fraction of the member's votes re-aimed at fellow members
        round-robin (the pooled attack's pre-coordination); targets are
        rewritten *and declared consistently*.

    Find-Min / forgery
    ------------------
    ``forge``
        ``None`` for honest certificates, or one of the underbid modes
        (``alter`` / ``drop_all`` / ``fabricate`` / ``klie``) applied by
        every member to its own certificate, or ``pooled`` for the
        adaptive exposure-gated coalition forgery (Lemma 6).
    ``pooled_gamble``
        Pooled fallback: when every member is exposed, recklessly alter
        an honest vote instead of playing honest.
    ``serves_findmin``
        ``False``: certificate pulls aimed at the member time out.
    ``pulls_findmin``
        ``False``: the member initiates no Find-Min pulls (its own
        adoption never affects honest agents either way; forgers pull
        but never adopt).

    Coherence
    ---------
    ``coherence_push``
        ``"honest"`` — push the member's current minimum (which is the
        forged certificate when one exists); ``"none"`` — stay silent;
        ``"bogus"`` — push a fresh empty k=0 certificate (griefing).
    """

    name: str
    # Commitment
    pulls_commitment: bool = True
    answers_commitment: bool = True
    equivocates: bool = False
    # Voting
    casts_votes: bool = True
    fresh_vote_values: bool = False
    fresh_vote_targets: bool = False
    intra_fraction: float = 0.0
    # Find-Min
    forge: str | None = None
    pooled_gamble: bool = False
    serves_findmin: bool = True
    pulls_findmin: bool = True
    # Coherence
    coherence_push: str = "honest"

    def __post_init__(self) -> None:
        if self.coherence_push not in ("honest", "none", "bogus"):
            raise ValueError(
                f"unknown coherence_push {self.coherence_push!r}"
            )
        known_forge = (None, "alter", "drop_all", "fabricate", "klie",
                       "pooled")
        if self.forge not in known_forge:
            raise ValueError(f"unknown forge mode {self.forge!r}")
        if not 0.0 <= self.intra_fraction <= 1.0:
            raise ValueError("intra_fraction must lie in [0, 1]")


#: One spec per registered strategy name (the registry in
#: :mod:`repro.agents.plans` attaches these to the plans it builds).
EFFECT_SPECS: dict[str, EffectSpec] = {
    "honest_shadow": EffectSpec(name="honest_shadow"),
    "silent": EffectSpec(
        name="silent",
        pulls_commitment=False, answers_commitment=False,
        casts_votes=False, serves_findmin=False, pulls_findmin=False,
        coherence_push="none",
    ),
    "pretend_faulty": EffectSpec(
        name="pretend_faulty", answers_commitment=False,
    ),
    "underbid_alter": EffectSpec(name="underbid_alter", forge="alter"),
    "underbid_drop": EffectSpec(name="underbid_drop", forge="drop_all"),
    "underbid_fabricate": EffectSpec(
        name="underbid_fabricate", forge="fabricate",
    ),
    "underbid_klie": EffectSpec(name="underbid_klie", forge="klie"),
    "equivocate": EffectSpec(name="equivocate", equivocates=True),
    "vote_switch": EffectSpec(name="vote_switch", fresh_vote_values=True),
    "vote_switch_targets": EffectSpec(
        name="vote_switch_targets",
        fresh_vote_values=True, fresh_vote_targets=True,
    ),
    "griefing": EffectSpec(name="griefing", coherence_push="bogus"),
    "findmin_suppress": EffectSpec(
        name="findmin_suppress",
        serves_findmin=False, pulls_findmin=False, coherence_push="none",
    ),
    "pooled": EffectSpec(name="pooled", forge="pooled", intra_fraction=0.5),
    "pooled_gamble": EffectSpec(
        name="pooled_gamble", forge="pooled", intra_fraction=0.5,
        pooled_gamble=True,
    ),
}
