"""Base class for deviating agents.

A :class:`DeviantAgent` is an :class:`~repro.core.agent.HonestAgent` with
access to the coalition blackboard.  By default it behaves exactly like an
honest agent (a coalition that does nothing is a valid deviation and must
gain nothing); concrete strategies override the phase hooks they attack.

The base class contributes the one observation every strategy wants:
whenever a *non-member* pulls our intention during Commitment, the member
is recorded as *exposed* on the blackboard.
"""

from __future__ import annotations

from typing import Hashable

from repro.agents.coalition import CoalitionState
from repro.core.agent import TOPIC_INTENTION, HonestAgent
from repro.core.certificate import Certificate, ReceivedVote
from repro.core.params import Phase, ProtocolParams
from repro.gossip.node import PullResponse
from repro.util.rng import SeedTree

__all__ = ["DeviantAgent"]


class DeviantAgent(HonestAgent):
    """Honest behaviour plus coalition coordination hooks."""

    def __init__(self, node_id: int, params: ProtocolParams, color: Hashable,
                 seed_tree: SeedTree, shared: CoalitionState):
        super().__init__(node_id, params, color, seed_tree)
        self.shared = shared
        shared.register(self)

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COMMITMENT and topic == TOPIC_INTENTION:
            self.shared.record_commitment_pull(self.node_id, requester)
        return super().on_pull_request(requester, topic, rnd)

    # -- forgery helpers shared by several strategies -----------------------
    def forge_certificate_with_k(self, target_k: int) -> Certificate:
        """Our own certificate with one vote value rewritten so ``k``
        equals ``target_k`` while staying self-consistent.

        If we received no votes, fabricate a single vote claiming an
        arbitrary non-member sender (the substrate prevents forging
        sender labels *on the wire*, but nothing stops an agent from
        *claiming* receipt inside a certificate — that claim is exactly
        what Verification cross-checks).
        """
        m = self.params.m
        votes = list(self.received_votes)
        if votes:
            old = votes[0]
            delta = (target_k - Certificate.build(
                votes, self.color, self.node_id, m).k) % m
            votes[0] = ReceivedVote(old.voter, old.round_index,
                                    (old.value + delta) % m)
        else:
            fake_voter = 0 if self.node_id != 0 else 1
            votes = [ReceivedVote(fake_voter, 0, target_k % m)]
        return Certificate.build(votes, self.color, self.node_id, m)

    def certificate_dropping_all_votes(self) -> Certificate:
        """Our certificate pretending ``W`` was empty (k = 0)."""
        return Certificate.build([], self.color, self.node_id, self.params.m)
