"""Griefing: sabotage the Coherence phase with split-brain certificates.

The member behaves honestly until Coherence, then pushes a *bogus*
certificate (different from the network's minimum) to random peers.
Every honest receiver observes a certificate different from its own
``CE_min`` and makes the protocol fail.

This deviation is *effective at causing failure* — and that is the point:
the utility model makes failure the worst outcome (``util(⊥) = -chi``),
so griefing is strictly unprofitable for any chi > 0 and never profitable
even at chi = 0.  The equilibrium claim is not that deviations cannot hurt
the system, only that they cannot *pay*; E7 shows the griefer's measured
utility drops from N(A, c)/|A| to ~ -chi.
"""

from __future__ import annotations

from repro.agents.base import DeviantAgent
from repro.core.certificate import Certificate
from repro.core.params import Phase
from repro.gossip.actions import Action, Push

__all__ = ["GriefingAgent"]


class GriefingAgent(DeviantAgent):
    """Honest until Coherence; then broadcasts a conflicting certificate."""

    def begin_round(self, rnd: int) -> Action | None:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COHERENCE:
            bogus = Certificate.build(
                [], self.color, self.node_id, self.params.m
            )
            return Push(self._random_peer(), self._certificate_payload(bogus))
        return super().begin_round(rnd)

    def on_push(self, sender, payload, rnd):
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COHERENCE:
            return  # the griefer does not care about coherence itself
        super().on_push(sender, payload, rnd)
