"""Full abstention: the coalition pretends to be faulty.

The paper explicitly worries about this class of deviation: "a rational
active agent can pretend to be a faulty node in some rounds, and hence the
protocol must be robust also against this kind of (potentially
profitable) deviations."

A silent coalition shrinks the effective agent set from A to A\\C, so the
winning distribution becomes proportional to support within A\\C.  Simple
algebra (DESIGN.md / test_strategies.py) shows this never increases any
member's winning probability unless *every* active agent supports the
member's color already — abstention is weakly dominated, and the
experiment (E7) confirms the measured gain is <= 0.
"""

from __future__ import annotations

from repro.agents.base import DeviantAgent
from repro.gossip.actions import Action
from repro.gossip.messages import NO_REPLY
from repro.gossip.node import PullResponse

__all__ = ["SilentAgent"]


class SilentAgent(DeviantAgent):
    """Never acts, never replies — indistinguishable from a crashed node."""

    def begin_round(self, rnd: int) -> Action | None:
        return None

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        return NO_REPLY

    def finalize(self) -> None:
        # Silent agents never decide; they free-ride on the outcome.
        self.decision = None
