"""The synchronous GOSSIP round engine.

One :meth:`GossipEngine.run_round` executes a synchronous round:

1. **Action collection** — every node (in label order) chooses at most
   one active operation via ``begin_round``.
2. **Pull service** — every pull request is presented to its target and
   all replies are *collected before any delivery*.  Replies therefore
   reflect state from before this round's incoming traffic, matching the
   synchronous model (information travels one hop per round).
3. **Delivery** — pushes are delivered (``on_push``), then pull replies
   (``on_pull_reply``) and timeouts (``on_pull_timeout``).

The engine enforces the model even against deviating agents:

* one active operation per round (structural: one ``Action`` per node),
* targets must be real, distinct nodes (no self-gossip, no invented
  labels) — a violating action raises :class:`ProtocolViolation`,
* sender labels are attached by the engine, never taken from payloads, so
  labels cannot be forged (the paper's secure-channel assumption),
* faulty nodes are quiescent; pulls aimed at them time out.

Determinism: given nodes whose own randomness is seeded, a round is a pure
function of state — all iteration is in sorted label order.
"""

from __future__ import annotations

from typing import Mapping

from repro.gossip.actions import Action, Idle, Pull, Push
from repro.gossip.messages import NO_REPLY, Payload
from repro.gossip.metrics import MessageMetrics
from repro.gossip.node import Node
from repro.gossip.trace import EventTrace
from repro.util.bits import label_bits

__all__ = ["GossipEngine", "ProtocolViolation"]


class ProtocolViolation(RuntimeError):
    """An agent attempted something outside the communication model."""


class GossipEngine:
    """Synchronous scheduler for a set of nodes with secure channels.

    Parameters
    ----------
    nodes:
        Mapping of label -> node.  Labels are the paper's ``[n]``
        (0-based here).
    metrics:
        Optional accounting sink; a fresh one is created if omitted.
    trace:
        Optional :class:`EventTrace` recording every delivery.
    """

    def __init__(
        self,
        nodes: Mapping[int, Node],
        *,
        metrics: MessageMetrics | None = None,
        trace: EventTrace | None = None,
    ):
        self.nodes: dict[int, Node] = dict(sorted(nodes.items()))
        if not self.nodes:
            raise ValueError("engine needs at least one node")
        for label, node in self.nodes.items():
            if node.node_id != label:
                raise ValueError(
                    f"node registered under label {label} reports id {node.node_id}"
                )
        self.n = len(self.nodes)
        self.metrics = metrics if metrics is not None else MessageMetrics()
        self.metrics.header_bits = 2 * label_bits(self.n)
        self.trace = trace
        self.round = 0

    # ------------------------------------------------------------------
    def _validate_target(self, nid: int, target: int) -> None:
        if target == nid:
            raise ProtocolViolation(f"node {nid} attempted to gossip with itself")
        if target not in self.nodes:
            raise ProtocolViolation(f"node {nid} targeted unknown label {target}")

    def run_round(self) -> None:
        """Execute one synchronous round."""
        rnd = self.round
        self.metrics.start_round()

        # Phase 1: collect one action per node, in label order.
        pushes: list[tuple[int, Push]] = []
        pulls: list[tuple[int, Pull]] = []
        for nid, node in self.nodes.items():
            action = node.begin_round(rnd)
            if action is None or isinstance(action, Idle):
                continue
            if isinstance(action, Push):
                self._validate_target(nid, action.target)
                pushes.append((nid, action))
            elif isinstance(action, Pull):
                self._validate_target(nid, action.target)
                pulls.append((nid, action))
            else:
                raise ProtocolViolation(
                    f"node {nid} returned invalid action {action!r}"
                )

        # Phase 2: service every pull before delivering anything.
        replies: list[tuple[int, int, object]] = []  # (requester, target, reply)
        for nid, pull in pulls:
            self.metrics.record_pull_request()
            if self.trace is not None:
                self.trace.record(rnd, "pull_request", nid, pull.target, pull.topic)
            target_node = self.nodes[pull.target]
            reply = target_node.on_pull_request(nid, pull.topic, rnd)
            replies.append((nid, pull.target, reply))

        # Phase 3a: deliver pushes (in sender-label order).
        for nid, push in pushes:
            self.metrics.record_push(push.payload.size_bits())
            if self.trace is not None:
                self.trace.record(rnd, "push", nid, push.target, push.payload)
            self.nodes[push.target].on_push(nid, push.payload, rnd)

        # Phase 3b: deliver pull replies / timeouts.
        for requester, target, reply in replies:
            if reply is NO_REPLY or reply is None:
                if self.trace is not None:
                    self.trace.record(rnd, "pull_timeout", target, requester)
                self.nodes[requester].on_pull_timeout(target, rnd)
            else:
                payload: Payload = reply  # type: ignore[assignment]
                self.metrics.record_pull_reply(payload.size_bits())
                if self.trace is not None:
                    self.trace.record(rnd, "pull_reply", target, requester, payload)
                self.nodes[requester].on_pull_reply(target, payload, rnd)

        self.round += 1

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` consecutive rounds."""
        for _ in range(rounds):
            self.run_round()

    def finalize(self) -> None:
        """Tell every node the protocol is over."""
        for node in self.nodes.values():
            node.finalize()
