"""Classic gossip primitives built on the substrate.

The paper's Find-Min phase "performs this task using pull operations as in
the standard GOSSIP broadcast protocol [Shah 2009], taking O(log n)
rounds".  This module implements those textbook primitives as standalone,
reusable mini-protocols:

* :class:`PushRumorNode` — informed nodes push the rumor to a random peer
  (push rumor spreading; completes in ``log2 n + O(log n)`` rounds w.h.p.);
* :class:`PullBroadcastNode` — every node pulls a random peer each round
  and becomes informed when it hits an informed one (pull broadcast; the
  mechanism Find-Min uses);
* :class:`MinAggregationNode` — pull-based aggregation of the minimum of
  per-node comparable values; Find-Min is exactly this primitive applied
  to certificates.

They double as integration tests for the engine (their known convergence
behaviour is asserted in ``tests/test_primitives.py``) and as public API
for users who want the substrate without the consensus protocol.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.gossip.actions import Action, Pull, Push
from repro.gossip.engine import GossipEngine
from repro.gossip.messages import NO_REPLY, Blob, Payload
from repro.gossip.node import FaultyNode, Node, PullResponse
from repro.util.rng import SeedTree

__all__ = [
    "PushRumorNode",
    "PullBroadcastNode",
    "MinAggregationNode",
    "run_push_rumor",
    "run_pull_broadcast",
    "run_min_aggregation",
    "rounds_until_spread",
]

_RUMOR_TOPIC = "rumor"
_MIN_TOPIC = "min"


def _uniform_peer(rng: np.random.Generator, n: int, self_id: int) -> int:
    """A peer chosen u.a.r. among the other ``n - 1`` labels."""
    peer = int(rng.integers(n - 1))
    return peer + 1 if peer >= self_id else peer


class PushRumorNode(Node):
    """Push rumor spreading: informed nodes push a fixed blob each round."""

    def __init__(self, node_id: int, n: int, rng: np.random.Generator, *,
                 informed: bool = False, rumor_bits: int = 1):
        super().__init__(node_id)
        self.n = n
        self.rng = rng
        self.informed = informed
        self.rumor = Blob(rumor_bits, data="rumor")

    def begin_round(self, rnd: int) -> Action | None:
        if not self.informed:
            return None
        return Push(_uniform_peer(self.rng, self.n, self.node_id), self.rumor)

    def on_push(self, sender: int, payload: Payload, rnd: int) -> None:
        self.informed = True


class PullBroadcastNode(Node):
    """Pull broadcast: uninformed nodes pull a random peer each round."""

    def __init__(self, node_id: int, n: int, rng: np.random.Generator, *,
                 informed: bool = False, rumor_bits: int = 1):
        super().__init__(node_id)
        self.n = n
        self.rng = rng
        self.informed = informed
        self.rumor = Blob(rumor_bits, data="rumor")

    def begin_round(self, rnd: int) -> Action | None:
        if self.informed:
            return None
        return Pull(_uniform_peer(self.rng, self.n, self.node_id), _RUMOR_TOPIC)

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        if topic == _RUMOR_TOPIC and self.informed:
            return self.rumor
        return NO_REPLY

    def on_pull_reply(self, responder: int, payload: Payload, rnd: int) -> None:
        self.informed = True


class MinAggregationNode(Node):
    """Pull-based min aggregation over comparable per-node values.

    Every round each node pulls a random peer's current minimum and keeps
    the smaller of the two.  On the complete graph this converges to the
    global minimum in Theta(log n) rounds w.h.p. — the paper's Find-Min
    phase is this primitive applied to certificates keyed by ``k``.
    """

    def __init__(self, node_id: int, n: int, rng: np.random.Generator,
                 value: object, *, value_bits: int = 32):
        super().__init__(node_id)
        self.n = n
        self.rng = rng
        self.current = value
        self.value_bits = value_bits

    def begin_round(self, rnd: int) -> Action | None:
        return Pull(_uniform_peer(self.rng, self.n, self.node_id), _MIN_TOPIC)

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        if topic == _MIN_TOPIC:
            return Blob(self.value_bits, data=self.current)
        return NO_REPLY

    def on_pull_reply(self, responder: int, payload: Payload, rnd: int) -> None:
        other = payload.data  # type: ignore[attr-defined]
        if other < self.current:  # type: ignore[operator]
            self.current = other


# ---------------------------------------------------------------------------
# Convenience drivers
# ---------------------------------------------------------------------------

def _build_and_run(
    factory: Callable[[int, SeedTree], Node],
    n: int,
    seed: int,
    rounds: int,
    faulty: frozenset[int] = frozenset(),
) -> dict[int, Node]:
    tree = SeedTree(seed)
    nodes: dict[int, Node] = {}
    for i in range(n):
        if i in faulty:
            nodes[i] = FaultyNode(i)
        else:
            nodes[i] = factory(i, tree.child("node", i))
    engine = GossipEngine(nodes)
    engine.run(rounds)
    return nodes


def run_push_rumor(n: int, rounds: int, seed: int = 0, source: int = 0,
                   faulty: frozenset[int] = frozenset()) -> list[bool]:
    """Run push rumor spreading; return per-node informed flags."""
    nodes = _build_and_run(
        lambda i, t: PushRumorNode(i, n, t.generator(), informed=(i == source)),
        n, seed, rounds, faulty,
    )
    return [getattr(nd, "informed", False) for nd in nodes.values()]


def run_pull_broadcast(n: int, rounds: int, seed: int = 0, source: int = 0,
                       faulty: frozenset[int] = frozenset()) -> list[bool]:
    """Run pull broadcast; return per-node informed flags."""
    nodes = _build_and_run(
        lambda i, t: PullBroadcastNode(i, n, t.generator(), informed=(i == source)),
        n, seed, rounds, faulty,
    )
    return [getattr(nd, "informed", False) for nd in nodes.values()]


def run_min_aggregation(values: Sequence[object], rounds: int, seed: int = 0,
                        faulty: frozenset[int] = frozenset()) -> list[object]:
    """Run min aggregation over ``values``; return per-node current minima."""
    n = len(values)
    nodes = _build_and_run(
        lambda i, t: MinAggregationNode(i, n, t.generator(), values[i]),
        n, seed, rounds, faulty,
    )
    return [getattr(nd, "current", None) for nd in nodes.values()]


def rounds_until_spread(n: int, seed: int = 0, *, mechanism: str = "pull",
                        max_rounds: int | None = None,
                        faulty: frozenset[int] = frozenset()) -> int:
    """Rounds until a rumor from node 0 reaches every non-faulty node.

    Returns ``max_rounds`` if the cap is hit first (the cap defaults to
    ``8 * ceil(log2 n) + 16``, far above the w.h.p. bound).
    """
    if max_rounds is None:
        max_rounds = 8 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 16
    tree = SeedTree(seed)
    nodes: dict[int, Node] = {}
    cls = PullBroadcastNode if mechanism == "pull" else PushRumorNode
    if mechanism not in ("pull", "push"):
        raise ValueError(f"unknown mechanism {mechanism!r}")
    for i in range(n):
        if i in faulty and i != 0:
            nodes[i] = FaultyNode(i)
        else:
            nodes[i] = cls(i, n, tree.child("node", i).generator(),
                           informed=(i == 0))
    engine = GossipEngine(nodes)
    for rnd in range(max_rounds):
        if all(getattr(nd, "informed", True) for nd in nodes.values()
               if not isinstance(nd, FaultyNode)):
            return rnd
        engine.run_round()
    return max_rounds
