"""Optional event tracing for debugging and white-box tests.

A trace records every message the engine delivers.  It is off by default
(tracing every exchange of a large run is expensive); tests switch it on
to assert fine-grained model properties, e.g. that sender labels are
always genuine and that no node ever initiates two operations in a round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["EventTrace", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message or observed timeout."""

    rnd: int
    kind: str  # "push" | "pull_request" | "pull_reply" | "pull_timeout"
    src: int
    dst: int
    detail: object = None


@dataclass
class EventTrace:
    """Append-only in-memory trace."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, rnd: int, kind: str, src: int, dst: int, detail: object = None) -> None:
        self.events.append(TraceEvent(rnd, kind, src, dst, detail))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def in_round(self, rnd: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rnd == rnd]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
