"""The synchronous GOSSIP communication substrate.

This package implements the communication model of the paper from scratch:

* a complete network of ``n`` labelled nodes with **secure channels** —
  during any exchange both endpoints learn the true label of the peer and
  nobody (not even a deviating agent) can forge a sender label, because
  the engine attaches labels itself;
* a **synchronous round scheduler** in which every node performs at most
  one *active* operation per round — a push (send one message to one
  chosen peer) or a pull (ask one chosen peer for data and receive one
  reply).  Nodes may passively *receive* any number of messages per round;
* **quiescent permanent faults**: a faulty node never acts and never
  replies, so a puller contacting it observes a timeout;
* full **message and bit accounting** (the paper's complexity claims are
  about message counts and sizes).

The substrate knows nothing about consensus: protocols are built on top by
implementing :class:`~repro.gossip.node.Node`.
"""

from repro.gossip.actions import Action, Idle, Pull, Push
from repro.gossip.engine import GossipEngine, ProtocolViolation
from repro.gossip.messages import NO_REPLY, Blob, Payload
from repro.gossip.metrics import MessageMetrics
from repro.gossip.node import FaultyNode, Node
from repro.gossip.trace import EventTrace

__all__ = [
    "Action",
    "Blob",
    "EventTrace",
    "FaultyNode",
    "GossipEngine",
    "Idle",
    "MessageMetrics",
    "NO_REPLY",
    "Node",
    "Payload",
    "ProtocolViolation",
    "Pull",
    "Push",
]
