"""Per-round actions available to a node.

In the GOSSIP model every node performs at most one active operation per
round.  The engine enforces this structurally: ``Node.begin_round`` returns
a single :class:`Action` (or ``None``/:class:`Idle` to stay passive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.gossip.messages import Payload

__all__ = ["Push", "Pull", "Idle", "Action"]


@dataclass(frozen=True)
class Push:
    """Actively send ``payload`` to node ``target`` this round."""

    target: int
    payload: Payload


@dataclass(frozen=True)
class Pull:
    """Ask node ``target`` for the data identified by ``topic``.

    The target's :meth:`~repro.gossip.node.Node.on_pull_request` produces
    the reply; a missing reply surfaces as
    :meth:`~repro.gossip.node.Node.on_pull_timeout` at the requester.
    """

    target: int
    topic: str


@dataclass(frozen=True)
class Idle:
    """Explicitly do nothing this round (same as returning ``None``)."""


Action = Union[Push, Pull, Idle]
