"""Payload protocol and generic payloads.

Payloads are ordinary Python objects that know their size in bits
(:meth:`Payload.size_bits`).  The engine never serialises anything — the
simulation exchanges object references — but all complexity accounting
uses the declared bit sizes, which follow the paper's encoding model (see
``repro.util.bits``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["Payload", "Blob", "NO_REPLY", "NoReplyType"]


@runtime_checkable
class Payload(Protocol):
    """Anything with a declared encoded size in bits."""

    def size_bits(self) -> int:  # pragma: no cover - protocol definition
        ...


@dataclass(frozen=True)
class Blob:
    """An opaque payload of a declared size; useful for tests/primitives."""

    bits: int
    data: object = None

    def size_bits(self) -> int:
        return self.bits


class NoReplyType:
    """Sentinel: the pulled node does not answer (faulty or deviating)."""

    _instance: "NoReplyType | None" = None

    def __new__(cls) -> "NoReplyType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NO_REPLY"


NO_REPLY = NoReplyType()
