"""Node interface for protocols running on the GOSSIP engine.

A protocol is a set of :class:`Node` implementations.  Honest, faulty and
deviating agents all share this interface, which encodes exactly the
feasible local rules of the paper's model:

* a node chooses at most one active operation per round
  (:meth:`begin_round`),
* it may react to any number of incoming messages
  (:meth:`on_push`, :meth:`on_pull_reply`, :meth:`on_pull_timeout`),
* it may answer pull requests addressed to it (:meth:`on_pull_request`) —
  answering is passive and does not consume the active operation,
* it can never observe another node's private state, and sender labels on
  everything it receives are attached by the engine (secure channels).
"""

from __future__ import annotations

from abc import ABC
from typing import Union

from repro.gossip.actions import Action
from repro.gossip.messages import NO_REPLY, NoReplyType, Payload

__all__ = ["Node", "FaultyNode", "PullResponse"]

PullResponse = Union[Payload, NoReplyType]


class Node(ABC):
    """Base class for all agents living on the gossip substrate."""

    def __init__(self, node_id: int):
        self.node_id = int(node_id)

    # -- active behaviour --------------------------------------------------
    def begin_round(self, rnd: int) -> Action | None:
        """Choose this round's single active operation (or ``None``)."""
        return None

    # -- passive behaviour -------------------------------------------------
    def on_push(self, sender: int, payload: Payload, rnd: int) -> None:
        """A peer pushed ``payload`` to us; ``sender`` is authenticated."""

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        """A peer asked us for ``topic``.

        Return a payload to answer, or :data:`NO_REPLY` to stay silent
        (the requester then observes a timeout).  Replies are computed
        from the state at the start of the exchange phase: the engine
        gathers every reply before delivering any, so information cannot
        hop through two nodes within one round.
        """
        return NO_REPLY

    def on_pull_reply(self, responder: int, payload: Payload, rnd: int) -> None:
        """Our pull of this round was answered by ``responder``."""

    def on_pull_timeout(self, target: int, rnd: int) -> None:
        """Our pull of this round got no answer from ``target``."""

    # -- lifecycle ----------------------------------------------------------
    def finalize(self) -> None:
        """Called once after the last round; compute the final state."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.node_id})"


class FaultyNode(Node):
    """A permanently faulty (quiescent) node.

    Chosen by the worst-case adversary *before* round 0 (the paper's
    permanent-fault model): it never acts, never replies, never decides.
    """

    def begin_round(self, rnd: int) -> Action | None:
        return None

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        return NO_REPLY
