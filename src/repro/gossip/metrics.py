"""Message and bit accounting.

The paper's headline complexity claims are about communication:
``O(n log n)`` active operations overall, messages of ``O(log^2 n)`` bits,
``O(n log^3 n)`` total communication — versus ``Omega(n^2)`` messages for
the prior LOCAL-model protocols.  Every exchange that crosses the engine
is recorded here.

Counting conventions (documented so the benchmarks are interpretable):

* a **push** counts as one message of ``header + payload`` bits;
* a **pull** counts as one request message (``header + topic`` bits) plus,
  if answered, one reply message (``header + payload`` bits);
* the header is two labels (source and destination), i.e.
  ``2 * ceil(log2 n)`` bits — the secure-channel addressing cost;
* ``max_message_bits`` tracks the largest single message, the quantity
  bounded by ``O(log^2 n)`` in Theorem 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MessageMetrics"]

_TOPIC_BITS = 2  # protocols here use at most four distinct pull topics


@dataclass
class MessageMetrics:
    """Mutable counters filled in by the engine while a protocol runs."""

    header_bits: int = 0
    pushes: int = 0
    pull_requests: int = 0
    pull_replies: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    rounds: int = 0
    per_round_messages: list[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """All messages that crossed the network."""
        return self.pushes + self.pull_requests + self.pull_replies

    @property
    def active_operations(self) -> int:
        """Active operations initiated by nodes (pushes + pulls)."""
        return self.pushes + self.pull_requests

    # -- recording hooks (called by the engine) -----------------------------
    def start_round(self) -> None:
        self.rounds += 1
        self.per_round_messages.append(0)

    def _record(self, bits: int) -> None:
        self.total_bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits
        if self.per_round_messages:
            self.per_round_messages[-1] += 1

    def record_push(self, payload_bits: int) -> None:
        self.pushes += 1
        self._record(self.header_bits + payload_bits)

    def record_pull_request(self) -> None:
        self.pull_requests += 1
        self._record(self.header_bits + _TOPIC_BITS)

    def record_pull_reply(self, payload_bits: int) -> None:
        self.pull_replies += 1
        self._record(self.header_bits + payload_bits)

    def merge(self, other: "MessageMetrics") -> None:
        """Accumulate another run's counters into this one."""
        self.pushes += other.pushes
        self.pull_requests += other.pull_requests
        self.pull_replies += other.pull_replies
        self.total_bits += other.total_bits
        self.max_message_bits = max(self.max_message_bits, other.max_message_bits)
        self.rounds += other.rounds
        self.per_round_messages.extend(other.per_round_messages)
