"""repro — Rational Fair Consensus in the GOSSIP model.

A from-scratch reproduction of Clementi, Gualà, Proietti, Scornavacca,
*Rational Fair Consensus in the GOSSIP Model* (IPDPS 2017,
arXiv:1705.09566): the GOSSIP substrate, Protocol P, a library of
rational deviation strategies, prior-work baselines, and the experiment
harness regenerating every claim of the paper.

Quickstart::

    from repro import ProtocolConfig, run_protocol

    colors = ["red"] * 60 + ["blue"] * 40
    result = run_protocol(ProtocolConfig(colors=colors, seed=7))
    print(result.outcome, result.metrics.total_messages)

See ``examples/`` and README.md for more.
"""

from repro.core import (
    Certificate,
    Defenses,
    DeviationPlan,
    FULL_DEFENSES,
    FailReason,
    GoodExecutionReport,
    NO_DEFENSES,
    Phase,
    ProtocolConfig,
    ProtocolParams,
    RunResult,
    run_protocol,
)
from repro.gossip import GossipEngine, MessageMetrics, Node
from repro.util import SeedTree, Table

__version__ = "1.0.0"

__all__ = [
    "Certificate",
    "Defenses",
    "DeviationPlan",
    "FULL_DEFENSES",
    "FailReason",
    "GoodExecutionReport",
    "GossipEngine",
    "MessageMetrics",
    "NO_DEFENSES",
    "Node",
    "Phase",
    "ProtocolConfig",
    "ProtocolParams",
    "RunResult",
    "SeedTree",
    "Table",
    "run_protocol",
    "__version__",
]
