"""repro — Rational Fair Consensus in the GOSSIP model.

A from-scratch reproduction of Clementi, Gualà, Proietti, Scornavacca,
*Rational Fair Consensus in the GOSSIP Model* (IPDPS 2017,
arXiv:1705.09566): the GOSSIP substrate, Protocol P, a library of
rational deviation strategies, prior-work baselines, and the experiment
harness regenerating every claim of the paper.

Quickstart::

    from repro import ProtocolConfig, run_protocol

    colors = ["red"] * 60 + ["blue"] * 40
    result = run_protocol(ProtocolConfig(colors=colors, seed=7))
    print(result.outcome, result.metrics.total_messages)

See ``examples/`` and README.md for more.
"""

__version__ = "1.6.0"

from repro.core import (
    Certificate,
    Defenses,
    DeviationPlan,
    FULL_DEFENSES,
    FailReason,
    GoodExecutionReport,
    NO_DEFENSES,
    Phase,
    ProtocolConfig,
    ProtocolParams,
    RunResult,
    run_protocol,
)
from repro.exec import ExecutionPlan, run_plan
from repro.experiments.registry import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    iter_experiments,
    run_experiment,
)
from repro.gossip import GossipEngine, MessageMetrics, Node
from repro.results import (
    ExperimentResult,
    ResultMeta,
    ResultSection,
    load_result,
    result_key,
    save_result,
)
from repro.study import Study, StudyCell, StudyResult
from repro.util import SeedTree, Table

__all__ = [
    "Certificate",
    "Defenses",
    "DeviationPlan",
    "ExecutionPlan",
    "ExperimentResult",
    "ExperimentSpec",
    "FULL_DEFENSES",
    "FailReason",
    "GoodExecutionReport",
    "GossipEngine",
    "MessageMetrics",
    "NO_DEFENSES",
    "Node",
    "Phase",
    "ProtocolConfig",
    "ProtocolParams",
    "ResultMeta",
    "ResultSection",
    "RunResult",
    "SeedTree",
    "Study",
    "StudyCell",
    "StudyResult",
    "Table",
    "experiment_names",
    "get_experiment",
    "iter_experiments",
    "load_result",
    "result_key",
    "run_experiment",
    "run_plan",
    "run_protocol",
    "save_result",
    "__version__",
]
