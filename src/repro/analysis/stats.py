"""Small statistics helpers (confidence intervals, summaries).

``mean_ci`` accepts plain sequences and NumPy arrays alike, so batched
experiment code can hand :class:`repro.fastpath.FastBatchResult` columns
straight in without materialising Python lists.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["wilson_interval", "mean_ci"]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Behaves sensibly at the boundaries (0 or all successes), unlike the
    normal approximation — important because most of our measured event
    probabilities sit near 0 or 1 (w.h.p. claims).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denom = 1 + z ** 2 / trials
    centre = (p + z ** 2 / (2 * trials)) / denom
    half = (
        z * math.sqrt(p * (1 - p) / trials + z ** 2 / (4 * trials ** 2)) / denom
    )
    lo = max(0.0, centre - half)
    hi = min(1.0, centre + half)
    # Guard against float round-off at the boundaries: the interval must
    # always contain the maximum-likelihood estimate p.
    if successes == trials:
        hi = 1.0
    if successes == 0:
        lo = 0.0
    return (min(lo, p), max(hi, p))


def mean_ci(
    values: Sequence[float] | np.ndarray, z: float = 1.96
) -> tuple[float, float]:
    """(mean, half-width of the normal CI) of a sample."""
    arr = np.asarray(values, dtype=np.float64)
    k = arr.size
    if k == 0:
        raise ValueError("empty sample")
    mean = float(arr.mean())
    if k == 1:
        return mean, float("inf")
    var = float(arr.var(ddof=1))
    return mean, z * math.sqrt(var / k)
