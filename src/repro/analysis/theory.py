"""Closed-form predictions from the paper's analysis, testable in code.

The proofs of Lemma 3 / Lemma 6 rest on a handful of elementary
quantities.  This module computes them exactly (or to first order) so
tests and experiments can compare *measured* behaviour against the
*predicted* one — a stronger reproduction statement than "the curve
looks logarithmic":

* :func:`expected_votes_per_agent` — mean of the ``X_v`` variables in
  Lemma 3.1;
* :func:`k_collision_probability` — the birthday bound behind
  Lemma 3.2's "all ``k_u`` distinct w.h.p." (``m = n³`` makes it
  ``~1/(2n)``);
* :func:`exposure_miss_probability` — the probability that a fixed
  agent receives **no** Commitment pull from a set of honest pullers
  (the quantity driving Lemma 6.1, and the pooled attack's only
  window);
* :func:`findmin_expected_rounds` — deterministic mean-field recurrence
  for pull-broadcast completion on the complete graph with faults (the
  engine behind Lemma 3.3's Θ(log n));
* :func:`chernoff_upper` / :func:`chernoff_additive` — the paper's
  Lemma 8 bounds, verbatim.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_votes_per_agent",
    "k_collision_probability",
    "exposure_miss_probability",
    "findmin_expected_rounds",
    "chernoff_upper",
    "chernoff_additive",
]


def expected_votes_per_agent(n: int, q: int, n_active: int) -> float:
    """Mean votes an agent receives: ``q`` votes from each of the active
    agents, each aimed at one of the other ``n - 1`` labels u.a.r.

    An active receiver's expectation excludes its own votes:
    ``(n_active - 1) * q / (n - 1)``.
    """
    if n < 2 or not 1 <= n_active <= n or q < 1:
        raise ValueError("need n >= 2, 1 <= n_active <= n, q >= 1")
    return (n_active - 1) * q / (n - 1)


def k_collision_probability(
    n_active: int, m: int, *, n: int | None = None, q: int | None = None
) -> float:
    """First-order collision probability among the active ``k_u``.

    The birthday term is P[two of ``n_active`` uniform values in [m]
    collide] ~ C(n_active, 2) / m; with the paper's ``m = n³`` this is
    ``~ 1/(2n)`` — vanishing, but visible at small n (E5 measures it).

    When ``n`` and ``q`` are given, the prediction also counts
    *zero-vote pairs*: an agent that received no vote has ``k = 0``, so
    two voteless agents collide deterministically.  Each agent is
    voteless with probability ``(1 - 1/(n-1))^((n_active - 1) q)``; at
    small ``q`` (γ = 1 sweeps) this term dominates the birthday one.
    """
    if n_active < 1 or m < 1:
        raise ValueError("need n_active >= 1 and m >= 1")
    pairs = n_active * (n_active - 1) / 2
    expected = pairs / m
    if n is not None and q is not None:
        p_voteless = (1.0 - 1.0 / (n - 1)) ** ((n_active - 1) * q)
        expected += pairs * p_voteless ** 2
    return -math.expm1(-expected)  # 1 - exp(-x), stable for tiny x


def exposure_miss_probability(n: int, q: int, n_pullers: int) -> float:
    """P[a fixed agent is pulled by none of ``n_pullers`` honest agents
    across ``q`` Commitment rounds].

    Each honest agent makes ``q`` independent uniform pulls over the
    other ``n - 1`` labels, so the fixed agent dodges each with
    probability ``1 - 1/(n-1)``:
    ``(1 - 1/(n-1)) ** (q * n_pullers)``  ~  ``exp(-q n_pullers / n)``.
    This is the per-member probability of the pooled attack's window;
    Lemma 6.1 chooses gamma so that ``n`` times this quantity vanishes.
    """
    if n < 2 or q < 0 or n_pullers < 0:
        raise ValueError("need n >= 2 and non-negative q, n_pullers")
    return (1.0 - 1.0 / (n - 1)) ** (q * n_pullers)


def findmin_expected_rounds(n_active: int, n: int,
                            threshold: float = 1.0) -> int:
    """Mean-field rounds for pull-broadcast to inform all active agents.

    Each round, every uninformed active agent pulls a u.a.r. other label
    and becomes informed iff it hits an informed (necessarily active)
    agent: ``i_{t+1} = i_t + (a - i_t) * i_t / (n - 1)`` where ``a`` is
    the active count.  Returns the first round where the expected number
    of uninformed agents drops below ``threshold`` (default: one agent).

    Faults slow the recurrence through the ``i_t / (n-1)`` hit rate
    (faulty labels soak up pulls) — exactly the gamma(alpha) effect the
    E6 sweep measures.
    """
    if not 1 <= n_active <= n:
        raise ValueError("need 1 <= n_active <= n")
    informed = 1.0
    rounds = 0
    # Cap generously; the recurrence converges in O(log n) for a = Θ(n).
    cap = 50 * (int(math.log2(max(n, 2))) + 1)
    while n_active - informed > threshold and rounds < cap:
        informed += (n_active - informed) * informed / (n - 1)
        rounds += 1
    return rounds


def chernoff_upper(mu: float, delta: float) -> float:
    """Lemma 8.1/8.2: ``P[X > (1+delta) mu]`` for a sum of independent
    Bernoullis with mean ``mu``.

    ``exp(-delta² mu / 4)`` for ``0 < delta <= 4`` and
    ``exp(-delta mu)`` for ``delta > 4`` — the exact split the paper
    states.
    """
    if mu < 0 or delta <= 0:
        raise ValueError("need mu >= 0 and delta > 0")
    if delta <= 4:
        return math.exp(-delta * delta * mu / 4.0)
    return math.exp(-delta * mu)


def chernoff_additive(mu: float, lam: float, n: int) -> float:
    """Lemma 8.3: ``P[X > mu + lambda] <= exp(-2 lambda² / n)``."""
    if lam < 0 or n < 1:
        raise ValueError("need lambda >= 0 and n >= 1")
    return math.exp(-2.0 * lam * lam / n)
