"""Expected-utility estimation for coalition members (Theorem 7).

The paper's payoff scheme for agent ``u`` supporting color ``c_u``:
``util = 1`` if the outcome is ``c_u``, ``0`` for any other color and
``-chi`` for ⊥ (failure), with ``chi >= 0``.

For a batch of runs, a member's expected utility is::

    E[util] = Pr[outcome = c_u] - chi * Pr[outcome = ⊥]

A deviation is *profitable for the coalition* only if **every** member
strictly gains (Definition 1 requires some member not to improve; we
report per-color utilities so both readings are checkable).  E7 estimates
these quantities for honest play and for each strategy with *paired
seeds* (same root seed for both runs), a classic variance-reduction
device: everything the deviation does not touch is identical between the
pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.analysis.stats import wilson_interval

__all__ = ["UtilityEstimate", "estimate_utility", "gain"]


@dataclass(frozen=True)
class UtilityEstimate:
    """Monte-Carlo estimate of one color's utility under one protocol."""

    color: Hashable
    trials: int
    wins: int
    failures: int
    chi: float

    @property
    def win_prob(self) -> float:
        return self.wins / self.trials

    @property
    def fail_prob(self) -> float:
        return self.failures / self.trials

    @property
    def expected_utility(self) -> float:
        return self.win_prob - self.chi * self.fail_prob

    def win_prob_ci(self) -> tuple[float, float]:
        return wilson_interval(self.wins, self.trials)

    def fail_prob_ci(self) -> tuple[float, float]:
        return wilson_interval(self.failures, self.trials)


def estimate_utility(
    outcomes: Sequence[Hashable | None], color: Hashable, chi: float = 1.0
) -> UtilityEstimate:
    """Estimate a supporter-of-``color``'s expected utility from outcomes."""
    if not outcomes:
        raise ValueError("no outcomes")
    wins = sum(1 for o in outcomes if o == color)
    failures = sum(1 for o in outcomes if o is None)
    return UtilityEstimate(
        color=color, trials=len(outcomes), wins=wins,
        failures=failures, chi=chi,
    )


def gain(honest: UtilityEstimate, deviant: UtilityEstimate) -> float:
    """Deviation gain: E[util | deviate] - E[util | honest].

    Theorem 7 says this is <= 0 (w.h.p., for some member) for every
    strategy; the E7 table reports it with confidence intervals.
    """
    if honest.color != deviant.color:
        raise ValueError("estimates compare different colors")
    if honest.chi != deviant.chi:
        raise ValueError("estimates use different chi")
    return deviant.expected_utility - honest.expected_utility
