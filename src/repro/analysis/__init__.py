"""Statistical analysis of experiment outputs.

* :mod:`repro.analysis.stats` — confidence intervals and summaries;
* :mod:`repro.analysis.fairness` — is the winning distribution the
  initial-support distribution? (total variation, chi-square GoF);
* :mod:`repro.analysis.equilibrium` — expected-utility estimation for
  coalition members, honest vs deviating (Theorem 7's inequality);
* :mod:`repro.analysis.scaling` — least-squares fits against log n and
  log^2 n (Theorem 4's complexity shapes).
"""

from repro.analysis.equilibrium import UtilityEstimate, estimate_utility, gain
from repro.analysis.fairness import (
    chi_square_fairness,
    chi_square_from_counts,
    empirical_distribution,
    empirical_distribution_from_counts,
    expected_distribution,
    fail_rate,
    total_variation,
)
from repro.analysis.scaling import fit_against, r_squared
from repro.analysis.stats import mean_ci, wilson_interval

__all__ = [
    "UtilityEstimate",
    "chi_square_fairness",
    "chi_square_from_counts",
    "empirical_distribution",
    "empirical_distribution_from_counts",
    "estimate_utility",
    "expected_distribution",
    "fail_rate",
    "fit_against",
    "gain",
    "mean_ci",
    "r_squared",
    "total_variation",
    "wilson_interval",
]
