"""Terminal-friendly reporting helpers (sparklines, distribution bars).

The experiment tables are numbers; these helpers make trends visible in
plain terminals without a plotting dependency.  Used by the examples and
available to downstream users.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

__all__ = ["sparkline", "distribution_bars", "ratio_bar"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline: one block character per value, min..max scaled.

    >>> sparkline([1, 2, 4, 8])
    '▁▂▄█'
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def distribution_bars(
    dist: Mapping[Hashable, float], width: int = 40
) -> str:
    """Horizontal bars for a probability distribution, sorted by key.

    >>> print(distribution_bars({"red": 0.75, "blue": 0.25}, width=8))
    blue  0.250 ##
    red   0.750 ######
    """
    if not dist:
        return "(empty distribution)"
    keys = sorted(dist, key=repr)
    label_w = max(len(str(k)) for k in keys)
    peak = max(dist.values()) or 1.0
    lines = []
    for k in keys:
        p = dist[k]
        bar = "#" * max(0, round(width * p / peak))
        lines.append(f"{str(k):<{label_w}}  {p:.3f} {bar}")
    return "\n".join(lines)


def ratio_bar(value: float, reference: float, width: int = 40,
              label: str = "") -> str:
    """A bar showing ``value`` relative to ``reference`` (the full width).

    Useful for measured-vs-predicted comparisons.
    """
    if reference <= 0:
        raise ValueError("reference must be positive")
    frac = max(0.0, value / reference)
    filled = min(width, round(width * frac))
    bar = "█" * filled + "·" * (width - filled)
    suffix = f"  {value:.4g} / {reference:.4g}"
    return (f"{label} " if label else "") + bar + suffix
