"""Fairness analysis: is Pr[c wins] the initial active-support fraction?

Theorem 4's fairness property says the winning distribution over colors
equals the distribution of initial support among *active* agents.  Given
a batch of run outcomes we measure:

* the empirical winning distribution (failures tracked separately),
* its total-variation distance from the expected distribution,
* a chi-square goodness-of-fit p-value (scipy) — "not rejected at 5%"
  is the reproduction criterion used in EXPERIMENTS.md.

Two entry-point families feed the same measures: the original
outcome-sequence functions, and count-based ones
(``empirical_distribution_from_counts`` / ``chi_square_from_counts``)
that consume the win tallies a :class:`repro.fastpath.FastBatchResult`
produces with one ``bincount`` — so batched experiments never build
per-trial Python objects on the hot path.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Mapping, Sequence

from scipy import stats as _scipy_stats

__all__ = [
    "chi_square_fairness",
    "chi_square_from_counts",
    "empirical_distribution",
    "empirical_distribution_from_counts",
    "expected_distribution",
    "fail_rate",
    "total_variation",
]


def expected_distribution(
    colors: Sequence[Hashable], active: Iterable[int] | None = None
) -> dict[Hashable, float]:
    """Initial support fractions among active agents (the fairness target)."""
    if active is None:
        pool = list(colors)
    else:
        pool = [colors[i] for i in active]
    if not pool:
        raise ValueError("no active agent")
    counts = Counter(pool)
    total = len(pool)
    return {c: counts[c] / total for c in counts}


def empirical_distribution(
    outcomes: Iterable[Hashable | None],
) -> dict[Hashable, float]:
    """Winning frequencies over *successful* runs (⊥ excluded)."""
    return empirical_distribution_from_counts(
        Counter(o for o in outcomes if o is not None)
    )


def empirical_distribution_from_counts(
    counts: Mapping[Hashable, int],
) -> dict[Hashable, float]:
    """Winning frequencies from per-color win tallies (e.g.
    ``FastBatchResult.winning_counts()``)."""
    total = sum(counts.values())
    if total == 0:
        return {}
    return {c: k / total for c, k in counts.items() if k > 0}


def fail_rate(outcomes: Sequence[Hashable | None]) -> float:
    """Fraction of runs that ended in ⊥."""
    if not outcomes:
        raise ValueError("no outcomes")
    return sum(1 for o in outcomes if o is None) / len(outcomes)


def total_variation(
    p: Mapping[Hashable, float], q: Mapping[Hashable, float]
) -> float:
    """Total-variation distance between two color distributions.

    Keys are summed in a sorted order: set iteration follows the string
    hash seed, and float summation is not associative, so an unordered
    sum makes the last ulp of the result differ from process to process
    — which the byte-identical result-JSON contract (DESIGN.md §9)
    cannot tolerate.
    """
    keys = sorted(set(p) | set(q), key=repr)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def chi_square_fairness(
    outcomes: Sequence[Hashable | None],
    expected: Mapping[Hashable, float],
) -> tuple[float, float]:
    """Chi-square GoF of winning outcomes against expected fractions."""
    return chi_square_from_counts(
        Counter(o for o in outcomes if o is not None), expected
    )


def chi_square_from_counts(
    counts: Mapping[Hashable, int],
    expected: Mapping[Hashable, float],
) -> tuple[float, float]:
    """Chi-square GoF of per-color win tallies against expected fractions.

    Returns ``(statistic, p-value)``.  Colors with expected probability 0
    must not win (if one does, returns ``(inf, 0.0)``); categories are the
    support of ``expected``.
    """
    counts = {c: k for c, k in counts.items() if k > 0}
    if not counts:
        raise ValueError("no successful runs to test")
    unexpected = set(counts) - set(expected)
    if unexpected or any(
        counts.get(c, 0) > 0 and expected[c] == 0.0 for c in expected
    ):
        return float("inf"), 0.0
    categories = sorted(expected, key=repr)
    observed = [counts.get(c, 0) for c in categories]
    probs = [expected[c] for c in categories]
    total = sum(observed)
    exp_counts = [p * total for p in probs]
    # Drop zero-expected categories (scipy requires positive expectations).
    pairs = [(o, e) for o, e in zip(observed, exp_counts) if e > 0]
    obs, exp = zip(*pairs)
    stat, pvalue = _scipy_stats.chisquare(obs, exp)
    return float(stat), float(pvalue)
