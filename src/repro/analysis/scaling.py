"""Least-squares fits for the complexity-shape claims of Theorem 4.

The reproduction criterion for "O(log n) rounds" / "O(log^2 n) bits" /
"O(n log^3 n) communication" is a good linear fit (R^2 close to 1) of the
measured quantity against the claimed shape, plus a visibly *bad* fit
against the competing shapes — both are reported in the benchmark tables.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

__all__ = ["fit_against", "r_squared", "SHAPES"]

SHAPES: dict[str, Callable[[float], float]] = {
    "log n": lambda n: math.log2(n),
    "log^2 n": lambda n: math.log2(n) ** 2,
    "log^3 n": lambda n: math.log2(n) ** 3,
    "n": lambda n: float(n),
    "n log n": lambda n: n * math.log2(n),
    "n log^3 n": lambda n: n * math.log2(n) ** 3,
    "n^2": lambda n: float(n) ** 2,
}


def fit_against(
    ns: Sequence[int], values: Sequence[float], shape: str
) -> tuple[float, float, float]:
    """Fit ``value ~ a * shape(n) + b``; return ``(a, b, R^2)``."""
    if shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r}; known: {sorted(SHAPES)}")
    if len(ns) != len(values) or len(ns) < 2:
        raise ValueError("need >= 2 matching (n, value) pairs")
    f = SHAPES[shape]
    x = np.array([f(n) for n in ns], dtype=float)
    y = np.array(values, dtype=float)
    a, b = np.polyfit(x, y, 1)
    predicted = a * x + b
    return float(a), float(b), r_squared(y, predicted)


def r_squared(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination; 1.0 for a perfect fit."""
    y = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    ss_res = float(((y - p) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot
