"""Batched strategy fastpath: coalition deviations as tensor effects.

The agent engine is the only tier that can run *arbitrary* deviating
agents, but the registered strategies (:mod:`repro.agents.plans`) are
not arbitrary: each one is a fixed, declarative set of effects on the
protocol's random structure — votes dropped or rewritten, Commitment
pulls left unanswered, a forged ``k = 0`` certificate injected into
Find-Min, a detection event that makes verifiers output ⊥.  This module
executes those effects *vectorised over the trial axis*, on the same
``(B, n_a, q)`` tensor layout as the seed-parity batch engine, and
derives every detection event exactly from the sampled tensors:

* **exposure** (Lemma 6.1): member ``v`` is exposed iff some honest
  agent's sampled Commitment pull hits ``v`` — the pooled attack forges
  iff an unexposed donor exists, computed per trial from the pull
  pattern, never approximated;
* **verifier failure**: a verifier fails iff it pulled the voter whose
  vote its final certificate alters/omits (footnote 5's cross-check),
  evaluated against each honest agent's *own* final minimum so partial
  Find-Min spreads are handled exactly;
* **coherence**: a mismatching push fails its receiver iff a sampled
  push actually crosses two certificate groups.

Both runs of a *paired* trial — members playing Protocol P and members
running the strategy — are evaluated on the same draws (common random
numbers), which is what makes E7's gain estimates tight at scale.  The
honest tensors are drawn before any strategy-specific extras, so the
honest side of a pairing is identical across strategies for one seed
list.

Fidelity contract (DESIGN.md §5): the strategy tier matches the agent
engine in distribution — same mechanisms, same exact detection events —
but not bit-for-bit, because the tiers consume different random
streams.  The cross-tier conformance matrix
(``tests/test_strategy_conformance.py``) pins the verdicts: identical
where the effect spec makes the verdict deterministic, statistically
compatible elsewhere.  Documented simplifications: deviant message/bit
totals are priced analytically (honest model minus dropped messages),
and when the followers split across *different* owners of the same
color without any failure the reported winner is the smallest such
owner (the agent engine reports the color with ``winner=None``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Hashable, Sequence

import numpy as np

from repro.agents.effects import EffectSpec
from repro.agents.plans import StrategyPlan, plan as make_plan
from repro.analysis.stats import mean_ci
from repro.core.defenses import FULL_DEFENSES, Defenses
from repro.core.params import ProtocolParams
from repro.fastpath.batch import FastBatchResult
from repro.fastpath.simulate import (
    _PULL_TOPIC_BITS,
    _exact_index_sums,
    _offset_self,
    _peer_dtype,
)

__all__ = [
    "StrategyBatchResult",
    "simulate_strategy_fast_batch",
    "strategy_block_trials",
]


def strategy_block_trials(n_a: int, q: int) -> int:
    """Trials per strategy-tier block — the engine's stream quantum.

    One RNG stream per fixed-size block of paired trials; splitting a
    workload at multiples of this quantum (as the parallel execution
    backend does) reproduces the unsplit arrays bit-for-bit.
    """
    return max(1, _STRAT_BLOCK_ELEMENTS // max(1, n_a * q))

# Fixed per-block element budget; trials per block are a function of n
# only, so results never depend on memory chunking.
_STRAT_BLOCK_ELEMENTS = 1 << 21
_STRAT_STREAM_SALT = 0x_57A7_0FFE  # domain-separates strategy-tier streams

_INT64_MAX = np.iinfo(np.int64).max

# Single-entry memo of the honest baseline's per-chunk evaluations.
# The honest side of a pairing depends only on (colors, seeds, gamma,
# faulty, defenses) — never the strategy (shared tensors are drawn
# before any strategy-specific extras) — and E7-style grids replay the
# same baseline for every (strategy, coalition) cell.
_honest_memo: dict = {"key": None, "chunks": None}


@dataclass(frozen=True)
class StrategyBatchResult:
    """Paired honest/deviant batches plus the deviation observables.

    ``honest`` and ``deviant`` are ordinary :class:`FastBatchResult`
    objects over the *same* trial draws; ``winner`` is ``-1`` wherever
    the protocol-following agents did not reach consensus (⊥).  The
    extra arrays are the strategy tier's observer-side measurements of
    the *deviant* run:

    ``detected``
        Some follower failed (verification or coherence mismatch) —
        the deviation was caught and the run is ⊥.
    ``split``
        Nobody failed but the followers decided different colors (the
        silent-split event of E9; only reachable with ablated
        defenses).
    ``forged``
        A forged certificate was actually circulated this trial
        (always true for the underbid family; exposure-gated for
        ``pooled``).
    ``exposed_members``
        How many coalition members were exposed during Commitment
        (Lemma 6.1's count; ``pooled`` forges iff it is below ``t``).

    ``ARRAY_FIELDS``/``NESTED_BATCH_FIELDS`` form the out-buffer
    protocol (:mod:`repro.exec.shm`): the observer arrays plus both
    nested honest/deviant batches land in one parent-owned shared-
    memory block, so a shard's tensors never round-trip through pickle.
    """

    #: Trial-axis arrays of the observer-side measurements (the
    #: out-buffer protocol; dtypes must match the constructed arrays).
    ARRAY_FIELDS: ClassVar[tuple[tuple[str, str], ...]] = (
        ("detected", "bool"),
        ("split", "bool"),
        ("forged", "bool"),
        ("exposed_members", "int64"),
    )
    #: Nested batch results whose arrays join the same out-buffer.
    NESTED_BATCH_FIELDS: ClassVar[tuple[tuple[str, type], ...]] = (
        ("honest", FastBatchResult),
        ("deviant", FastBatchResult),
    )

    strategy: str
    members: tuple[int, ...]
    honest: FastBatchResult
    deviant: FastBatchResult
    detected: np.ndarray         # (B,) bool
    split: np.ndarray            # (B,) bool
    forged: np.ndarray           # (B,) bool
    exposed_members: np.ndarray  # (B,) int64

    @property
    def n_trials(self) -> int:
        return self.honest.n_trials

    def __len__(self) -> int:
        return self.n_trials

    def utilities(self, color: Hashable, chi: float = 1.0
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Per-trial utilities of a supporter of ``color``:
        ``(honest, deviant)`` arrays of ``1[win] - chi * 1[fail]``."""
        want = np.flatnonzero(
            np.array([c == color for c in self.honest.colors])
        )
        if want.size == 0:
            raise ValueError(f"color {color!r} not in the configuration")

        def util(batch: FastBatchResult) -> np.ndarray:
            win = np.isin(batch.winner, want)
            fail = batch.winner < 0
            return win.astype(np.float64) - chi * fail

        return util(self.honest), util(self.deviant)

    def paired_gain(self, color: Hashable, chi: float = 1.0
                    ) -> tuple[float, float]:
        """(mean paired gain, 95% CI half-width) for ``color`` at chi.

        The paired difference is the E7 estimand: deviant utility minus
        honest utility on the same draws.
        """
        hon, dev = self.utilities(color, chi)
        return mean_ci(dev - hon)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def simulate_strategy_fast_batch(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    strategy: StrategyPlan | str | None,
    members: Sequence[int] | frozenset[int] = frozenset(),
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] = frozenset(),
    defenses: Defenses = FULL_DEFENSES,
) -> StrategyBatchResult:
    """Simulate paired honest/deviant Monte-Carlo batches of Protocol P.

    Parameters
    ----------
    colors, seeds, gamma:
        As in :func:`repro.fastpath.batch.simulate_protocol_fast_batch`;
        one trial per seed, deterministic in the seed list.
    strategy:
        A :class:`~repro.agents.plans.StrategyPlan` (its ``members`` and
        ``effects`` are used; ``members`` below is then ignored), a
        registry name combined with ``members``, or ``None`` for a pure
        honest pairing (honest and deviant batches then coincide).
    faulty:
        One crash-fault set shared by every trial (disjoint from the
        coalition, as in :class:`~repro.core.protocol.ProtocolConfig`).
    defenses:
        Defence toggles; the tensor effects honour every ablation the
        agent engine supports (E9).
    """
    colors = tuple(colors)
    n = len(colors)
    seeds = [int(s) for s in seeds]
    if strategy is None or isinstance(strategy, str):
        built = make_plan(strategy or "honest_shadow", frozenset(members))
    else:
        built = strategy
    if built.effects is None:
        raise ValueError(
            f"plan {built.name!r} carries no effect spec; build it via "
            "repro.agents.plans.plan()"
        )
    spec: EffectSpec = built.effects
    mem = np.array(sorted(built.members), dtype=np.int64)

    params = ProtocolParams(n=n, gamma=gamma, num_colors=len(set(colors)))
    q, m = params.q, params.m
    if (q + 1) * m >= 2 ** 62:
        raise ValueError(f"n={n} too large for exact int64 vote sums")
    if n ** 4 >= 2 ** 62:
        raise ValueError(f"n={n} too large for the (k, label) winner key")
    faulty = frozenset(faulty)
    for label in faulty:
        if not 0 <= label < n:
            raise ValueError(f"faulty label {label} out of range")
    if mem.size:
        if int(mem.min()) < 0 or int(mem.max()) >= n:
            raise ValueError("coalition label out of range")
        overlap = built.members & faulty
        if overlap:
            raise ValueError(
                f"coalition members {sorted(overlap)} are marked faulty"
            )
    if len(faulty) + mem.size >= n:
        raise ValueError("no protocol-following active agent left")

    n_trials = len(seeds)
    n_a = n - len(faulty)
    block = strategy_block_trials(n_a, q)
    starts = list(range(0, n_trials, block)) or [0]
    memo_key = (colors, tuple(seeds), gamma, faulty, defenses)
    cached = (
        _honest_memo["chunks"] if _honest_memo["key"] == memo_key else None
    )
    chunks = []
    honest_sides = []
    for ci, i in enumerate(starts):
        out = _simulate_strategy_chunk(
            n, params, colors, seeds[i:i + block], mem, spec, faulty,
            defenses,
            honest_side=cached[ci] if cached is not None else None,
        )
        chunks.append(out)
        honest_sides.append(out["honest_side"])
    _honest_memo["key"] = memo_key
    _honest_memo["chunks"] = honest_sides

    def cat(side: str, field: str) -> np.ndarray:
        return np.concatenate([c[side][field] for c in chunks])

    def batch(side: str) -> FastBatchResult:
        return FastBatchResult(
            n=n, n_trials=n_trials, rounds=params.total_rounds,
            colors=colors,
            n_active=cat(side, "n_active"),
            winner=cat(side, "winner"),
            min_votes=cat(side, "min_votes"),
            max_votes=cat(side, "max_votes"),
            k_collision=cat(side, "k_collision"),
            find_min_agreement=cat(side, "find_min_agreement"),
            find_min_rounds=cat(side, "find_min_rounds"),
            min_commitment_pulls_received=cat(
                side, "min_commitment_pulls_received"
            ),
            total_messages=cat(side, "total_messages"),
            total_bits=cat(side, "total_bits"),
            max_message_bits=cat(side, "max_message_bits"),
        )

    return StrategyBatchResult(
        strategy=built.name or spec.name,
        members=tuple(int(v) for v in mem),
        honest=batch("honest"),
        deviant=batch("deviant"),
        detected=np.concatenate([c["detected"] for c in chunks]),
        split=np.concatenate([c["split"] for c in chunks]),
        forged=np.concatenate([c["forged"] for c in chunks]),
        exposed_members=np.concatenate(
            [c["exposed_members"] for c in chunks]
        ),
    )


# ---------------------------------------------------------------------------
# Small vector helpers
# ---------------------------------------------------------------------------

def _scatter_any(targets: np.ndarray, cond: np.ndarray, n: int
                 ) -> np.ndarray:
    """(B, n) bool: did any ``cond``-marked slot target each label?

    ``targets``/``cond`` are (B, q); slots with ``cond`` False are
    parked on a scratch column that is dropped afterwards.
    """
    b_sz = targets.shape[0]
    out = np.zeros((b_sz, n + 1), dtype=bool)
    parked = np.where(cond, targets.astype(np.int64), n)
    out[np.arange(b_sz)[:, None], parked] = True
    return out[:, :n]


def _vote_tally(
    targets: np.ndarray,      # (B, n_a, q) int
    values: np.ndarray,       # (B, n_a, q) int64
    caster_cols: np.ndarray,  # (n_a,) bool
    n: int,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-receiver vote counts and ``k`` values for a batch."""
    b_sz = targets.shape[0]
    rows = np.arange(b_sz)
    parked = np.where(caster_cols[None, :, None], targets.astype(np.int64), n)
    flat = (rows[:, None, None] * (n + 1) + parked).ravel()
    counts = np.bincount(flat, minlength=b_sz * (n + 1)).reshape(
        b_sz, n + 1
    )[:, :n]
    k_acc = _exact_index_sums(
        flat.astype(np.intp), values.ravel(), b_sz * (n + 1),
        int(counts.max(initial=0)) + 1,
    ).reshape(b_sz, n + 1)[:, :n]
    return counts, k_acc % m


def _propagate_findmin(
    score0: np.ndarray,       # (B, n) initial score per label (MAX: none)
    pulls: np.ndarray,        # (B, q, n_a) pull targets per active agent
    act_idx: np.ndarray,      # (n_a,) active labels, ascending
    serve_mask: np.ndarray,   # (n,) bool: answers certificate pulls
    adopt_cols: np.ndarray,   # (n_a,) bool: columns that adopt minima
    adopt_rows: np.ndarray | None,  # (B, n_a) bool override, or None
    follower_idx: np.ndarray,  # labels whose agreement defines convergence
    q: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synchronous pull-gossip of certificate minima for q rounds.

    Pull replies reflect start-of-round state (the engine services all
    pulls before delivering anything).  Returns ``(final_scores,
    agreement, converged_round)``: the (B, n) final scores, the
    end-of-run all-followers-equal event, and the first round from
    which the followers stayed in agreement (-1: never).
    """
    b_sz = score0.shape[0]
    rows = np.arange(b_sz)[:, None]
    cur = score0.copy()
    conv = np.full(b_sz, -1, dtype=np.int64)
    eq = np.zeros(b_sz, dtype=bool)
    for rnd in range(1, q + 1):
        tgt = pulls[:, rnd - 1, :].astype(np.int64)
        got = np.where(serve_mask[tgt], cur[rows, tgt], _INT64_MAX)
        adopt = adopt_cols[None, :]
        if adopt_rows is not None:
            adopt = adopt & adopt_rows
        cur[:, act_idx] = np.where(
            adopt, np.minimum(cur[:, act_idx], got), cur[:, act_idx]
        )
        flw = cur[:, follower_idx]
        eq = (flw == flw[:, :1]).all(axis=1)
        conv = np.where(eq & (conv < 0), rnd, np.where(~eq, -1, conv))
    return cur, eq, conv


def _coherence_detect(
    coh_push: np.ndarray,     # (B, q, n_a) push targets
    final: np.ndarray,        # (B, n) final scores
    push_cols: np.ndarray,    # (n_a,) bool: who pushes its minimum
    act_idx: np.ndarray,
    receiver_mask: np.ndarray,  # (n,) bool: receivers that can fail
    bogus_cols: np.ndarray | None,  # (n_a,) bool: push a fresh empty cert
    bogus_score: np.ndarray | None,  # (B, n_a): score pushed by bogus cols
    rows: np.ndarray,
) -> np.ndarray:
    """(B,) bool: some failing-capable receiver got a push whose
    certificate differs from its own final minimum."""
    tgt = coh_push.astype(np.int64)
    recv = final[rows[:, None, None], tgt]
    own = np.broadcast_to(final[:, None, act_idx], recv.shape)
    if bogus_cols is not None:
        own = np.where(
            bogus_cols[None, None, :], bogus_score[:, None, :], own
        )
        pushing = push_cols | bogus_cols
    else:
        pushing = push_cols
    mism = (recv != own) & receiver_mask[tgt] & pushing[None, None, :]
    return mism.any(axis=(1, 2))


def _outcome(
    final: np.ndarray,        # (B, n) final scores
    follower_idx: np.ndarray,
    detected: np.ndarray,     # (B,) bool
    color_idx: np.ndarray,    # (n,) int64 palette index per label
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """(winner, split) under ``run_protocol`` semantics: success iff no
    follower failed and all follower decisions share one color."""
    z_u = (final[:, follower_idx] % n).astype(np.int64)
    z_colors = color_idx[z_u]
    same_color = (z_colors == z_colors[:, :1]).all(axis=1)
    success = same_color & ~detected
    winner = np.where(success, z_u.min(axis=1), -1).astype(np.int64)
    split = ~detected & ~same_color
    return winner, split


def _mismatch_masks(
    a_t: np.ndarray, a_v: np.ndarray, d_t: np.ndarray, d_v: np.ndarray,
    n: int, omissions_on: bool,
) -> np.ndarray:
    """(B, n) bool: certificate owners that a verifier holding the
    declaration ``(d_t, d_v)`` can refute, given actually-pushed votes
    ``(a_t, a_v)`` (all per-slot arrays of shape (B, q)).

    Direction (a) — carried-vote checks — fires at the *actual* target
    (whose certificate carries the offending vote); direction (b) —
    omission checks — fires at the *declared* target (whose certificate
    misses the declared vote).
    """
    mism = (a_t != d_t) | (a_v != d_v)
    bad = _scatter_any(a_t, mism, n)
    if omissions_on:
        bad |= _scatter_any(d_t, mism, n)
    return bad


# ---------------------------------------------------------------------------
# One block of trials
# ---------------------------------------------------------------------------

def _simulate_strategy_chunk(
    n: int,
    params: ProtocolParams,
    colors: tuple[Hashable, ...],
    seeds: Sequence[int],
    mem: np.ndarray,
    spec: EffectSpec,
    faulty: frozenset[int],
    defenses: Defenses,
    honest_side: dict | None = None,
) -> dict:
    q, m = params.q, params.m
    b_sz = len(seeds)
    rows = np.arange(b_sz)
    t = int(mem.size)

    active = np.ones(n, dtype=bool)
    if faulty:
        active[list(faulty)] = False
    act_idx = np.flatnonzero(active)
    n_a = int(act_idx.size)
    is_member = np.zeros(n, dtype=bool)
    if t:
        is_member[mem] = True
    hon_mask = active & ~is_member
    hon_idx = np.flatnonzero(hon_mask)
    n_h = int(hon_idx.size)
    col_of = np.full(n, -1, dtype=np.int64)
    col_of[act_idx] = np.arange(n_a)
    hon_cols = col_of[hon_idx]
    mem_cols = col_of[mem] if t else np.zeros(0, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64)
    color_palette = list(dict.fromkeys(colors))
    color_idx = np.array(
        [color_palette.index(c) for c in colors], dtype=np.int64
    )

    if b_sz == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_b = np.zeros(0, dtype=bool)
        side = {
            "n_active": empty_i, "winner": empty_i.copy(),
            "min_votes": empty_i.copy(), "max_votes": empty_i.copy(),
            "k_collision": empty_b, "find_min_agreement": empty_b.copy(),
            "find_min_rounds": empty_i.copy(),
            "min_commitment_pulls_received": empty_i.copy(),
            "total_messages": empty_i.copy(), "total_bits": empty_i.copy(),
            "max_message_bits": empty_i.copy(),
        }
        empty_side = {
            "result": side, "detected": empty_b.copy(),
            "split": empty_b.copy(),
        }
        return {
            "honest": side, "deviant": {k: v.copy() for k, v in side.items()},
            "honest_side": empty_side,
            "detected": empty_b.copy(), "split": empty_b.copy(),
            "forged": empty_b.copy(),
            "exposed_members": empty_i.copy(),
        }

    rng = np.random.Generator(np.random.PCG64(
        np.random.SeedSequence(entropy=(_STRAT_STREAM_SALT, *seeds))
    ))
    dt = _peer_dtype(n)
    self_act = act_idx.astype(dt)

    # Shared draws in a fixed, strategy-independent order.  Axis
    # convention: (trial, agent, round) for per-agent phases,
    # (trial, round, agent) for the pull/push rounds.
    commit_targets = _offset_self(
        rng.integers(n - 1, size=(b_sz, n_a, q), dtype=dt),
        self_act[None, :, None],
    ).astype(np.int64)
    vote_values = rng.integers(m, size=(b_sz, n_a, q), dtype=np.int64)
    vote_targets = _offset_self(
        rng.integers(n - 1, size=(b_sz, n_a, q), dtype=dt),
        self_act[None, :, None],
    ).astype(np.int64)
    fm_pulls = _offset_self(
        rng.integers(n - 1, size=(b_sz, q, n_a), dtype=dt),
        self_act[None, None, :],
    ).astype(np.int64)
    coh_push = _offset_self(
        rng.integers(n - 1, size=(b_sz, q, n_a), dtype=dt),
        self_act[None, None, :],
    ).astype(np.int64)
    # Strategy-specific extras come last so they never perturb the
    # shared stream above.
    sw_values = sw_targets = alt_values = alt_targets = None
    if t and spec.fresh_vote_values:
        sw_values = rng.integers(m, size=(b_sz, t, q), dtype=np.int64)
    if t and spec.fresh_vote_targets:
        sw_targets = _offset_self(
            rng.integers(n - 1, size=(b_sz, t, q), dtype=dt),
            mem.astype(dt)[None, :, None],
        ).astype(np.int64)
    if t and spec.equivocates:
        alt_values = rng.integers(m, size=(b_sz, t, q), dtype=np.int64)
        alt_targets = _offset_self(
            rng.integers(n - 1, size=(b_sz, t, q), dtype=dt),
            mem.astype(dt)[None, :, None],
        ).astype(np.int64)

    all_cols = np.ones(n_a, dtype=bool)

    # ------------------------------------------------------------------
    # Honest side (the paired baseline): every active agent follows P.
    # Strategy-independent, so grid callers replay it from the memo.
    honest = honest_side if honest_side is not None else _evaluate_side(
        params, n, rows, act_idx, active, labels, color_idx,
        vote_targets, vote_values, commit_targets, fm_pulls, coh_push,
        caster_cols=all_cols,
        serve_mask=active,
        adopt_cols=all_cols,
        adopt_rows=None,
        commit_pull_cols=all_cols,
        answer_mask=active,
        fm_pull_cols=all_cols,
        coh_push_cols=all_cols,
        bogus_cols=None, bogus_score=None,
        follower_idx=act_idx,
        forced_scores=None,
        hold_fail=None,
        extra_fail=None,
        defenses=defenses,
    )

    if t == 0:
        return {
            "honest": honest["result"],
            "deviant": {k: v.copy() for k, v in honest["result"].items()},
            "honest_side": honest,
            "detected": honest["detected"],
            "split": honest["split"],
            "forged": np.zeros(b_sz, dtype=bool),
            "exposed_members": np.zeros(b_sz, dtype=np.int64),
        }

    # ------------------------------------------------------------------
    # Deviant-side tensors per the effect spec.
    dev_values = vote_values
    dev_targets = vote_targets
    if sw_values is not None:
        dev_values = vote_values.copy()
        dev_values[:, mem_cols, :] = sw_values
    if sw_targets is not None:
        dev_targets = vote_targets.copy()
        dev_targets[:, mem_cols, :] = sw_targets
    if spec.intra_fraction > 0.0 and t >= 2:
        dev_targets = dev_targets.copy()
        n_intra = min(q, max(1, round(q * spec.intra_fraction)))
        # others[(slot + node_id) % (t - 1)], others sorted excluding
        # self — exactly PooledAttackAgent._rewrite_intention.
        for j in range(t):
            others = np.delete(mem, j)
            for slot in range(n_intra):
                dev_targets[:, mem_cols[j], slot] = int(
                    others[(slot + int(mem[j])) % others.size]
                )

    caster_cols = all_cols.copy()
    if not spec.casts_votes:
        caster_cols[mem_cols] = False
    commit_pull_cols = all_cols.copy()
    if not spec.pulls_commitment:
        commit_pull_cols[mem_cols] = False
    answer_mask = active.copy()
    if not spec.answers_commitment:
        answer_mask[mem] = False
    fm_pull_cols = all_cols.copy()
    if not spec.pulls_findmin:
        fm_pull_cols[mem_cols] = False
    serve_mask = active.copy()
    if not spec.serves_findmin:
        serve_mask[mem] = False
    coh_push_cols = all_cols.copy()
    if spec.coherence_push != "honest":
        coh_push_cols[mem_cols] = False

    # Exposure (Lemma 6.1), exactly from the sampled pull pattern.
    commitment_on = defenses.commitment
    if commitment_on:
        ct_hon = commit_targets[:, hon_cols, :]
        flat = (rows[:, None, None] * n + ct_hon).ravel()
        pulled_count = np.bincount(flat, minlength=b_sz * n).reshape(
            b_sz, n
        )
    else:
        ct_hon = None
        pulled_count = np.zeros((b_sz, n), dtype=np.int64)
    exposed = pulled_count[:, mem] > 0                      # (B, t)
    exposed_members = exposed.sum(axis=1).astype(np.int64)

    def pulled_fixed(label: int) -> np.ndarray:
        """(B, n_h) bool: honest u pulled ``label`` in Commitment."""
        if ct_hon is None:
            return np.zeros((b_sz, n_h), dtype=bool)
        return (ct_hon == label).any(axis=2)

    def pulled_per_trial(lab: np.ndarray) -> np.ndarray:
        """(B, n_h) bool: honest u pulled per-trial label ``lab``."""
        if ct_hon is None:
            return np.zeros((b_sz, n_h), dtype=bool)
        return (ct_hon == lab[:, None, None]).any(axis=2)

    def pulled_in(mask: np.ndarray) -> np.ndarray:
        """(B, n_h) bool: honest u pulled any label in ``mask`` (B, n)."""
        if ct_hon is None:
            return np.zeros((b_sz, n_h), dtype=bool)
        return mask[rows[:, None, None], ct_hon].any(axis=2)

    counts_dev, k_dev = _vote_tally(dev_targets, dev_values, caster_cols,
                                    n, m)

    def first_vote_sender(owner: np.ndarray) -> np.ndarray:
        """Per-trial voter of the first vote received by ``owner``
        (delivery order: round-major, sender-label within a round); -1
        where no vote arrived."""
        hit = (dev_targets == owner[:, None, None]) \
            & caster_cols[None, :, None]
        key = np.where(
            hit,
            np.arange(q, dtype=np.int64)[None, None, :] * n
            + act_idx[None, :, None],
            _INT64_MAX,
        )
        best = key.min(axis=(1, 2))
        return np.where(best < _INT64_MAX, best % n, -1)

    def declared_to(owner_label: int) -> np.ndarray:
        """(B, n) bool: answering agent declared >= 1 vote aimed at the
        owner (declared intentions equal the deviant targets for every
        answering caster)."""
        hit = (dev_targets == owner_label) & caster_cols[None, :, None]
        hit &= answer_mask[act_idx][None, :, None]
        per_agent = hit.any(axis=2)
        out = np.zeros((b_sz, n), dtype=bool)
        out[:, act_idx] = per_agent
        return out

    ledger_on = defenses.verify_ledger and commitment_on
    omissions_on = ledger_on and defenses.verify_omissions

    # ------------------------------------------------------------------
    # Forgeries: per-member "fail if you hold this forged certificate"
    # masks, the forged-score overrides, and the pooled designation.
    forged = np.zeros(b_sz, dtype=bool)
    hold_fail: dict[int, np.ndarray] = {}
    extra_fail: np.ndarray | None = None
    forced_scores = None            # (B, t) score each member serves
    adopt_rows = None
    adopt_cols = all_cols.copy()

    if spec.forge in ("alter", "drop_all", "fabricate", "klie"):
        forged[:] = True
        forced_scores = np.broadcast_to(
            mem[None, :], (b_sz, t)
        ).astype(np.int64)           # k = 0, owner = member
        adopt_cols[mem_cols] = False
        for j in range(t):
            f = int(mem[j])
            hold_fail[f] = _underbid_hold_fail(
                spec.forge, f, k_dev[:, f], counts_dev[:, f],
                dev_targets, dev_values, caster_cols, col_of, active,
                first_vote_sender, pulled_fixed, pulled_per_trial,
                pulled_in, declared_to, defenses, ledger_on, omissions_on,
                b_sz, n_h, n, q,
            )
    elif spec.forge == "pooled":
        # Designated winner: candidate members in (color != preferred,
        # label) order; the first one holding a vote from an unexposed
        # member.  Preferred = the coalition's most common color with
        # first-seen tie-break (CoalitionState.most_common_color).
        mem_colors = [colors[int(v)] for v in mem]
        counts_c: dict[Hashable, int] = {}
        for c in mem_colors:
            counts_c[c] = counts_c.get(c, 0) + 1
        preferred = max(counts_c, key=lambda c: counts_c[c])
        order = sorted(
            range(t),
            key=lambda j: (mem_colors[j] != preferred, int(mem[j])),
        )
        designated = np.full(b_sz, -1, dtype=np.int64)
        if t >= 2:
            has_donor = np.zeros((b_sz, t), dtype=bool)
            for j in range(t):
                got_from = (
                    dev_targets[:, mem_cols, :] == int(mem[j])
                ).any(axis=2)                          # (B, t) by voter
                has_donor[:, j] = (got_from & ~exposed).any(axis=1)
            for j in reversed(order):
                designated = np.where(
                    has_donor[:, j], int(mem[j]), designated
                )
        attack = designated >= 0
        # The altered donor is unexposed by construction: no honest
        # verifier holds its declaration, so attack trials have exactly
        # zero detection events.
        if spec.pooled_gamble:
            any_votes = counts_dev[:, mem] > 0             # (B, t)
            g_owner = np.full(b_sz, -1, dtype=np.int64)
            for j in reversed(order):
                g_owner = np.where(any_votes[:, j], int(mem[j]), g_owner)
            gamble = ~attack & (g_owner >= 0)
            designated = np.where(gamble, g_owner, designated)
            if ledger_on:
                # The gambled alteration touches the first received
                # vote of the chosen owner; any verifier holding the
                # forged certificate that pulled that vote's sender
                # refutes it.
                v0 = first_vote_sender(np.maximum(g_owner, 0))
                k_own = k_dev[rows, np.maximum(g_owner, 0)]
                gam_fail = (
                    (gamble & (v0 >= 0) & (k_own != 0))[:, None]
                    & pulled_per_trial(np.maximum(v0, 0))
                )
                hold_fail["__per_trial__"] = gam_fail
                hold_fail["__per_trial_owner__"] = designated
        forged = designated >= 0
        forced_scores = np.where(
            forged[:, None], designated[:, None],
            # Fallback: members serve their own honest certificates.
            k_dev[:, mem] * n + mem[None, :],
        ).astype(np.int64)
        adopt_rows = np.ones((b_sz, n_a), dtype=bool)
        adopt_rows[:, mem_cols] = ~forged[:, None]
    if not spec.pulls_findmin:
        adopt_cols[mem_cols] = False

    # Ledger-detection masks for honest certificates carrying provably
    # bad coalition votes (the non-forging strategies).
    bad_owner_masks: list[tuple[np.ndarray, np.ndarray]] = []
    if ledger_on and spec.forge is None:
        if not spec.answers_commitment and spec.casts_votes:
            # pretend_faulty: carried votes from a member its verifier
            # marked faulty (footnote 4).
            for j in range(t):
                voted_to = _scatter_any(
                    dev_targets[:, mem_cols[j], :],
                    np.ones((b_sz, q), dtype=bool), n,
                )
                bad_owner_masks.append((pulled_fixed(int(mem[j])),
                                        voted_to))
        if spec.fresh_vote_values or spec.fresh_vote_targets:
            for j in range(t):
                bad = _mismatch_masks(
                    dev_targets[:, mem_cols[j], :],
                    dev_values[:, mem_cols[j], :],
                    vote_targets[:, mem_cols[j], :],
                    vote_values[:, mem_cols[j], :],
                    n, omissions_on,
                )
                bad_owner_masks.append((pulled_fixed(int(mem[j])), bad))
        if spec.equivocates:
            holders_b = _alt_version_holders(
                commit_targets, commit_pull_cols, hon_cols, mem, b_sz, q,
            )
            for j in range(t):
                bad = _mismatch_masks(
                    dev_targets[:, mem_cols[j], :],
                    dev_values[:, mem_cols[j], :],
                    alt_targets[:, j, :],
                    alt_values[:, j, :],
                    n, omissions_on,
                )
                bad_owner_masks.append((holders_b[j], bad))

    # Griefing: bogus empty certificates pushed in Coherence.
    bogus_cols = bogus_score = None
    if spec.coherence_push == "bogus":
        bogus_cols = np.zeros(n_a, dtype=bool)
        bogus_cols[mem_cols] = True
        # The bogus certificate (k=0, empty W, owner=member) equals the
        # receiver's minimum only if the member's own *empty* honest
        # certificate is that minimum; a -1 sentinel never matches.
        bogus_score = np.full((b_sz, n_a), -1, dtype=np.int64)
        for j in range(t):
            g = int(mem[j])
            legit = counts_dev[:, g] == 0
            bogus_score[:, mem_cols[j]] = np.where(legit, g, -1)

    deviant = _evaluate_side(
        params, n, rows, act_idx, active, labels, color_idx,
        dev_targets, dev_values, commit_targets, fm_pulls, coh_push,
        caster_cols=caster_cols,
        serve_mask=serve_mask,
        adopt_cols=adopt_cols,
        adopt_rows=adopt_rows,
        commit_pull_cols=commit_pull_cols,
        answer_mask=answer_mask,
        fm_pull_cols=fm_pull_cols,
        coh_push_cols=coh_push_cols,
        bogus_cols=bogus_cols, bogus_score=bogus_score,
        follower_idx=hon_idx,
        forced_scores=(forced_scores, mem) if forced_scores is not None
        else None,
        hold_fail=hold_fail if hold_fail else None,
        extra_fail=bad_owner_masks if bad_owner_masks else None,
        defenses=defenses,
        counts_k=(counts_dev, k_dev),
    )

    return {
        "honest": honest["result"],
        "deviant": deviant["result"],
        "honest_side": honest,
        "detected": deviant["detected"],
        "split": deviant["split"],
        "forged": forged,
        "exposed_members": exposed_members,
    }


def _underbid_hold_fail(
    mode: str, f: int, k_f: np.ndarray, count_f: np.ndarray,
    dev_targets: np.ndarray, dev_values: np.ndarray,
    caster_cols: np.ndarray, col_of: np.ndarray, active: np.ndarray,
    first_vote_sender: Callable, pulled_fixed: Callable,
    pulled_per_trial: Callable, pulled_in: Callable,
    declared_to: Callable, defenses: Defenses,
    ledger_on: bool, omissions_on: bool,
    b_sz: int, n_h: int, n: int, q: int,
) -> np.ndarray:
    """(B, n_h) bool: verifier u fails iff it holds member f's forged
    certificate (mode-specific refutation events)."""
    fail = np.zeros((b_sz, n_h), dtype=bool)

    def fake_vote_fail(voter: int, rnd_idx: int, value: int) -> np.ndarray:
        """A fabricated vote claiming (voter, rnd_idx, value)."""
        if rnd_idx >= q:
            # Round index outside [q): malformed, every holder fails
            # (not gated by any defence toggle).
            return np.ones((b_sz, n_h), dtype=bool)
        if not ledger_on:
            return np.zeros((b_sz, n_h), dtype=bool)
        col = int(col_of[voter])
        if not active[voter] or col < 0 or not caster_cols[col]:
            # Faulty/silent voter: any verifier that pulled it marked it
            # faulty and rejects its votes outright.
            mism = np.ones(b_sz, dtype=bool)
        else:
            mism = (
                (dev_targets[:, col, rnd_idx] != f)
                | (dev_values[:, col, rnd_idx] != value)
            )
        return pulled_fixed(voter) & mism[:, None]

    if mode == "klie":
        if defenses.verify_k:
            fail |= (k_f != 0)[:, None]
    elif mode == "drop_all":
        if omissions_on:
            fail |= pulled_in(declared_to(f))
    elif mode == "alter":
        if ledger_on:
            v0 = first_vote_sender(np.full(b_sz, f, dtype=np.int64))
            have = v0 >= 0
            fail |= (
                (have & (k_f != 0))[:, None]
                & pulled_per_trial(np.maximum(v0, 0))
            )
        # No received votes: forge_certificate_with_k fabricates one
        # vote from agent 0 (or 1) claiming round 0 with value k = 0.
        fake_voter = 0 if f != 0 else 1
        no_votes = count_f == 0
        fail |= no_votes[:, None] & fake_vote_fail(fake_voter, 0, 0)
    else:  # fabricate
        voters = [v for v in range(min(3, n)) if v != f][:2]
        if voters:
            fail |= fake_vote_fail(voters[0], 0, 0)
        if len(voters) > 1:
            fail |= fake_vote_fail(voters[1], 1, 0)
        if omissions_on:
            # Every genuinely received vote was dropped.
            fail |= pulled_in(declared_to(f))
    return fail


def _alt_version_holders(
    commit_targets: np.ndarray, commit_pull_cols: np.ndarray,
    hon_cols: np.ndarray, mem: np.ndarray, b_sz: int, q: int,
) -> list[np.ndarray]:
    """For each member j: (B, n_h) bool — honest u heard version B.

    The equivocator alternates answers A, B, A, B... over *all* pulls
    it receives; arrival order is round-major, puller-label order
    within a round (the engine services pulls in label order).
    """
    out = []
    for j in range(len(mem)):
        v = int(mem[j])
        hit = (commit_targets == v) & commit_pull_cols[None, :, None]
        per_round = hit.sum(axis=1)                       # (B, q)
        prior = np.cumsum(per_round, axis=1) - per_round
        rank = np.cumsum(hit, axis=1)                     # 1-based in rnd
        arrival = prior[:, None, :] + rank                # (B, n_a, q)
        got_b = hit & (arrival % 2 == 0)
        out.append(got_b[:, hon_cols, :].any(axis=2))
    return out


# ---------------------------------------------------------------------------
# Full evaluation of one side (honest baseline or deviant)
# ---------------------------------------------------------------------------

def _evaluate_side(
    params: ProtocolParams, n, rows, act_idx, active, labels, color_idx,
    vote_targets, vote_values, commit_targets, fm_pulls, coh_push,
    *, caster_cols, serve_mask, adopt_cols, adopt_rows,
    commit_pull_cols, answer_mask, fm_pull_cols, coh_push_cols,
    bogus_cols, bogus_score, follower_idx, forced_scores,
    hold_fail, extra_fail, defenses,
    counts_k=None,
) -> dict:
    """Evaluate one behaviour assignment on a draw set.

    ``forced_scores`` is ``((B, t) scores, (t,) member labels)`` for
    members serving something other than their honest certificate;
    ``hold_fail`` maps forged-owner labels to (B, n_h) fail-if-holder
    masks (plus per-trial-owner entries); ``extra_fail`` is a list of
    ``(verifier_mask (B, n_h), bad_owner_mask (B, n))`` refutation
    pairs for honest certificates.
    """
    q, m = params.q, params.m
    b_sz = vote_targets.shape[0]
    n_a = act_idx.size
    if counts_k is None:
        counts, k = _vote_tally(vote_targets, vote_values, caster_cols, n, m)
    else:
        counts, k = counts_k

    score0 = np.where(active[None, :], k * n + labels[None, :], _INT64_MAX)
    if forced_scores is not None:
        fs, fs_labels = forced_scores
        score0 = score0.copy()
        score0[:, fs_labels] = fs

    final, eq, conv = _propagate_findmin(
        score0, fm_pulls, act_idx, serve_mask, adopt_cols, adopt_rows,
        follower_idx, q,
    )
    flw_owner = (final[:, follower_idx] % n).astype(np.int64)
    n_flw = follower_idx.size

    # Verification failures per follower against its own final minimum.
    fail_u = np.zeros((b_sz, n_flw), dtype=bool)
    if hold_fail:
        for key, mask in hold_fail.items():
            if key == "__per_trial__":
                owner = hold_fail["__per_trial_owner__"]
                fail_u |= mask & (flw_owner == owner[:, None])
            elif key == "__per_trial_owner__":
                continue
            else:
                fail_u |= mask & (flw_owner == key)
    if extra_fail:
        for verifier_mask, bad_owner in extra_fail:
            fail_u |= verifier_mask & bad_owner[rows[:, None], flw_owner]

    # Coherence mismatches (only when the defence is on: honest agents
    # then push their minima and fail on any differing certificate).
    if defenses.coherence:
        receiver_mask = np.zeros(n, dtype=bool)
        receiver_mask[follower_idx] = True
        coh_detected = _coherence_detect(
            coh_push, final, coh_push_cols, act_idx, receiver_mask,
            bogus_cols, bogus_score, rows,
        )
    else:
        coh_detected = np.zeros(b_sz, dtype=bool)

    detected = fail_u.any(axis=1) | coh_detected
    winner, split = _outcome(final, follower_idx, detected, color_idx, n)

    # Observer-side good-execution events over the followers.
    k_flw = k[:, follower_idx]
    if n_flw > 1:
        k_sorted = np.sort(k_flw, axis=1)
        k_collision = (
            (k_sorted[:, 1:] == k_sorted[:, :-1])
        ).any(axis=1)
    else:
        k_collision = np.zeros(b_sz, dtype=bool)
    counts_flw = counts[:, follower_idx]
    min_votes = counts_flw.min(axis=1)
    max_votes = counts_flw.max(axis=1)

    # Commitment coverage over the followers (pulls received from every
    # pulling agent).
    if defenses.commitment:
        parked = np.where(
            commit_pull_cols[None, :, None], commit_targets, n
        )
        flat = (rows[:, None, None] * (n + 1) + parked).ravel()
        received = np.bincount(flat, minlength=b_sz * (n + 1)).reshape(
            b_sz, n + 1
        )[:, :n]
        min_pulls = received[:, follower_idx].min(axis=1)
        commit_replies = (
            answer_mask[commit_targets] & commit_pull_cols[None, :, None]
        ).sum(axis=(1, 2), dtype=np.int64)
        n_commit_pullers = int(commit_pull_cols.sum())
    else:
        min_pulls = np.zeros(b_sz, dtype=np.int64)
        commit_replies = np.zeros(b_sz, dtype=np.int64)
        n_commit_pullers = 0

    findmin_replies = (
        serve_mask[fm_pulls] & fm_pull_cols[None, None, :]
    ).sum(axis=(1, 2), dtype=np.int64)
    n_fm_pullers = int(fm_pull_cols.sum())
    n_casters = int(caster_cols.sum())
    n_coh = int(coh_push_cols.sum()) + (
        int(bogus_cols.sum()) if bogus_cols is not None else 0
    )

    # Analytic pricing (DESIGN.md §2/§5): certificate-bearing messages
    # at the winner-certificate size; ⊥ runs price the global minimum's
    # certificate.
    header = 2 * params.label_bits
    per_vote = params.label_bits + params.round_bits + params.vote_bits
    cert_base = params.vote_bits + params.color_bits + params.label_bits
    global_min_owner = (
        np.where(active[None, :], final, _INT64_MAX).min(axis=1) % n
    ).astype(np.int64)
    priced_owner = np.where(winner >= 0, winner, global_min_owner)
    winner_cert_bits = cert_base + counts[rows, priced_owner] * per_vote
    max_cert_bits = cert_base + max_votes * per_vote
    intention = params.intention_bits()

    total_messages = (
        n_commit_pullers * q + commit_replies
        + n_casters * q
        + n_fm_pullers * q + findmin_replies
        + n_coh * q
    )
    total_bits = (
        n_commit_pullers * q * (header + _PULL_TOPIC_BITS)
        + commit_replies * (header + intention)
        + n_casters * q * (header + params.vote_message_bits())
        + n_fm_pullers * q * (header + _PULL_TOPIC_BITS)
        + findmin_replies * (header + winner_cert_bits)
        + n_coh * q * (header + winner_cert_bits)
    )
    max_message_bits = np.maximum(
        header + intention, header + max_cert_bits
    ).astype(np.int64)

    result = {
        "n_active": np.full(b_sz, n_a, dtype=np.int64),
        "winner": winner,
        "min_votes": min_votes.astype(np.int64),
        "max_votes": max_votes.astype(np.int64),
        "k_collision": k_collision,
        "find_min_agreement": eq,
        "find_min_rounds": conv,
        "min_commitment_pulls_received": min_pulls.astype(np.int64),
        "total_messages": np.broadcast_to(
            np.asarray(total_messages, dtype=np.int64), (b_sz,)
        ).copy(),
        "total_bits": np.asarray(total_bits, dtype=np.int64),
        "max_message_bits": max_message_bits,
    }
    return {"result": result, "detected": detected, "split": split}
