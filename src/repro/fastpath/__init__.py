"""Vectorised fast path for honest(+faulty) executions of Protocol P.

The agent engine (``repro.gossip`` + ``repro.core``) supports arbitrary
deviating strategies but dispatches Python objects per agent per round.
The scaling experiments (E1–E6) need thousands of honest runs at large n,
where nothing strategic happens — so this package simulates the *same*
process with NumPy array operations, orders of magnitude faster.

The fastpath is cross-validated against the agent engine in
``tests/test_fastpath.py``: identical invariants, statistically identical
outcome distributions, and message/size accounting within the documented
modelling simplification (certificate-bearing messages are priced at the
winner's certificate size).
"""

from repro.fastpath.simulate import FastRunResult, simulate_protocol_fast

__all__ = ["FastRunResult", "simulate_protocol_fast"]
