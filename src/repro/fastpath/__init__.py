"""Vectorised fast paths for honest(+faulty) executions of Protocol P.

The agent engine (``repro.gossip`` + ``repro.core``) supports arbitrary
deviating strategies but dispatches Python objects per agent per round.
The scaling experiments (E1–E6) need thousands of honest runs at large n,
where nothing strategic happens — so this package simulates the *same*
process with NumPy array operations, orders of magnitude faster:

* :func:`simulate_protocol_fast` — one run, vectorised within the run;
* :func:`simulate_protocol_fast_batch` — B runs in one batched pass
  (trial-axis vectorisation; a bit-exact seed-parity mode and a
  sufficient-statistics mode, see :mod:`repro.fastpath.batch`);
* :func:`simulate_strategy_fast_batch` — B *paired* honest/deviant runs
  for every registered coalition strategy, compiled from the same plan
  registry as the agent engine (:mod:`repro.fastpath.strategies`).

The fastpaths are cross-validated against the agent engine in
``tests/test_fastpath.py`` / ``tests/test_strategy_conformance.py`` and
against each other in ``tests/test_fastpath_batch.py``: identical
invariants, statistically identical outcome distributions, and
message/size accounting within the documented modelling simplifications
(DESIGN.md §2–§3, §5).
"""

from repro.fastpath.batch import (
    FastBatchResult,
    batch_from_runs,
    simulate_protocol_fast_batch,
)
from repro.fastpath.graphs import GraphBatchResult, simulate_graph_fast_batch
from repro.fastpath.simulate import FastRunResult, simulate_protocol_fast
from repro.fastpath.strategies import (
    StrategyBatchResult,
    simulate_strategy_fast_batch,
)

__all__ = [
    "FastBatchResult",
    "FastRunResult",
    "GraphBatchResult",
    "StrategyBatchResult",
    "batch_from_runs",
    "simulate_graph_fast_batch",
    "simulate_protocol_fast",
    "simulate_protocol_fast_batch",
    "simulate_strategy_fast_batch",
]
