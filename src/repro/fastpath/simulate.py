"""NumPy-vectorised simulation of honest/faulty runs of Protocol P.

Key observation: when every active agent follows the protocol, the
outcome is fully determined by (a) the votes cast in the Voting phase and
(b) whether pull-based Find-Min informs every active agent within ``q``
rounds.  Verification always passes (the agent-engine tests prove that)
and Coherence only matters when Find-Min failed.  So the fastpath:

1. draws all ``|A| * q`` votes at once and accumulates per-receiver sums
   with exact int64 arithmetic (a split-halves ``bincount``; a plain
   float-weighted bincount would lose precision beyond 2^53),
2. finds the winner as argmin of ``(k, label)``,
3. simulates the q pull rounds of Find-Min as boolean-mask updates,
4. prices messages analytically, using the winner's certificate size for
   every certificate-bearing message (a documented simplification — see
   DESIGN.md §2; the agent engine provides exact totals and the
   cross-validation test keeps the two within a small factor).

Integer-safety bound: per-receiver vote sums are ~``q`` values below
``m = n^3``; the global accumulation stays far under 2^63 for every n
this simulator is asked to run (guarded by an explicit check).

The random draws of one run are centralised in :func:`_draw_run` in a
fixed order, shape and dtype.  The trial-axis batched engine
(:mod:`repro.fastpath.batch`) replays exactly the same per-trial streams,
which is what makes batched and per-run results bit-identical
(`tests/test_fastpath_batch.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.params import ProtocolParams
from repro.util.rng import SeedTree

__all__ = ["FastRunResult", "simulate_protocol_fast"]

_PULL_TOPIC_BITS = 2

# Above this many values in a single accumulation bin the split-halves
# bincount could exceed 2^53 per bin and stop being exact; fall back to
# np.add.at (exact, slower).  2^21 values of 2^32 - 1 each stay < 2^53.
_EXACT_BINCOUNT_MAX_PER_BIN = 1 << 21


@dataclass(frozen=True)
class FastRunResult:
    """Fastpath counterpart of :class:`repro.core.outcome.RunResult`."""

    n: int
    n_active: int
    outcome: Hashable | None
    winner: int | None
    rounds: int
    # Good-execution events (Definition 2):
    min_votes: int
    max_votes: int
    k_collision: bool
    find_min_agreement: bool
    find_min_rounds: int          # rounds until everyone informed (-1: never)
    # Lemma 6.1 observable (commitment coverage):
    min_commitment_pulls_received: int
    # Complexity accounting:
    total_messages: int
    total_bits: int
    max_message_bits: int

    @property
    def succeeded(self) -> bool:
        return self.outcome is not None

    @property
    def is_good(self) -> bool:
        return (
            self.min_votes >= 1
            and not self.k_collision
            and self.find_min_agreement
        )


def _peer_dtype(n: int) -> np.dtype:
    """Smallest unsigned dtype that holds every peer label in [0, n)."""
    return np.dtype(np.uint16) if n <= (1 << 16) else np.dtype(np.uint32)


def _draw_run(
    rng: np.random.Generator, n: int, n_a: int, q: int, m: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All random draws of one run, in one fixed order.

    Returns ``(targets_raw, vote_values, pulls_raw)`` where

    * ``targets_raw`` — shape ``(2, n_a, q)``: Commitment pull targets
      (row 0) and Voting push targets (row 1), raw in ``[0, n-1)`` (the
      self-exclusion offset is applied later by :func:`_offset_self`);
    * ``vote_values`` — shape ``(n_a, q)``: vote values in ``[0, m)``;
    * ``pulls_raw`` — shape ``(q, n_a)``: Find-Min pull targets, raw.

    Both the per-run and the batched fastpath draw through this helper,
    so a trial's stream is identical in either engine.
    """
    dt = _peer_dtype(n)
    targets_raw = rng.integers(n - 1, size=(2, n_a, q), dtype=dt)
    vote_values = rng.integers(m, size=(n_a, q), dtype=np.int64)
    pulls_raw = rng.integers(n - 1, size=(q, n_a), dtype=dt)
    return targets_raw, vote_values, pulls_raw


def _offset_self(raw: np.ndarray, self_ids: np.ndarray) -> np.ndarray:
    """Map raw draws over [n-1] to uniform peers over [n] \\ {self}.

    In-place on ``raw`` (an rng output we own); ``self_ids`` broadcasts
    against it.
    """
    raw += (raw >= self_ids).astype(raw.dtype)
    return raw


def _exact_index_sums(
    idx: np.ndarray, values: np.ndarray, length: int, max_bin_count: int
) -> np.ndarray:
    """Exact int64 scatter-add of ``values`` (int64, >= 0) into bins.

    ``np.bincount`` accumulates weights in float64, which is only exact
    while every bin total stays below 2^53.  Splitting each value into
    32-bit halves guarantees that as long as no bin receives more than
    ``_EXACT_BINCOUNT_MAX_PER_BIN`` values — then both half-sums are
    integer-exact and recombine without loss.  The (never hit in
    practice) oversized case falls back to ``np.add.at``.
    """
    if max_bin_count < _EXACT_BINCOUNT_MAX_PER_BIN:
        if int(values.max(initial=0)) < 1 << 32:
            # Values already fit one 32-bit half — one bincount suffices.
            return np.bincount(
                idx, weights=values, minlength=length
            ).astype(np.int64)
        lo = np.bincount(idx, weights=values & 0xFFFFFFFF, minlength=length)
        hi = np.bincount(idx, weights=values >> 32, minlength=length)
        return lo.astype(np.int64) + (hi.astype(np.int64) << 32)
    sums = np.zeros(length, dtype=np.int64)
    np.add.at(sums, idx, values)
    return sums


def simulate_protocol_fast(
    colors: Sequence[Hashable],
    gamma: float = 3.0,
    faulty: frozenset[int] = frozenset(),
    seed: int = 0,
) -> FastRunResult:
    """Simulate one honest(+faulty) execution of Protocol P."""
    n = len(colors)
    params = ProtocolParams(n=n, gamma=gamma, num_colors=len(set(colors)))
    q, m = params.q, params.m
    if (q + 1) * m >= 2 ** 62:
        raise ValueError(f"n={n} too large for exact int64 vote sums")

    tree = SeedTree(seed)
    rng = tree.child("fast").generator()

    active = np.ones(n, dtype=bool)
    if faulty:
        active[list(faulty)] = False
    act_idx = np.flatnonzero(active)
    n_a = int(act_idx.size)
    if n_a == 0:
        raise ValueError("no active agent")

    targets_raw, vote_values, pulls_raw = _draw_run(rng, n, n_a, q, m)
    targets = _offset_self(targets_raw, act_idx[None, :, None])
    commit_targets, vote_targets = targets[0], targets[1]
    pull_rounds = _offset_self(pulls_raw, act_idx[None, :])

    # ------------------------------------------------------------------
    # Commitment phase: targets only matter for accounting and for the
    # Lemma 6.1 coverage statistic (who got pulled how often); Voting
    # phase: per-receiver counts.  One flattened bincount accumulates
    # both (commitment targets in bins [0, n), vote targets in [n, 2n)).
    commit_replies = int(active[commit_targets].sum())
    both = np.concatenate(
        [commit_targets.ravel(), vote_targets.ravel()]
    ).astype(np.intp)
    both[commit_targets.size:] += n
    received = np.bincount(both, minlength=2 * n)
    pulls_received, counts = received[:n], received[n:]
    min_pulls = int(pulls_received[act_idx].min())

    # Exact integer vote sums (see _exact_index_sums for the precision
    # argument); k lives in [m].
    k_acc = _exact_index_sums(
        vote_targets.ravel().astype(np.intp), vote_values.ravel(), n,
        int(counts.max()),
    )
    k = k_acc % m

    k_active = k[act_idx]
    counts_active = counts[act_idx]
    k_collision = int(np.unique(k_active).size) < n_a

    # Winner: argmin of (k, label) among active agents.
    order = np.lexsort((act_idx, k_active))
    winner = int(act_idx[order[0]])

    # ------------------------------------------------------------------
    # Find-Min: pull gossip of the minimal certificate for exactly q
    # rounds (the schedule is fixed; agents keep pulling after local
    # convergence, which matters for message accounting — replies are
    # therefore priced over all q rounds even though the informed set
    # stops changing once everyone knows the minimum).
    findmin_replies = int(active[pull_rounds].sum())
    informed = np.zeros(n, dtype=bool)
    informed[winner] = True
    find_min_rounds = -1
    for rnd in range(1, q + 1):
        informed[act_idx] |= informed[pull_rounds[rnd - 1]]
        if bool(informed[act_idx].all()):
            find_min_rounds = rnd
            break
    agreement = find_min_rounds > 0

    outcome = colors[winner] if agreement else None

    # ------------------------------------------------------------------
    # Accounting (header = 2 labels; certificate-bearing messages priced
    # at the winner-certificate size — see module docstring).
    header = 2 * params.label_bits
    winner_cert_bits = params.certificate_bits(int(counts[winner]))
    max_cert_bits = params.certificate_bits(int(counts_active.max()))

    commit_req_bits = n_a * q * (header + _PULL_TOPIC_BITS)
    commit_rep_bits = commit_replies * (header + params.intention_bits())
    vote_bits = n_a * q * (header + params.vote_message_bits())
    findmin_req_bits = n_a * q * (header + _PULL_TOPIC_BITS)
    findmin_rep_bits = findmin_replies * (header + winner_cert_bits)
    coherence_bits = n_a * q * (header + winner_cert_bits)

    total_messages = (
        n_a * q            # commitment requests
        + commit_replies
        + n_a * q          # votes
        + n_a * q          # find-min requests
        + findmin_replies
        + n_a * q          # coherence pushes
    )
    total_bits = (
        commit_req_bits + commit_rep_bits + vote_bits
        + findmin_req_bits + findmin_rep_bits + coherence_bits
    )
    max_message_bits = max(
        header + params.intention_bits(), header + max_cert_bits
    )

    return FastRunResult(
        n=n,
        n_active=n_a,
        outcome=outcome,
        winner=winner if agreement else None,
        rounds=params.total_rounds,
        min_votes=int(counts_active.min()),
        max_votes=int(counts_active.max()),
        k_collision=k_collision,
        find_min_agreement=agreement,
        find_min_rounds=find_min_rounds,
        min_commitment_pulls_received=min_pulls,
        total_messages=total_messages,
        total_bits=total_bits,
        max_message_bits=max_message_bits,
    )
