"""NumPy-vectorised simulation of honest/faulty runs of Protocol P.

Key observation: when every active agent follows the protocol, the
outcome is fully determined by (a) the votes cast in the Voting phase and
(b) whether pull-based Find-Min informs every active agent within ``q``
rounds.  Verification always passes (the agent-engine tests prove that)
and Coherence only matters when Find-Min failed.  So the fastpath:

1. draws all ``|A| * q`` votes at once and accumulates per-receiver sums
   with exact int64 arithmetic (``np.add.at``; float bincount would lose
   precision beyond 2^53),
2. finds the winner as argmin of ``(k, label)``,
3. simulates the q pull rounds of Find-Min as boolean-mask updates,
4. prices messages analytically, using the winner's certificate size for
   every certificate-bearing message (a documented simplification — the
   exact per-message sizes vary with the sender's current minimum; the
   agent engine provides exact totals and the cross-validation test keeps
   the two within a small factor).

Integer-safety bound: per-receiver vote sums are ~``q`` values below
``m = n^3``; the global accumulation stays far under 2^63 for every n
this simulator is asked to run (guarded by an explicit check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.params import ProtocolParams
from repro.util.rng import SeedTree

__all__ = ["FastRunResult", "simulate_protocol_fast"]

_PULL_TOPIC_BITS = 2


@dataclass(frozen=True)
class FastRunResult:
    """Fastpath counterpart of :class:`repro.core.outcome.RunResult`."""

    n: int
    n_active: int
    outcome: Hashable | None
    winner: int | None
    rounds: int
    # Good-execution events (Definition 2):
    min_votes: int
    max_votes: int
    k_collision: bool
    find_min_agreement: bool
    find_min_rounds: int          # rounds until everyone informed (-1: never)
    # Lemma 6.1 observable (commitment coverage):
    min_commitment_pulls_received: int
    # Complexity accounting:
    total_messages: int
    total_bits: int
    max_message_bits: int

    @property
    def succeeded(self) -> bool:
        return self.outcome is not None

    @property
    def is_good(self) -> bool:
        return (
            self.min_votes >= 1
            and not self.k_collision
            and self.find_min_agreement
        )


def _sample_peers(rng: np.random.Generator, self_ids: np.ndarray,
                  n: int, size: tuple[int, ...] | int) -> np.ndarray:
    """Uniform peers over [n] \\ {self} for each row of ``self_ids``."""
    raw = rng.integers(n - 1, size=size)
    return raw + (raw >= self_ids)


def simulate_protocol_fast(
    colors: Sequence[Hashable],
    gamma: float = 3.0,
    faulty: frozenset[int] = frozenset(),
    seed: int = 0,
) -> FastRunResult:
    """Simulate one honest(+faulty) execution of Protocol P."""
    n = len(colors)
    params = ProtocolParams(n=n, gamma=gamma, num_colors=len(set(colors)))
    q, m = params.q, params.m
    if (q + 1) * m >= 2 ** 62:
        raise ValueError(f"n={n} too large for exact int64 vote sums")

    tree = SeedTree(seed)
    rng = tree.child("fast").generator()

    active = np.ones(n, dtype=bool)
    if faulty:
        active[list(faulty)] = False
    act_idx = np.flatnonzero(active)
    n_a = int(act_idx.size)
    if n_a == 0:
        raise ValueError("no active agent")

    # ------------------------------------------------------------------
    # Commitment phase: targets only matter for accounting and for the
    # Lemma 6.1 coverage statistic (who got pulled how often).
    commit_targets = _sample_peers(rng, act_idx[:, None], n, (n_a, q))
    commit_replies = int(active[commit_targets].sum())
    pulls_received = np.zeros(n, dtype=np.int64)
    np.add.at(pulls_received, commit_targets.ravel(), 1)
    min_pulls = int(pulls_received[act_idx].min())

    # ------------------------------------------------------------------
    # Voting phase: all votes at once; exact integer accumulation.
    vote_targets = _sample_peers(rng, act_idx[:, None], n, (n_a, q))
    vote_values = rng.integers(m, size=(n_a, q), dtype=np.int64)
    k_acc = np.zeros(n, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    np.add.at(k_acc, vote_targets.ravel(), vote_values.ravel())
    np.add.at(counts, vote_targets.ravel(), 1)
    k = k_acc % m

    k_active = k[act_idx]
    counts_active = counts[act_idx]
    k_collision = int(np.unique(k_active).size) < n_a

    # Winner: argmin of (k, label) among active agents.
    order = np.lexsort((act_idx, k_active))
    winner = int(act_idx[order[0]])

    # ------------------------------------------------------------------
    # Find-Min: pull gossip of the minimal certificate for exactly q
    # rounds (the schedule is fixed; agents keep pulling after local
    # convergence, which matters for message accounting).
    informed = np.zeros(n, dtype=bool)
    informed[winner] = True
    find_min_rounds = -1
    findmin_replies = 0
    for rnd in range(1, q + 1):
        pulls = _sample_peers(rng, act_idx, n, n_a)
        findmin_replies += int(active[pulls].sum())
        informed[act_idx] |= informed[pulls]
        if find_min_rounds < 0 and bool(informed[act_idx].all()):
            find_min_rounds = rnd
    agreement = bool(informed[act_idx].all())

    outcome = colors[winner] if agreement else None

    # ------------------------------------------------------------------
    # Accounting (header = 2 labels; certificate-bearing messages priced
    # at the winner-certificate size — see module docstring).
    header = 2 * params.label_bits
    winner_cert_bits = params.certificate_bits(int(counts[winner]))
    max_cert_bits = params.certificate_bits(int(counts_active.max()))

    commit_req_bits = n_a * q * (header + _PULL_TOPIC_BITS)
    commit_rep_bits = commit_replies * (header + params.intention_bits())
    vote_bits = n_a * q * (header + params.vote_message_bits())
    findmin_req_bits = n_a * q * (header + _PULL_TOPIC_BITS)
    findmin_rep_bits = findmin_replies * (header + winner_cert_bits)
    coherence_bits = n_a * q * (header + winner_cert_bits)

    total_messages = (
        n_a * q            # commitment requests
        + commit_replies
        + n_a * q          # votes
        + n_a * q          # find-min requests
        + findmin_replies
        + n_a * q          # coherence pushes
    )
    total_bits = (
        commit_req_bits + commit_rep_bits + vote_bits
        + findmin_req_bits + findmin_rep_bits + coherence_bits
    )
    max_message_bits = max(
        header + params.intention_bits(), header + max_cert_bits
    )

    return FastRunResult(
        n=n,
        n_active=n_a,
        outcome=outcome,
        winner=winner if agreement else None,
        rounds=params.total_rounds,
        min_votes=int(counts_active.min()),
        max_votes=int(counts_active.max()),
        k_collision=k_collision,
        find_min_agreement=agreement,
        find_min_rounds=find_min_rounds,
        min_commitment_pulls_received=min_pulls,
        total_messages=total_messages,
        total_bits=total_bits,
        max_message_bits=max_message_bits,
    )
