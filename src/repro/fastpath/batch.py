"""Trial-axis batched fastpath: B Monte-Carlo runs in one NumPy pass.

Every experiment in the reproduction is a Monte-Carlo estimate over
hundreds of independent runs of Protocol P.  The per-run fastpath
(:mod:`repro.fastpath.simulate`) vectorises *within* a run but still pays
~10^2 NumPy dispatches of Python overhead per trial; this module batches
the trial axis as well.  Two modes share one result type:

**Seed-parity mode** (``seed_parity=True``) replays every trial's random
stream exactly as the per-run fastpath consumes it (``SeedTree(seed) ->
child("fast")`` through the shared ``_draw_run`` helper) and carries the
whole batch through ``(B, n_a, q)`` tensors: row-offset flattened
``bincount`` accumulation (trial ``b`` owns bins ``[b*n, (b+1)*n)``) with
the exact-int64 vote-sum guarantee, batch-wide Find-Min round masks, and
vectorised accounting.  Results are *bit-identical* to looping
``simulate_protocol_fast`` over the same seeds — not merely
statistically consistent (``tests/test_fastpath_batch.py``).

**Statistical mode** (the default) samples each trial's sufficient
statistics instead of materialising per-pull tensors, which removes the
per-trial RNG volume (the actual wall-clock floor) entirely:

* per-agent vote hashes ``k`` are drawn directly — conditioned on
  receiving at least one vote, ``k_u`` is uniform on ``[m)`` and
  independent across receivers (receivers see disjoint vote sets), so
  the winner (argmin of ``(k, label)``) and the k-collision event keep
  their exact mechanism and distribution;
* zero-vote receivers are sampled from the exact per-cell marginal
  ``Bin((n_a-1)q, 1/(n-1))`` and pinned to ``k = 0``;
* the Find-Min spread is the exact Markov chain of the informed-set
  size: each uninformed active agent flips with probability
  ``|I|/(n-1)`` independently, so one binomial per round per trial
  reproduces the exact law of ``find_min_rounds`` and agreement;
* pull replies are ``Bin(n_a q, (n_a-1)/(n-1))`` (exact marginals);
* the count *statistics* (min/max votes, zero-vote cell counts, the
  winner's certificate size, min commitment pulls) are sampled from
  the exact per-cell marginal under an independence approximation
  across cells — the multinomial total constraint induces only O(1/n)
  negative correlation.  This is the one documented approximation of
  the mode (DESIGN.md §3); it touches the good-execution rate through
  the ``min_votes >= 1`` event (an O(1/n)-class perturbation), while
  fairness, rounds/agreement, and communication means stay exact.

Memory is bounded in both modes: statistical mode works in fixed-size
trial blocks (a function of ``n`` only, so results never depend on the
chunking), and parity mode splits ``B`` so a chunk's ``B * n_a * q``
tensor stays under ``max_chunk_elements``.  Chunked and unchunked runs
produce identical arrays because every trial (parity) or block
(statistical) owns its own random stream.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import ClassVar, Hashable, Iterable, Sequence

import numpy as np
from scipy import stats as _scipy_stats

from repro.core.params import ProtocolParams
from repro.fastpath.simulate import (
    _PULL_TOPIC_BITS,
    FastRunResult,
    _draw_run,
    _exact_index_sums,
    _offset_self,
    _peer_dtype,
)
from repro.util.faults import normalise_faulty
from repro.util.rng import SeedTree

__all__ = [
    "DEFAULT_CHUNK_ELEMENTS",
    "FastBatchResult",
    "active_matrix",
    "batch_from_runs",
    "simulate_protocol_fast_batch",
    "stat_block_trials",
]

# Elements (trial x agent x round cells) a parity-mode chunk may
# materialise.  The working set is a small constant number of such
# tensors, so 2^23 cells keeps peak memory in the low hundreds of MB.
DEFAULT_CHUNK_ELEMENTS = 1 << 23

# Statistical mode materialises (block, n) arrays only; blocks are a
# fixed function of n so results are chunking-independent.
_STAT_BLOCK_ELEMENTS = 1 << 22
_STAT_STREAM_SALT = 0x_FA57_BA7C  # domain-separates block streams

_INT64_MAX = np.iinfo(np.int64).max


def stat_block_trials(n: int) -> int:
    """Trials per statistical-mode block — the engine's stream quantum.

    The statistical engine derives one RNG stream per fixed-size block
    of trials (a function of ``n`` only), so a workload split at
    multiples of this quantum reproduces the unsplit arrays bit-for-bit.
    The parallel execution backend cuts its trial shards here.
    """
    return max(1, _STAT_BLOCK_ELEMENTS // n)


@dataclass(frozen=True)
class FastBatchResult:
    """Struct-of-arrays result of B fastpath trials.

    Every per-trial field of :class:`FastRunResult` becomes a length-B
    array; :meth:`trial` reconstructs the per-run dataclass (used by the
    equivalence tests and anywhere a single run is handed off).
    ``winner`` is the winning agent's label, or ``-1`` where the run
    failed (⊥) — mirroring ``FastRunResult.winner is None``.

    ``ARRAY_FIELDS`` is the out-buffer protocol of the parallel
    backend's zero-copy transport (:mod:`repro.exec.shm`): it declares
    every trial-axis array field and its exact dtype, so a pool worker
    can write its shard's slice of each array straight into a parent-
    owned shared-memory block instead of pickling it back.
    """

    #: Trial-axis arrays and their dtypes, in declaration order (the
    #: out-buffer protocol; dtypes must match the constructed arrays).
    ARRAY_FIELDS: ClassVar[tuple[tuple[str, str], ...]] = (
        ("n_active", "int64"),
        ("winner", "int64"),
        ("min_votes", "int64"),
        ("max_votes", "int64"),
        ("k_collision", "bool"),
        ("find_min_agreement", "bool"),
        ("find_min_rounds", "int64"),
        ("min_commitment_pulls_received", "int64"),
        ("total_messages", "int64"),
        ("total_bits", "int64"),
        ("max_message_bits", "int64"),
    )

    n: int
    n_trials: int
    rounds: int
    colors: tuple[Hashable, ...]
    n_active: np.ndarray                      # (B,) int64
    winner: np.ndarray                        # (B,) int64, -1 on failure
    min_votes: np.ndarray                     # (B,) int64
    max_votes: np.ndarray                     # (B,) int64
    k_collision: np.ndarray                   # (B,) bool
    find_min_agreement: np.ndarray            # (B,) bool
    find_min_rounds: np.ndarray               # (B,) int64, -1: never
    min_commitment_pulls_received: np.ndarray  # (B,) int64
    total_messages: np.ndarray                # (B,) int64
    total_bits: np.ndarray                    # (B,) int64
    max_message_bits: np.ndarray              # (B,) int64

    def __len__(self) -> int:
        return self.n_trials

    # -- per-trial views ---------------------------------------------------
    @property
    def succeeded(self) -> np.ndarray:
        """(B,) bool — did trial b reach consensus?"""
        return self.winner >= 0

    @property
    def is_good(self) -> np.ndarray:
        """(B,) bool — Definition 2 good-execution flag per trial."""
        return (
            (self.min_votes >= 1)
            & ~self.k_collision
            & self.find_min_agreement
        )

    def outcomes(self) -> list[Hashable | None]:
        """Per-trial winning colors (``None`` for ⊥), in trial order."""
        return [
            self.colors[w] if w >= 0 else None for w in self.winner.tolist()
        ]

    def trial(self, i: int) -> FastRunResult:
        """Reconstruct trial ``i`` as a :class:`FastRunResult`."""
        w = int(self.winner[i])
        return FastRunResult(
            n=self.n,
            n_active=int(self.n_active[i]),
            outcome=self.colors[w] if w >= 0 else None,
            winner=w if w >= 0 else None,
            rounds=self.rounds,
            min_votes=int(self.min_votes[i]),
            max_votes=int(self.max_votes[i]),
            k_collision=bool(self.k_collision[i]),
            find_min_agreement=bool(self.find_min_agreement[i]),
            find_min_rounds=int(self.find_min_rounds[i]),
            min_commitment_pulls_received=int(
                self.min_commitment_pulls_received[i]
            ),
            total_messages=int(self.total_messages[i]),
            total_bits=int(self.total_bits[i]),
            max_message_bits=int(self.max_message_bits[i]),
        )

    # -- cheap aggregate reducers ------------------------------------------
    def _require_trials(self) -> None:
        if self.n_trials == 0:
            raise ValueError("empty batch has no rates")

    def success_rate(self) -> float:
        self._require_trials()
        return float(np.count_nonzero(self.winner >= 0)) / self.n_trials

    def fail_rate(self) -> float:
        return 1.0 - self.success_rate()

    def good_rate(self) -> float:
        self._require_trials()
        return float(np.count_nonzero(self.is_good)) / self.n_trials

    def winning_counts(self) -> Counter:
        """Wins per color over successful trials (one bincount, no dicts
        in the trial loop)."""
        won = self.winner[self.winner >= 0]
        per_label = np.bincount(won, minlength=self.n)
        tally: Counter = Counter()
        for label in np.flatnonzero(per_label):
            tally[self.colors[label]] += int(per_label[label])
        return tally

    # -- sentinel-aware reducers -------------------------------------------
    # ``find_min_rounds`` and ``min_commitment_pulls_received`` use -1 as
    # a sentinel: "Find-Min never converged" in the fastpath engines, and
    # "not observed" on the agent-engine route (``dispatch._agent_worker``).
    # Plain means/mins over those columns silently absorb the sentinels;
    # every aggregate consumer should reduce through these instead.

    def observed_find_min_rounds(self) -> np.ndarray:
        """``find_min_rounds`` with the -1 sentinels masked out."""
        return self.find_min_rounds[self.find_min_rounds >= 0]

    def find_min_rounds_mean(self) -> float:
        """Mean convergence round over the trials where it was observed
        (NaN when no trial observed one — e.g. the agent engine)."""
        observed = self.observed_find_min_rounds()
        return float(observed.mean()) if observed.size else float("nan")

    def min_commitment_pulls_seen(self) -> int | None:
        """Smallest observed Lemma 6.1 coverage statistic, or ``None``
        when no engine-observed value exists (agent-engine batches)."""
        observed = self.min_commitment_pulls_received[
            self.min_commitment_pulls_received >= 0
        ]
        return int(observed.min()) if observed.size else None


# The shared faults-to-per-trial convention (kept under its historical
# private name for in-package callers).
_normalise_faulty = normalise_faulty


def simulate_protocol_fast_batch(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    *,
    seed_parity: bool = False,
    max_chunk_elements: int | None = None,
) -> FastBatchResult:
    """Simulate ``len(seeds)`` executions of Protocol P in batched NumPy.

    Parameters
    ----------
    colors:
        Initial color per agent (shared by every trial).
    seeds:
        One root seed per trial.  Any fixed seed list gives a fully
        deterministic batch in either mode.
    faulty:
        A single fault set applied to every trial, or one set per trial.
    seed_parity:
        ``True`` replays each trial's per-run random stream so trial
        ``b`` equals ``simulate_protocol_fast(colors, gamma, faulty_b,
        seeds[b])`` bit-for-bit (slower: the full pull tensors are
        drawn).  ``False`` (default) samples sufficient statistics —
        exact mechanism and distributions except for the documented
        independence approximation on count extremes (module docstring).
    max_chunk_elements:
        Parity-mode memory budget: trials are processed in chunks whose
        ``B_chunk * n_a * q`` stays at or under this many cells (default
        :data:`DEFAULT_CHUNK_ELEMENTS`).  Statistical mode's memory is
        bounded by fixed-size blocks and ignores this knob; neither
        mode's results depend on it.
    """
    colors = tuple(colors)
    n = len(colors)
    seeds = [int(s) for s in seeds]
    n_trials = len(seeds)
    params = ProtocolParams(n=n, gamma=gamma, num_colors=len(set(colors)))
    q, m = params.q, params.m
    if (q + 1) * m >= 2 ** 62:
        raise ValueError(f"n={n} too large for exact int64 vote sums")
    if n ** 4 >= 2 ** 62:
        raise ValueError(f"n={n} too large for the (k, label) winner key")

    faulty_list = _normalise_faulty(faulty, n_trials)
    for f in faulty_list:
        if len(f) >= n:
            raise ValueError("no active agent")
        for label in f:
            if not 0 <= label < n:
                raise ValueError(f"faulty label {label} out of range")

    if n_trials == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_b = np.zeros(0, dtype=bool)
        return FastBatchResult(
            n=n, n_trials=0, rounds=params.total_rounds, colors=colors,
            n_active=empty_i, winner=empty_i.copy(),
            min_votes=empty_i.copy(), max_votes=empty_i.copy(),
            k_collision=empty_b, find_min_agreement=empty_b.copy(),
            find_min_rounds=empty_i.copy(),
            min_commitment_pulls_received=empty_i.copy(),
            total_messages=empty_i.copy(), total_bits=empty_i.copy(),
            max_message_bits=empty_i.copy(),
        )

    if seed_parity:
        budget = (
            DEFAULT_CHUNK_ELEMENTS if max_chunk_elements is None
            else int(max_chunk_elements)
        )
        n_a_cap = n - min(len(f) for f in faulty_list)
        block = max(1, budget // max(1, n_a_cap * q))
        simulate = _simulate_parity_chunk
    else:
        block = stat_block_trials(n)
        simulate = _simulate_stat_block

    chunks = [
        simulate(n, params, seeds[i:i + block], faulty_list[i:i + block])
        for i in range(0, n_trials, block)
    ]

    def cat(field: str) -> np.ndarray:
        return np.concatenate([c[field] for c in chunks])

    return FastBatchResult(
        n=n,
        n_trials=n_trials,
        rounds=params.total_rounds,
        colors=colors,
        n_active=cat("n_active"),
        winner=cat("winner"),
        min_votes=cat("min_votes"),
        max_votes=cat("max_votes"),
        k_collision=cat("k_collision"),
        find_min_agreement=cat("find_min_agreement"),
        find_min_rounds=cat("find_min_rounds"),
        min_commitment_pulls_received=cat("min_commitment_pulls_received"),
        total_messages=cat("total_messages"),
        total_bits=cat("total_bits"),
        max_message_bits=cat("max_message_bits"),
    )


def active_matrix(
    n: int, faulty_list: Sequence[frozenset[int]]
) -> np.ndarray:
    """(trials, n) boolean mask of active agents for per-trial faults.

    The shared faults-to-mask convention: both batch engines and the
    experiment modules (E6's per-trial fairness targets) build their
    active masks here.
    """
    active = np.ones((len(faulty_list), n), dtype=bool)
    for b, f in enumerate(faulty_list):
        if f:
            active[b, list(f)] = False
    return active


def _accounting(
    params: ProtocolParams,
    n_a: np.ndarray,
    winner_votes: np.ndarray,
    max_votes: np.ndarray,
    commit_replies: np.ndarray,
    findmin_replies: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised message/bit totals — the per-run pricing model
    (winner-certificate size for every certificate-bearing message,
    DESIGN.md §2) applied to length-B arrays."""
    header = 2 * params.label_bits
    per_vote = params.label_bits + params.round_bits + params.vote_bits
    cert_base = params.vote_bits + params.color_bits + params.label_bits
    winner_cert_bits = cert_base + winner_votes * per_vote
    max_cert_bits = cert_base + max_votes * per_vote
    intention = params.intention_bits()

    naq = n_a.astype(np.int64) * params.q
    total_messages = 4 * naq + commit_replies + findmin_replies
    total_bits = (
        2 * naq * (header + _PULL_TOPIC_BITS)          # commit+find-min reqs
        + commit_replies * (header + intention)
        + naq * (header + params.vote_message_bits())
        + findmin_replies * (header + winner_cert_bits)
        + naq * (header + winner_cert_bits)            # coherence pushes
    )
    max_message_bits = np.maximum(header + intention, header + max_cert_bits)
    return total_messages, total_bits, max_message_bits.astype(np.int64)


# ---------------------------------------------------------------------------
# Seed-parity mode: (B, n_a, q) tensors, bit-identical to the per-run path.
# ---------------------------------------------------------------------------

def _simulate_parity_chunk(
    n: int,
    params: ProtocolParams,
    seeds: Sequence[int],
    faulty_list: Sequence[frozenset[int]],
) -> dict[str, np.ndarray]:
    """One chunk of trials, fully vectorised over the trial axis."""
    q, m = params.q, params.m
    b_sz = len(seeds)
    rows = np.arange(b_sz)

    active = active_matrix(n, faulty_list)
    n_a = active.sum(axis=1)
    n_a_max = int(n_a.max())
    all_active = not any(faulty_list)

    # Active labels padded to n_a_max with the sentinel "agent n" (an
    # extra informed-array column that no real draw ever reads).
    if (n_a == n_a_max).all():
        valid = None
        act_pad = np.where(active)[1].reshape(b_sz, n_a_max)
    else:
        act_pad = np.full((b_sz, n_a_max), n, dtype=np.int64)
        valid = np.zeros((b_sz, n_a_max), dtype=bool)
        for b in range(b_sz):
            idx = np.flatnonzero(active[b])
            act_pad[b, : idx.size] = idx
            valid[b, : idx.size] = True

    # ------------------------------------------------------------------
    # Draws + exact accumulation: the only per-trial loop.  Each trial
    # replays the exact stream the per-run fastpath would consume for
    # its seed, and accumulates its own n bins right away — per-trial
    # bincounts keep the scatter targets cache-resident, which beats a
    # batch-flattened (trial, receiver) bincount whose B*n bins thrash
    # the cache (~4x on the benchmark machine).  Only the Find-Min pull
    # tensor is kept, for the batch-wide round loop below.
    pulls = np.zeros((b_sz, q, n_a_max), dtype=_peer_dtype(n))
    pulls_received = np.empty((b_sz, n), dtype=np.int64)
    counts = np.empty((b_sz, n), dtype=np.int64)
    k_acc = np.empty((b_sz, n), dtype=np.int64)
    naq = n_a.astype(np.int64) * q
    commit_replies = naq.copy()
    for b, seed in enumerate(seeds):
        rng = SeedTree(seed).child("fast").generator()
        nb = int(n_a[b])
        act_idx = act_pad[b, :nb]
        t, v, p = _draw_run(rng, n, nb, q, m)
        _offset_self(t, act_idx[None, :, None])
        pulls[b, :, :nb] = p
        if not all_active:
            commit_replies[b] = int(active[b, t[0]].sum())
        both = np.concatenate([t[0].ravel(), t[1].ravel()]).astype(np.intp)
        both[t[0].size:] += n
        received = np.bincount(both, minlength=2 * n)
        pulls_received[b] = received[:n]
        counts[b] = received[n:]
        k_acc[b] = _exact_index_sums(
            t[1].ravel().astype(np.intp), v.ravel(), n,
            int(counts[b].max()),
        )
    _offset_self(pulls, act_pad[:, None, :])
    k = k_acc % m

    # ------------------------------------------------------------------
    # Winner (argmin of (k, label) among active) and Definition 2 events.
    labels = np.arange(n, dtype=np.int64)
    score = np.where(active, k * n + labels, _INT64_MAX)
    winner_idx = score.argmin(axis=1)

    k_sent = np.where(active, k, m)
    k_sorted = np.sort(k_sent, axis=1)
    k_collision = (
        (k_sorted[:, 1:] == k_sorted[:, :-1]) & (k_sorted[:, 1:] < m)
    ).any(axis=1)

    min_votes = np.where(active, counts, _INT64_MAX).min(axis=1)
    max_votes = np.where(active, counts, -1).max(axis=1)
    min_pulls = np.where(active, pulls_received, _INT64_MAX).min(axis=1)

    # Find-Min replies (pulls answered by active agents) for the
    # accounting below; with no faults every pull is answered.
    if all_active:
        findmin_replies = naq.copy()
    else:
        act_at_pull = active[rows[:, None, None], pulls]
        if valid is not None:
            act_at_pull &= valid[:, None, :]
        findmin_replies = act_at_pull.sum(axis=(1, 2), dtype=np.int64)

    # ------------------------------------------------------------------
    # Find-Min: q synchronous pull rounds, vectorised across trials.
    # Column n of `informed` is the padding sentinel's scratch cell.
    informed = np.zeros((b_sz, n + 1), dtype=bool)
    informed[rows, winner_idx] = True
    find_min_rounds = np.full(b_sz, -1, dtype=np.int64)
    rows_col = rows[:, None]
    for rnd in range(1, q + 1):
        gathered = informed[rows_col, pulls[:, rnd - 1, :]]
        now = informed[rows_col, act_pad] | gathered
        informed[rows_col, act_pad] = now
        if valid is not None:
            now |= ~valid
        done = now.all(axis=1)
        find_min_rounds[(find_min_rounds < 0) & done] = rnd
        if done.all():
            break
    agreement = find_min_rounds > 0

    total_messages, total_bits, max_message_bits = _accounting(
        params, n_a, counts[rows, winner_idx], max_votes,
        commit_replies, findmin_replies,
    )

    return {
        "n_active": n_a.astype(np.int64),
        "winner": np.where(agreement, winner_idx, -1).astype(np.int64),
        "min_votes": min_votes,
        "max_votes": max_votes,
        "k_collision": k_collision,
        "find_min_agreement": agreement,
        "find_min_rounds": find_min_rounds,
        "min_commitment_pulls_received": min_pulls,
        "total_messages": total_messages,
        "total_bits": total_bits,
        "max_message_bits": max_message_bits,
    }


# ---------------------------------------------------------------------------
# Statistical mode: sufficient-statistic sampling, O(B * n) per block.
# ---------------------------------------------------------------------------

class _CountMarginal:
    """Exact per-cell law of "pulls received by an active agent":
    ``Bin((n_a - 1) q, 1/(n-1))`` — n_a - 1 active peers each aim q
    uniform pulls at n - 1 non-self targets.  (The Commitment and
    Voting phases share this marginal.)  Holds the CDF on a truncated
    support plus the zero-conditioned CDF for quantile sampling."""

    def __init__(self, n_a: int, n: int, q: int):
        trials = max(0, (n_a - 1) * q)
        p = 1.0 / (n - 1)
        if trials == 0:
            self.p0 = 1.0
            self.cdf = np.ones(1)
            self.cdf_nonzero = np.ones(1)
            return
        dist = _scipy_stats.binom(trials, p)
        cap = int(dist.isf(1e-15)) + 2
        self.cdf = dist.cdf(np.arange(cap + 1))
        self.p0 = float(self.cdf[0])
        nz = (self.cdf - self.p0) / (1.0 - self.p0)
        nz[0] = 0.0
        self.cdf_nonzero = nz

    def sample_min(
        self, rng: np.random.Generator, cells: np.ndarray
    ) -> np.ndarray:
        """Min over ``cells`` iid nonzero draws (independence approx)."""
        u = rng.random(cells.shape[0])
        w = 1.0 - (1.0 - u) ** (1.0 / np.maximum(cells, 1))
        return np.searchsorted(self.cdf_nonzero, w).astype(np.int64)

    def sample_max(
        self, rng: np.random.Generator, cells: np.ndarray
    ) -> np.ndarray:
        """Max over ``cells`` iid draws (independence approx)."""
        u = rng.random(cells.shape[0])
        w = u ** (1.0 / np.maximum(cells, 1))
        return np.searchsorted(self.cdf, w).astype(np.int64)

    def sample_nonzero(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """One draw from the count law conditioned on >= 1."""
        return np.searchsorted(
            self.cdf_nonzero, rng.random(size)
        ).astype(np.int64)


def _simulate_stat_block(
    n: int,
    params: ProtocolParams,
    seeds: Sequence[int],
    faulty_list: Sequence[frozenset[int]],
) -> dict[str, np.ndarray]:
    """One fixed-size block of trials in sufficient-statistic sampling.

    Draw order is fixed (k values, zero-vote sets, vote extremes,
    commitment coverage, replies, Find-Min chain) from one block stream
    derived from the block's seed list, so results are a deterministic
    function of (colors, gamma, faulty, seeds).
    """
    q, m = params.q, params.m
    b_sz = len(seeds)
    rows = np.arange(b_sz)
    rng = np.random.Generator(np.random.PCG64(
        np.random.SeedSequence(entropy=(_STAT_STREAM_SALT, *seeds))
    ))

    all_active = not any(faulty_list)
    active = None if all_active else active_matrix(n, faulty_list)
    n_a = (
        np.full(b_sz, n, dtype=np.int64) if all_active
        else active.sum(axis=1).astype(np.int64)
    )

    # Per-trial count marginals, grouped by distinct n_a.
    marginals: dict[int, _CountMarginal] = {
        int(v): _CountMarginal(int(v), n, q) for v in np.unique(n_a)
    }
    p0 = np.array([marginals[int(v)].p0 for v in n_a])

    # ------------------------------------------------------------------
    # Voting phase.  k_u | (count_u >= 1) ~ Uniform[m), independent
    # across receivers; zero-vote receivers have k_u = 0.
    k = rng.integers(m, size=(b_sz, n), dtype=np.int64)
    zero_votes = rng.binomial(n_a, p0)
    for b in np.flatnonzero(zero_votes):
        pool = (
            np.arange(n) if all_active else np.flatnonzero(active[b])
        )
        cells = rng.choice(pool, size=int(zero_votes[b]), replace=False)
        k[b, cells] = 0

    labels = np.arange(n, dtype=np.int64)
    if all_active:
        score = k * n + labels
    else:
        score = np.where(active, k * n + labels, _INT64_MAX)
    winner_idx = score.argmin(axis=1)
    winner_zero = k[rows, winner_idx] == 0

    k_sent = k if all_active else np.where(active, k, m)
    k_sorted = np.sort(k_sent, axis=1)
    k_collision = (
        (k_sorted[:, 1:] == k_sorted[:, :-1]) & (k_sorted[:, 1:] < m)
    ).any(axis=1)

    # Count extremes from the exact marginals (independence approx),
    # kept mutually coherent: min <= winner's count <= max, zero-vote
    # trials pin the min (and the winner's certificate) at zero.
    min_raw = np.empty(b_sz, dtype=np.int64)
    max_raw = np.empty(b_sz, dtype=np.int64)
    win_raw = np.empty(b_sz, dtype=np.int64)
    for val, marg in marginals.items():
        grp = n_a == val
        min_raw[grp] = marg.sample_min(rng, n_a[grp] - zero_votes[grp])
        max_raw[grp] = marg.sample_max(rng, n_a[grp])
        win_raw[grp] = marg.sample_nonzero(rng, int(grp.sum()))
    nonzero_cells = n_a - zero_votes
    min_votes = np.where(zero_votes > 0, 0, min_raw)
    max_votes = np.maximum.reduce([
        max_raw, min_votes, np.where(nonzero_cells > 0, 1, 0),
    ])
    winner_votes = np.where(
        winner_zero, 0, np.clip(win_raw, np.maximum(min_votes, 1), max_votes)
    )

    # ------------------------------------------------------------------
    # Commitment coverage (same marginal as the votes) and pull replies.
    zero_pulls = rng.binomial(n_a, p0)
    for val, marg in marginals.items():
        grp = n_a == val
        min_raw[grp] = marg.sample_min(rng, n_a[grp] - zero_pulls[grp])
    min_pulls = np.where(zero_pulls > 0, 0, min_raw)

    naq = n_a * q
    p_reply = (n_a - 1) / (n - 1)
    commit_replies = rng.binomial(naq, p_reply).astype(np.int64)
    findmin_replies = rng.binomial(naq, p_reply).astype(np.int64)

    # ------------------------------------------------------------------
    # Find-Min spread: exact Markov chain of the informed-set size
    # (each uninformed active agent flips w.p. |I|/(n-1) per round).
    informed = np.ones(b_sz, dtype=np.int64)
    uninformed = n_a - 1
    find_min_rounds = np.full(b_sz, -1, dtype=np.int64)
    for rnd in range(1, q + 1):
        # p only matters where uninformed > 0, which bounds |I| <= n-1;
        # converged trials draw Binomial(0, .) so clip their p to 1.
        newly = rng.binomial(uninformed, np.minimum(informed / (n - 1), 1.0))
        informed += newly
        uninformed -= newly
        find_min_rounds[(find_min_rounds < 0) & (uninformed == 0)] = rnd
        if (uninformed == 0).all():
            break
    agreement = find_min_rounds > 0

    total_messages, total_bits, max_message_bits = _accounting(
        params, n_a, winner_votes, max_votes, commit_replies,
        findmin_replies,
    )

    return {
        "n_active": n_a,
        "winner": np.where(agreement, winner_idx, -1).astype(np.int64),
        "min_votes": min_votes,
        "max_votes": max_votes,
        "k_collision": k_collision,
        "find_min_agreement": agreement,
        "find_min_rounds": find_min_rounds,
        "min_commitment_pulls_received": min_pulls,
        "total_messages": total_messages,
        "total_bits": total_bits,
        "max_message_bits": max_message_bits,
    }


def batch_from_runs(
    runs: Sequence[FastRunResult], colors: Sequence[Hashable]
) -> FastBatchResult:
    """Assemble per-trial :class:`FastRunResult` objects into a batch.

    Used by the dispatch layer's process-pool and agent-engine routes so
    every tier returns the same struct-of-arrays interface.
    """
    colors = tuple(colors)
    n = len(colors)

    def arr(get, dtype):
        return np.array([get(r) for r in runs], dtype=dtype)

    return FastBatchResult(
        n=n,
        n_trials=len(runs),
        rounds=runs[0].rounds if runs else 0,
        colors=colors,
        n_active=arr(lambda r: r.n_active, np.int64),
        winner=arr(
            lambda r: r.winner if r.winner is not None else -1, np.int64
        ),
        min_votes=arr(lambda r: r.min_votes, np.int64),
        max_votes=arr(lambda r: r.max_votes, np.int64),
        k_collision=arr(lambda r: r.k_collision, bool),
        find_min_agreement=arr(lambda r: r.find_min_agreement, bool),
        find_min_rounds=arr(lambda r: r.find_min_rounds, np.int64),
        min_commitment_pulls_received=arr(
            lambda r: r.min_commitment_pulls_received, np.int64
        ),
        total_messages=arr(lambda r: r.total_messages, np.int64),
        total_bits=arr(lambda r: r.total_bits, np.int64),
        max_message_bits=arr(lambda r: r.max_message_bits, np.int64),
    )
