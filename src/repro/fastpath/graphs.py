"""Trial-axis batched simulator for neighbour-restricted Protocol P.

The graph-restricted runs (E10a, open problem 1) were the last workload
still confined to the per-agent engine: every trial walks ``4q`` rounds
of Python message dispatch.  But an *honest* graph run is exactly as
reducible as the complete-graph case (:mod:`repro.fastpath.simulate`):

* Verification always passes (a voter's declared votes aimed at the
  certificate owner all arrive — pushes are delivered unconditionally —
  so neither the omission nor the alteration direction can fire), hence
  the outcome is fully determined by the per-agent vote sums ``k_u``,
  the Find-Min key spread, and the Coherence cross-checks.
* Two minimal certificates are equal iff their ``(k, owner)`` sort keys
  are equal (each owner builds exactly one certificate), so the whole
  certificate machinery collapses to int64 keys ``k * n + owner``.

So a batch of B trials becomes ``(B, n)`` tensors over CSR adjacency
(per-node neighbour offsets + one flat neighbour array): a u.a.r.
neighbour draw is one gather, the Voting phase is one flattened
``bincount``, Find-Min is ``q`` synchronous gather-min rounds of the
full key field (on a graph, *partial* spreads matter — unlike the
complete-graph fastpath we cannot track just the global winner), and
Coherence failure is one scatter of "received a differing key".

Two RNG modes share the simulation core, mirroring
:mod:`repro.fastpath.batch`:

**Seed-parity mode** replays, per trial and per active agent, the exact
named streams the agent engine consumes — ``child("agent", i,
"graph-intention")`` for the vote intention and ``child("agent", i,
"peers")`` for the 3q peer draws (commitment draws are consumed and
discarded to keep the stream position honest).  Per-trial results are
bit-identical to :func:`repro.extensions.topologies.run_graph_protocol`
(``tests/test_graph_conformance.py``); building ``2 B n`` generators
makes this the small-n conformance bridge, not the fast path.

**Statistical mode** (default) draws the same quantities from one
block-level stream — the mechanism and all distributions are *exact*
(no independence approximation anywhere; only the stream layout
differs from the agent engine), and the per-trial RNG overhead
disappears.

Faulty agents never draw, never vote, never reply (pulling one is a
timeout) and never decide — the same permanent-fault semantics as
:class:`repro.gossip.node.FaultyNode`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import ClassVar, Hashable, Iterable, Sequence

import numpy as np

from repro.core.params import ProtocolParams
from repro.extensions.families import GraphCSR
from repro.fastpath.batch import active_matrix
from repro.fastpath.simulate import _exact_index_sums
from repro.util.faults import normalise_faulty
from repro.util.rng import SeedTree

__all__ = [
    "GraphBatchResult",
    "graph_block_trials",
    "simulate_graph_fast_batch",
]

# Statistical mode materialises (block, n, q)-sized tensors; the block
# is a fixed function of (n, q) so results never depend on chunking.
_BLOCK_ELEMENTS = 1 << 21


def graph_block_trials(n: int, q: int) -> int:
    """Trials per graph-tier block — the engine's stream quantum.

    Statistical mode derives one RNG stream per fixed-size block of
    trials; splitting a workload at multiples of this quantum (as the
    parallel execution backend does) reproduces the unsplit arrays
    bit-for-bit.  (Parity mode replays per-trial streams and is
    split-invariant at any boundary.)
    """
    return max(1, _BLOCK_ELEMENTS // max(1, n * q))
_GRAPH_STREAM_SALT = 0x_6A4F_57B1  # domain-separates graph block streams

_KEY_SENTINEL = np.iinfo(np.int64).max


@dataclass(frozen=True)
class GraphBatchResult:
    """Struct-of-arrays result of B graph-restricted trials.

    The per-trial observables of
    :class:`repro.extensions.topologies.GraphRunResult`:

    ``success``
        Consensus reached — every active agent decided the same color.
    ``winner``
        The winning agent's label when the winning certificate has a
        unique owner, else ``-1`` (mirrors ``GraphRunResult.winner is
        None``: both on failure and on the same-color/different-owner
        freak success).
    ``zero_vote_agents``
        Active agents that received no vote (the fairness hazard:
        their ``k_u`` is pinned at 0 instead of uniform).
    ``split``
        Agreement violated with no agent detecting a failure.
    ``failed_agents``
        Active agents that entered the invalid state (Coherence
        mismatch — the only failure an honest graph run can produce).

    ``ARRAY_FIELDS`` is the out-buffer protocol of the zero-copy
    parallel transport (:mod:`repro.exec.shm`).
    """

    #: Trial-axis arrays and their dtypes, in declaration order (the
    #: out-buffer protocol; dtypes must match the constructed arrays).
    ARRAY_FIELDS: ClassVar[tuple[tuple[str, str], ...]] = (
        ("n_active", "int64"),
        ("success", "bool"),
        ("winner", "int64"),
        ("outcome_idx", "int64"),
        ("zero_vote_agents", "int64"),
        ("split", "bool"),
        ("failed_agents", "int64"),
    )

    n: int
    n_trials: int
    colors: tuple[Hashable, ...]
    n_active: np.ndarray          # (B,) int64
    success: np.ndarray           # (B,) bool
    winner: np.ndarray            # (B,) int64, -1: none/ambiguous
    outcome_idx: np.ndarray       # (B,) int64 palette index, -1: ⊥
    zero_vote_agents: np.ndarray  # (B,) int64
    split: np.ndarray             # (B,) bool
    failed_agents: np.ndarray     # (B,) int64

    def __len__(self) -> int:
        return self.n_trials

    def _require_trials(self) -> None:
        if self.n_trials == 0:
            raise ValueError("empty batch has no rates")

    def success_rate(self) -> float:
        self._require_trials()
        return float(np.count_nonzero(self.success)) / self.n_trials

    def split_rate(self) -> float:
        self._require_trials()
        return float(np.count_nonzero(self.split)) / self.n_trials

    def zero_vote_mean(self) -> float:
        self._require_trials()
        return float(self.zero_vote_agents.mean())

    def outcomes(self) -> list[Hashable | None]:
        """Per-trial winning colors (``None`` for ⊥), in trial order."""
        palette = list(dict.fromkeys(self.colors))
        return [
            palette[c] if c >= 0 else None
            for c in self.outcome_idx.tolist()
        ]

    def winning_counts(self) -> Counter:
        """Wins per unique-owner label over successful trials (the
        fairness tally; ambiguous-owner successes carry no label)."""
        won = self.winner[(self.winner >= 0) & self.success]
        per_label = np.bincount(won, minlength=self.n)
        tally: Counter = Counter()
        for label in np.flatnonzero(per_label):
            tally[int(label)] += int(per_label[label])
        return tally


def _block_adjacency(
    csrs: Sequence[GraphCSR], n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(deg, gbase, flat) for one block of trials.

    ``flat[gbase[b, u] + i]`` is neighbour ``i`` of agent ``u`` in trial
    ``b``; when every trial shares one CSR object the flat array is not
    replicated.
    """
    first = csrs[0]
    if all(c is first for c in csrs):
        deg = np.broadcast_to(first.degrees, (len(csrs), n))
        gbase = np.broadcast_to(first.indptr[:-1], (len(csrs), n))
        return deg, gbase, first.nbrs
    deg = np.stack([c.degrees for c in csrs])
    sizes = np.array([c.nbrs.size for c in csrs], dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    gbase = np.stack([c.indptr[:-1] for c in csrs]) + starts[:, None]
    flat = np.concatenate([c.nbrs for c in csrs])
    return deg, gbase, flat


def _draw_block_stat(
    rng: np.random.Generator, deg: np.ndarray, active: np.ndarray,
    q: int, m: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Block-stream draws: (vote values, intention idx, findmin idx,
    coherence idx) — neighbour *indices*, resolved by the caller."""
    b_sz, n = deg.shape
    hi = np.maximum(deg, 1)  # faulty agents may be isolated; masked out
    values = rng.integers(m, size=(b_sz, n, q), dtype=np.int64)
    intention = rng.integers(hi[:, :, None], size=(b_sz, n, q))
    findmin = rng.integers(hi[:, None, :], size=(b_sz, q, n))
    coherence = rng.integers(hi[:, None, :], size=(b_sz, q, n))
    return values, intention, findmin, coherence


def _draw_block_parity(
    seeds: Sequence[int], deg: np.ndarray, active: np.ndarray,
    q: int, m: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Replay each active agent's named streams exactly as the agent
    engine consumes them (GraphAgent.__init__ + 3q ``_random_peer``
    calls: q commitment, q Find-Min, q Coherence draws, in order)."""
    b_sz, n = deg.shape
    values = np.zeros((b_sz, n, q), dtype=np.int64)
    intention = np.zeros((b_sz, n, q), dtype=np.int64)
    findmin = np.zeros((b_sz, q, n), dtype=np.int64)
    coherence = np.zeros((b_sz, q, n), dtype=np.int64)
    for b, seed in enumerate(seeds):
        tree = SeedTree(seed)
        for i in np.flatnonzero(active[b]):
            i = int(i)
            d = int(deg[b, i])
            agent = tree.child("agent", i)
            g = agent.child("graph-intention").generator()
            values[b, i] = g.integers(m, size=q)
            intention[b, i] = g.integers(d, size=q)
            peers = agent.child("peers").generator().integers(d, size=3 * q)
            findmin[b, :, i] = peers[q:2 * q]
            coherence[b, :, i] = peers[2 * q:]
    return values, intention, findmin, coherence


def _simulate_block(
    n: int,
    params: ProtocolParams,
    csrs: Sequence[GraphCSR],
    seeds: Sequence[int],
    faulty_list: Sequence[frozenset[int]],
    color_of_label: np.ndarray,
    seed_parity: bool,
) -> dict[str, np.ndarray]:
    """One block of trials, fully vectorised over the trial axis."""
    q, m = params.q, params.m
    b_sz = len(seeds)
    deg, gbase, flat = _block_adjacency(csrs, n)
    active = active_matrix(n, faulty_list)
    n_a = active.sum(axis=1).astype(np.int64)
    if ((deg == 0) & active).any():
        bad = np.argwhere((deg == 0) & active)[0]
        raise ValueError(
            f"agent {int(bad[1])} has no neighbours (trial {int(bad[0])})"
        )
    # Isolated *faulty* agents are legal; their (masked-out) draws must
    # still gather in-bounds, so point their empty rows at offset 0.
    if (deg == 0).any():
        gbase = np.where(deg > 0, gbase, 0)

    if seed_parity:
        draws = _draw_block_parity(seeds, deg, active, q, m)
    else:
        rng = np.random.Generator(np.random.PCG64(
            np.random.SeedSequence(entropy=(_GRAPH_STREAM_SALT, *seeds))
        ))
        draws = _draw_block_stat(rng, deg, active, q, m)
    values, intention_idx, findmin_idx, coherence_idx = draws

    rows = np.arange(b_sz, dtype=np.int64) * n

    # ------------------------------------------------------------------
    # Voting phase: resolve intention targets through the CSR gather and
    # accumulate per-receiver counts and exact int64 vote sums in one
    # flattened pass (trial b owns bins [b*n, (b+1)*n)).
    vote_targets = flat[gbase[:, :, None] + intention_idx]    # (B, n, q)
    sender_active = np.broadcast_to(active[:, :, None], vote_targets.shape)
    tgt_bins = (rows[:, None, None] + vote_targets)[sender_active]
    counts = np.bincount(tgt_bins, minlength=b_sz * n).reshape(b_sz, n)
    k_acc = _exact_index_sums(
        tgt_bins.astype(np.intp), values[sender_active], b_sz * n,
        int(counts.max(initial=0)),
    ).reshape(b_sz, n)
    k = k_acc % m

    # Certificate sort keys (k, owner) as one int64; faulty agents hold
    # no certificate and never answer a pull — the sentinel makes both
    # facts one no-op in the min-gather below.
    labels = np.arange(n, dtype=np.int64)
    keys = np.where(active, k * n + labels, _KEY_SENTINEL)

    # ------------------------------------------------------------------
    # Find-Min: q synchronous pull rounds over the graph.  Replies are
    # served from pre-round state (the engine collects every reply
    # before delivering any), so each round is gather-then-min.
    for rnd in range(q):
        tgt = flat[gbase + findmin_idx[:, rnd, :]]            # (B, n)
        gathered = keys.ravel()[rows[:, None] + tgt]
        keys = np.where(active, np.minimum(keys, gathered), keys)

    # ------------------------------------------------------------------
    # Coherence: every active agent pushes its final key to one random
    # neighbour per round; an active receiver of a *differing* key
    # enters the invalid state.  Rounds are independent given the final
    # keys, so all q scatter in one bincount.
    coh_targets = flat[gbase[:, None, :] + coherence_idx]     # (B, q, n)
    recv_bins = rows[:, None, None] + coh_targets
    recv_keys = keys.ravel()[recv_bins]
    recv_active = active.ravel()[recv_bins]
    differs = (
        (recv_keys != keys[:, None, :]) & active[:, None, :] & recv_active
    )
    failed = (
        np.bincount(recv_bins[differs], minlength=b_sz * n)
        .reshape(b_sz, n) > 0
    )

    # ------------------------------------------------------------------
    # Decisions: Verification passes for every non-failed agent, so the
    # decision is the color of its key's owner.
    key_act = np.where(active, keys, _KEY_SENTINEL)
    kmin = key_act.min(axis=1)
    unique_key = ((key_act == kmin[:, None]) | ~active).all(axis=1)
    owner_color = color_of_label[keys % n]
    col_min = np.where(active, owner_color, np.iinfo(np.int64).max).min(axis=1)
    col_max = np.where(active, owner_color, -1).max(axis=1)
    colors_same = col_min == col_max

    any_failed = failed.any(axis=1)
    nonempty = n_a > 0
    success = colors_same & ~any_failed & nonempty
    split = ~colors_same & ~any_failed & nonempty
    winner = np.where(success & unique_key, kmin % n, -1)

    return {
        "n_active": n_a,
        "success": success,
        "winner": winner.astype(np.int64),
        "outcome_idx": np.where(success, col_min, -1).astype(np.int64),
        "zero_vote_agents": ((counts == 0) & active).sum(axis=1),
        "split": split,
        "failed_agents": failed.sum(axis=1).astype(np.int64),
    }


def simulate_graph_fast_batch(
    graphs: GraphCSR | Sequence[GraphCSR],
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    *,
    seed_parity: bool = False,
) -> GraphBatchResult:
    """Simulate ``len(seeds)`` graph-restricted executions of Protocol P.

    Parameters
    ----------
    graphs:
        One :class:`~repro.extensions.families.GraphCSR` shared by every
        trial, or one per trial (E10 samples a fresh graph per trial).
    colors:
        Initial color per agent (shared by every trial).
    seeds:
        One root seed per trial; the batch is deterministic in the seed
        list in either mode.
    faulty:
        A single permanent-fault set for every trial, or one per trial
        (the churn scenarios).
    seed_parity:
        ``True`` replays each trial's per-agent streams so trial ``b``
        equals ``run_graph_protocol(graph_b, colors, gamma, seeds[b],
        faulty_b)`` observable-for-observable (slower: 2 generators per
        active agent per trial).  ``False`` draws the same quantities
        from one block stream — identical mechanism and distributions,
        different stream layout.
    """
    colors = tuple(colors)
    n = len(colors)
    seeds = [int(s) for s in seeds]
    n_trials = len(seeds)
    params = ProtocolParams(n=n, gamma=gamma, num_colors=len(set(colors)))
    if n ** 4 >= 2 ** 62:
        raise ValueError(f"n={n} too large for the int64 (k, owner) key")

    if isinstance(graphs, GraphCSR):
        csr_list: list[GraphCSR] = [graphs] * n_trials
    else:
        csr_list = list(graphs)
        if len(csr_list) == 1:
            csr_list = csr_list * n_trials
        if len(csr_list) != n_trials:
            raise ValueError(
                f"got {len(csr_list)} graphs for {n_trials} trials"
            )
    for c in csr_list:
        if c.n != n:
            raise ValueError(f"graph has {c.n} nodes, colors have {n}")

    faulty_list = normalise_faulty(faulty, n_trials, n)

    palette = list(dict.fromkeys(colors))
    color_of_label = np.array([palette.index(c) for c in colors],
                              dtype=np.int64)

    if n_trials == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_b = np.zeros(0, dtype=bool)
        return GraphBatchResult(
            n=n, n_trials=0, colors=colors, n_active=empty_i,
            success=empty_b, winner=empty_i.copy(),
            outcome_idx=empty_i.copy(),
            zero_vote_agents=empty_i.copy(), split=empty_b.copy(),
            failed_agents=empty_i.copy(),
        )

    block = graph_block_trials(n, params.q)
    chunks = [
        _simulate_block(
            n, params, csr_list[i:i + block], seeds[i:i + block],
            faulty_list[i:i + block], color_of_label, seed_parity,
        )
        for i in range(0, n_trials, block)
    ]

    def cat(field: str) -> np.ndarray:
        return np.concatenate([c[field] for c in chunks])

    return GraphBatchResult(
        n=n,
        n_trials=n_trials,
        colors=colors,
        n_active=cat("n_active"),
        success=cat("success"),
        winner=cat("winner"),
        outcome_idx=cat("outcome_idx"),
        zero_vote_agents=cat("zero_vote_agents"),
        split=cat("split"),
        failed_agents=cat("failed_agents"),
    )
