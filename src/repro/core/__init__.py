"""The paper's contribution: Protocol P for rational fair consensus.

Implements Algorithm 1 of Clementi et al. (IPDPS 2017) on top of the
GOSSIP substrate:

==================  ========================================================
Phase               Module
==================  ========================================================
Voting-Intention    :mod:`repro.core.votes` (local, at initialisation)
Commitment          :class:`repro.core.agent.HonestAgent` + :mod:`repro.core.ledger`
Voting              :class:`repro.core.agent.HonestAgent` + :mod:`repro.core.certificate`
Find-Min            :class:`repro.core.agent.HonestAgent` (pull min-aggregation)
Coherence           :class:`repro.core.agent.HonestAgent`
Verification        :mod:`repro.core.verification` (local, at finalisation)
==================  ========================================================

The entry point is :func:`repro.core.protocol.run_protocol`.
"""

from repro.core.certificate import Certificate, ReceivedVote
from repro.core.defenses import FULL_DEFENSES, NO_DEFENSES, Defenses
from repro.core.ledger import Ledger
from repro.core.outcome import FailReason, GoodExecutionReport, RunResult
from repro.core.params import Phase, ProtocolParams
from repro.core.protocol import DeviationPlan, ProtocolConfig, run_protocol
from repro.core.verification import VerificationResult, verify_certificate
from repro.core.votes import PlannedVote, VoteIntention, generate_intention

__all__ = [
    "Certificate",
    "Defenses",
    "DeviationPlan",
    "FULL_DEFENSES",
    "NO_DEFENSES",
    "FailReason",
    "GoodExecutionReport",
    "Ledger",
    "Phase",
    "PlannedVote",
    "ProtocolConfig",
    "ProtocolParams",
    "ReceivedVote",
    "RunResult",
    "VerificationResult",
    "VoteIntention",
    "generate_intention",
    "run_protocol",
    "verify_certificate",
]
