"""Toggleable defence layers of Protocol P (for the ablation study E9).

Protocol P stacks four defences on top of plain min-gossip leader
election; the equilibrium proof (Theorem 7) uses each one:

* ``commitment`` — the Commitment phase itself: without it no agent holds
  any declared intention and Verification has nothing to check;
* ``verify_k`` — check ``k = sum(W) mod m``;
* ``verify_ledger`` — cross-check carried votes against declared
  intentions (catches altered/mistargeted votes and equivocation);
* ``verify_omissions`` — require declared votes for the winner to be
  present (catches vote dropping; Claim 1);
* ``coherence`` — the Coherence phase (catches split-brain certificates).

The full protocol runs with everything enabled (:data:`FULL_DEFENSES`).
Ablations switch layers off to show that each one is necessary: the
attack it guards against then succeeds (benchmarks/bench_e9).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Defenses", "FULL_DEFENSES", "NO_DEFENSES"]


@dataclass(frozen=True)
class Defenses:
    commitment: bool = True
    verify_k: bool = True
    verify_ledger: bool = True
    verify_omissions: bool = True
    coherence: bool = True

    def describe(self) -> str:
        off = [
            name
            for name in (
                "commitment",
                "verify_k",
                "verify_ledger",
                "verify_omissions",
                "coherence",
            )
            if not getattr(self, name)
        ]
        return "full" if not off else "without " + "+".join(off)


FULL_DEFENSES = Defenses()
NO_DEFENSES = Defenses(
    commitment=False,
    verify_k=False,
    verify_ledger=False,
    verify_omissions=False,
    coherence=False,
)
