"""The Verification phase: checking ``CE_min`` against the local ledger.

Agent ``u`` accepts the color of the minimal certificate
``CE_min = (k, W, c, z)`` only if the certificate withstands every check
below; otherwise the protocol fails (the agent enters the invalid state).

Checks, in order:

1.  **Well-formedness** — vote values in ``[m]``, round indices in
    ``[q]``, voter labels valid and distinct from the owner, and at most
    one vote per (voter, round) pair: the GOSSIP model physically allows
    one push per agent per round, so duplicates are forgeries.
2.  **k consistency** — ``k = sum(W) mod m`` (Algorithm 1's first check).
3.  **Ledger consistency** (footnote 5, both directions):

    a. *Alteration*: every vote in ``W`` whose voter appears in ``L_u``
       must match the declared slot — same value, and the declared
       target of that round must be the owner ``z``.  A voter marked
       faulty in ``L_u`` (it never answered our pull) contributes zero
       votes by definition, so any vote from it is inconsistent.
    b. *Omission*: every declared vote aimed at ``z`` by a voter in
       ``L_u`` (not marked faulty) must appear in ``W``.  This direction
       is what catches a winner who drops received votes to deflate
       ``k`` (used in the proof of Claim 1).
    c. *Equivocation*: if ``L_u`` holds two distinct declared versions
       for some voter, no certificate can be consistent with both; the
       check fails as soon as either version mismatches, so equivocators
       are caught whenever their votes matter.

Returns a :class:`VerificationResult` naming the first violated rule —
the reason codes drive the ablation experiments (E9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.certificate import Certificate, compute_k
from repro.core.ledger import Ledger
from repro.core.params import ProtocolParams

__all__ = ["VerificationCode", "VerificationResult", "verify_certificate"]


class VerificationCode(enum.Enum):
    OK = "ok"
    MALFORMED = "malformed"
    DUPLICATE_VOTE = "duplicate_vote"
    K_MISMATCH = "k_mismatch"
    VOTE_FROM_FAULTY = "vote_from_faulty"
    VOTE_ALTERED = "vote_altered"
    VOTE_MISTARGETED = "vote_mistargeted"
    VOTE_OMITTED = "vote_omitted"


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of verifying one certificate against one ledger."""

    code: VerificationCode
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.code is VerificationCode.OK

    def __bool__(self) -> bool:
        return self.ok


def _check_well_formed(cert: Certificate, params: ProtocolParams) -> VerificationResult | None:
    seen: set[tuple[int, int]] = set()
    for v in cert.votes:
        if not (0 <= v.value < params.m):
            return VerificationResult(
                VerificationCode.MALFORMED, f"vote value {v.value} outside [m]"
            )
        if not (0 <= v.round_index < params.q):
            return VerificationResult(
                VerificationCode.MALFORMED, f"round index {v.round_index} outside [q]"
            )
        if not (0 <= v.voter < params.n) or v.voter == cert.owner:
            return VerificationResult(
                VerificationCode.MALFORMED, f"invalid voter label {v.voter}"
            )
        key = (v.voter, v.round_index)
        if key in seen:
            return VerificationResult(
                VerificationCode.DUPLICATE_VOTE,
                f"two votes from agent {v.voter} in round {v.round_index}",
            )
        seen.add(key)
    if not (0 <= cert.owner < params.n):
        return VerificationResult(
            VerificationCode.MALFORMED, f"invalid owner label {cert.owner}"
        )
    return None


def verify_certificate(
    cert: Certificate,
    ledger: Ledger,
    params: ProtocolParams,
    *,
    check_k: bool = True,
    check_ledger: bool = True,
    check_omissions: bool = True,
) -> VerificationResult:
    """Run the Verification phase for one agent.

    The ``check_*`` switches exist only for the ablation experiments
    (E9); the protocol always runs with all checks on.
    """
    bad = _check_well_formed(cert, params)
    if bad is not None:
        return bad

    if check_k and cert.k != compute_k(cert.votes, params.m):
        return VerificationResult(
            VerificationCode.K_MISMATCH,
            f"declared k={cert.k}, votes sum to {compute_k(cert.votes, params.m)}",
        )

    if not check_ledger:
        return VerificationResult(VerificationCode.OK)

    votes_by_voter: dict[int, dict[int, int]] = {}
    for v in cert.votes:
        votes_by_voter.setdefault(v.voter, {})[v.round_index] = v.value

    for voter in ledger.voters():
        rec = ledger.record_for(voter)
        assert rec is not None
        present = votes_by_voter.get(voter, {})

        if rec.marked_faulty and present:
            return VerificationResult(
                VerificationCode.VOTE_FROM_FAULTY,
                f"certificate carries votes from agent {voter}, "
                f"which did not answer our Commitment pull",
            )

        for version in rec.versions:
            # Direction (a): every carried vote must match the declaration.
            for rnd_idx, value in present.items():
                declared = version[rnd_idx]
                if declared.target != cert.owner:
                    return VerificationResult(
                        VerificationCode.VOTE_MISTARGETED,
                        f"agent {voter} declared round-{rnd_idx} vote for "
                        f"{declared.target}, certificate claims it went to "
                        f"{cert.owner}",
                    )
                if declared.value != value:
                    return VerificationResult(
                        VerificationCode.VOTE_ALTERED,
                        f"agent {voter} declared value {declared.value} for "
                        f"round {rnd_idx}, certificate carries {value}",
                    )
            # Direction (b): every declared vote for the owner must appear.
            if check_omissions and not rec.marked_faulty:
                for rnd_idx, value in version.votes_for(cert.owner):
                    if present.get(rnd_idx) != value:
                        return VerificationResult(
                            VerificationCode.VOTE_OMITTED,
                            f"agent {voter} declared a round-{rnd_idx} vote of "
                            f"{value} for the owner, missing from certificate",
                        )

    return VerificationResult(VerificationCode.OK)
