"""The honest agent: Algorithm 1 as a state machine over the substrate.

An :class:`HonestAgent` follows Protocol P exactly:

* **Voting-Intention** happens in ``__init__`` (local draw of ``H_u``);
* **Commitment** rounds: pull a random peer's intention into the ledger;
  serve incoming intention pulls with our own ``H_u``; mark peers that
  time out as faulty;
* **Voting** rounds: push the planned vote of this round; collect votes
  received (only during this phase, as the protocol prescribes);
* **Find-Min** rounds: build our certificate on entry, then pull random
  peers' minimal certificates, keeping the smaller ``(k, owner)`` key;
* **Coherence** rounds: push our minimal certificate; fail upon receiving
  any *different* certificate;
* **Verification** in :meth:`finalize`: accept the winner's color only if
  the minimal certificate is consistent with our ledger.

Randomness: peer choices and the vote intention come from named child
streams of the agent's seed tree, so runs are reproducible and the
deviation experiments can pair seeds between honest and deviating runs.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.core.certificate import Certificate, CertificatePayload, ReceivedVote
from repro.core.defenses import FULL_DEFENSES, Defenses
from repro.core.ledger import Ledger
from repro.core.outcome import FailReason
from repro.core.params import Phase, ProtocolParams
from repro.core.verification import verify_certificate
from repro.core.votes import (
    IntentionPayload,
    VoteIntention,
    VotePayload,
    generate_intention,
)
from repro.gossip.actions import Action, Pull, Push
from repro.gossip.messages import NO_REPLY, Payload
from repro.gossip.node import Node, PullResponse
from repro.util.rng import SeedTree

__all__ = ["HonestAgent", "TOPIC_INTENTION", "TOPIC_CERTIFICATE"]

TOPIC_INTENTION = "H"
TOPIC_CERTIFICATE = "CE"


class HonestAgent(Node):
    """An active agent faithfully running Protocol P."""

    def __init__(self, node_id: int, params: ProtocolParams, color: Hashable,
                 seed_tree: SeedTree, *, defenses: Defenses = FULL_DEFENSES):
        super().__init__(node_id)
        self.params = params
        self.color = color
        self.defenses = defenses
        # Independent named streams: the intention draw must not shift when
        # peer-choice streams are consumed differently (pairing property).
        self._peer_rng: np.random.Generator = seed_tree.child("peers").generator()
        self.intention: VoteIntention = generate_intention(
            params, seed_tree.child("intention").generator(), node_id
        )
        self.ledger = Ledger()
        self.received_votes: list[ReceivedVote] = []
        self.certificate: Certificate | None = None       # own CE_u
        self.min_certificate: Certificate | None = None   # current CE_min_u
        self.failed = False
        self.fail_reason: FailReason | None = None
        self.decision: Hashable | None = None
        # Instrumentation (observer-only; never read by protocol logic):
        self.commitment_pulls_received: list[int] = []

    # ------------------------------------------------------------------
    def _random_peer(self) -> int:
        peer = int(self._peer_rng.integers(self.params.n - 1))
        return peer + 1 if peer >= self.node_id else peer

    def _fail(self, reason: FailReason) -> None:
        if not self.failed:
            self.failed = True
            self.fail_reason = reason

    def _ensure_certificate(self) -> Certificate:
        if self.certificate is None:
            self.certificate = Certificate.build(
                self.received_votes, self.color, self.node_id, self.params.m
            )
            self.min_certificate = self.certificate
        return self.certificate

    def _certificate_payload(self, cert: Certificate) -> CertificatePayload:
        return CertificatePayload(cert, cert.size_bits(self.params))

    # -- active behaviour ----------------------------------------------
    def begin_round(self, rnd: int) -> Action | None:
        phase, idx = self.params.phase_of(rnd)
        if phase is Phase.COMMITMENT:
            if not self.defenses.commitment:
                return None  # ablation: no commitment phase at all
            return Pull(self._random_peer(), TOPIC_INTENTION)
        if phase is Phase.VOTING:
            planned = self.intention[idx]
            return Push(
                planned.target,
                VotePayload(planned.value, self.params.vote_message_bits()),
            )
        if phase is Phase.FIND_MIN:
            self._ensure_certificate()
            return Pull(self._random_peer(), TOPIC_CERTIFICATE)
        # Coherence
        if not self.defenses.coherence:
            return None  # ablation: no coherence phase
        cert = self.min_certificate
        assert cert is not None, "coherence phase reached without a certificate"
        return Push(self._random_peer(), self._certificate_payload(cert))

    # -- passive behaviour ----------------------------------------------
    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        if topic == TOPIC_INTENTION:
            self.commitment_pulls_received.append(requester)
            return IntentionPayload(self.intention, self.params.intention_bits())
        if topic == TOPIC_CERTIFICATE:
            if self.min_certificate is None:
                # Asked before our certificate exists (only a deviant can
                # cause this; honest agents pull certificates only in
                # Find-Min, after everyone built theirs).
                return NO_REPLY
            return self._certificate_payload(self.min_certificate)
        return NO_REPLY

    def on_push(self, sender: int, payload: Payload, rnd: int) -> None:
        phase, idx = self.params.phase_of(rnd)
        if phase is Phase.VOTING and isinstance(payload, VotePayload):
            self.received_votes.append(ReceivedVote(sender, idx, payload.value))
        elif phase is Phase.COHERENCE and isinstance(payload, CertificatePayload):
            if self.defenses.coherence and payload.certificate != self.min_certificate:
                self._fail(FailReason.COHERENCE_MISMATCH)
        # Any other (phase, payload) combination is outside the protocol;
        # an honest agent ignores it.

    def on_pull_reply(self, responder: int, payload: Payload, rnd: int) -> None:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COMMITMENT and isinstance(payload, IntentionPayload):
            if isinstance(payload.intention, VoteIntention) and \
                    len(payload.intention) == self.params.q:
                self.ledger.record_intention(responder, payload.intention, rnd)
            else:
                # An unexpected reply shape counts as "replies in an
                # unexpected way" (footnote 4): mark faulty.
                self.ledger.record_faulty(responder)
        elif phase is Phase.COMMITMENT:
            self.ledger.record_faulty(responder)
        elif phase is Phase.FIND_MIN and isinstance(payload, CertificatePayload):
            incoming = payload.certificate
            current = self.min_certificate
            if current is None or incoming.sort_key < current.sort_key:
                self.min_certificate = incoming

    def on_pull_timeout(self, target: int, rnd: int) -> None:
        phase, _ = self.params.phase_of(rnd)
        if phase is Phase.COMMITMENT:
            self.ledger.record_faulty(target)
        # Find-Min timeouts (pulled a faulty agent) carry no information.

    # -- verification -----------------------------------------------------
    def finalize(self) -> None:
        if self.failed:
            self.decision = None
            return
        cert = self.min_certificate
        if cert is None:  # cannot happen in a full run; defensive
            self._fail(FailReason.NO_CERTIFICATE)
            self.decision = None
            return
        result = verify_certificate(
            cert,
            self.ledger,
            self.params,
            check_k=self.defenses.verify_k,
            check_ledger=self.defenses.verify_ledger,
            check_omissions=self.defenses.verify_omissions,
        )
        if result.ok:
            self.decision = cert.color
        else:
            self._fail(FailReason.VERIFICATION_FAILED)
            self.decision = None
