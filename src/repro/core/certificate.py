"""Certificates ``CE_u = (k_u, W_u, c_u, u)``.

After the Voting phase, agent ``u`` holds the multiset ``W_u`` of votes he
received, computes ``k_u = sum(W_u) mod m`` and wraps everything into a
certificate.  Certificates are the objects circulated during Find-Min and
Coherence; the minimal one (by ``k``, ties broken by owner label — the
paper shows ties are w.h.p. absent, Lemma 3.2) determines the winner.

A received vote is identified by *(voter, round index, value)*: the round
index lets Verification match the vote against the voter's declared
intention slot, and the voter label is authentic because the substrate's
secure channels attach sender labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.params import ProtocolParams

__all__ = ["ReceivedVote", "Certificate", "CertificatePayload", "compute_k"]


@dataclass(frozen=True)
class ReceivedVote:
    """One vote as seen by its receiver (sender label is authenticated)."""

    voter: int
    round_index: int
    value: int


def compute_k(votes: Iterable[ReceivedVote], m: int) -> int:
    """``k = sum of received vote values mod m`` (0 for an empty ``W``)."""
    return sum(v.value for v in votes) % m


@dataclass(frozen=True)
class Certificate:
    """``(k, W, c, owner)`` — immutable and order-comparable via sort_key."""

    k: int
    votes: tuple[ReceivedVote, ...]
    color: Hashable
    owner: int

    @property
    def sort_key(self) -> tuple[int, int]:
        """Total order used by Find-Min: primarily ``k``, then owner label.

        The paper's analysis makes ``k`` values distinct w.h.p. (m = n^3);
        the deterministic tie-break merely keeps the simulation total.
        """
        return (self.k, self.owner)

    def is_self_consistent(self, m: int) -> bool:
        """Does the declared ``k`` match the carried votes (mod m)?"""
        return 0 <= self.k < m and self.k == compute_k(self.votes, m)

    def size_bits(self, params: "ProtocolParams") -> int:
        """Encoded size under the paper's bit model (O(log^2 n) w.h.p.)."""
        return params.certificate_bits(len(self.votes))

    @staticmethod
    def build(votes: Iterable[ReceivedVote], color: Hashable, owner: int,
              m: int) -> "Certificate":
        """Assemble an honest certificate from received votes."""
        votes = tuple(sorted(votes, key=lambda v: (v.round_index, v.voter)))
        return Certificate(compute_k(votes, m), votes, color, owner)


@dataclass(frozen=True)
class CertificatePayload:
    """A certificate on the wire (Find-Min replies, Coherence pushes)."""

    certificate: Certificate
    bits: int

    def size_bits(self) -> int:
        return self.bits
