"""Certificates ``CE_u = (k_u, W_u, c_u, u)``.

After the Voting phase, agent ``u`` holds the multiset ``W_u`` of votes he
received, computes ``k_u = sum(W_u) mod m`` and wraps everything into a
certificate.  Certificates are the objects circulated during Find-Min and
Coherence; the minimal one (by ``k``, ties broken by owner label — the
paper shows ties are w.h.p. absent, Lemma 3.2) determines the winner.

A received vote is identified by *(voter, round index, value)*: the round
index lets Verification match the vote against the voter's declared
intention slot, and the voter label is authentic because the substrate's
secure channels attach sender labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.params import ProtocolParams

__all__ = ["ReceivedVote", "Certificate", "CertificatePayload", "compute_k"]

# Transport framing: the vote-count prefix of the wire encoding.  It is
# *not* part of the paper's bit-size model (``certificate_bits`` prices
# the payload fields only); the codec exists so certificates — the one
# object deviating strategies forge — have a canonical, property-tested
# serialisation.
_COUNT_BITS = 16


@dataclass(frozen=True)
class ReceivedVote:
    """One vote as seen by its receiver (sender label is authenticated)."""

    voter: int
    round_index: int
    value: int


def compute_k(votes: Iterable[ReceivedVote], m: int) -> int:
    """``k = sum of received vote values mod m`` (0 for an empty ``W``)."""
    return sum(v.value for v in votes) % m


@dataclass(frozen=True)
class Certificate:
    """``(k, W, c, owner)`` — immutable and order-comparable via sort_key."""

    k: int
    votes: tuple[ReceivedVote, ...]
    color: Hashable
    owner: int

    @property
    def sort_key(self) -> tuple[int, int]:
        """Total order used by Find-Min: primarily ``k``, then owner label.

        The paper's analysis makes ``k`` values distinct w.h.p. (m = n^3);
        the deterministic tie-break merely keeps the simulation total.
        """
        return (self.k, self.owner)

    def is_self_consistent(self, m: int) -> bool:
        """Does the declared ``k`` match the carried votes (mod m)?"""
        return 0 <= self.k < m and self.k == compute_k(self.votes, m)

    def size_bits(self, params: "ProtocolParams") -> int:
        """Encoded size under the paper's bit model (O(log^2 n) w.h.p.)."""
        return params.certificate_bits(len(self.votes))

    @staticmethod
    def build(votes: Iterable[ReceivedVote], color: Hashable, owner: int,
              m: int) -> "Certificate":
        """Assemble an honest certificate from received votes."""
        votes = tuple(sorted(votes, key=lambda v: (v.round_index, v.voter)))
        return Certificate(compute_k(votes, m), votes, color, owner)

    # -- wire codec ---------------------------------------------------------
    def encode(self, params: "ProtocolParams",
               palette: Sequence[Hashable]) -> bytes:
        """Bit-pack ``(|W|, k, W, c, owner)`` under the paper's widths.

        ``palette`` is the ordered color space Σ (colors are Hashable
        objects in memory; on the wire they are indices into Σ).  The
        encoded length is ``16 + size_bits(params)`` bits, zero-padded
        to a whole byte: a 16-bit vote-count frame plus exactly the
        fields :meth:`size_bits` prices.  Out-of-domain fields raise
        ``ValueError`` — a certificate that cannot be encoded could
        never have crossed the wire.
        """
        try:
            color_index = palette.index(self.color)
        except ValueError:
            raise ValueError(
                f"color {self.color!r} not in the palette"
            ) from None
        fields: list[tuple[int, int, str]] = [
            (len(self.votes), _COUNT_BITS, "vote count"),
            (self.k, params.vote_bits, "k"),
        ]
        for v in self.votes:
            fields.append((v.voter, params.label_bits, "voter"))
            fields.append((v.round_index, params.round_bits, "round index"))
            fields.append((v.value, params.vote_bits, "vote value"))
        fields.append((color_index, params.color_bits, "color"))
        fields.append((self.owner, params.label_bits, "owner"))

        acc = 0
        nbits = 0
        for value, width, name in fields:
            if not 0 <= value < (1 << width):
                raise ValueError(
                    f"{name} {value} does not fit {width} bits"
                )
            acc = (acc << width) | value
            nbits += width
        nbytes = (nbits + 7) // 8
        acc <<= nbytes * 8 - nbits     # zero padding in the low bits
        return acc.to_bytes(nbytes, "big")

    @staticmethod
    def decode(data: bytes, params: "ProtocolParams",
               palette: Sequence[Hashable]) -> "Certificate":
        """Inverse of :meth:`encode` (raises ``ValueError`` on any
        length mismatch or out-of-palette color index)."""
        if len(data) < (_COUNT_BITS + 7) // 8:
            raise ValueError("certificate frame shorter than its header")
        total = int.from_bytes(data, "big")
        avail = len(data) * 8
        pos = 0

        def take(width: int) -> int:
            nonlocal pos
            if pos + width > avail:
                raise ValueError("truncated certificate frame")
            pos += width
            return (total >> (avail - pos)) & ((1 << width) - 1)

        num_votes = take(_COUNT_BITS)
        per_vote = params.label_bits + params.round_bits + params.vote_bits
        expected = (
            _COUNT_BITS + params.vote_bits + num_votes * per_vote
            + params.color_bits + params.label_bits
        )
        if (expected + 7) // 8 != len(data):
            raise ValueError(
                f"frame of {len(data)} bytes does not match the declared "
                f"{num_votes} votes"
            )
        k = take(params.vote_bits)
        votes = tuple(
            ReceivedVote(
                take(params.label_bits), take(params.round_bits),
                take(params.vote_bits),
            )
            for _ in range(num_votes)
        )
        color_index = take(params.color_bits)
        owner = take(params.label_bits)
        if color_index >= len(palette):
            raise ValueError(f"color index {color_index} outside Σ")
        pad = avail - pos
        if pad and (total & ((1 << pad) - 1)):
            raise ValueError("nonzero padding bits")
        return Certificate(k, votes, palette[color_index], owner)


@dataclass(frozen=True)
class CertificatePayload:
    """A certificate on the wire (Find-Min replies, Coherence pushes)."""

    certificate: Certificate
    bits: int

    def size_bits(self) -> int:
        return self.bits
