"""Vote intentions (the Voting-Intention phase) and vote payloads.

At initialisation every agent ``u`` draws his *vote intention*
``H_u = ((h_{u,0}, z_{u,0}), ..., (h_{u,q-1}, z_{u,q-1}))``: for each of
the ``q`` voting rounds, a vote value ``h`` chosen u.a.r. in ``[m]`` and a
target agent ``z`` chosen u.a.r. among the other agents.

.. note::
   The paper samples targets u.a.r. in ``[n]`` (which includes ``u``
   itself); the GOSSIP substrate forbids self-gossip, so we sample from
   the remaining ``n - 1`` labels.  A self-vote would simply add a value
   the agent knows to his own ``k_u``; excluding it changes nothing in
   the analysis (``k_u`` stays uniform thanks to the other votes) and is
   the standard reading of "contact a neighbor" on a self-loop-free
   complete graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.params import ProtocolParams

__all__ = [
    "PlannedVote",
    "VoteIntention",
    "generate_intention",
    "IntentionPayload",
    "VotePayload",
]


@dataclass(frozen=True)
class PlannedVote:
    """One planned vote: push value ``value`` to agent ``target``."""

    value: int
    target: int


@dataclass(frozen=True)
class VoteIntention:
    """An agent's full voting plan ``H_u`` (one planned vote per round)."""

    votes: tuple[PlannedVote, ...]

    def __len__(self) -> int:
        return len(self.votes)

    def __iter__(self) -> Iterator[PlannedVote]:
        return iter(self.votes)

    def __getitem__(self, idx: int) -> PlannedVote:
        return self.votes[idx]

    def votes_for(self, target: int) -> list[tuple[int, int]]:
        """All ``(round_index, value)`` pairs aimed at ``target``."""
        return [
            (j, pv.value) for j, pv in enumerate(self.votes) if pv.target == target
        ]


def generate_intention(
    params: "ProtocolParams", rng: np.random.Generator, self_id: int
) -> VoteIntention:
    """Draw ``H_u`` uniformly: values in ``[m]``, targets != ``self_id``."""
    q, n, m = params.q, params.n, params.m
    values = rng.integers(m, size=q)
    raw_targets = rng.integers(n - 1, size=q)
    votes = []
    for j in range(q):
        target = int(raw_targets[j])
        if target >= self_id:
            target += 1
        votes.append(PlannedVote(int(values[j]), target))
    return VoteIntention(tuple(votes))


# ---------------------------------------------------------------------------
# Payloads exchanged on the wire
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IntentionPayload:
    """Reply to a Commitment-phase pull: a full copy of ``H_u``."""

    intention: VoteIntention
    bits: int

    def size_bits(self) -> int:
        return self.bits


@dataclass(frozen=True)
class VotePayload:
    """A Voting-phase push: one vote value in ``[m]``."""

    value: int
    bits: int

    def size_bits(self) -> int:
        return self.bits
