"""The Commitment-phase ledger ``L_u``.

During the Commitment phase agent ``u`` pulls vote intentions from random
peers and stores everything he hears in ``L_u``.  Two subtleties of
Algorithm 1 are modelled faithfully:

* **Faulty marking** (footnote 4): if a pulled agent does not reply, all
  its votes are treated as zero — i.e. ``u`` expects *no* vote from it.
  A later certificate containing a vote from such an agent is
  inconsistent.
* **Equivocation capture**: Algorithm 1 accumulates ``L_u := L_u ∪ ...``,
  a *set union* — if a deviating agent declares different intentions to
  ``u`` across two pulls, both versions end up in ``L_u`` and any
  certificate can match at most one of them, so Verification fails.  We
  store every distinct declared version per voter.

The paper's ``h*`` (first declaration) is also retained for analysis: the
ledger remembers the round at which each version was first recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.votes import VoteIntention

__all__ = ["Ledger", "LedgerRecord"]


@dataclass
class LedgerRecord:
    """Everything agent ``u`` knows about one peer's declared intention."""

    versions: list[VoteIntention] = field(default_factory=list)
    first_round: dict[int, int] = field(default_factory=dict)  # version idx -> round
    marked_faulty: bool = False

    def add_version(self, intention: VoteIntention, rnd: int) -> bool:
        """Record a declared intention; returns True if it is a new version."""
        for existing in self.versions:
            if existing == intention:
                return False
        self.versions.append(intention)
        self.first_round[len(self.versions) - 1] = rnd
        return True


class Ledger:
    """``L_u``: declared intentions and faulty marks collected by one agent."""

    def __init__(self) -> None:
        self._records: dict[int, LedgerRecord] = {}

    def _record(self, voter: int) -> LedgerRecord:
        rec = self._records.get(voter)
        if rec is None:
            rec = LedgerRecord()
            self._records[voter] = rec
        return rec

    # -- recording ----------------------------------------------------------
    def record_intention(self, voter: int, intention: VoteIntention, rnd: int) -> None:
        """Store a declared intention heard from ``voter`` at round ``rnd``."""
        self._record(voter).add_version(intention, rnd)

    def record_faulty(self, voter: int) -> None:
        """Mark ``voter`` as faulty (pull timed out): expect zero votes."""
        self._record(voter).marked_faulty = True

    # -- queries ------------------------------------------------------------
    def knows(self, voter: int) -> bool:
        """Do we hold any information about ``voter``?"""
        return voter in self._records

    def record_for(self, voter: int) -> LedgerRecord | None:
        return self._records.get(voter)

    def voters(self) -> list[int]:
        """All peers we pulled (successfully or not), sorted."""
        return sorted(self._records)

    def num_declared(self) -> int:
        """How many peers gave us at least one intention."""
        return sum(1 for r in self._records.values() if r.versions)

    def num_faulty_marked(self) -> int:
        return sum(1 for r in self._records.values() if r.marked_faulty)

    def is_equivocator(self, voter: int) -> bool:
        """Did ``voter`` give us more than one distinct version?"""
        rec = self._records.get(voter)
        return rec is not None and len(rec.versions) > 1
