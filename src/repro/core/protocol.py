"""Orchestration: build a network, run Protocol P, extract the result.

:func:`run_protocol` is the main entry point of the library.  It takes a
:class:`ProtocolConfig` describing the initial color configuration, the
adversary's permanent fault pattern, and (optionally) a coalition of
rational deviators with their strategy, then:

1. constructs the node map (honest / faulty / deviating agents),
2. runs the full fixed schedule on the GOSSIP engine,
3. computes the outcome over the protocol-following active agents
   (the coalition cannot define the consensus; the paper's utility is a
   function of the final configuration reached by the followers),
4. measures the good-execution events of Definition 2 for the observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Protocol, Sequence, runtime_checkable

from repro.core.agent import HonestAgent
from repro.core.defenses import FULL_DEFENSES, Defenses
from repro.core.outcome import FailReason, GoodExecutionReport, RunResult
from repro.core.params import ProtocolParams
from repro.gossip.engine import GossipEngine
from repro.gossip.node import FaultyNode, Node
from repro.gossip.trace import EventTrace
from repro.util.rng import SeedTree

__all__ = ["DeviationPlan", "ProtocolConfig", "run_protocol", "build_network"]


@runtime_checkable
class DeviationPlan(Protocol):
    """A coalition and the local algorithms its members run.

    Concrete plans live in :mod:`repro.agents`.  ``build_shared`` creates
    the coalition's shared knowledge object once per run (members of a
    coalition may coordinate out of band — that is the whole point of
    t-*strong* equilibria); ``build_agent`` instantiates one member.
    """

    members: frozenset[int]

    def build_shared(self, params: ProtocolParams, tree: SeedTree) -> object: ...

    def build_agent(
        self,
        node_id: int,
        params: ProtocolParams,
        color: Hashable,
        tree: SeedTree,
        shared: object,
    ) -> Node: ...


@dataclass
class ProtocolConfig:
    """One protocol instance: who plays, what they support, who deviates.

    Parameters
    ----------
    colors:
        Initial color per agent (index = label).  ``len(colors)`` is n.
    gamma:
        Phase-length constant (see :class:`ProtocolParams`).
    faulty:
        Labels crashed by the worst-case permanent adversary at round 0.
    deviation:
        Optional coalition strategy (labels must be active).
    seed:
        Root seed; all randomness derives from it deterministically.
    defenses:
        Defence toggles (ablations only; default: everything on).
    collect_trace:
        Record every message (slow; white-box tests and Def. 5 metrics).
    """

    colors: Sequence[Hashable]
    gamma: float = 3.0
    faulty: frozenset[int] = frozenset()
    deviation: DeviationPlan | None = None
    seed: int = 0
    defenses: Defenses = FULL_DEFENSES
    collect_trace: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.colors)

    def params(self) -> ProtocolParams:
        return ProtocolParams(
            n=self.n, gamma=self.gamma, num_colors=len(set(self.colors))
        )

    def honest_ids(self) -> list[int]:
        """Active agents following Protocol P (not faulty, not deviating)."""
        members = self.deviation.members if self.deviation else frozenset()
        return [
            i for i in range(self.n) if i not in self.faulty and i not in members
        ]

    def validate(self) -> None:
        if self.n < 2:
            raise ValueError("need at least 2 agents")
        for label in self.faulty:
            if not 0 <= label < self.n:
                raise ValueError(f"faulty label {label} out of range")
        if self.deviation is not None:
            overlap = self.deviation.members & self.faulty
            if overlap:
                raise ValueError(
                    f"coalition members {sorted(overlap)} are marked faulty"
                )
            for label in self.deviation.members:
                if not 0 <= label < self.n:
                    raise ValueError(f"coalition label {label} out of range")
        if not self.honest_ids():
            raise ValueError("no protocol-following active agent left")


def build_network(config: ProtocolConfig) -> tuple[dict[int, Node], ProtocolParams, SeedTree]:
    """Instantiate all nodes for one run (exposed for white-box tests)."""
    config.validate()
    params = config.params()
    tree = SeedTree(config.seed)
    members = config.deviation.members if config.deviation else frozenset()
    shared = (
        config.deviation.build_shared(params, tree.child("coalition"))
        if config.deviation
        else None
    )
    nodes: dict[int, Node] = {}
    for i in range(config.n):
        agent_tree = tree.child("agent", i)
        if i in config.faulty:
            nodes[i] = FaultyNode(i)
        elif i in members:
            assert config.deviation is not None
            nodes[i] = config.deviation.build_agent(
                i, params, config.colors[i], agent_tree, shared
            )
        else:
            nodes[i] = HonestAgent(
                i, params, config.colors[i], agent_tree,
                defenses=config.defenses,
            )
    return nodes, params, tree


def _good_execution_report(
    honest: list[HonestAgent],
) -> GoodExecutionReport:
    vote_counts = [len(a.received_votes) for a in honest]
    ks = [a.certificate.k for a in honest if a.certificate is not None]
    collision = len(ks) != len(set(ks))
    mins = {a.min_certificate for a in honest}
    return GoodExecutionReport(
        min_votes=min(vote_counts) if vote_counts else 0,
        max_votes=max(vote_counts) if vote_counts else 0,
        k_collision=collision,
        find_min_agreement=(len(mins) == 1 and None not in mins),
    )


def run_protocol(config: ProtocolConfig) -> RunResult:
    """Execute one full run of Protocol P and summarise it."""
    nodes, params, _tree = build_network(config)
    trace = EventTrace() if config.collect_trace else None
    engine = GossipEngine(nodes, trace=trace)
    engine.run(params.total_rounds)
    engine.finalize()

    honest_ids = config.honest_ids()
    honest = [nodes[i] for i in honest_ids]
    assert all(isinstance(a, HonestAgent) for a in honest)
    honest_agents: list[HonestAgent] = honest  # type: ignore[assignment]

    decisions = {a.node_id: a.decision for a in honest_agents}
    failed = tuple(a.node_id for a in honest_agents if a.failed)
    fail_reasons = {
        a.node_id: a.fail_reason
        for a in honest_agents
        if a.fail_reason is not None
    }

    distinct = set(decisions.values())
    if len(distinct) == 1 and None not in distinct:
        outcome: Hashable | None = next(iter(distinct))
        winner_certs = {a.min_certificate for a in honest_agents}
        winner = (
            next(iter(winner_certs)).owner if len(winner_certs) == 1 else None
        )
    else:
        outcome, winner = None, None

    result = RunResult(
        n=config.n,
        outcome=outcome,
        winner=winner,
        decisions=decisions,
        failed_agents=failed,
        fail_reasons=fail_reasons,
        metrics=engine.metrics,
        good=_good_execution_report(honest_agents),
        rounds=params.total_rounds,
    )
    if trace is not None:
        result.extras["trace"] = trace
    result.extras["params"] = params
    result.extras["nodes"] = nodes
    return result
