"""Protocol parameters and the fixed round schedule.

Algorithm 1 is parameterised by the network size ``n`` and the constant
``gamma`` (the paper's γ, chosen as a function of the fault-tolerance
parameter α).  Derived quantities:

* ``m = n^3`` — the vote value domain; chosen so that all ``k_u`` are
  distinct w.h.p. (Lemma 3.2);
* ``q = ceil(gamma * log2 n)`` — the length, in rounds, of each
  communication phase.  The paper writes ``γ log n``; we fix base 2 and
  absorb the base change into γ (documented in DESIGN.md §6);
* a fixed schedule of four communication phases of ``q`` rounds each
  (Voting-Intention and Verification are local computations and consume
  no rounds), so a run lasts exactly ``4q = O(log n)`` rounds.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import cached_property

from repro.util.bits import bits_for_range, label_bits, round_index_bits, vote_bits

__all__ = ["Phase", "ProtocolParams"]


class Phase(enum.Enum):
    """The four communication phases of Algorithm 1, in schedule order."""

    COMMITMENT = "commitment"
    VOTING = "voting"
    FIND_MIN = "find_min"
    COHERENCE = "coherence"


_PHASE_ORDER = (Phase.COMMITMENT, Phase.VOTING, Phase.FIND_MIN, Phase.COHERENCE)


@dataclass(frozen=True)
class ProtocolParams:
    """Immutable parameters of one protocol instance.

    Parameters
    ----------
    n:
        Number of agents (labels ``0 .. n-1``).
    gamma:
        Phase-length constant γ; each phase lasts ``ceil(gamma * log2 n)``
        rounds.  Larger γ tolerates more faults (Lemma 3 / Lemma 6 choose
        γ = γ(α)) at the cost of proportionally more rounds.
    num_colors:
        Size of the color space Σ used only for bit accounting; defaults
        to ``n`` (the fair-leader-election case, the largest sensible Σ).
    """

    n: int
    gamma: float = 3.0
    num_colors: int | None = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"need at least 2 agents, got n={self.n}")
        if self.gamma <= 0:
            raise ValueError(f"gamma must be positive, got {self.gamma}")
        if self.num_colors is not None and self.num_colors < 1:
            raise ValueError(f"num_colors must be >= 1, got {self.num_colors}")

    # -- derived quantities -------------------------------------------------
    @cached_property
    def m(self) -> int:
        """Vote value domain size, the paper's ``m = n^3``."""
        return self.n ** 3

    @cached_property
    def q(self) -> int:
        """Rounds per communication phase, ``ceil(gamma * log2 n)``."""
        return max(1, math.ceil(self.gamma * math.log2(self.n)))

    @property
    def total_rounds(self) -> int:
        """Total communication rounds of one run (four phases of q)."""
        return 4 * self.q

    # -- schedule -----------------------------------------------------------
    def phase_of(self, rnd: int) -> tuple[Phase, int]:
        """Map a global round number to (phase, index within phase)."""
        if not 0 <= rnd < self.total_rounds:
            raise ValueError(
                f"round {rnd} outside schedule [0, {self.total_rounds})"
            )
        return _PHASE_ORDER[rnd // self.q], rnd % self.q

    def phase_range(self, phase: Phase) -> range:
        """Global round numbers belonging to ``phase``."""
        i = _PHASE_ORDER.index(phase)
        return range(i * self.q, (i + 1) * self.q)

    # -- bit-size model -----------------------------------------------------
    @property
    def label_bits(self) -> int:
        return label_bits(self.n)

    @property
    def vote_bits(self) -> int:
        return vote_bits(self.m)

    @property
    def round_bits(self) -> int:
        return round_index_bits(self.q)

    @property
    def color_bits(self) -> int:
        return bits_for_range(self.num_colors if self.num_colors else self.n)

    def intention_bits(self) -> int:
        """Encoded size of a vote-intention list ``H_u`` (q votes)."""
        return self.q * (self.vote_bits + self.label_bits)

    def vote_message_bits(self) -> int:
        """Encoded size of a single vote push (one value in [m])."""
        return self.vote_bits

    def certificate_bits(self, num_votes: int) -> int:
        """Encoded size of a certificate carrying ``num_votes`` votes.

        ``k`` plus the vote list (voter label, round index, value each)
        plus color and owner label.  With Theta(log n) votes this is the
        Theorem 4 ``O(log^2 n)`` quantity.
        """
        per_vote = self.label_bits + self.round_bits + self.vote_bits
        return (
            self.vote_bits          # k lives in [m]
            + num_votes * per_vote  # W
            + self.color_bits       # c
            + self.label_bits       # owner
        )
