"""Run results: outcomes, failure reasons, and good-execution reports.

The outcome of one execution is an element of ``Σ ∪ {⊥}``: the winning
color if the protocol-following active agents all decide the same color,
or ``⊥`` (encoded as ``None``) otherwise.  The *good execution* events of
Definitions 2 and 5 are measured by an external observer after the run
(they are proof devices; agents never see them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.gossip.metrics import MessageMetrics

__all__ = ["FailReason", "GoodExecutionReport", "RunResult"]


class FailReason(enum.Enum):
    """Why an individual agent entered the invalid (failed) state."""

    COHERENCE_MISMATCH = "coherence_mismatch"
    VERIFICATION_FAILED = "verification_failed"
    NO_CERTIFICATE = "no_certificate"


@dataclass(frozen=True)
class GoodExecutionReport:
    """Observer-side measurement of the good-execution events.

    Definition 2 (cooperative):

    * ``min_votes``/``max_votes`` — every active agent should receive
      Theta(log n) votes (event 1);
    * ``k_collision`` — whether two active agents computed the same
      ``k_u`` (event 2 asks for distinctness);
    * ``find_min_agreement`` — whether all protocol-following agents held
      the same minimal certificate when Find-Min ended (event 3).

    ``is_good`` combines them with the paper's reading: at least one vote
    per agent (the Theta(log n) concentration is reported via min/max),
    no collision, full agreement.
    """

    min_votes: int
    max_votes: int
    k_collision: bool
    find_min_agreement: bool

    @property
    def is_good(self) -> bool:
        return self.min_votes >= 1 and not self.k_collision and self.find_min_agreement


@dataclass
class RunResult:
    """Everything an experiment needs to know about one execution."""

    n: int
    outcome: Hashable | None           # winning color, or None for ⊥
    winner: int | None                 # owner of the accepted certificate
    decisions: Mapping[int, Hashable | None]  # honest agents' final colors
    failed_agents: tuple[int, ...]
    fail_reasons: Mapping[int, FailReason]
    metrics: MessageMetrics
    good: GoodExecutionReport
    rounds: int
    extras: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """Did the network reach consensus (outcome != ⊥)?"""
        return self.outcome is not None
