"""Baseline protocols the paper compares against (all built from scratch).

* :mod:`repro.baselines.local_broadcast` — the prior-work comparator: a
  LOCAL-model all-to-all commit–reveal fair leader election in the style
  of Abraham–Dolev–Halpern (DISC'13) / Halpern–Vilaça (PODC'16).  Exact
  fairness, but Theta(n^2) messages and Theta(n) local memory — the cost
  the paper's protocol eliminates (E4).
* :mod:`repro.baselines.naive_gossip` — min-gossip leader election
  *without* commitment/verification: what Protocol P would be if it
  dropped its defences.  Fair when everyone is honest; trivially
  exploitable by a single underbidder (E8's positive control).
* :mod:`repro.baselines.polling` — Hassin–Peleg proportional polling
  (pull-voting): a light-weight fair-consensus dynamic with no rational
  robustness and Theta(n) round complexity on the complete graph (E8).
"""

from repro.baselines.halpern_vilaca import HVResult, run_halpern_vilaca
from repro.baselines.local_broadcast import LocalRunResult, run_local_fair_election
from repro.baselines.naive_gossip import NaiveResult, run_naive_gossip
from repro.baselines.polling import PollingResult, run_polling

__all__ = [
    "HVResult",
    "LocalRunResult",
    "NaiveResult",
    "PollingResult",
    "run_halpern_vilaca",
    "run_local_fair_election",
    "run_naive_gossip",
    "run_polling",
]
