"""Naive min-gossip leader election — Protocol P minus all defences.

Each active agent draws ``k_u`` u.a.r. in ``[m]`` *by itself* (no voting,
no witnesses), attaches his color, and the network spreads the minimal
``(k, owner)`` pair by pull gossip for ``q`` rounds.  Everyone then adopts
the color of the minimum.  This is the "simple and natural idea" the paper
starts from (choose a u.a.r. agent and stabilise on his color):

* **cooperatively** it is a perfectly fair leader election — the minimum
  of i.i.d. uniform draws is uniform over agents — at the same
  O(n log n) message cost as Protocol P;
* **rationally** it is broken: nothing stops an agent from declaring
  ``k = 0``.  :class:`NaiveCheater` does exactly that and wins with
  probability ~1 (E8), which is why Protocol P needs the
  commitment/voting/verification machinery.

Runs on the same GOSSIP substrate and the same accounting as Protocol P,
so E4/E8 comparisons are apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.gossip.actions import Action, Pull
from repro.gossip.engine import GossipEngine
from repro.gossip.messages import NO_REPLY, Blob, Payload
from repro.gossip.node import FaultyNode, Node, PullResponse
from repro.util.bits import bits_for_range, label_bits
from repro.util.rng import SeedTree

__all__ = ["NaiveResult", "run_naive_gossip", "NaiveHonest", "NaiveCheater"]

_TOPIC = "naive-min"


@dataclass(frozen=True)
class NaiveResult:
    outcome: Hashable | None
    winner: int | None
    messages: int
    total_bits: int
    max_message_bits: int
    rounds: int
    cheater_won: bool


class NaiveHonest(Node):
    """Draws k honestly; pull-gossips the minimal (k, owner, color)."""

    def __init__(self, node_id: int, n: int, m: int,
                 color: Hashable, rng: np.random.Generator):
        super().__init__(node_id)
        self.n = n
        self.rng = rng
        self.color = color
        k = int(rng.integers(m))
        self.best: tuple[int, int, Hashable] = (k, node_id, color)
        self._bits = bits_for_range(m) + 2 * label_bits(n)

    def _peer(self) -> int:
        peer = int(self.rng.integers(self.n - 1))
        return peer + 1 if peer >= self.node_id else peer

    def begin_round(self, rnd: int) -> Action | None:
        return Pull(self._peer(), _TOPIC)

    def on_pull_request(self, requester: int, topic: str, rnd: int) -> PullResponse:
        if topic == _TOPIC:
            return Blob(self._bits, data=self.best)
        return NO_REPLY

    def on_pull_reply(self, responder: int, payload: Payload, rnd: int) -> None:
        other = payload.data  # type: ignore[attr-defined]
        if other[:2] < self.best[:2]:
            self.best = other

    @property
    def decision(self) -> Hashable:
        return self.best[2]


class NaiveCheater(NaiveHonest):
    """Declares k = 0 — unbeatable, and nobody can tell."""

    def __init__(self, node_id: int, n: int, m: int,
                 color: Hashable, rng: np.random.Generator):
        super().__init__(node_id, n, m, color, rng)
        self.best = (0, node_id, color)

    def on_pull_reply(self, responder: int, payload: Payload, rnd: int) -> None:
        return  # nothing can beat k=0 (except another cheater's label)


def run_naive_gossip(
    colors: Sequence[Hashable],
    seed: int = 0,
    gamma: float = 3.0,
    faulty: frozenset[int] = frozenset(),
    cheaters: frozenset[int] = frozenset(),
) -> NaiveResult:
    """Run the naive protocol; cheaters declare k=0."""
    n = len(colors)
    if n < 2:
        raise ValueError("need at least 2 agents")
    m = n ** 3
    rounds = max(1, math.ceil(gamma * math.log2(n)))
    tree = SeedTree(seed)

    nodes: dict[int, Node] = {}
    for i in range(n):
        if i in faulty:
            nodes[i] = FaultyNode(i)
        elif i in cheaters:
            nodes[i] = NaiveCheater(i, n, m, colors[i],
                                    tree.child("agent", i).generator())
        else:
            nodes[i] = NaiveHonest(i, n, m, colors[i],
                                   tree.child("agent", i).generator())

    engine = GossipEngine(nodes)
    engine.run(rounds)

    honest = [
        nodes[i] for i in range(n) if i not in faulty and i not in cheaters
    ]
    assert all(isinstance(a, NaiveHonest) for a in honest)
    bests = {a.best for a in honest}  # type: ignore[union-attr]
    if len(bests) == 1:
        _, winner, color = next(iter(bests))
        outcome: Hashable | None = color
    else:
        outcome, winner = None, None  # gossip did not converge in time

    return NaiveResult(
        outcome=outcome,
        winner=winner,
        messages=engine.metrics.total_messages,
        total_bits=engine.metrics.total_bits,
        max_message_bits=engine.metrics.max_message_bits,
        rounds=rounds,
        cheater_won=winner in cheaters if winner is not None else False,
    )
