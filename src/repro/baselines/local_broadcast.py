"""LOCAL-model all-to-all commit–reveal fair leader election.

The protocols the paper improves on ([2] Abraham et al., [14]
Halpern–Vilaça) run in the LOCAL model: in one round an agent may exchange
messages with *all* neighbours.  Their common core on the complete graph:

1. **Commit round** — every active agent draws ``r_u`` u.a.r. in ``[M]``
   and broadcasts a binding commitment to it (n-1 messages each);
2. **Reveal round** — every agent broadcasts the opening of ``r_u``;
3. everyone computes ``S = sum of revealed r_u mod |A|`` over the active
   set (identical everywhere, broadcasts being reliable) and elects the
   ``S``-th active agent; the winner's color is the consensus.

Fairness is exact: ``S`` is uniform over ``[|A|]`` as long as at least one
agent draws honestly.  The commitments make the scheme a (n-1)-resilient
equilibrium in the fault-free LOCAL model ([2]); our interest here is its
cost, which is what E4 measures against Protocol P:

* messages: ``2 * |A| * (n-1)`` = Theta(n^2);
* local memory: every agent stores n commitments = Theta(n);
* rounds: O(1) — the one resource where LOCAL wins.

The commitment primitive is modelled abstractly (a binding, hiding token
of ``2 * log2 M`` bits); implementing a real hash commitment would only
change constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.util.bits import bits_for_range, label_bits
from repro.util.rng import SeedTree

__all__ = ["LocalRunResult", "run_local_fair_election"]


@dataclass(frozen=True)
class LocalRunResult:
    """Outcome and cost accounting of one LOCAL commit–reveal election."""

    outcome: Hashable
    winner: int
    messages: int
    total_bits: int
    max_message_bits: int
    rounds: int
    local_memory_entries: int  # per-agent stored commitments


def run_local_fair_election(
    colors: Sequence[Hashable],
    seed: int = 0,
    faulty: frozenset[int] = frozenset(),
) -> LocalRunResult:
    """Run the all-to-all commit–reveal election and account its cost."""
    n = len(colors)
    if n < 2:
        raise ValueError("need at least 2 agents")
    active = [i for i in range(n) if i not in faulty]
    if not active:
        raise ValueError("no active agent")

    tree = SeedTree(seed)
    big_m = n ** 3
    draws = {
        u: int(tree.child("draw", u).generator().integers(big_m)) for u in active
    }

    # Winner: the S-th active agent, S = sum of draws mod |A|.
    s = sum(draws.values()) % len(active)
    winner = sorted(active)[s]

    # Cost model.
    lbits = label_bits(n)
    value_bits = bits_for_range(big_m)
    commit_bits = 2 * lbits + 2 * value_bits  # header + binding commitment
    reveal_bits = 2 * lbits + value_bits      # header + opening
    per_agent_fanout = n - 1
    messages = 2 * len(active) * per_agent_fanout
    total_bits = len(active) * per_agent_fanout * (commit_bits + reveal_bits)

    return LocalRunResult(
        outcome=colors[winner],
        winner=winner,
        messages=messages,
        total_bits=total_bits,
        max_message_bits=max(commit_bits, reveal_bits),
        rounds=2,
        local_memory_entries=len(active),
    )
