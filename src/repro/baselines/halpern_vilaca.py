"""Halpern–Vilaça-style LOCAL protocol under *random* dynamic crashes.

The paper's direct predecessor [14] (PODC'16) proves two things about
rational fair consensus in the LOCAL model: (a) against a *worst-case
dynamic* adversary no protocol is a Nash equilibrium, and (b) if the
crash pattern is drawn from a benign distribution π, an all-to-all
protocol achieves a Nash equilibrium — at Ω(n²) messages and Θ(n) local
memory.

This module implements a protocol of that family so E4/E8-style
comparisons have the genuine prior-work shape, including its dynamic
fault handling (which Protocol P side-steps by assuming *permanent*
faults):

* Round 1 (value): every live agent broadcasts ``(value, color)``;
  agents may crash mid-broadcast, reaching only a prefix of receivers
  (the dynamic part; crash times drawn from π).
* Round 2 (echo): every surviving agent broadcasts the set of agents it
  heard from.  An agent's value *counts* iff every survivor echoes it —
  the classic crash-consistency rule; partially-delivered values are
  discarded deterministically.
* Decision: ``S = sum of counted values mod #counted``; the S-th
  counted agent's color wins.

Fairness holds among the *counted* agents (survivors of both rounds
whose broadcasts completed), matching [14]'s guarantee relative to the
fault distribution.  Cost: ``2 |A| (n-1)`` messages — the Ω(n²) the
paper's headline eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.util.bits import bits_for_range, label_bits
from repro.util.rng import SeedTree

__all__ = ["HVResult", "run_halpern_vilaca"]


@dataclass(frozen=True)
class HVResult:
    outcome: Hashable | None
    winner: int | None
    messages: int
    total_bits: int
    rounds: int
    counted: tuple[int, ...]   # agents whose value determined the outcome
    crashed: tuple[int, ...]   # agents that crashed (initially or mid-run)


def run_halpern_vilaca(
    colors: Sequence[Hashable],
    seed: int = 0,
    crash_probability: float = 0.0,
    initially_faulty: frozenset[int] = frozenset(),
) -> HVResult:
    """Run the commit-echo election under the benign crash model.

    ``crash_probability`` is π's per-agent chance of crashing during its
    value broadcast (delivering only a random prefix); crashes are
    independent, matching [14]'s "reasonable conditions" on π.
    """
    n = len(colors)
    if n < 2:
        raise ValueError("need at least 2 agents")
    if not 0.0 <= crash_probability < 1.0:
        raise ValueError("crash_probability must be in [0, 1)")

    tree = SeedTree(seed)
    rng = tree.child("hv").generator()
    big_m = n ** 3

    live = sorted(set(range(n)) - initially_faulty)
    if not live:
        raise ValueError("no live agent")

    # Round 1: value broadcasts, possibly cut short by a crash.
    values: dict[int, int] = {}
    heard_by: dict[int, set[int]] = {}   # broadcaster -> receivers reached
    crashed_mid: list[int] = []
    order = [u for u in live]
    messages = 0
    for u in order:
        values[u] = int(rng.integers(big_m))
        receivers = [v for v in live if v != u]
        if rng.random() < crash_probability:
            crashed_mid.append(u)
            cut = int(rng.integers(len(receivers) + 1))
            receivers = receivers[:cut]
        heard_by[u] = set(receivers)
        messages += len(receivers)

    survivors = [u for u in live if u not in crashed_mid]

    # Round 2: echo broadcasts by survivors (who they heard from).
    messages += len(survivors) * (len(live) - 1)

    # An agent's value counts iff EVERY survivor heard it (directly).
    counted = [
        u for u in live
        if all(v in heard_by[u] or v == u for v in survivors)
        and u not in crashed_mid
    ]
    if not counted:
        return HVResult(None, None, messages, 0, 2, (), tuple(crashed_mid))

    s = sum(values[u] for u in counted) % len(counted)
    winner = sorted(counted)[s]

    lbits = label_bits(n)
    vbits = bits_for_range(big_m)
    value_msg = 2 * lbits + vbits + bits_for_range(max(2, len(set(colors))))
    echo_msg = 2 * lbits + n  # a bitmap of who was heard
    total_bits = (messages - len(survivors) * (len(live) - 1)) * value_msg \
        + len(survivors) * (len(live) - 1) * echo_msg

    return HVResult(
        outcome=colors[winner],
        winner=winner,
        messages=messages,
        total_bits=total_bits,
        rounds=2,
        counted=tuple(sorted(counted)),
        crashed=tuple(sorted(crashed_mid)),
    )
