"""Hassin–Peleg proportional polling (pull-voting dynamics).

The classic light-weight fair-consensus dynamic [15]: every round, every
active agent pulls a u.a.r. peer and adopts its current color.  On the
complete graph the support of each color is a martingale, so the
probability that a color wins equals its initial fraction — proportional
agreement "for free".

What it lacks, and what the experiments show:

* **Speed**: absorption takes Theta(n) rounds of full-network polling on
  the complete graph (the color-fraction random walk moves by ~1/sqrt(n)
  per round), versus O(log n) for Protocol P — E8 measures the gap.
* **Rational robustness**: a single *stubborn* agent that never adopts
  makes its color the only absorbing state; with patience it wins with
  probability ~1.  There is no certificate to audit, so nobody can tell
  stubbornness from luck — E8's second positive control.

Faulty agents are quiescent: pulls aimed at them return nothing (the
puller keeps its color that round) and they never pull.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.util.rng import SeedTree

__all__ = ["PollingResult", "run_polling"]


@dataclass(frozen=True)
class PollingResult:
    outcome: Hashable | None     # consensus color, or None if not absorbed
    rounds: int                  # rounds executed (== absorption time if converged)
    messages: int                # pull request+reply count
    converged: bool
    stubborn_won: bool


def run_polling(
    colors: Sequence[Hashable],
    seed: int = 0,
    max_rounds: int | None = None,
    faulty: frozenset[int] = frozenset(),
    stubborn: frozenset[int] = frozenset(),
) -> PollingResult:
    """Run pull-voting until consensus among active agents or the cap.

    Vectorised (the dynamic is memoryless, one NumPy gather per round):
    the agent-level substrate is unnecessary here and this keeps the
    Theta(n)-round runs cheap.
    """
    n = len(colors)
    if n < 2:
        raise ValueError("need at least 2 agents")
    if max_rounds is None:
        max_rounds = 40 * n  # far beyond the expected Theta(n) absorption

    rng = SeedTree(seed).child("polling").generator()

    palette = sorted({repr(c) for c in colors})
    index_of = {c: palette.index(repr(c)) for c in set(colors)}
    back = {palette.index(repr(c)): c for c in set(colors)}
    state = np.array([index_of[c] for c in colors], dtype=np.int64)

    active_mask = np.ones(n, dtype=bool)
    for f in faulty:
        active_mask[f] = False
    active_idx = np.flatnonzero(active_mask)
    follower_mask = active_mask.copy()
    for s in stubborn:
        follower_mask[s] = False
    follower_idx = np.flatnonzero(follower_mask)

    messages = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        # Each follower pulls a u.a.r. *other* agent; stubborn agents
        # also pull (to be indistinguishable) but never adopt.
        targets = rng.integers(n - 1, size=active_idx.size)
        targets = targets + (targets >= active_idx)
        replied = active_mask[targets]  # pulls at faulty agents time out
        messages += active_idx.size + int(replied.sum())

        new_state = state.copy()
        is_follower = follower_mask[active_idx]
        adopt = replied & is_follower
        new_state[active_idx[adopt]] = state[targets[adopt]]
        state = new_state

        if np.unique(state[active_idx]).size == 1:
            break
    else:
        rounds = max_rounds

    active_colors = np.unique(state[active_idx])
    converged = active_colors.size == 1
    outcome = back[int(active_colors[0])] if converged else None
    stubborn_won = converged and any(
        back[int(state[s])] == outcome for s in stubborn
    )
    # The follower set only matters for dynamics, not the result shape.
    del follower_idx
    return PollingResult(
        outcome=outcome,
        rounds=rounds,
        messages=messages,
        converged=converged,
        stubborn_won=bool(stubborn and stubborn_won),
    )
