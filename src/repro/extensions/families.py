"""Graph families for the topology experiments, in CSR form.

E10a runs Protocol P on one freshly sampled graph per trial, so graph
construction sits on the hot path of the batched tier.  This module owns
the scenario matrix end to end:

* :class:`GraphCSR` — the shared adjacency representation of both
  simulation tiers: per-node neighbour offsets plus one flat neighbour
  array, rows sorted ascending.  Sorted rows matter for cross-tier
  parity: :class:`~repro.extensions.topologies.GraphAgent` sorts its
  neighbour list, so "neighbour index i" means the same vertex on every
  engine.
* the family registry (:data:`GRAPH_KINDS` / :func:`sample_graph`) —
  numpy-native samplers for every family except ``regular8`` (which
  keeps networkx's pairing-model sampler).  The Barabási–Albert and
  Watts–Strogatz samplers are this module's own specs: each one
  pre-draws its full uniform tensor from the family's named
  :class:`~repro.util.rng.SeedTree` stream and then applies pure
  arithmetic, so the vectorized samplers (:func:`sample_graph`,
  :func:`sample_graph_batch`) and the scalar per-edge references
  (:func:`sample_graph_reference`) are byte-identical per seed — the
  sampler-conformance suite pins this.  :data:`SAMPLER_VERSION` names
  the current byte-level sampler spec; the workload-artifact cache
  (:mod:`repro.workloads`) keys artifacts on it so a sampler change
  invalidates every cached workload instead of silently serving stale
  bytes.
* **explicit connectivity patching** — kinds whose samplers can emit
  disconnected graphs (:data:`PATCHED_KINDS`) get the Hamiltonian-cycle
  patch, and the number of edges the patch *added* is reported per
  sample (``GraphSample.patched_edges``).  Before this was explicit, the
  E10 driver ring-patched every kind silently, densifying the
  ``er_sparse``/``ring`` statistics without a trace in the results.
* **churn scenarios** — ``"<kind>+churn"`` reuses the permanent-fault
  machinery: each trial draws an i.i.d. fault set (rate
  ``churn_rate``), modelling nodes that crash during the run.  (The
  paper's fault model is adversarial-but-permanent; sampling the set
  per trial is the natural Monte-Carlo churn analogue and keeps both
  engines bit-compatible, since ``faulty`` is already a first-class
  input everywhere.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Sequence

import numpy as np

from repro.util.rng import SeedTree

__all__ = [
    "DETERMINISTIC_KINDS",
    "GRAPH_KINDS",
    "PATCHED_KINDS",
    "SAMPLER_VERSION",
    "GraphCSR",
    "GraphSample",
    "ScenarioWorkload",
    "csr_from_edges",
    "csr_from_networkx",
    "sample_churn_faulty",
    "sample_graph",
    "sample_graph_batch",
    "sample_graph_reference",
    "sample_scenario_workload",
    "split_scenario",
]

#: Version of the byte-level sampler spec.  Bump whenever any change
#: alters the bytes a sampler emits for some (kind, n, seed) — cached
#: workload artifacts (:mod:`repro.workloads`) carry it in their
#: content-hash key, so a bump invalidates every artifact instead of
#: serving stale pre-change bytes.  Version 2: the numpy-native BA/WS
#: specs replaced the networkx samplers.
SAMPLER_VERSION = 2

#: Scenario-matrix families, in canonical row order.
GRAPH_KINDS = (
    "complete", "er_dense", "regular8", "er_sparse", "ring",
    "ba", "ws", "torus", "star",
)

#: Kinds whose samplers may emit disconnected graphs (or isolated
#: vertices) and therefore receive the explicit Hamiltonian-cycle patch.
#: The structured families (complete/ring/torus/star) are connected by
#: construction, and Barabási–Albert attaches every new vertex to an
#: existing one, so they are never patched.
PATCHED_KINDS = frozenset({"er_dense", "er_sparse", "regular8", "ws"})

#: Kinds whose sample ignores the seed entirely — one instance per
#: (kind, n).  Callers batching many trials can sample once and share
#: the CSR (the batched tier then skips replicating the flat
#: neighbour array across the block).
DETERMINISTIC_KINDS = frozenset({"complete", "ring", "torus", "star"})

_CHURN_SUFFIX = "+churn"


@dataclass(frozen=True)
class GraphCSR:
    """Undirected simple graph on ``0..n-1`` in CSR adjacency form.

    ``nbrs[indptr[u]:indptr[u+1]]`` are ``u``'s neighbours, sorted
    ascending — so a uniform neighbour draw is one gather, and neighbour
    *indices* agree with the sorted lists the per-agent tier uses.
    """

    n: int
    indptr: np.ndarray   # (n+1,) int64, monotone
    nbrs: np.ndarray     # (2E,) int64

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        return self.nbrs[self.indptr[u]:self.indptr[u + 1]]

    def edge_count(self) -> int:
        return int(self.nbrs.size) // 2

    def to_networkx(self):
        """The same graph as ``nx.Graph`` (for the per-agent tier)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        u = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        mask = u < self.nbrs  # each undirected edge once
        g.add_edges_from(zip(u[mask].tolist(), self.nbrs[mask].tolist()))
        return g


@dataclass(frozen=True)
class GraphSample:
    """One sampled scenario graph plus its patching provenance."""

    kind: str
    csr: GraphCSR
    patched_edges: int


def _codes_to_csr(n: int, codes: np.ndarray) -> GraphCSR:
    """CSR from unique undirected edge codes ``u * n + v`` with u < v."""
    u, v = codes // n, codes % n
    ends = np.concatenate([u, v])
    other = np.concatenate([v, u])
    order = np.lexsort((other, ends))
    nbrs = other[order]
    counts = np.bincount(ends, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return GraphCSR(n=n, indptr=indptr, nbrs=nbrs.astype(np.int64))


def csr_from_edges(n: int, edges: np.ndarray) -> GraphCSR:
    """Build a :class:`GraphCSR` from an ``(E, 2)`` edge array.

    Self-loops are rejected; duplicate/reversed edges are collapsed.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size and (edges[:, 0] == edges[:, 1]).any():
        raise ValueError("self-loops are outside the gossip model")
    lo = edges.min(axis=1)
    hi = edges.max(axis=1)
    codes = np.unique(lo * n + hi)
    return _codes_to_csr(n, codes)


def csr_from_networkx(graph) -> GraphCSR:
    """CSR adjacency of an ``nx.Graph`` labelled ``0..n-1``."""
    n = graph.number_of_nodes()
    if set(graph.nodes) != set(range(n)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    if n == 0:
        raise ValueError("empty graph")
    edges = np.array(
        [e for e in graph.edges if e[0] != e[1]], dtype=np.int64
    ).reshape(-1, 2)
    return csr_from_edges(n, edges)


@lru_cache(maxsize=32)
def _ring_codes(n: int) -> np.ndarray:
    i = np.arange(n, dtype=np.int64)
    j = (i + 1) % n
    return np.unique(np.minimum(i, j) * n + np.maximum(i, j))


def _patch_connected(n: int, codes: np.ndarray) -> tuple[np.ndarray, int]:
    """Union with the Hamiltonian cycle; returns (codes, edges added)."""
    patched = np.union1d(codes, _ring_codes(n))
    return patched, int(patched.size - codes.size)


def _torus_dims(n: int) -> tuple[int, int]:
    """The most square ``a * b = n`` factorisation (a <= b)."""
    a = int(math.isqrt(n))
    while a > 1 and n % a:
        a -= 1
    return a, n // a


def _sample_codes(kind: str, n: int, rng: np.random.Generator) -> np.ndarray:
    """Edge codes for the numpy-native families."""
    i = np.arange(n, dtype=np.int64)
    if kind == "complete":
        u, v = np.triu_indices(n, k=1)
        return u.astype(np.int64) * n + v
    if kind in ("er_dense", "er_sparse"):
        p = 0.5 if kind == "er_dense" else min(1.0, 3 * math.log(n) / n)
        u, v = np.triu_indices(n, k=1)
        keep = rng.random(u.size) < p
        return np.sort(u[keep].astype(np.int64) * n + v[keep])
    if kind == "ring":
        return _ring_codes(n)
    if kind == "star":
        return i[1:].copy()  # codes 0 * n + v for the hub edges (0, v)
    if kind == "torus":
        a, b = _torus_dims(n)
        if a < 2:  # prime n: the torus degenerates to the cycle
            return _ring_codes(n)
        r, c = i // b, i % b
        right = r * b + (c + 1) % b
        down = ((r + 1) % a) * b + c
        ends = np.concatenate([right, down])
        starts = np.concatenate([i, i])
        lo = np.minimum(starts, ends)
        hi = np.maximum(starts, ends)
        return np.unique(lo * n + hi)
    raise ValueError(f"unknown numpy-native graph kind {kind!r}")


# ---------------------------------------------------------------------------
# Barabási–Albert: preferential attachment via a repeated-nodes array
# ---------------------------------------------------------------------------
#
# The spec (this module's own, replacing networkx): with
# ``m = min(4, n - 1)``, node ``m`` attaches to all of ``0..m-1``
# deterministically (so the graph is connected by construction and ba
# stays out of PATCHED_KINDS), and every later node ``k`` draws ``m``
# attachment targets by uniform index into the repeated-nodes array
# ``R`` — the flat history of every edge endpoint so far, so a node's
# draw probability is proportional to its degree.  All ``m`` draws of
# one node index the *pre-append* ``R`` (its length is a deterministic
# function of ``k``), which is what lets the batch sampler advance all
# trials one node at a time with identical arithmetic.  Duplicate
# targets collapse when the edge codes are uniqued, exactly as repeated
# (u, v) attachments do in the classic multigraph formulation.

def _ba_m(n: int) -> int:
    return min(4, n - 1)


def _ba_uniforms(n: int, seed: int) -> np.ndarray:
    """The BA draw tensor: one uniform per (grown node, attachment)."""
    m = _ba_m(n)
    rng = SeedTree(seed).child("graph", "ba").generator()
    return rng.random((max(0, n - 1 - m), m))


def _ba_codes(n: int, uniforms: np.ndarray) -> np.ndarray:
    """Vectorized single-trial BA edge codes (numpy inner ops)."""
    m = _ba_m(n)
    grown = uniforms.shape[0]
    repeated = np.empty(2 * m * (grown + 1), dtype=np.int64)
    repeated[:m] = np.arange(m)
    repeated[m:2 * m] = m
    codes = [np.arange(m, dtype=np.int64) * n + m]
    length = 2 * m
    for j in range(grown):
        k = m + 1 + j
        targets = repeated[(uniforms[j] * length).astype(np.int64)]
        codes.append(targets * n + k)
        repeated[length:length + m] = targets
        repeated[length + m:length + 2 * m] = k
        length += 2 * m
    return np.unique(np.concatenate(codes))


def _ba_codes_reference(n: int, uniforms: np.ndarray) -> np.ndarray:
    """Scalar per-edge BA reference: same draws, same arithmetic."""
    m = _ba_m(n)
    repeated: list[int] = list(range(m)) + [m] * m
    codes = [u * n + m for u in range(m)]
    for j in range(uniforms.shape[0]):
        k = m + 1 + j
        length = len(repeated)
        targets = []
        for e in range(m):
            t = int(repeated[int(uniforms[j, e] * length)])
            targets.append(t)
            codes.append(t * n + k)
        repeated.extend(targets)
        repeated.extend([k] * m)
    return np.unique(np.array(codes, dtype=np.int64))


def _ba_codes_batch(n: int, uniforms: np.ndarray) -> list[np.ndarray]:
    """Batch BA: advance every trial one node at a time (trial-axis ops).

    ``uniforms`` is the ``(trials, n-1-m, m)`` stack of per-trial draw
    tensors; the per-node loop is shared, the inner gather/scatter runs
    across all trials at once.
    """
    n_b, grown, m = uniforms.shape
    repeated = np.empty((n_b, 2 * m * (grown + 1)), dtype=np.int64)
    repeated[:, :m] = np.arange(m)
    repeated[:, m:2 * m] = m
    star = np.arange(m, dtype=np.int64) * n + m
    drawn = np.empty((n_b, grown, m), dtype=np.int64)
    rows = np.arange(n_b)[:, None]
    length = 2 * m
    for j in range(grown):
        k = m + 1 + j
        targets = repeated[rows, (uniforms[:, j, :] * length)
                           .astype(np.int64)]
        drawn[:, j, :] = targets * n + k
        repeated[:, length:length + m] = targets
        repeated[:, length + m:length + 2 * m] = k
        length += 2 * m
    return [
        np.unique(np.concatenate([star, drawn[b].ravel()]))
        for b in range(n_b)
    ]


# ---------------------------------------------------------------------------
# Watts–Strogatz: ring lattice with independent edge rewiring
# ---------------------------------------------------------------------------
#
# The spec: a ``k = 2 * half`` ring lattice (``half = min(8, n-2) // 2``
# neighbours per side) whose edges rewire independently with
# probability 0.1 to a uniform candidate endpoint.  A candidate equal
# to the edge's anchor (a would-be self-loop) keeps the lattice edge;
# duplicate edges collapse in the unique-codes union.  Every decision
# is per-edge on pre-drawn arrays, so the vectorized sampler is a
# straight ``np.where`` over the scalar reference's loop.

#: Rewiring probability of the Watts–Strogatz spec.
_WS_REWIRE_P = 0.1


def _ws_half(n: int) -> int:
    return max(1, min(8, n - 2) // 2)


def _ws_draws(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """(rewire uniforms, candidate endpoints), one per lattice edge."""
    half = _ws_half(n)
    rng = SeedTree(seed).child("graph", "ws").generator()
    rewire = rng.random(n * half)
    cand = rng.integers(0, n, size=n * half)
    return rewire, cand


def _ws_codes(n: int, rewire: np.ndarray, cand: np.ndarray) -> np.ndarray:
    """Vectorized WS edge codes (edge order: offset-major, then anchor)."""
    half = _ws_half(n)
    j = np.repeat(np.arange(1, half + 1, dtype=np.int64), n)
    u = np.tile(np.arange(n, dtype=np.int64), half)
    v = (u + j) % n
    w = np.where((rewire < _WS_REWIRE_P) & (cand != u), cand, v)
    return np.unique(np.minimum(u, w) * n + np.maximum(u, w))


def _ws_codes_reference(
    n: int, rewire: np.ndarray, cand: np.ndarray
) -> np.ndarray:
    """Scalar per-edge WS reference: same draws, same decisions."""
    half = _ws_half(n)
    codes = set()
    e = 0
    for j in range(1, half + 1):
        for u in range(n):
            v = (u + j) % n
            w = v
            if rewire[e] < _WS_REWIRE_P and int(cand[e]) != u:
                w = int(cand[e])
            codes.add(min(u, w) * n + max(u, w))
            e += 1
    return np.array(sorted(codes), dtype=np.int64)


def _torus_codes_reference(n: int) -> np.ndarray:
    """Scalar per-cell torus reference (right + down wrap neighbours)."""
    a, b = _torus_dims(n)
    if a < 2:  # prime n: the torus degenerates to the cycle
        codes = set()
        for u in range(n):
            v = (u + 1) % n
            codes.add(min(u, v) * n + max(u, v))
        return np.array(sorted(codes), dtype=np.int64)
    codes = set()
    for r in range(a):
        for c in range(b):
            u = r * b + c
            for v in (r * b + (c + 1) % b, ((r + 1) % a) * b + c):
                codes.add(min(u, v) * n + max(u, v))
    return np.array(sorted(codes), dtype=np.int64)


def _validate_kind_n(kind: str, n: int) -> None:
    if kind not in GRAPH_KINDS:
        raise ValueError(f"unknown graph kind {kind!r}; known: {GRAPH_KINDS}")
    if n < 4:
        raise ValueError(f"graph scenarios need n >= 4, got {n}")


def _regular8_codes(n: int, seed: int) -> np.ndarray:
    """The one family still sampled through networkx (pairing model)."""
    import networkx as nx

    g = nx.random_regular_graph(min(8, n - 1), n, seed=seed)
    ends = np.array(list(g.edges), dtype=np.int64).reshape(-1, 2)
    lo, hi = ends.min(axis=1), ends.max(axis=1)
    return np.unique(lo * n + hi)


def _finish_sample(kind: str, n: int, codes: np.ndarray) -> GraphSample:
    patched = 0
    if kind in PATCHED_KINDS:
        codes, patched = _patch_connected(n, codes)
    return GraphSample(kind=kind, csr=_codes_to_csr(n, codes),
                       patched_edges=patched)


def sample_graph(kind: str, n: int, seed: int) -> GraphSample:
    """Sample one scenario graph (deterministic in ``(kind, n, seed)``).

    Kinds in :data:`PATCHED_KINDS` are made connected by the explicit
    Hamiltonian-cycle patch; ``patched_edges`` counts the edges the
    patch added (0 for the never-patched kinds).
    """
    _validate_kind_n(kind, n)
    if kind == "ba":
        codes = _ba_codes(n, _ba_uniforms(n, seed))
    elif kind == "ws":
        codes = _ws_codes(n, *_ws_draws(n, seed))
    elif kind == "regular8":
        codes = _regular8_codes(n, seed)
    else:
        rng = SeedTree(seed).child("graph", kind).generator()
        codes = _sample_codes(kind, n, rng)
    return _finish_sample(kind, n, codes)


def sample_graph_reference(kind: str, n: int, seed: int) -> GraphSample:
    """The scalar per-edge reference samplers, same outputs bit-for-bit.

    ``ba``/``ws``/``torus`` route through explicit Python loops over the
    same pre-drawn uniforms as :func:`sample_graph`; every other kind is
    already a one-shot numpy expression and delegates.  The
    sampler-conformance suite pins ``sample_graph_reference(...) ==
    sample_graph(...)`` byte-for-byte per (kind, n, seed).
    """
    _validate_kind_n(kind, n)
    if kind == "ba":
        codes = _ba_codes_reference(n, _ba_uniforms(n, seed))
    elif kind == "ws":
        codes = _ws_codes_reference(n, *_ws_draws(n, seed))
    elif kind == "torus":
        codes = _torus_codes_reference(n)
    else:
        return sample_graph(kind, n, seed)
    return _finish_sample(kind, n, codes)


def sample_graph_batch(
    kind: str, n: int, seeds: Sequence[int]
) -> list[GraphSample]:
    """One sample per seed, batched where the family supports it.

    Deterministic kinds sample once and share the object (callers and
    the batch tier rely on the ``is`` identity to skip replicating the
    flat neighbour arrays); ``ba`` advances all trials together through
    the batch sampler; the remaining families loop per seed (their
    samplers are already one-shot numpy expressions, or networkx for
    ``regular8``).  Per-seed outputs are byte-identical to
    :func:`sample_graph`.
    """
    _validate_kind_n(kind, n)
    seeds = [int(s) for s in seeds]
    if not seeds:
        return []
    if kind in DETERMINISTIC_KINDS:
        return [sample_graph(kind, n, seeds[0])] * len(seeds)
    if kind == "ba":
        uniforms = np.stack([_ba_uniforms(n, s) for s in seeds])
        return [
            _finish_sample(kind, n, codes)
            for codes in _ba_codes_batch(n, uniforms)
        ]
    return [sample_graph(kind, n, s) for s in seeds]


def split_scenario(scenario: str) -> tuple[str, bool]:
    """``"ws+churn"`` → ``("ws", True)``; plain kinds → ``(kind, False)``."""
    if scenario.endswith(_CHURN_SUFFIX):
        return scenario[: -len(_CHURN_SUFFIX)], True
    return scenario, False


@dataclass(frozen=True)
class ScenarioWorkload:
    """One scenario's full Monte-Carlo input: per-trial graphs, fault
    sets and seeds — the shared workload definition of the experiment,
    the conformance suite and the benchmark (so they cannot drift)."""

    scenario: str
    samples: tuple[GraphSample, ...]
    faulty: tuple[frozenset[int], ...]
    seeds: tuple[int, ...]
    #: When the workload came out of the artifact cache
    #: (:mod:`repro.workloads`), the handle shard workers use to attach
    #: the memory-mapped artifact instead of repickling the CSR bytes.
    ref: Any = None

    @property
    def csrs(self) -> list[GraphCSR]:
        return [s.csr for s in self.samples]

    @property
    def mean_patched_edges(self) -> float:
        return float(np.mean([s.patched_edges for s in self.samples]))


def sample_scenario_workload(
    scenario: str,
    n: int,
    trials: int,
    base_seed: int,
    churn_rate: float = 0.05,
    seed_stride: int = 41,
) -> ScenarioWorkload:
    """Assemble one E10a scenario workload deterministically.

    Trial ``i`` uses seed ``base_seed + seed_stride * i`` (E10's seed
    spine).  Deterministic kinds sample one graph and share it across
    trials (the batch tier then skips replicating the flat neighbour
    arrays); churn scenarios draw one i.i.d. fault set per trial.
    """
    kind, churn = split_scenario(scenario)
    seeds = tuple(base_seed + seed_stride * i for i in range(trials))
    samples = tuple(sample_graph_batch(kind, n, seeds))
    faulty = (
        tuple(sample_churn_faulty(n, churn_rate, s) for s in seeds)
        if churn else (frozenset(),) * trials
    )
    return ScenarioWorkload(
        scenario=scenario, samples=samples, faulty=faulty, seeds=seeds,
    )


def sample_churn_faulty(n: int, rate: float, seed: int) -> frozenset[int]:
    """The trial's crashed-node set: i.i.d. Bernoulli(``rate``) per node.

    Deterministic in ``(n, rate, seed)`` and guaranteed to leave at
    least two active agents (the protocol's minimum), so a churn trial
    is always runnable on every engine.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"churn rate must be in [0, 1), got {rate}")
    rng = SeedTree(seed).child("churn").generator()
    mask = rng.random(n) < rate
    alive = np.flatnonzero(~mask)
    if alive.size < 2:
        mask[:] = True
        mask[:2] = False
    return frozenset(np.flatnonzero(mask).tolist())
