"""Extensions: the two open problems from the paper's conclusions.

1. *"provide GOSSIP algorithms for rational fair consensus in other
   relevant classes of graphs"* — :mod:`repro.extensions.topologies`
   runs Protocol P with neighbour-restricted gossip on arbitrary graphs
   and measures where (and why) fairness and termination degrade.
2. *"the study of this problem in the asynchronous (i.e. sequential)
   GOSSIP model where, at every round, only one (possibly random) agent
   is awake"* — :mod:`repro.extensions.async_gossip` implements the
   sequential scheduler and the async variants of the building blocks,
   measuring the Theta(n log n)-tick behaviour.

Both are empirical explorations (the paper proves nothing here); E10
reports the measurements.
"""

from repro.extensions.async_gossip import (
    async_min_ticks,
    async_min_ticks_batch,
    async_min_trace,
    election_keys,
    run_async_leader_election,
    run_async_leader_election_batch,
)
from repro.extensions.families import (
    DETERMINISTIC_KINDS,
    GRAPH_KINDS,
    PATCHED_KINDS,
    GraphCSR,
    GraphSample,
    csr_from_networkx,
    sample_churn_faulty,
    sample_graph,
    split_scenario,
)
from repro.extensions.topologies import GraphRunResult, run_graph_protocol

__all__ = [
    "DETERMINISTIC_KINDS",
    "GRAPH_KINDS",
    "PATCHED_KINDS",
    "GraphCSR",
    "GraphRunResult",
    "GraphSample",
    "async_min_ticks",
    "async_min_ticks_batch",
    "async_min_trace",
    "csr_from_networkx",
    "election_keys",
    "run_async_leader_election",
    "run_async_leader_election_batch",
    "run_graph_protocol",
    "sample_churn_faulty",
    "sample_graph",
    "split_scenario",
]
