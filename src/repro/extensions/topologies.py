"""Protocol P on non-complete graphs (open problem 1).

The protocol text assumes the complete graph: peers are sampled u.a.r.
from ``[n]``.  The natural generalisation samples u.a.r. *neighbours*
instead — both for the protocol's pulls/pushes and for the vote-intention
targets.  :class:`GraphAgent` does exactly that; everything else
(certificates, verification, schedule) is unchanged.

What degrades, and why (measured in E10):

* **Termination**: Find-Min becomes pull-broadcast on the graph; its
  convergence time is governed by conductance, so the fixed O(log n)
  schedule fails on poorly-connected graphs (rings need Theta(n)).
* **Fairness**: an agent's ``k_u`` is uniform only if it receives at
  least one vote.  Isolated or low-degree vertices may receive none,
  giving them ``k = 0`` — on sparse Erdős–Rényi graphs below the
  connectivity threshold this visibly skews the election.

This module is the *reference tier* for graph-restricted runs: the
batched CSR simulator (:mod:`repro.fastpath.graphs`) reproduces its
per-trial observables bit-exactly in seed-parity mode
(``tests/test_graph_conformance.py``) and carries the E10 Monte-Carlo
load; this engine remains the ground truth and the only tier that can
host deviating agents on graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import networkx as nx

from repro.core.agent import HonestAgent
from repro.core.params import ProtocolParams
from repro.core.votes import PlannedVote, VoteIntention
from repro.gossip.engine import GossipEngine
from repro.gossip.node import FaultyNode, Node
from repro.util.rng import SeedTree

__all__ = ["GraphAgent", "GraphRunResult", "run_graph_protocol"]


class GraphAgent(HonestAgent):
    """Honest Protocol-P agent restricted to a neighbour set."""

    def __init__(self, node_id: int, params: ProtocolParams, color: Hashable,
                 seed_tree: SeedTree, neighbors: Sequence[int]):
        super().__init__(node_id, params, color, seed_tree)
        if not neighbors:
            raise ValueError(f"agent {node_id} has no neighbours")
        self.neighbors = sorted(neighbors)
        # Redraw the vote intention over neighbours (a dedicated named
        # stream keeps the draw reproducible given the seed tree).
        rng = seed_tree.child("graph-intention").generator()
        values = rng.integers(params.m, size=params.q)
        targets = rng.integers(len(self.neighbors), size=params.q)
        self.intention = VoteIntention(tuple(
            PlannedVote(int(v), self.neighbors[int(t)])
            for v, t in zip(values, targets)
        ))

    def _random_peer(self) -> int:
        return self.neighbors[int(self._peer_rng.integers(len(self.neighbors)))]


@dataclass
class GraphRunResult:
    """Outcome of one graph-restricted run."""

    outcome: Hashable | None
    winner: int | None
    decisions: Mapping[int, Hashable | None]
    zero_vote_agents: int
    split: bool  # agreement violated without detected failure
    failed_agents: int


def run_graph_protocol(
    graph: nx.Graph,
    colors: Sequence[Hashable],
    gamma: float = 3.0,
    seed: int = 0,
    faulty: frozenset[int] = frozenset(),
) -> GraphRunResult:
    """Run Protocol P with neighbour-restricted gossip on ``graph``.

    Nodes must be labelled ``0..n-1``; isolated active vertices are
    rejected (they cannot gossip at all).
    """
    n = len(colors)
    if set(graph.nodes) != set(range(n)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    params = ProtocolParams(n=n, gamma=gamma, num_colors=len(set(colors)))
    tree = SeedTree(seed)

    nodes: dict[int, Node] = {}
    for i in range(n):
        if i in faulty:
            nodes[i] = FaultyNode(i)
        else:
            nodes[i] = GraphAgent(
                i, params, colors[i], tree.child("agent", i),
                neighbors=list(graph.neighbors(i)),
            )
    engine = GossipEngine(nodes)
    engine.run(params.total_rounds)
    engine.finalize()

    agents = [
        nodes[i] for i in range(n) if i not in faulty
    ]
    decisions = {a.node_id: a.decision for a in agents}  # type: ignore[union-attr]
    distinct = set(decisions.values())
    failed = sum(1 for a in agents if a.failed)  # type: ignore[union-attr]
    zero_votes = sum(
        1 for a in agents if not a.received_votes  # type: ignore[union-attr]
    )

    if len(distinct) == 1 and None not in distinct:
        outcome: Hashable | None = next(iter(distinct))
        winners = {a.min_certificate.owner for a in agents  # type: ignore[union-attr]
                   if a.min_certificate is not None}
        winner = winners.pop() if len(winners) == 1 else None
        split = False
    else:
        outcome, winner = None, None
        # "split": several colors decided and nobody noticed (no ⊥ vote)
        split = None not in distinct and len(distinct) > 1

    return GraphRunResult(
        outcome=outcome,
        winner=winner,
        decisions=decisions,
        zero_vote_agents=zero_votes,
        split=split,
        failed_agents=failed,
    )
