"""The asynchronous (sequential) GOSSIP model (open problem 2).

In the sequential model, at every *tick* a single agent — chosen u.a.r. —
wakes up and performs one push or pull.  The paper leaves rational fair
consensus in this model open; as a first empirical step we implement:

* :func:`async_min_ticks` — sequential pull-based min-aggregation: the
  woken agent pulls a u.a.r. peer and keeps the smaller value.  The
  classic result for sequential gossip dissemination is Theta(n log n)
  ticks; E10 measures the constant.
* :func:`run_async_leader_election` — a fair (cooperative) leader
  election in the sequential model: every agent draws ``k`` u.a.r.,
  then min-aggregation runs for a tick budget; if all active agents
  agree on the minimum, its owner's color is the outcome.  Fairness is
  inherited from the uniform draws; the open research question (which we
  do NOT claim to answer) is how to make the *commitment/verification*
  machinery work without synchronised phase boundaries.

Faulty agents never wake and never reply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.util.rng import SeedTree

__all__ = ["async_min_ticks", "run_async_leader_election", "AsyncElectionResult"]


def async_min_ticks(
    values: Sequence[float],
    seed: int = 0,
    max_ticks: int | None = None,
    faulty: frozenset[int] = frozenset(),
) -> int:
    """Ticks until every active agent holds the global active minimum.

    Returns ``max_ticks`` if the budget is exhausted first (default
    budget: ``40 * n * (log2 n + 1)``, far above the expected
    Theta(n log n)).
    """
    n = len(values)
    if n < 2:
        raise ValueError("need at least 2 agents")
    if max_ticks is None:
        max_ticks = int(40 * n * (np.log2(n) + 1))
    rng = SeedTree(seed).child("async").generator()

    active = np.ones(n, dtype=bool)
    if faulty:
        active[list(faulty)] = False
    act_idx = np.flatnonzero(active)
    current = np.array(values, dtype=float)
    target = current[act_idx].min()

    # Track how many active agents already hold the target minimum, so
    # the termination check is O(1) per tick.  Draws happen in batches to
    # keep the Python loop light.
    holders = int((current[act_idx] == target).sum())
    n_active = int(act_idx.size)
    batch = 4096
    done = holders == n_active
    ticks = 0
    while not done and ticks < max_ticks:
        take = min(batch, max_ticks - ticks)
        wakers = rng.integers(n, size=take)
        peers_raw = rng.integers(n - 1, size=take)
        peers = peers_raw + (peers_raw >= wakers)
        for w, p in zip(wakers, peers):
            ticks += 1
            if not active[w] or not active[p]:
                continue  # faulty waker sleeps; faulty peer times out
            if current[p] < current[w]:
                had_target = current[w] == target
                current[w] = current[p]
                if current[w] == target and not had_target:
                    holders += 1
                    if holders == n_active:
                        done = True
                        break
    return ticks if done else max_ticks


@dataclass(frozen=True)
class AsyncElectionResult:
    outcome: Hashable | None
    winner: int | None
    ticks: int
    converged: bool


def run_async_leader_election(
    colors: Sequence[Hashable],
    seed: int = 0,
    tick_budget_factor: float = 8.0,
    faulty: frozenset[int] = frozenset(),
) -> AsyncElectionResult:
    """Sequential-model fair leader election (cooperative setting).

    Every active agent draws ``k`` u.a.r. in ``[n^3]``; sequential
    min-aggregation runs for ``factor * n * log2 n`` ticks; the owner of
    the minimum wins if everyone learned it in time.
    """
    n = len(colors)
    if n < 2:
        raise ValueError("need at least 2 agents")
    tree = SeedTree(seed)
    rng = tree.child("draws").generator()

    active = [i for i in range(n) if i not in faulty]
    if not active:
        raise ValueError("no active agent")
    draws = rng.integers(n ** 3, size=n).astype(float)
    # Keys (k, label) mapped to floats for the vectorised aggregator:
    # scale k by n and add the label (keeps the lexicographic order).
    keys = draws * n + np.arange(n)
    for f in faulty:
        keys[f] = np.inf  # a faulty agent's draw never circulates

    budget = int(tick_budget_factor * n * max(1.0, np.log2(n)))
    ticks = async_min_ticks(
        keys.tolist(), seed=seed, max_ticks=budget, faulty=faulty
    )
    converged = ticks < budget
    if converged:
        winner = int(np.argmin(keys))
        return AsyncElectionResult(colors[winner], winner, ticks, True)
    return AsyncElectionResult(None, None, budget, False)
