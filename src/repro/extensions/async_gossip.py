"""The asynchronous (sequential) GOSSIP model (open problem 2).

In the sequential model, at every *tick* a single agent — chosen u.a.r. —
wakes up and performs one push or pull.  The paper leaves rational fair
consensus in this model open; as a first empirical step we implement:

* :func:`async_min_ticks` — sequential pull-based min-aggregation: the
  woken agent pulls a u.a.r. peer and keeps the smaller value.  The
  classic result for sequential gossip dissemination is Theta(n log n)
  ticks; E10 measures the constant.
* :func:`async_min_ticks_batch` — all B Monte-Carlo trials simulated in
  lockstep: per-trial streams are drawn in the same chunked order as
  the scalar tier, and every tick advances the whole ``(B, n)`` state
  with a handful of array operations instead of B Python loops.  Tick
  counts are identical to the scalar tier seed-for-seed
  (``tests/test_async_properties.py``).
* :func:`run_async_leader_election` — a fair (cooperative) leader
  election in the sequential model: every agent draws ``k`` u.a.r.,
  then min-aggregation runs for a tick budget; if all active agents
  agree on the minimum, its owner's color is the outcome.  Fairness is
  inherited from the uniform draws; the open research question (which we
  do NOT claim to answer) is how to make the *commitment/verification*
  machinery work without synchronised phase boundaries.

The election's ``(draw, label)`` keys are exact int64
(:func:`election_keys`): the earlier float encoding ``draws * n +
arange(n)`` silently loses the lexicographic order once ``n^4 > 2^53``
(neighbouring labels round to the same float), which would mis-pick
winners at large n.

Faulty agents never wake and never reply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Hashable, Iterable, Sequence

import numpy as np

from repro.util.faults import normalise_faulty
from repro.util.rng import SeedTree

__all__ = [
    "AsyncBatchResult",
    "AsyncElectionResult",
    "AsyncMinTrace",
    "async_min_ticks",
    "async_min_ticks_batch",
    "async_min_trace",
    "async_minagg_values",
    "election_keys",
    "run_async_leader_election",
    "run_async_leader_election_batch",
]

# Draws happen in fixed-size chunks to keep the scalar Python loop light;
# the batch tier replays the same per-trial chunking, which is what makes
# the two tiers agree tick-for-tick.
_DRAW_CHUNK = 4096

#: Sort-key sentinel for faulty agents (their draw never circulates).
_KEY_SENTINEL = np.iinfo(np.int64).max


def async_minagg_values(n: int, seed: int) -> np.ndarray:
    """The E10b min-aggregation workload: n u.a.r. values in [n^3]."""
    return SeedTree(seed).child("vals").generator().integers(n ** 3, size=n)


@dataclass(frozen=True)
class AsyncBatchResult:
    """Struct-of-arrays result of B sequential-model trials.

    Each trial runs the E10b pair of measurements: min-aggregation over
    a fresh value vector (``child("vals")`` of the trial seed, see
    :func:`async_minagg_values`) and the fair leader election.

    ``ARRAY_FIELDS`` is the out-buffer protocol of the zero-copy
    parallel transport (:mod:`repro.exec.shm`)."""

    #: Trial-axis arrays and their dtypes, in declaration order (the
    #: out-buffer protocol; dtypes must match the constructed arrays).
    ARRAY_FIELDS: ClassVar[tuple[tuple[str, str], ...]] = (
        ("minagg_ticks", "int64"),
        ("election_converged", "bool"),
        ("election_winner", "int64"),
        ("election_ticks", "int64"),
    )

    n: int
    n_trials: int
    minagg_ticks: np.ndarray         # (B,) int64
    election_converged: np.ndarray   # (B,) bool
    election_winner: np.ndarray      # (B,) int64, -1: budget exhausted
    election_ticks: np.ndarray       # (B,) int64

    def __len__(self) -> int:
        return self.n_trials

    def minagg_ratio(self) -> np.ndarray:
        """Ticks normalised by the classic n log2 n sequential bound."""
        return self.minagg_ticks / (self.n * np.log2(self.n))

    def election_converged_rate(self) -> float:
        if self.n_trials == 0:
            raise ValueError("empty batch has no rates")
        return float(np.count_nonzero(self.election_converged)) \
            / self.n_trials


def _default_budget(n: int) -> int:
    """Default tick budget, far above the expected Theta(n log n)."""
    return int(40 * n * (np.log2(n) + 1))


def _activity(n: int, faulty: frozenset[int]) -> np.ndarray:
    active = np.ones(n, dtype=bool)
    if faulty:
        active[list(faulty)] = False
    return active


def _async_min_core(
    values: Sequence[float] | np.ndarray,
    seed: int,
    max_ticks: int | None,
    faulty: frozenset[int],
    holders_log: list[int] | None = None,
) -> tuple[int, bool, np.ndarray]:
    """The scalar sequential-model reference loop.

    Returns ``(ticks, converged, final_values)``; ``ticks`` is
    ``max_ticks`` when the budget ran out first.  Value dtype is
    preserved (int64 election keys stay exact; float inputs keep the
    legacy behaviour).
    """
    n = len(values)
    if n < 2:
        raise ValueError("need at least 2 agents")
    if max_ticks is None:
        max_ticks = _default_budget(n)
    rng = SeedTree(seed).child("async").generator()

    active = _activity(n, faulty)
    act_idx = np.flatnonzero(active)
    if act_idx.size == 0:
        raise ValueError("no active agent")
    current = np.array(values)
    target = current[act_idx].min()

    # Track how many active agents already hold the target minimum, so
    # the termination check is O(1) per tick.  Draws happen in batches to
    # keep the Python loop light.
    holders = int((current[act_idx] == target).sum())
    n_active = int(act_idx.size)
    done = holders == n_active
    ticks = 0
    while not done and ticks < max_ticks:
        take = min(_DRAW_CHUNK, max_ticks - ticks)
        wakers = rng.integers(n, size=take)
        peers_raw = rng.integers(n - 1, size=take)
        peers = peers_raw + (peers_raw >= wakers)
        for w, p in zip(wakers, peers):
            ticks += 1
            if active[w] and active[p] and current[p] < current[w]:
                # faulty waker sleeps; faulty peer times out
                had_target = current[w] == target
                current[w] = current[p]
                if current[w] == target and not had_target:
                    holders += 1
                    if holders == n_active:
                        done = True
            if holders_log is not None:
                holders_log.append(holders)
            if done:
                break
    return (ticks if done else max_ticks), done, current


def async_min_ticks(
    values: Sequence[float] | np.ndarray,
    seed: int = 0,
    max_ticks: int | None = None,
    faulty: frozenset[int] = frozenset(),
) -> int:
    """Ticks until every active agent holds the global active minimum.

    Returns ``max_ticks`` if the budget is exhausted first (default
    budget: ``40 * n * (log2 n + 1)``, far above the expected
    Theta(n log n)).
    """
    ticks, _, _ = _async_min_core(values, seed, max_ticks, faulty)
    return ticks


@dataclass(frozen=True)
class AsyncMinTrace:
    """Instrumented scalar run (the property-test window into the
    dynamics; the fast tiers only report tick counts)."""

    ticks: int
    converged: bool
    final_values: np.ndarray
    holders: tuple[int, ...]  # holder count after each processed tick


def async_min_trace(
    values: Sequence[float] | np.ndarray,
    seed: int = 0,
    max_ticks: int | None = None,
    faulty: frozenset[int] = frozenset(),
) -> AsyncMinTrace:
    """:func:`async_min_ticks` with the full state evolution exposed."""
    log: list[int] = []
    ticks, converged, final = _async_min_core(
        values, seed, max_ticks, faulty, holders_log=log
    )
    return AsyncMinTrace(
        ticks=ticks, converged=converged, final_values=final,
        holders=tuple(log),
    )


def async_min_ticks_batch(
    values: np.ndarray,
    seeds: Sequence[int],
    max_ticks: int | None = None,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
) -> np.ndarray:
    """All B sequential-model trials in lockstep; (B,) int64 ticks.

    ``values`` is ``(B, n)`` — one initial value vector per trial.  Each
    trial consumes its own named stream in the same chunked order as
    :func:`async_min_ticks`, so per-trial tick counts are identical to
    the scalar tier; the lockstep loop advances every still-running
    trial's tick with one set of array ops instead of B Python loops.
    """
    vals = np.array(values)
    if vals.ndim != 2:
        raise ValueError(f"values must be (trials, n), got {vals.shape}")
    b_sz, n = vals.shape
    if n < 2:
        raise ValueError("need at least 2 agents")
    if len(seeds) != b_sz:
        raise ValueError(f"got {len(seeds)} seeds for {b_sz} trials")
    if max_ticks is None:
        max_ticks = _default_budget(n)

    faulty_list = normalise_faulty(faulty, b_sz, n)
    active = np.ones((b_sz, n), dtype=bool)
    for b, f in enumerate(faulty_list):
        if f:
            active[b, list(f)] = False
    n_active = active.sum(axis=1)
    if (n_active == 0).any():
        raise ValueError("no active agent")

    top = (np.iinfo(vals.dtype).max
           if np.issubdtype(vals.dtype, np.integer) else np.inf)
    target = np.min(vals, axis=1, where=active, initial=top)
    holders = ((vals == target[:, None]) & active).sum(axis=1)
    done = holders == n_active
    ticks = np.where(done, 0, max_ticks).astype(np.int64)

    gens = [SeedTree(int(s)).child("async").generator() for s in seeds]
    any_faulty = any(faulty_list)
    base = 0
    while base < max_ticks and not done.all():
        take = min(_DRAW_CHUNK, max_ticks - base)
        # Draws for the trials still running at chunk start, each from
        # its own stream — exactly what the scalar tier consumes.
        running = np.flatnonzero(~done)
        wakers = np.empty((take, running.size), dtype=np.int64)
        peers = np.empty_like(wakers)
        for j, b in enumerate(running):
            w = gens[b].integers(n, size=take)
            p = gens[b].integers(n - 1, size=take)
            wakers[:, j] = w
            peers[:, j] = p + (p >= w)
        # Activity never changes mid-run: gather the whole chunk's
        # "both endpoints awake" mask up front.
        if any_faulty:
            act_ok = (active[running[None, :], wakers]
                      & active[running[None, :], peers])
        else:
            act_ok = None
        # Lockstep over the chunk: one set of array ops per tick,
        # columns dropped (lazily, on completion) as trials converge.
        cols = np.arange(running.size)
        rows = running
        for t in range(take):
            w = wakers[t, cols]
            p = peers[t, cols]
            cp = vals[rows, p]
            upd = cp < vals[rows, w]
            if act_ok is not None:
                upd &= act_ok[t, cols]
            if not upd.any():
                continue
            rs = rows[upd]
            ws = w[upd]
            new_vals = cp[upd]
            gained = (vals[rs, ws] != target[rs]) & (new_vals == target[rs])
            vals[rs, ws] = new_vals
            if gained.any():
                holders[rs] += gained
                finished = rs[holders[rs] == n_active[rs]]
                if finished.size:
                    done[finished] = True
                    ticks[finished] = base + t + 1
                    cols = cols[~done[rows]]
                    rows = running[cols]
                    if cols.size == 0:
                        break
        base += take
    return ticks


@dataclass(frozen=True)
class AsyncElectionResult:
    outcome: Hashable | None
    winner: int | None
    ticks: int
    converged: bool


def election_keys(
    n: int, seed: int, faulty: frozenset[int] = frozenset()
) -> np.ndarray:
    """Exact int64 ``(draw, label)`` election keys for one trial.

    ``draw * n + label`` preserves the lexicographic order exactly for
    every n the int64 guard admits; the float encoding this replaces
    collapses neighbouring labels once ``n^4 > 2^53``.  Faulty agents
    get the sentinel (their draw never circulates).
    """
    if n ** 4 >= 2 ** 62:
        raise ValueError(f"n={n} too large for the int64 (draw, label) key")
    rng = SeedTree(seed).child("draws").generator()
    draws = rng.integers(n ** 3, size=n)
    keys = draws * n + np.arange(n)
    for f in faulty:
        keys[f] = _KEY_SENTINEL
    return keys


def _election_budget(n: int, factor: float) -> int:
    return int(factor * n * max(1.0, np.log2(n)))


def run_async_leader_election(
    colors: Sequence[Hashable],
    seed: int = 0,
    tick_budget_factor: float = 8.0,
    faulty: frozenset[int] = frozenset(),
) -> AsyncElectionResult:
    """Sequential-model fair leader election (cooperative setting).

    Every active agent draws ``k`` u.a.r. in ``[n^3]``; sequential
    min-aggregation runs for ``factor * n * log2 n`` ticks; the owner of
    the minimum wins if everyone learned it in time.
    """
    n = len(colors)
    if n < 2:
        raise ValueError("need at least 2 agents")
    if not set(faulty) < set(range(n)):
        raise ValueError("no active agent" if len(faulty) >= n
                         else "faulty label out of range")
    keys = election_keys(n, seed, faulty)

    budget = _election_budget(n, tick_budget_factor)
    ticks = async_min_ticks(keys, seed=seed, max_ticks=budget, faulty=faulty)
    converged = ticks < budget
    if converged:
        winner = int(np.argmin(keys))
        return AsyncElectionResult(colors[winner], winner, ticks, True)
    return AsyncElectionResult(None, None, budget, False)


def run_async_leader_election_batch(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    tick_budget_factor: float = 8.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """B sequential-model elections in lockstep.

    Returns ``(converged, winner, ticks)`` — (B,) bool / int64 (-1 where
    the budget ran out) / int64 — matching
    :func:`run_async_leader_election` trial-for-trial per seed.
    """
    n = len(colors)
    if n < 2:
        raise ValueError("need at least 2 agents")
    b_sz = len(seeds)
    faulty_list = normalise_faulty(faulty, b_sz, n)
    keys = np.stack([
        election_keys(n, int(s), f) for s, f in zip(seeds, faulty_list)
    ])
    budget = _election_budget(n, tick_budget_factor)
    ticks = async_min_ticks_batch(
        keys, seeds, max_ticks=budget, faulty=faulty_list
    )
    converged = ticks < budget
    winner = np.where(converged, keys.argmin(axis=1), -1).astype(np.int64)
    return converged, winner, np.where(converged, ticks, budget)
