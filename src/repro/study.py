"""Parameter sweeps over registered experiments, with resume.

A :class:`Study` grids over fields of an experiment's options dataclass
and runs one :class:`~repro.results.ExperimentResult` per cell.  Cells
fan through the same vectorised tiers the experiments use internally
(``run_trials_fast`` / ``run_deviation_trials_fast``), so a sweep is a
sequence of single-pass array workloads, not per-trial Python loops.

Determinism and resume
----------------------
* **Per-cell seeds** — unless the grid pins ``seed`` explicitly, each
  cell's seed derives from the study seed and the cell's assignment via
  a stable hash (:func:`derive_cell_seed`): re-running the same study
  reproduces every cell bit-for-bit, while distinct cells draw
  independent seed spines.
* **Skip-completed cells** — with an output directory, each finished
  cell is saved under its content-hash key
  (:func:`repro.results.save_result`); a re-run loads those files
  instead of recomputing (``cached=True`` on the cell), so interrupted
  sweeps resume where they stopped and finished grids re-slice for
  free.

Crash safety (DESIGN.md §10)
----------------------------
A study run with an output directory is kill-safe: every cell archive
and the final manifest publish atomically (temp file + rename), and a
:class:`StudyJournal` — an append-only JSONL checkpoint next to the
archives — records each completed cell as it finishes.  Resuming after
a SIGKILL re-runs exactly the incomplete cells: complete archives load
as ``cached``, a half-written or corrupt archive is *quarantined*
(renamed to ``<name>.corrupt``) and its cell recomputed, and a torn
trailing journal line (the crash moment itself) is ignored by the
tolerant reader.

Example::

    study = Study("e1", {"gamma": [2.0, 3.0], "sizes": [(64,), (128,)]},
                  trials=200)
    sweep = study.run(out_dir="results/e1-gamma")
    for rec in sweep.records():
        print(rec["gamma"], rec["TV distance"])
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.experiments.registry import (
    ExperimentSpec,
    get_experiment,
    options_dict,
)
from repro.results import (
    ExperimentResult,
    atomic_write_text,
    canonical_json,
    load_result,
    result_key,
    result_path,
    save_result,
)

__all__ = [
    "Study",
    "StudyCell",
    "StudyJournal",
    "StudyResult",
    "derive_cell_seed",
]


def derive_cell_seed(study_seed: int, assignment: Mapping[str, Any]) -> int:
    """A deterministic 31-bit seed for one grid cell.

    Stable across processes and Python versions (SHA-256 of the study
    seed and the canonical-JSON assignment), and independent of the
    order grid fields were declared in.
    """
    payload = f"{int(study_seed)}|{canonical_json(dict(assignment))}"
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31)


@dataclass(frozen=True)
class StudyCell:
    """One grid cell: its assignment, options, resume key and result.

    ``recovered`` marks a cell whose cached archive was corrupt on
    resume: the file was quarantined to ``<name>.corrupt`` and the
    cell recomputed from its deterministic seed.
    """

    assignment: Mapping[str, Any]
    options: Any
    key: str
    result: ExperimentResult | None = None
    cached: bool = False
    recovered: bool = False


class StudyJournal:
    """An append-only JSONL checkpoint of one study's progress.

    Each line is a self-contained event (``study`` header, one ``cell``
    line per completed cell, ``quarantine`` for corrupt archives, a
    final ``end``).  Appends are flushed and fsynced line-by-line, so
    the journal is current up to the crash instant; the reader skips a
    torn trailing line instead of raising.  The journal is the study's
    recovery record — cell archives remain the source of truth for
    result bytes, keyed by content hash.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    @classmethod
    def for_study(cls, out_dir: str | Path, experiment: str) -> "StudyJournal":
        return cls(Path(out_dir) / f"{experiment}-study.journal.jsonl")

    def append(self, event: Mapping[str, Any]) -> None:
        heal = b""
        if self.path.is_file() and self.path.stat().st_size > 0:
            # A SIGKILL mid-append leaves a torn final line with no
            # newline; starting the next event on a fresh line keeps
            # the tear confined to its own (skippable) line instead of
            # fusing it with this append.
            with self.path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    heal = b"\n"
        with self.path.open("ab") as fh:
            fh.write(heal + (json.dumps(dict(event), sort_keys=True)
                             + "\n").encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())

    def compact(self, summary: Mapping[str, Any]) -> None:
        """Fold the journal into one ``compacted`` line (atomically).

        Called after a study completes and its manifest — which now
        carries the journal's summary — has published: the append-only
        event log has served its recovery purpose, and truncating it
        here keeps repeatedly-resumed studies from replaying an
        unboundedly growing journal.  The single surviving line records
        that compaction happened (and when, via the manifest), so a
        later reader sees an explicit marker rather than a bare file.
        """
        atomic_write_text(
            self.path,
            json.dumps({"event": "compacted", **dict(summary)},
                       sort_keys=True) + "\n",
        )

    def events(self) -> list[dict[str, Any]]:
        """Every parseable event; torn lines are skipped.

        Each line is a self-contained event, so an unparseable line can
        only be an append torn by a crash — usually the trailing line,
        but after a resume (which heals onto a fresh line and keeps
        appending) a tear survives mid-file.  Either way the recovery
        story is the same: the cell archives are the source of truth,
        the journal only narrates, so a torn narration line is dropped
        rather than raised on.
        """
        if not self.path.is_file():
            return []
        out: list[dict[str, Any]] = []
        for line in self.path.read_text().split("\n"):
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return out

    def done_keys(self) -> set[str]:
        """Resume keys of cells the journal records as completed."""
        return {
            e["key"] for e in self.events()
            if e.get("event") == "cell" and e.get("status") == "done"
        }

    def reset(self) -> None:
        self.path.unlink(missing_ok=True)


@dataclass(frozen=True)
class StudyResult:
    """The outcome of :meth:`Study.run`: every cell, in grid order.

    ``quarantined`` lists the resume keys whose cached archives were
    corrupt and had to be recomputed.
    """

    experiment: str
    cells: tuple[StudyCell, ...]
    quarantined: tuple[str, ...] = ()

    def results(self) -> list[ExperimentResult]:
        return [c.result for c in self.cells if c.result is not None]

    def records(self) -> list[dict[str, Any]]:
        """Every table row of every cell, tagged with its assignment.

        The flattened form users re-slice: each record merges the cell's
        grid assignment and resume key into the row's header-keyed
        values (grid fields first, so row columns win name clashes).
        """
        out = []
        for cell in self.cells:
            if cell.result is None:
                continue
            for rec in cell.result.records():
                out.append({**dict(cell.assignment), "cell_key": cell.key,
                            **rec})
        return out

    def manifest(self) -> dict[str, Any]:
        """A JSON-ready index of the sweep (cell keys + cache hits)."""
        return {
            "experiment": self.experiment,
            "quarantined": list(self.quarantined),
            "cells": [
                {
                    "assignment": dict(c.assignment),
                    "key": c.key,
                    "cached": c.cached,
                    "recovered": c.recovered,
                }
                for c in self.cells
            ],
        }


class Study:
    """A Cartesian sweep over an experiment's options fields.

    Parameters
    ----------
    experiment:
        Registered experiment name (``"e1"`` .. ``"e10"``).
    grid:
        Mapping of options-field name to the values to sweep.  Field
        names are validated against the options dataclass eagerly.
    seed:
        Study seed for per-cell seed derivation.  Defaults to the base
        options' own ``seed``; per-cell seeds derive from it unless the
        grid sweeps ``seed`` itself.
    base / **base_overrides:
        The options shared by every cell: either a full options
        instance, or field overrides applied to the defaults.
    """

    def __init__(
        self,
        experiment: str,
        grid: Mapping[str, Sequence[Any]] | None = None,
        *,
        base: Any = None,
        seed: int | None = None,
        **base_overrides: Any,
    ):
        self.spec: ExperimentSpec = get_experiment(experiment)
        if base is None:
            base = self.spec.options_cls(**base_overrides)
        elif base_overrides:
            base = dataclasses.replace(base, **base_overrides)
        self.base = base
        field_names = {f.name for f in self.spec.option_fields()}
        grid = dict(grid or {})
        unknown = sorted(set(grid) - field_names)
        if unknown:
            raise ValueError(
                f"unknown option field(s) {unknown} for experiment "
                f"{self.spec.name!r}; valid fields: {sorted(field_names)}"
            )
        self.grid: dict[str, tuple[Any, ...]] = {
            k: tuple(v) for k, v in grid.items()
        }
        self._derive_seeds = (
            "seed" in field_names and "seed" not in self.grid
        )
        self.seed = (
            seed if seed is not None else getattr(base, "seed", None)
        )

    def assignments(self) -> list[dict[str, Any]]:
        """The grid's cells as field->value dicts, in declaration order."""
        if not self.grid:
            return [{}]
        names = list(self.grid)
        return [
            dict(zip(names, values))
            for values in itertools.product(*self.grid.values())
        ]

    def cell_options(self, assignment: Mapping[str, Any]) -> Any:
        """The options instance of one cell (seed derived if applicable)."""
        opts = dataclasses.replace(self.base, **assignment)
        if self._derive_seeds and self.seed is not None:
            opts = dataclasses.replace(
                opts, seed=derive_cell_seed(self.seed, assignment)
            )
        return opts

    def cells(self) -> list[StudyCell]:
        """Every cell with its options and resume key, nothing run yet."""
        out = []
        for assignment in self.assignments():
            opts = self.cell_options(assignment)
            key = result_key(self.spec.name, options_dict(opts))
            out.append(StudyCell(assignment=assignment, options=opts,
                                 key=key))
        return out

    def run(
        self,
        out_dir: str | Path | None = None,
        *,
        resume: bool = True,
        save: bool = True,
        jobs: int | None = None,
        progress: Callable[[StudyCell], None] | None = None,
    ) -> StudyResult:
        """Run (or resume) every cell of the grid, in order.

        With ``out_dir``: previously saved cells load instead of running
        (unless ``resume=False``), and fresh cells save on completion
        (unless ``save=False``).  A saved cell is only reused when its
        recorded package version matches the running one — the content
        hash pins the *inputs*, the version gate pins the *code* — so a
        sweep resumed after an upgrade recomputes rather than silently
        mixing results from two implementations.  ``progress`` is
        called with each finished :class:`StudyCell`.

        ``jobs`` parallelises the sweep's cells from the inside: each
        cell runs with that many plan-backend workers (injected into
        options classes that expose a ``jobs`` field).  Because ``jobs``
        is an execution-only field it never touches a cell's resume key
        — results computed at any worker count interchange freely — and
        cells stay sequential, so an interrupted sweep still resumes at
        a clean cell boundary.

        With ``out_dir`` the run is kill-safe: archives and the final
        ``<experiment>-study.manifest.json`` publish atomically, a
        :class:`StudyJournal` checkpoints each completed cell, and a
        cached archive that fails to load (truncated or corrupt JSON)
        is quarantined to ``<name>.corrupt`` and its cell recomputed —
        byte-identically, thanks to deterministic per-cell seeds —
        instead of crashing the sweep.  On successful completion the
        journal is folded into the manifest (a ``journal`` summary
        block) and truncated, so repeatedly-resumed studies never
        replay an unbounded event log.

        ``out_dir`` may also be — or contain — a
        :class:`repro.service.store.ResultStore` database (a
        ``.sqlite3`` path, or a directory holding
        ``repro-store.sqlite3``): cells then load from and save to the
        store instead of loose JSON files, with the loose path kept as
        a read fallback for mixed archives.
        """
        from repro import __version__
        from repro.service.store import ResultStore, locate_store

        done: list[StudyCell] = []
        from repro.workloads import active_cache, cache_stats

        wl_cache = active_cache()
        wl_before = cache_stats().as_dict() if wl_cache is not None else None
        quarantined: list[str] = []
        jobs_field = (
            jobs is not None
            and any(f.name == "jobs" for f in self.spec.option_fields())
        )
        journal = None
        store: ResultStore | None = None
        archive_dir: Path | None = None
        if out_dir is not None:
            db = locate_store(out_dir)
            if db is not None:
                store = ResultStore(db)
                archive_dir = db.parent
            else:
                archive_dir = Path(out_dir)
            archive_dir.mkdir(parents=True, exist_ok=True)
            journal = StudyJournal.for_study(archive_dir, self.spec.name)
            if not resume:
                journal.reset()
            journal.append({
                "event": "study",
                "experiment": self.spec.name,
                "n_cells": len(self.assignments()),
                "grid": {k: [str(v) for v in vs]
                         for k, vs in self.grid.items()},
                "version": __version__,
            })
        try:
            for cell in self.cells():
                result, cached, recovered = None, False, False
                if out_dir is not None and resume:
                    result, recovered = self._load_cached(
                        archive_dir, store, cell, journal, quarantined
                    )
                    if result is not None and \
                            result.meta.version != __version__:
                        result = None
                    cached = result is not None
                if result is None:
                    run_opts = cell.options
                    if jobs_field:
                        run_opts = dataclasses.replace(run_opts, jobs=jobs)
                    result = self.spec.run(run_opts)
                    if out_dir is not None and save:
                        if store is not None:
                            store.put(result)
                        else:
                            save_result(result, out_dir)
                if journal is not None:
                    journal.append({
                        "event": "cell",
                        "key": cell.key,
                        "status": "done",
                        "cached": cached,
                        "recovered": recovered,
                    })
                cell = dataclasses.replace(cell, result=result,
                                           cached=cached,
                                           recovered=recovered)
                done.append(cell)
                if progress is not None:
                    progress(cell)
            study_result = StudyResult(
                experiment=self.spec.name, cells=tuple(done),
                quarantined=tuple(quarantined),
            )
            if out_dir is not None and save:
                manifest = study_result.manifest()
                if store is not None:
                    manifest["store"] = str(store.path)
                if journal is not None:
                    manifest["journal"] = journal_summary = {
                        "cells_done": len(done),
                        "cached": sum(1 for c in done if c.cached),
                        "quarantined": len(quarantined),
                        "events": len(journal.events()) + 1,  # incl. end
                        "compacted": True,
                    }
                if wl_cache is not None:
                    wl_after = cache_stats().as_dict()
                    manifest["workload_cache"] = {
                        "root": str(wl_cache.root),
                        **{k: wl_after[k] - wl_before[k]
                           for k in wl_after},
                    }
                atomic_write_text(
                    archive_dir /
                    f"{self.spec.name}-study.manifest.json",
                    json.dumps(manifest, indent=2) + "\n",
                )
            if journal is not None:
                journal.append({"event": "end"})
                if save:
                    # The manifest now carries the summary; fold the
                    # event log down to a single compacted marker.
                    journal.compact(journal_summary)
        finally:
            if store is not None:
                store.close()
        return study_result

    def _load_cached(
        self,
        out_dir: str | Path,
        store: Any,
        cell: StudyCell,
        journal: StudyJournal | None,
        quarantined: list[str],
    ) -> tuple[ExperimentResult | None, bool]:
        """Load one cell's cached archive, quarantining corruption.

        Returns ``(result, recovered)``: ``result`` is ``None`` when
        the cell must (re)compute, and ``recovered`` is True when a
        corrupt archive was moved aside to ``<name>.corrupt`` — the
        half-written leftovers of a kill mid-write (or a bad disk)
        must cost one recompute, never the whole sweep.  A configured
        :class:`~repro.service.store.ResultStore` answers first
        (transactional writes make its rows all-or-nothing — no
        quarantine path needed); loose files remain a read fallback.
        """
        if store is not None:
            result = store.get(cell.key)
            if result is not None:
                return result, False
        path = result_path(out_dir, self.spec.name, options_dict(cell.options))
        if not path.is_file():
            return None, False
        try:
            return load_result(path), False
        except (ValueError, KeyError, TypeError) as exc:
            quarantine = path.with_name(path.name + ".corrupt")
            path.replace(quarantine)
            print(
                f"warning: quarantined corrupt cached result {path.name} "
                f"-> {quarantine.name} ({exc}); re-running cell",
                file=sys.stderr,
            )
            quarantined.append(cell.key)
            if journal is not None:
                journal.append({
                    "event": "quarantine",
                    "key": cell.key,
                    "file": path.name,
                })
            return None, True
