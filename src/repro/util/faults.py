"""Shared normalisation of per-trial permanent-fault sets.

Every batched tier accepts ``faulty`` as a single set applied to all
trials, ``None``, or one set per trial (the churn scenarios).  This is
the one implementation of that convention; the engine front doors in
``repro.experiments.dispatch`` validate through it so every tier
accepts and rejects exactly the same inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["decode_fault_sets", "encode_fault_sets", "normalise_faulty"]


def normalise_faulty(
    faulty: frozenset[int] | Iterable[frozenset[int]] | None,
    n_trials: int,
    n: int | None = None,
) -> list[frozenset[int]]:
    """One fault set per trial; ``n`` (when given) validates labels."""
    if faulty is None:
        per_trial = [frozenset()] * n_trials
    elif isinstance(faulty, (set, frozenset)):
        per_trial = [frozenset(faulty)] * n_trials
    else:
        per_trial = [frozenset(f) for f in faulty]
        if len(per_trial) != n_trials:
            raise ValueError(
                f"got {len(per_trial)} fault sets for {n_trials} trials"
            )
    if n is not None:
        for f in per_trial:
            for label in f:
                if not 0 <= label < n:
                    raise ValueError(
                        f"faulty label {label} out of range for n={n}"
                    )
    return per_trial


def encode_fault_sets(
    faulty: Sequence[frozenset[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-trial fault sets to ``(labels, offsets)`` arrays.

    Trial ``i``'s set is ``labels[offsets[i]:offsets[i + 1]]``, sorted
    ascending — the array form the workload-artifact cache persists and
    memory-maps.
    """
    offsets = np.zeros(len(faulty) + 1, dtype=np.int64)
    chunks = []
    for i, f in enumerate(faulty):
        chunk = np.array(sorted(f), dtype=np.int64)
        chunks.append(chunk)
        offsets[i + 1] = offsets[i] + chunk.size
    labels = (np.concatenate(chunks) if chunks
              else np.zeros(0, dtype=np.int64))
    return labels, offsets


def decode_fault_sets(
    labels: np.ndarray, offsets: np.ndarray
) -> list[frozenset[int]]:
    """Inverse of :func:`encode_fault_sets`."""
    return [
        frozenset(labels[offsets[i]:offsets[i + 1]].tolist())
        for i in range(offsets.size - 1)
    ]
