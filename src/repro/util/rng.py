"""Deterministic random-stream management.

Every simulation in this package derives all of its randomness from a
single root seed through a :class:`SeedTree`.  A seed tree wraps a NumPy
``SeedSequence`` and hands out *named* children; the same (root seed,
path-of-names) always yields the same stream, independent of the order in
which siblings are created.  This gives us:

* byte-identical reruns from a seed (tested in ``tests/test_rng.py``),
* per-agent / per-phase independence without global RNG state,
* cheap "paired seeds" for variance-reduced honest-vs-deviation
  comparisons (the honest and deviating runs share every stream that the
  deviation does not touch).
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["SeedTree", "derive_key"]


def derive_key(name: str | int) -> int:
    """Map a stream name to a stable 32-bit spawn key.

    Integers are used as-is (offset to avoid colliding with hashed
    strings); strings are CRC32-hashed, which is stable across processes
    and Python versions (unlike ``hash``).
    """
    if isinstance(name, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("seed-tree keys must be str or int, not bool")
    if isinstance(name, int):
        if name < 0:
            raise ValueError(f"integer seed-tree keys must be >= 0, got {name}")
        return name
    if isinstance(name, str):
        # Offset string keys into a disjoint range from small integer keys.
        return zlib.crc32(name.encode("utf-8")) + 0x1_0000_0000
    raise TypeError(f"seed-tree keys must be str or int, got {type(name)!r}")


class SeedTree:
    """Hierarchical, order-independent derivation of random generators.

    Parameters
    ----------
    seed:
        Root entropy (any int), or an existing ``np.random.SeedSequence``.

    Examples
    --------
    >>> tree = SeedTree(1234)
    >>> g1 = tree.child("voting").generator()
    >>> g2 = tree.child("voting").generator()
    >>> int(g1.integers(1 << 30)) == int(g2.integers(1 << 30))
    True
    """

    __slots__ = ("_seq",)

    def __init__(self, seed: int | np.random.SeedSequence):
        if isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            self._seq = np.random.SeedSequence(int(seed))

    @property
    def sequence(self) -> np.random.SeedSequence:
        """The underlying ``SeedSequence``."""
        return self._seq

    def child(self, *path: str | int) -> "SeedTree":
        """Derive a child tree for the given name path.

        Children are independent of each other and of the parent stream;
        derivation does not consume parent state, so sibling creation
        order is irrelevant.
        """
        if not path:
            raise ValueError("child() requires at least one path element")
        keys = tuple(derive_key(p) for p in path)
        seq = np.random.SeedSequence(
            entropy=self._seq.entropy,
            spawn_key=tuple(self._seq.spawn_key) + keys,
        )
        return SeedTree(seq)

    def generator(self) -> np.random.Generator:
        """A fresh PCG64 generator seeded from this node of the tree."""
        return np.random.Generator(np.random.PCG64(self._seq))

    def spawn_many(self, names: Iterable[str | int]) -> list["SeedTree"]:
        """Children for each name, in order."""
        return [self.child(name) for name in names]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedTree(entropy={self._seq.entropy}, spawn_key={self._seq.spawn_key})"
