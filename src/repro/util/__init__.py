"""Shared utilities: deterministic RNG trees, bit-size accounting, tables.

These helpers are deliberately dependency-light; everything else in the
package builds on them.
"""

from repro.util.bits import (
    bits_for_range,
    color_bits,
    label_bits,
    vote_bits,
)
from repro.util.rng import SeedTree
from repro.util.tables import Table

__all__ = [
    "SeedTree",
    "Table",
    "bits_for_range",
    "color_bits",
    "label_bits",
    "vote_bits",
]
