"""Plain-text table rendering for experiment reports.

Benchmarks and EXPERIMENTS.md both print tables through this module so the
output format matches everywhere: a title line, a header row, an ASCII rule
and aligned columns.  Floats are rendered with a configurable format;
``None`` renders as ``-``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table"]


def _format_cell(value: Any, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


@dataclass
class Table:
    """An append-only table with aligned plain-text rendering.

    Parameters
    ----------
    headers:
        Column names.
    title:
        Optional title printed above the table.
    floatfmt:
        ``format()`` spec applied to float cells (default 4 significant
        digits).
    """

    headers: Sequence[str]
    title: str = ""
    floatfmt: str = ".4g"
    rows: list[tuple[Any, ...]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append a row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(tuple(cells))

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(*row)

    def records(self) -> list[dict[str, Any]]:
        """Rows as header-keyed dicts, in insertion order.

        The single row-to-dict implementation:
        :meth:`repro.results.ResultSection.records` (and through it the
        JSONL writer and study flattening) delegates here.
        """
        return [dict(zip(self.headers, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """All values of the named column, in insertion order."""
        try:
            idx = list(self.headers).index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """The table as aligned plain text."""
        cells = [[str(h) for h in self.headers]]
        cells += [
            [_format_cell(c, self.floatfmt) for c in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.headers))]
        lines = []
        if self.title:
            lines.append(self.title)
        header, *body = cells
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
