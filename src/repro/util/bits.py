"""Bit-size accounting for the GOSSIP message-size model.

The paper states message sizes in bits: labels cost ``ceil(log2 n)`` bits,
votes live in ``[m] = [n^3]`` and cost ``3 * ceil(log2 n)`` bits, and the
winning certificate (which carries Theta(log n) votes) costs
``O(log^2 n)`` bits.  These helpers centralise those conversions so every
payload class computes its size the same way.
"""

from __future__ import annotations

import math

__all__ = [
    "bits_for_range",
    "label_bits",
    "vote_bits",
    "color_bits",
    "round_index_bits",
]


def bits_for_range(size: int) -> int:
    """Bits needed to encode one value from a domain of ``size`` elements.

    ``bits_for_range(1) == 1`` by convention (a field is never free).
    """
    if size < 1:
        raise ValueError(f"domain size must be >= 1, got {size}")
    return max(1, math.ceil(math.log2(size))) if size > 1 else 1


def label_bits(n: int) -> int:
    """Bits for an agent label in ``[n]``."""
    return bits_for_range(n)


def vote_bits(m: int) -> int:
    """Bits for a vote value in ``[m]`` (the paper uses ``m = n^3``)."""
    return bits_for_range(m)


def color_bits(num_colors: int) -> int:
    """Bits for a color from a palette of ``num_colors``."""
    return bits_for_range(num_colors)


def round_index_bits(q: int) -> int:
    """Bits for a round index within a phase of ``q`` rounds."""
    return bits_for_range(q)
