"""E10 — the open problems: other graphs; the sequential GOSSIP model.

Part A (topologies): Protocol P with neighbour-restricted gossip on
Erdős–Rényi graphs of decreasing density, a random-regular graph and a
ring.  Measured: success rate, agents with zero votes (the fairness
hazard), and silent splits.  Expected shape: dense graphs behave like
the complete graph; sparse/high-diameter graphs break termination
(Find-Min can't finish in O(log n)) before they break fairness.

Part B (sequential model): ticks for async min-aggregation to converge,
normalised by n log2 n (the classic sequential-gossip bound), and the
async fair-leader-election convergence rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.analysis.stats import mean_ci
from repro.experiments.registry import experiment
from repro.experiments.runner import run_trials
from repro.experiments.workloads import balanced
from repro.extensions.async_gossip import async_min_ticks, run_async_leader_election
from repro.extensions.topologies import run_graph_protocol
from repro.util.rng import SeedTree
from repro.util.tables import Table

__all__ = ["E10Options", "run"]


@dataclass(frozen=True)
class E10Options:
    n: int = 64
    trials: int = 30
    gamma: float = 3.0
    async_sizes: Sequence[int] = (64, 256, 1024)
    seed: int = 1010
    parallel: bool = True


def _graph(kind: str, n: int, seed: int) -> nx.Graph:
    if kind == "complete":
        return nx.complete_graph(n)
    if kind == "er_dense":
        return nx.gnp_random_graph(n, 0.5, seed=seed)
    if kind == "er_sparse":
        p = 3 * math.log(n) / n  # just above the connectivity threshold
        return nx.gnp_random_graph(n, p, seed=seed)
    if kind == "regular8":
        return nx.random_regular_graph(8, n, seed=seed)
    if kind == "ring":
        return nx.cycle_graph(n)
    raise ValueError(f"unknown graph kind {kind!r}")


def _ensure_connected(g: nx.Graph, n: int) -> nx.Graph:
    """Patch isolated/disconnected parts with a Hamiltonian cycle."""
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def _graph_trial(args: tuple[str, int, float, int]) -> tuple[bool, int, bool]:
    kind, n, gamma, seed = args
    g = _ensure_connected(_graph(kind, n, seed), n)
    res = run_graph_protocol(g, balanced(n), gamma=gamma, seed=seed)
    return res.outcome is not None, res.zero_vote_agents, res.split


def _async_trial(args: tuple[int, int]) -> tuple[float, bool]:
    n, seed = args
    rng = SeedTree(seed).child("vals").generator()
    values = rng.integers(n ** 3, size=n).astype(float).tolist()
    ticks = async_min_ticks(values, seed=seed)
    election = run_async_leader_election(balanced(n), seed=seed)
    return ticks / (n * math.log2(n)), election.converged


@experiment("e10", options=E10Options,
            title="Other graphs; sequential GOSSIP",
            claim="conclusions — the paper's open problems, empirically",
            kind="honest", seed_strides=(41, 43))
def run(opts: E10Options = E10Options()) -> tuple[Table, Table]:
    topo = Table(
        headers=["graph", "success rate", "mean zero-vote agents",
                 "silent split rate"],
        title=f"E10a  Protocol P on other graphs (n = {opts.n})",
    )
    for kind in ("complete", "er_dense", "regular8", "er_sparse", "ring"):
        args = [
            (kind, opts.n, opts.gamma, opts.seed + 41 * i)
            for i in range(opts.trials)
        ]
        rows = run_trials(_graph_trial, args, parallel=opts.parallel)
        success = sum(1 for ok, _, _ in rows if ok)
        zero, _ = mean_ci([z for _, z, _ in rows])
        splits = sum(1 for _, _, s in rows if s)
        topo.add_row(kind, success / opts.trials, zero, splits / opts.trials)

    asy = Table(
        headers=["n", "min-agg ticks / (n log2 n)", "async election converged"],
        title="E10b  Sequential GOSSIP (one random agent awake per tick)",
    )
    for n in opts.async_sizes:
        args = [(n, opts.seed + 43 * i) for i in range(max(5, opts.trials // 3))]
        rows = run_trials(_async_trial, args, parallel=opts.parallel)
        ratio, _ = mean_ci([r for r, _ in rows])
        conv = sum(1 for _, c in rows if c)
        asy.add_row(n, ratio, f"{conv}/{len(rows)}")
    return topo, asy
