"""E10 — the open problems: other graphs; the sequential GOSSIP model.

Part A (topologies): Protocol P with neighbour-restricted gossip over
the full scenario matrix (:data:`repro.extensions.families.GRAPH_KINDS`
— Erdős–Rényi at two densities, random-regular, ring, Barabási–Albert,
Watts–Strogatz small-world, 2-D torus, star — plus a churn scenario
with nodes crashing at a configurable rate).  Measured per scenario:
success rate, agents with zero votes (the fairness hazard), silent
splits, and the edges the explicit connectivity patch added (the
previously silent densification of the sparse families).  Expected
shape: expander-like graphs behave like the complete graph; sparse or
high-diameter graphs break termination (Find-Min's spread is governed
by conductance, so the fixed O(log n) schedule fails) before they
break fairness; the star breaks fairness outright (leaves receive no
votes).

Part B (sequential model): ticks for async min-aggregation to converge,
normalised by n log2 n (the classic sequential-gossip bound), and the
async fair-leader-election convergence rate.

Both parts run on the batched tiers by default
(:func:`repro.experiments.dispatch.run_graph_trials_fast` /
:func:`run_async_trials_fast`); ``engine`` falls back to the per-agent
or scalar reference tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.stats import mean_ci
from repro.experiments.dispatch import (
    run_async_trials_fast,
    run_graph_trials_fast,
)
from repro.experiments.registry import experiment
from repro.experiments.workloads import balanced
from repro.workloads import cached_scenario_workload
from repro.util.tables import Table

__all__ = ["E10Options", "run"]

_DEFAULT_SCENARIOS = (
    "complete", "er_dense", "regular8", "er_sparse", "ring",
    "ba", "ws", "torus", "star", "regular8+churn",
)


@dataclass(frozen=True)
class E10Options:
    n: int = 512
    trials: int = 500
    gamma: float = 3.0
    scenarios: Sequence[str] = _DEFAULT_SCENARIOS
    churn_rate: float = 0.05
    async_sizes: Sequence[int] = (64, 256, 1024)
    seed: int = 1010
    engine: str = "auto"
    parallel: bool = True
    jobs: int | None = None


@experiment("e10", options=E10Options,
            title="Other graphs; sequential GOSSIP",
            claim="conclusions — the paper's open problems, empirically",
            kind="honest", seed_strides=(41, 43))
def run(opts: E10Options = E10Options()) -> tuple[Table, Table]:
    topo = Table(
        headers=["graph", "success rate", "mean zero-vote agents",
                 "silent split rate", "mean patched edges"],
        title=f"E10a  Protocol P on other graphs (n = {opts.n})",
    )
    for scenario in opts.scenarios:
        # Cache-aware front door: with no active workload cache this is
        # sample_scenario_workload; with one, the workload comes back
        # memory-mapped and the plan carries its artifact ref.
        wl = cached_scenario_workload(
            scenario, opts.n, opts.trials, opts.seed,
            churn_rate=opts.churn_rate,
        )
        res = run_graph_trials_fast(
            wl, balanced(opts.n), wl.seeds, gamma=opts.gamma,
            faulty=wl.faulty, engine=opts.engine, jobs=opts.jobs,
            parallel=opts.parallel,
        )
        topo.add_row(scenario, res.success_rate(), res.zero_vote_mean(),
                     res.split_rate(), wl.mean_patched_edges)

    asy = Table(
        headers=["n", "min-agg ticks / (n log2 n)", "async election converged"],
        title="E10b  Sequential GOSSIP (one random agent awake per tick)",
    )
    async_engine = (
        "batch" if opts.engine in ("auto", "batch", "batch-parity")
        else opts.engine
    )
    for n in opts.async_sizes:
        seeds = [
            opts.seed + 43 * i for i in range(max(5, opts.trials // 3))
        ]
        ares = run_async_trials_fast(
            n, seeds, colors=balanced(n), engine=async_engine,
            jobs=opts.jobs, parallel=opts.parallel,
        )
        ratio, _ = mean_ci(ares.minagg_ratio())
        conv = int(np.count_nonzero(ares.election_converged))
        asy.add_row(n, ratio, f"{conv}/{len(seeds)}")
    return topo, asy
