"""E4 — headline claim: o(n^2) messages, O(n log^3 n) bits.

Protocol P against the LOCAL-model commit–reveal election (the prior
work's cost): total messages and total bits per run, their ratio, and the
crossover size beyond which P is strictly cheaper.  P's totals are also
fitted against n log n / n log^3 n (expected winners) and n^2 (control).
P's runs execute on the batched fastpath; the baselines stay per-run
(one execution per size is all they need).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.scaling import fit_against
from repro.analysis.stats import mean_ci
from repro.baselines.halpern_vilaca import run_halpern_vilaca
from repro.baselines.local_broadcast import run_local_fair_election
from repro.experiments.dispatch import run_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.workloads import balanced
from repro.util.tables import Table

__all__ = ["E4Options", "run"]


@dataclass(frozen=True)
class E4Options:
    sizes: Sequence[int] = (32, 64, 128, 256, 512, 1024, 2048)
    trials: int = 20
    gamma: float = 3.0
    seed: int = 4404
    engine: str = "auto"
    parallel: bool = True
    jobs: int | None = None


@experiment("e4", options=E4Options,
            title="Communication vs LOCAL baselines",
            claim="headline — o(n^2) messages, O(n log^3 n) bits",
            kind="honest", seed_strides=(13,))
def run(opts: E4Options = E4Options()) -> tuple[Table, Table]:
    main = Table(
        headers=["n", "P messages", "LOCAL messages", "HV messages",
                 "msg ratio (P/LOCAL)", "P Mbits", "LOCAL Mbits"],
        title="E4  Communication: Protocol P vs LOCAL commit-reveal "
              "vs Halpern-Vilaca",
        floatfmt=".3g",
    )
    p_msgs, p_bits = [], []
    crossover = None
    for n in opts.sizes:
        seeds = [opts.seed + 13 * i for i in range(opts.trials)]
        batch = run_trials_fast(
            balanced(n), seeds, gamma=opts.gamma,
            engine=opts.engine, jobs=opts.jobs, parallel=opts.parallel,
        )
        msgs, _ = mean_ci(batch.total_messages)
        bits, _ = mean_ci(batch.total_bits)
        local = run_local_fair_election(balanced(n), seed=opts.seed)
        hv = run_halpern_vilaca(balanced(n), seed=opts.seed)
        ratio = msgs / local.messages
        if crossover is None and ratio < 1.0:
            crossover = n
        main.add_row(n, int(msgs), local.messages, hv.messages, ratio,
                     bits / 1e6, local.total_bits / 1e6)
        p_msgs.append(msgs)
        p_bits.append(bits)

    fits = Table(
        headers=["quantity", "fitted shape", "slope", "R^2"],
        title=(
            "E4  Shape fits"
            + (f"  [P beats LOCAL on messages from n = {crossover}]"
               if crossover else "")
        ),
    )
    for name, values, shapes in (
        ("P messages", p_msgs, ("n log n", "n^2")),
        ("P bits", p_bits, ("n log^3 n", "n^2")),
    ):
        for shape in shapes:
            a, _b, r2 = fit_against(list(opts.sizes), values, shape)
            fits.add_row(name, shape, a, r2)
    return main, fits
