"""E2 — Theorem 4 (rounds): the protocol completes in O(log n) rounds.

Two quantities:

* the *schedule* (4q = 4 ceil(gamma log2 n) rounds) — deterministic, the
  bound stated by the theorem;
* the *measured* Find-Min convergence round (when the last active agent
  learned the minimal certificate) — the only stochastic part; Lemma 3.3
  says it finishes within the q-round budget w.h.p.

Both are fitted against log n (expect R^2 ~ 1) and, as a falsification
control, against n (expect visibly worse R^2).  Trials run on the
batched fastpath; the per-size statistics reduce length-`trials` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import mean_ci
from repro.analysis.scaling import fit_against
from repro.experiments.dispatch import run_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.workloads import balanced
from repro.util.tables import Table

__all__ = ["E2Options", "run"]


@dataclass(frozen=True)
class E2Options:
    sizes: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096)
    trials: int = 60
    gamma: float = 3.0
    seed: int = 2202
    engine: str = "auto"
    parallel: bool = True
    jobs: int | None = None


@experiment("e2", options=E2Options,
            title="Round complexity",
            claim="Theorem 4 — the protocol completes in O(log n) rounds",
            kind="honest", seed_strides=(7,))
def run(opts: E2Options = E2Options()) -> tuple[Table, Table]:
    main = Table(
        headers=["n", "q", "schedule rounds", "find-min mean", "find-min max",
                 "converged in q"],
        title="E2  Round complexity (Theorem 4: O(log n))",
    )
    sched, fm_means = [], []
    for n in opts.sizes:
        seeds = [opts.seed + 7 * i for i in range(opts.trials)]
        batch = run_trials_fast(
            balanced(n), seeds, gamma=opts.gamma,
            engine=opts.engine, jobs=opts.jobs, parallel=opts.parallel,
        )
        rounds = batch.rounds
        fm = batch.observed_find_min_rounds()
        agree = int(batch.find_min_agreement.sum())
        mean_fm, _ = mean_ci(fm) if fm.size else (float("nan"), 0.0)
        main.add_row(
            n, rounds // 4, rounds, mean_fm,
            int(fm.max()) if fm.size else None,
            f"{agree}/{opts.trials}",
        )
        sched.append(rounds)
        fm_means.append(mean_fm)

    fits = Table(
        headers=["quantity", "fitted shape", "slope", "intercept", "R^2"],
        title="E2  Shape fits (log n should win; n is the control)",
    )
    for name, values in (("schedule rounds", sched), ("find-min mean", fm_means)):
        for shape in ("log n", "n"):
            a, b, r2 = fit_against(list(opts.sizes), values, shape)
            fits.add_row(name, shape, a, b, r2)
    return main, fits
