"""E7 — Theorem 7: every deviation gains <= 0 (whp t-strong equilibrium).

Setup: a red-majority network; the coalition is the first ``t``
supporters of the minority color (maximally aligned incentives: every
member wants "blue" to win).  For each strategy and coalition size we
estimate, with *paired trials* (honest and deviating runs evaluated on
shared randomness):

* the coalition color's winning probability under honest play and under
  the deviation,
* the failure (⊥) probability of both,
* the members' expected-utility gain at chi = 1
  (``gain = Δwin − chi·Δfail``; any chi >= 0 derivable from the columns).

Theorem 7's prediction: gain <= 0 up to Monte-Carlo noise, for *every*
strategy and size — deviations either trigger failure (negative gain) or
leave the distribution untouched (zero gain).  The griefing row shows a
large negative gain: sabotage is easy, profit is not.

Trials are routed through :func:`run_deviation_trials_fast`: the
default ``batch-strategy`` engine runs the whole strategy × size grid
vectorised (thousands of paired trials per cell in seconds — see
``benchmarks/bench_strategies.py``); ``engine="agent"`` replays the
grid on the exact agent engine for fidelity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.equilibrium import estimate_utility
from repro.experiments.dispatch import run_deviation_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.workloads import skewed
from repro.util.tables import Table

__all__ = ["E7Options", "run"]

_DEFAULT_STRATEGIES = (
    "silent",
    "pretend_faulty",
    "underbid_alter",
    "underbid_drop",
    "underbid_klie",
    "equivocate",
    "vote_switch",
    "findmin_suppress",
    "griefing",
    "pooled",
    "pooled_gamble",
)


@dataclass(frozen=True)
class E7Options:
    n: int = 48
    minority: float = 0.25           # coalition color's support
    strategies: Sequence[str] = _DEFAULT_STRATEGIES
    coalition_sizes: Sequence[int] = (1, 4)
    trials: int = 120
    gamma: float = 2.5
    chi: float = 1.0
    seed: int = 7707
    engine: str = "auto"             # auto -> batch-strategy
    parallel: bool = True
    jobs: int | None = None

    def colors(self) -> list[str]:
        return skewed(self.n, minority=self.minority)

    def members(self, t: int) -> frozenset[int]:
        blues = [i for i, c in enumerate(self.colors()) if c == "blue"]
        if t > len(blues):
            raise ValueError(f"coalition size {t} exceeds blue supporters")
        return frozenset(blues[:t])


@experiment("e7", options=E7Options,
            title="Deviation gains",
            claim="Theorem 7 — whp t-strong equilibrium (gains <= 0)",
            kind="deviation", seed_strides=(23,))
def run(opts: E7Options = E7Options()) -> Table:
    table = Table(
        headers=["strategy", "t", "honest win", "deviant win",
                 "honest fail", "deviant fail", "gain (chi=1)",
                 "gain CI +/-", "profitable?"],
        title=(
            f"E7  Deviation gains (Theorem 7), n = {opts.n}, "
            f"coalition color support = {opts.minority:.0%}, "
            f"trials = {opts.trials}"
        ),
    )
    colors = opts.colors()
    seeds = [opts.seed + 23 * i for i in range(opts.trials)]

    for strategy in opts.strategies:
        for t in opts.coalition_sizes:
            res = run_deviation_trials_fast(
                colors, seeds, strategy, opts.members(t),
                gamma=opts.gamma, engine=opts.engine, jobs=opts.jobs,
                parallel=opts.parallel,
            )
            honest_u = estimate_utility(
                res.honest.outcomes(), "blue", chi=opts.chi
            )
            dev_u = estimate_utility(
                res.deviant.outcomes(), "blue", chi=opts.chi
            )
            g, half = res.paired_gain("blue", chi=opts.chi)
            table.add_row(
                strategy, t, honest_u.win_prob, dev_u.win_prob,
                honest_u.fail_prob, dev_u.fail_prob, g, half,
                g - half > 0,
            )
    return table
