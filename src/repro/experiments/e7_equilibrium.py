"""E7 — Theorem 7: every deviation gains <= 0 (whp t-strong equilibrium).

Setup: a red-majority network; the coalition is the first ``t``
supporters of the minority color (maximally aligned incentives: every
member wants "blue" to win).  For each strategy and coalition size we
estimate, with *paired seeds*:

* the coalition color's winning probability under honest play and under
  the deviation,
* the failure (⊥) probability of both,
* the members' expected-utility gain at chi = 1
  (``gain = Δwin − chi·Δfail``; any chi >= 0 derivable from the columns).

Theorem 7's prediction: gain <= 0 up to Monte-Carlo noise, for *every*
strategy and size — deviations either trigger failure (negative gain) or
leave the distribution untouched (zero gain).  The griefing row shows a
large negative gain: sabotage is easy, profit is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.agents.plans import plan
from repro.analysis.equilibrium import estimate_utility, gain
from repro.analysis.stats import mean_ci
from repro.core.protocol import ProtocolConfig, run_protocol
from repro.experiments.runner import run_trials
from repro.experiments.workloads import skewed
from repro.util.tables import Table

__all__ = ["E7Options", "run"]

_DEFAULT_STRATEGIES = (
    "silent",
    "pretend_faulty",
    "underbid_alter",
    "underbid_drop",
    "underbid_klie",
    "equivocate",
    "vote_switch",
    "findmin_suppress",
    "griefing",
    "pooled",
    "pooled_gamble",
)


@dataclass(frozen=True)
class E7Options:
    n: int = 48
    minority: float = 0.25           # coalition color's support
    strategies: Sequence[str] = _DEFAULT_STRATEGIES
    coalition_sizes: Sequence[int] = (1, 4)
    trials: int = 120
    gamma: float = 2.5
    chi: float = 1.0
    seed: int = 7707
    parallel: bool = True

    def colors(self) -> list[str]:
        return skewed(self.n, minority=self.minority)

    def members(self, t: int) -> frozenset[int]:
        blues = [i for i, c in enumerate(self.colors()) if c == "blue"]
        if t > len(blues):
            raise ValueError(f"coalition size {t} exceeds blue supporters")
        return frozenset(blues[:t])


def _honest_trial(args: tuple[int, float, float, int]) -> Hashable | None:
    n, minority, gamma, seed = args
    colors = skewed(n, minority=minority)
    return run_protocol(
        ProtocolConfig(colors=colors, gamma=gamma, seed=seed)
    ).outcome


def _deviant_trial(
    args: tuple[int, float, float, str, tuple[int, ...], int]
) -> Hashable | None:
    n, minority, gamma, strategy, members, seed = args
    colors = skewed(n, minority=minority)
    cfg = ProtocolConfig(
        colors=colors, gamma=gamma, seed=seed,
        deviation=plan(strategy, frozenset(members)),
    )
    return run_protocol(cfg).outcome


def run(opts: E7Options = E7Options()) -> Table:
    table = Table(
        headers=["strategy", "t", "honest win", "deviant win",
                 "honest fail", "deviant fail", "gain (chi=1)",
                 "gain CI +/-", "profitable?"],
        title=(
            f"E7  Deviation gains (Theorem 7), n = {opts.n}, "
            f"coalition color support = {opts.minority:.0%}, "
            f"trials = {opts.trials}"
        ),
    )
    seeds = [opts.seed + 23 * i for i in range(opts.trials)]

    honest_args = [(opts.n, opts.minority, opts.gamma, s) for s in seeds]
    honest_outcomes = run_trials(
        _honest_trial, honest_args, parallel=opts.parallel
    )
    honest_u = estimate_utility(honest_outcomes, "blue", chi=opts.chi)

    for strategy in opts.strategies:
        for t in opts.coalition_sizes:
            members = tuple(sorted(opts.members(t)))
            dev_args = [
                (opts.n, opts.minority, opts.gamma, strategy, members, s)
                for s in seeds
            ]
            dev_outcomes = run_trials(
                _deviant_trial, dev_args, parallel=opts.parallel
            )
            dev_u = estimate_utility(dev_outcomes, "blue", chi=opts.chi)
            g = gain(honest_u, dev_u)
            # CI of the paired utility difference.
            per_seed = [
                (1.0 if d == "blue" else 0.0) - opts.chi * (1.0 if d is None else 0.0)
                - (1.0 if h == "blue" else 0.0)
                + opts.chi * (1.0 if h is None else 0.0)
                for h, d in zip(honest_outcomes, dev_outcomes)
            ]
            _, half = mean_ci(per_seed)
            table.add_row(
                strategy, t, honest_u.win_prob, dev_u.win_prob,
                honest_u.fail_prob, dev_u.fail_prob, g, half,
                g - half > 0,
            )
    return table
