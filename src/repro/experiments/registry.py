"""The experiment registry: discoverable, options-typed experiment specs.

Each experiment module declares itself with the :func:`experiment`
decorator::

    @experiment("e1", options=E1Options,
                title="Fairness of the winning distribution",
                claim="Theorem 4", kind="honest", seed_strides=(1000,))
    def run(opts: E1Options = E1Options()) -> Table:
        ...

The decorator registers an :class:`ExperimentSpec` (binding the options
dataclass to the runner) and wraps ``run`` so that it always returns a
:class:`repro.results.ExperimentResult`: the body keeps building plain
``Table`` objects exactly as before, and the wrapper captures them into
typed row sections together with the run metadata — options, seed
spine, engine tier, wall time and package version.  Rendering the
result's tables reproduces the legacy text byte-for-byte.

Lookup is lazy: :func:`get_experiment` imports the experiment's module
on first use, so ``repro list``/CLI start-up stays cheap.
"""

from __future__ import annotations

import dataclasses
import functools
import importlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.exec.backends import collect_execution
from repro.exec.plan import AUTO_ENGINE as _PLAN_AUTO_ENGINE
from repro.results import ExperimentResult, ResultSection, build_meta
from repro.util.tables import Table

__all__ = [
    "EXECUTION_FIELDS",
    "ExperimentSpec",
    "experiment",
    "experiment_names",
    "get_experiment",
    "iter_experiments",
    "options_dict",
    "run_experiment",
]

#: Canonical experiment order and the module each one lives in.
_MODULE_BY_NAME: dict[str, str] = {
    "e1": "repro.experiments.e1_fairness",
    "e2": "repro.experiments.e2_rounds",
    "e3": "repro.experiments.e3_message_size",
    "e4": "repro.experiments.e4_communication",
    "e5": "repro.experiments.e5_good_executions",
    "e6": "repro.experiments.e6_faults",
    "e7": "repro.experiments.e7_equilibrium",
    "e8": "repro.experiments.e8_baseline_attacks",
    "e9": "repro.experiments.e9_ablations",
    "e10": "repro.experiments.e10_extensions",
}

_REGISTRY: dict[str, "ExperimentSpec"] = {}

#: What ``engine="auto"`` resolves to per experiment kind — sourced from
#: the plan layer's single routing table (DESIGN.md §1/§5); ``mixed``
#: experiments default to their deviation workloads' tier.
_AUTO_ENGINE = {
    "honest": _PLAN_AUTO_ENGINE["honest"],
    "deviation": _PLAN_AUTO_ENGINE["deviation"],
    "mixed": _PLAN_AUTO_ENGINE["deviation"],
}

#: Options fields that steer *execution mechanics* only.  They are
#: guaranteed not to change result values (DESIGN.md §9), so they are
#: excluded from the serialised options — and hence from the
#: content-hash resume key: a sweep computed at ``jobs=1`` resumes
#: cleanly under ``jobs=8`` and vice versa.  (The historical
#: ``parallel``/``engine`` fields predate this rule and stay part of
#: the key for archive stability.)
EXECUTION_FIELDS = ("jobs",)


def options_dict(opts: Any) -> dict[str, Any]:
    """An options dataclass as the plain dict a result records.

    ``dataclasses.asdict`` minus :data:`EXECUTION_FIELDS` — the one
    converter used by results, studies and the CLI, so resume keys stay
    consistent everywhere.
    """
    out = dataclasses.asdict(opts)
    for name in EXECUTION_FIELDS:
        out.pop(name, None)
    return out


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: its options type, runner and claim."""

    name: str
    options_cls: type
    run: Callable[..., ExperimentResult]
    title: str = ""
    claim: str = ""
    kind: str = "honest"
    seed_strides: tuple[int, ...] = ()

    def default_options(self) -> Any:
        return self.options_cls()

    def option_fields(self) -> tuple[dataclasses.Field, ...]:
        return dataclasses.fields(self.options_cls)


def _seed_spine(opts: Any, strides: Sequence[int]) -> dict[str, Any]:
    return {
        "base": getattr(opts, "seed", None),
        "strides": list(strides),
        "scheme": "trial i of a workload draws seed = base + stride*i",
    }


def experiment(
    name: str,
    *,
    options: type,
    title: str = "",
    claim: str = "",
    kind: str = "honest",
    seed_strides: Sequence[int] = (),
) -> Callable[[Callable], Callable[..., ExperimentResult]]:
    """Register an experiment runner under ``name``.

    ``options`` is the frozen options dataclass; ``kind`` tells the
    metadata layer which tier ``engine="auto"`` routes to (``honest`` →
    ``batch``, ``deviation``/``mixed`` → ``batch-strategy``);
    ``seed_strides`` documents the per-trial seed derivation for the
    result's seed spine.  The decorated function may keep returning a
    ``Table`` (or tuple of tables); the wrapper converts to
    :class:`ExperimentResult` and fills in the metadata.
    """
    if kind not in _AUTO_ENGINE:
        raise ValueError(f"unknown experiment kind {kind!r}")
    if not dataclasses.is_dataclass(options):
        raise TypeError(f"options must be a dataclass, got {options!r}")

    def decorate(fn: Callable) -> Callable[..., ExperimentResult]:
        @functools.wraps(fn)
        def run(opts: Any = None, /, **overrides: Any) -> ExperimentResult:
            if opts is None:
                opts = options(**overrides)
            elif overrides:
                opts = dataclasses.replace(opts, **overrides)
            start = time.perf_counter()
            with collect_execution() as exec_records:
                out = fn(opts)
            wall = time.perf_counter() - start
            if isinstance(out, ExperimentResult):
                return out
            tables = out if isinstance(out, tuple) else (out,)
            if not all(isinstance(t, Table) for t in tables):
                raise TypeError(
                    f"experiment {name!r} returned {type(out).__name__}; "
                    "expected Table(s) or ExperimentResult"
                )
            engine = getattr(opts, "engine", None)
            resolved = _AUTO_ENGINE[kind] if engine == "auto" else engine
            backend = shards = None
            retries = shard_failures = degraded = 0
            recovery_wall = 0.0
            if exec_records:
                backend = (
                    "parallel"
                    if any(r.backend == "parallel" for r in exec_records)
                    else "serial"
                )
                shards = sum(r.shards for r in exec_records)
                retries = sum(r.retries for r in exec_records)
                shard_failures = sum(r.shard_failures for r in exec_records)
                degraded = sum(r.degraded_shards for r in exec_records)
                recovery_wall = sum(
                    r.recovery_wall_s for r in exec_records
                )
            return ExperimentResult(
                experiment=name,
                title=title,
                claim=claim,
                options=options_dict(opts),
                options_type=f"{options.__module__}.{options.__qualname__}",
                sections=tuple(ResultSection.from_table(t) for t in tables),
                meta=build_meta(
                    wall_time_s=wall,
                    engine=engine,
                    resolved_engine=resolved,
                    backend=backend,
                    jobs=getattr(opts, "jobs", None),
                    shards=shards,
                    retries=retries,
                    shard_failures=shard_failures,
                    degraded_shards=degraded,
                    recovery_wall_s=recovery_wall,
                    seed_spine=_seed_spine(opts, seed_strides),
                ),
            )

        spec = ExperimentSpec(
            name=name, options_cls=options, run=run, title=title,
            claim=claim, kind=kind, seed_strides=tuple(seed_strides),
        )
        _REGISTRY[name] = spec
        run.spec = spec  # type: ignore[attr-defined]
        return run

    return decorate


def experiment_names() -> list[str]:
    """All experiment names in canonical order (no module imports)."""
    return list(_MODULE_BY_NAME)


def get_experiment(name: str) -> ExperimentSpec:
    """The spec registered under ``name``, importing its module lazily."""
    name = name.lower()
    if name not in _REGISTRY:
        module = _MODULE_BY_NAME.get(name)
        if module is None:
            known = ", ".join(experiment_names())
            raise KeyError(f"unknown experiment {name!r}; known: {known}")
        importlib.import_module(module)
        if name not in _REGISTRY:  # pragma: no cover - registration bug
            raise RuntimeError(
                f"module {module} did not register experiment {name!r}"
            )
    return _REGISTRY[name]


def iter_experiments() -> Iterator[ExperimentSpec]:
    """Every experiment spec, in canonical order (imports all modules)."""
    for name in experiment_names():
        yield get_experiment(name)


def run_experiment(
    name: str,
    opts: Any = None,
    /,
    **overrides: Any,
) -> ExperimentResult:
    """Run a registered experiment by name.

    ``opts`` is a full options instance; alternatively pass field
    overrides as keyword arguments (applied to the default options).
    """
    return get_experiment(name).run(opts, **overrides)
