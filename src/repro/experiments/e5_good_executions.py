"""E5 — Lemma 3: executions are good w.h.p. (and gamma buys probability).

A good execution (Definition 2) requires: every active agent receives
Theta(log n) votes, all k values distinct, Find-Min reaches everyone.
We measure the rate of each event across n and gamma; the claim's shape
is a *decreasing* bad-execution rate in n (for fixed sufficient gamma)
and in gamma (for fixed n).  The Lemma 6.1 observable — the minimum
number of Commitment pulls any agent received — is reported too, since
the equilibrium argument rides on it.

Each (n, gamma) cell is one batched-fastpath pass; the event rates are
single array reductions over the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import wilson_interval
from repro.experiments.dispatch import run_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.workloads import balanced
from repro.util.tables import Table

__all__ = ["E5Options", "run"]


@dataclass(frozen=True)
class E5Options:
    sizes: Sequence[int] = (64, 256, 1024)
    gammas: Sequence[float] = (1.0, 2.0, 3.0)
    trials: int = 300
    seed: int = 5505
    engine: str = "auto"
    parallel: bool = True
    jobs: int | None = None


@experiment("e5", options=E5Options,
            title="Good executions and coverage",
            claim="Lemma 3 — executions are good w.h.p.; "
                  "Lemma 6.1 — Commitment coverage",
            kind="honest", seed_strides=(17,))
def run(opts: E5Options = E5Options()) -> Table:
    table = Table(
        headers=["n", "gamma", "good rate", "good 95% CI low",
                 "k collisions", "find-min agreed", "min votes seen",
                 "min commit pulls seen"],
        title="E5  Good executions (Lemma 3) and coverage (Lemma 6.1)",
    )
    for n in opts.sizes:
        for gamma in opts.gammas:
            seeds = [opts.seed + 17 * i for i in range(opts.trials)]
            batch = run_trials_fast(
                balanced(n), seeds, gamma=gamma,
                engine=opts.engine, jobs=opts.jobs, parallel=opts.parallel,
            )
            good = int(batch.is_good.sum())
            collisions = int(batch.k_collision.sum())
            agreed = int(batch.find_min_agreement.sum())
            lo, _hi = wilson_interval(good, opts.trials)
            table.add_row(
                n, gamma, good / opts.trials, lo, collisions,
                f"{agreed}/{opts.trials}",
                int(batch.min_votes.min()),
                batch.min_commitment_pulls_seen(),
            )
    return table
