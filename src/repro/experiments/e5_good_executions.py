"""E5 — Lemma 3: executions are good w.h.p. (and gamma buys probability).

A good execution (Definition 2) requires: every active agent receives
Theta(log n) votes, all k values distinct, Find-Min reaches everyone.
We measure the rate of each event across n and gamma; the claim's shape
is a *decreasing* bad-execution rate in n (for fixed sufficient gamma)
and in gamma (for fixed n).  The Lemma 6.1 observable — the minimum
number of Commitment pulls any agent received — is reported too, since
the equilibrium argument rides on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import wilson_interval
from repro.experiments.runner import run_trials
from repro.experiments.workloads import balanced
from repro.fastpath.simulate import simulate_protocol_fast
from repro.util.tables import Table

__all__ = ["E5Options", "run"]


@dataclass(frozen=True)
class E5Options:
    sizes: Sequence[int] = (64, 256, 1024)
    gammas: Sequence[float] = (1.0, 2.0, 3.0)
    trials: int = 300
    seed: int = 5505
    parallel: bool = True


def _trial(args: tuple[int, float, int]) -> tuple[bool, bool, bool, int, int]:
    n, gamma, seed = args
    res = simulate_protocol_fast(balanced(n), gamma=gamma, seed=seed)
    return (
        res.is_good,
        res.k_collision,
        res.find_min_agreement,
        res.min_votes,
        res.min_commitment_pulls_received,
    )


def run(opts: E5Options = E5Options()) -> Table:
    table = Table(
        headers=["n", "gamma", "good rate", "good 95% CI low",
                 "k collisions", "find-min agreed", "min votes seen",
                 "min commit pulls seen"],
        title="E5  Good executions (Lemma 3) and coverage (Lemma 6.1)",
    )
    for n in opts.sizes:
        for gamma in opts.gammas:
            args = [
                (n, gamma, opts.seed + 17 * i) for i in range(opts.trials)
            ]
            rows = run_trials(_trial, args, parallel=opts.parallel)
            good = sum(1 for r in rows if r[0])
            collisions = sum(1 for r in rows if r[1])
            agreed = sum(1 for r in rows if r[2])
            lo, _hi = wilson_interval(good, opts.trials)
            table.add_row(
                n, gamma, good / opts.trials, lo, collisions,
                f"{agreed}/{opts.trials}",
                min(r[3] for r in rows),
                min(r[4] for r in rows),
            )
    return table
