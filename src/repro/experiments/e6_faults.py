"""E6 — worst-case permanent faults: any constant alpha < 1 is tolerated.

Sweep the fault fraction alpha and the placement (random vs
color-targeted — the adversary crashing one opinion's supporters first)
and measure: success rate, and fairness *relative to the active agents*
(the paper defines fairness over A, not over the initial n).  The shape:
success stays w.h.p. for every alpha given gamma = gamma(alpha) — larger
alpha needs larger gamma, which the table makes visible by including a
gamma too small for the heavy-fault rows.

The per-trial fault sets (random placements differ per seed) go straight
into the batched fastpath, which supports ragged active sets; the
per-trial expected "red" fractions reduce over one boolean matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adversary.faults import color_targeted_faults, random_faults
from repro.analysis.fairness import (
    empirical_distribution_from_counts,
    total_variation,
)
from repro.experiments.dispatch import run_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.workloads import balanced
from repro.fastpath.batch import active_matrix
from repro.util.rng import SeedTree
from repro.util.tables import Table

__all__ = ["E6Options", "run"]


@dataclass(frozen=True)
class E6Options:
    n: int = 256
    alphas: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8)
    gammas: Sequence[float] = (2.0, 4.0)
    placements: Sequence[str] = ("random", "color_targeted")
    trials: int = 200
    seed: int = 6606
    engine: str = "auto"
    parallel: bool = True
    jobs: int | None = None


def _faults(placement: str, colors, alpha: float, seed: int) -> frozenset[int]:
    if placement == "random":
        rng = SeedTree(seed).child("faults").generator()
        return random_faults(len(colors), alpha, rng)
    return color_targeted_faults(colors, "red", alpha)


@experiment("e6", options=E6Options,
            title="Permanent worst-case faults",
            claim="Theorem 4 — tolerance of alpha*n permanent crashes",
            kind="honest", seed_strides=(19,))
def run(opts: E6Options = E6Options()) -> Table:
    table = Table(
        headers=["placement", "alpha", "gamma", "success rate",
                 "TV vs active support", "mean active frac 'red'"],
        title=f"E6  Permanent worst-case faults (n = {opts.n})",
    )
    colors = balanced(opts.n)
    red = np.array([c == "red" for c in colors])
    for placement in opts.placements:
        for alpha in opts.alphas:
            seeds = [opts.seed + 19 * i for i in range(opts.trials)]
            faulty = [
                _faults(placement, colors, alpha, s) for s in seeds
            ]
            # The fairness target changes per trial (random faults):
            # average the expected distribution over trials.
            active = active_matrix(opts.n, faulty)
            exp_red = float(
                ((red & active).sum(axis=1) / active.sum(axis=1)).mean()
            )
            expected = {"red": exp_red, "blue": 1.0 - exp_red}
            for gamma in opts.gammas:
                batch = run_trials_fast(
                    colors, seeds, gamma=gamma, faulty=faulty,
                    engine=opts.engine, jobs=opts.jobs, parallel=opts.parallel,
                )
                tv = total_variation(
                    empirical_distribution_from_counts(
                        batch.winning_counts()
                    ),
                    expected,
                )
                table.add_row(
                    placement, alpha, gamma,
                    batch.success_rate(), tv, exp_red,
                )
    return table
