"""E6 — worst-case permanent faults: any constant alpha < 1 is tolerated.

Sweep the fault fraction alpha and the placement (random vs
color-targeted — the adversary crashing one opinion's supporters first)
and measure: success rate, and fairness *relative to the active agents*
(the paper defines fairness over A, not over the initial n).  The shape:
success stays w.h.p. for every alpha given gamma = gamma(alpha) — larger
alpha needs larger gamma, which the table makes visible by including a
gamma too small for the heavy-fault rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.adversary.faults import color_targeted_faults, random_faults
from repro.analysis.fairness import (
    empirical_distribution,
    expected_distribution,
    fail_rate,
    total_variation,
)
from repro.experiments.runner import run_trials
from repro.experiments.workloads import balanced
from repro.fastpath.simulate import simulate_protocol_fast
from repro.util.rng import SeedTree
from repro.util.tables import Table

__all__ = ["E6Options", "run"]


@dataclass(frozen=True)
class E6Options:
    n: int = 256
    alphas: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8)
    gammas: Sequence[float] = (2.0, 4.0)
    placements: Sequence[str] = ("random", "color_targeted")
    trials: int = 200
    seed: int = 6606
    parallel: bool = True


def _faults(placement: str, colors, alpha: float, seed: int) -> frozenset[int]:
    if placement == "random":
        rng = SeedTree(seed).child("faults").generator()
        return random_faults(len(colors), alpha, rng)
    return color_targeted_faults(colors, "red", alpha)


def _trial(
    args: tuple[int, float, float, str, int]
) -> tuple[Hashable | None, frozenset[int]]:
    n, alpha, gamma, placement, seed = args
    colors = balanced(n)
    faulty = _faults(placement, colors, alpha, seed)
    res = simulate_protocol_fast(colors, gamma=gamma, faulty=faulty, seed=seed)
    return res.outcome, faulty


def run(opts: E6Options = E6Options()) -> Table:
    table = Table(
        headers=["placement", "alpha", "gamma", "success rate",
                 "TV vs active support", "mean active frac 'red'"],
        title=f"E6  Permanent worst-case faults (n = {opts.n})",
    )
    colors = balanced(opts.n)
    for placement in opts.placements:
        for alpha in opts.alphas:
            for gamma in opts.gammas:
                args = [
                    (opts.n, alpha, gamma, placement, opts.seed + 19 * i)
                    for i in range(opts.trials)
                ]
                rows = run_trials(_trial, args, parallel=opts.parallel)
                outcomes = [r[0] for r in rows]
                # The fairness target changes per trial (random faults):
                # average the expected distribution over trials.
                exp_red = 0.0
                for _, faulty in rows:
                    active = [i for i in range(opts.n) if i not in faulty]
                    exp = expected_distribution(colors, active)
                    exp_red += exp.get("red", 0.0)
                exp_red /= len(rows)
                expected = {"red": exp_red, "blue": 1.0 - exp_red}
                tv = total_variation(
                    empirical_distribution(outcomes), expected
                )
                table.add_row(
                    placement, alpha, gamma,
                    1.0 - fail_rate(outcomes), tv, exp_red,
                )
    return table
