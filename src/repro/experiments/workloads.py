"""Initial color configurations used across experiments.

The paper's fairness property is quantified over *any* initial
configuration; the suite exercises the standard corners:

* ``balanced`` — two colors, 50/50 (maximum entropy for two colors);
* ``skewed``  — two colors, 90/10 (fairness must track the minority
  exactly, the regime where biased protocols are easiest to expose);
* ``multiway`` — four colors, 40/30/20/10;
* ``leader_election`` — every agent supports a unique color (his own
  label): the fair-leader-election special case from the paper.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

__all__ = ["balanced", "skewed", "multiway", "leader_election", "WORKLOADS"]


def balanced(n: int) -> list[str]:
    """Two colors, as close to 50/50 as n allows."""
    half = n // 2
    return ["red"] * half + ["blue"] * (n - half)


def skewed(n: int, minority: float = 0.1) -> list[str]:
    """Two colors with a ``minority`` fraction of 'blue'."""
    blues = max(1, round(n * minority))
    return ["red"] * (n - blues) + ["blue"] * blues


def multiway(n: int) -> list[str]:
    """Four colors at 40/30/20/10."""
    a = round(0.4 * n)
    b = round(0.3 * n)
    c = round(0.2 * n)
    d = n - a - b - c
    return ["c0"] * a + ["c1"] * b + ["c2"] * c + ["c3"] * max(d, 0)


def leader_election(n: int) -> list[str]:
    """Unique color per agent — fair leader election."""
    return [f"id{i}" for i in range(n)]


WORKLOADS: dict[str, Callable[[int], Sequence[Hashable]]] = {
    "balanced": balanced,
    "skewed": skewed,
    "multiway": multiway,
    "leader_election": leader_election,
}
