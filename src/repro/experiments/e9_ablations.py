"""E9 — ablations: every defence layer of Protocol P is load-bearing.

Each row disables exactly one defence and replays the attack that the
equilibrium proof says this defence stops:

=====================  =====================  ============================
Disabled defence       Attack replayed        Expected change
=====================  =====================  ============================
(none)                 each attack            attack fails (⊥), never wins
verify_k               underbid_klie          attacker WINS (k unchecked)
verify_ledger          underbid_alter         attacker WINS (votes
                                              uncheckable)
verify_omissions       underbid_drop          attacker WINS (dropping
                                              undetected)
coherence (+ low q)    none (honest, low      silent SPLIT consensus
                       gamma)                 instead of clean ⊥
high->low gamma        pooled                 attack win rate rises as
                                              exposure gaps appear
commitment             pooled                 attacker WINS outright
                                              (nobody is ever exposed)
=====================  =====================  ============================

Every row is one paired workload on
:func:`run_deviation_trials_fast`; the default ``batch-strategy``
engine honours all defence toggles, which makes the γ-sweep tractable
at sizes the agent engine cannot reach (``pooled_gammas`` +
``engine="auto"`` at n in the thousands).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.defenses import Defenses
from repro.experiments.dispatch import run_deviation_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.workloads import skewed
from repro.util.tables import Table

__all__ = ["E9Options", "run"]


@dataclass(frozen=True)
class E9Options:
    n: int = 48
    minority: float = 0.25
    trials: int = 80
    gamma: float = 2.5
    # Exposure-window sweep for the pooled attack (high -> low).
    pooled_gammas: Sequence[float] = (2.5, 1.0, 0.5)
    starvation_gamma: float = 0.75
    seed: int = 9909
    engine: str = "auto"
    parallel: bool = True
    jobs: int | None = None


@experiment("e9", options=E9Options,
            title="Defence ablations",
            claim="every defence layer of Protocol P is load-bearing",
            kind="deviation", seed_strides=(37,))
def run(opts: E9Options = E9Options()) -> Table:
    table = Table(
        headers=["defenses", "gamma", "attack", "attacker win rate",
                 "fail rate", "silent split rate"],
        title=f"E9  Defence ablations (n = {opts.n}, trials = {opts.trials})",
    )
    colors = skewed(opts.n, minority=opts.minority)
    blue0 = (colors.index("blue"),)
    blues4 = tuple(
        i for i, c in enumerate(colors) if c == "blue"
    )[:4]
    seeds = [opts.seed + 37 * i for i in range(opts.trials)]

    cases: list[tuple[dict, float, str | None, tuple]] = [
        ({}, opts.gamma, "underbid_klie", blue0),
        ({"verify_k": False}, opts.gamma, "underbid_klie", blue0),
        ({}, opts.gamma, "underbid_alter", blue0),
        ({"verify_ledger": False}, opts.gamma, "underbid_alter", blue0),
        ({}, opts.gamma, "underbid_drop", blue0),
        ({"verify_omissions": False}, opts.gamma, "underbid_drop", blue0),
        # Coherence: at a starvation-level gamma Find-Min sometimes fails;
        # with coherence that surfaces as ⊥, without it as a silent split.
        ({}, opts.starvation_gamma, None, ()),
        ({"coherence": False}, opts.starvation_gamma, None, ()),
        # Exposure window: the pooled attack against decreasing gamma,
        # and against a protocol with no Commitment phase at all (nobody
        # is ever exposed -> the attack wins outright).
        *[({}, g, "pooled", blues4) for g in opts.pooled_gammas],
        ({"commitment": False}, opts.pooled_gammas[0], "pooled", blues4),
    ]

    for defense_kwargs, gamma, strategy, members in cases:
        res = run_deviation_trials_fast(
            colors, seeds, strategy, frozenset(members), gamma=gamma,
            defenses=Defenses(**defense_kwargs), engine=opts.engine,
            jobs=opts.jobs, parallel=opts.parallel,
        )
        outcomes = res.deviant.outcomes()
        wins = sum(1 for o in outcomes if o == "blue")
        fails = sum(1 for o in outcomes if o is None)
        splits = int(res.split.sum())
        table.add_row(
            Defenses(**defense_kwargs).describe(),
            gamma,
            strategy if strategy else "none (honest)",
            wins / opts.trials,
            fails / opts.trials,
            splits / opts.trials,
        )
    return table
