"""E9 — ablations: every defence layer of Protocol P is load-bearing.

Each row disables exactly one defence and replays the attack that the
equilibrium proof says this defence stops:

=====================  =====================  ============================
Disabled defence       Attack replayed        Expected change
=====================  =====================  ============================
(none)                 each attack            attack fails (⊥), never wins
verify_k               underbid_klie          attacker WINS (k unchecked)
verify_ledger          underbid_alter         attacker WINS (votes
                                              uncheckable)
verify_omissions       underbid_drop          attacker WINS (dropping
                                              undetected)
coherence (+ low q)    none (honest, low      silent SPLIT consensus
                       gamma)                 instead of clean ⊥
high->low gamma        pooled                 attack win rate rises as
                                              exposure gaps appear
commitment             pooled                 attacker WINS outright
                                              (nobody is ever exposed)
=====================  =====================  ============================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.plans import plan
from repro.core.defenses import Defenses
from repro.core.protocol import ProtocolConfig, run_protocol
from repro.experiments.runner import run_trials
from repro.experiments.workloads import skewed
from repro.util.tables import Table

__all__ = ["E9Options", "run"]


@dataclass(frozen=True)
class E9Options:
    n: int = 48
    minority: float = 0.25
    trials: int = 80
    gamma: float = 2.5
    seed: int = 9909
    parallel: bool = True


def _trial(
    args: tuple[int, float, float, str | None, tuple, dict, int]
) -> tuple[bool, bool, bool]:
    """Returns (attacker_color_won, failed, silent_split)."""
    n, minority, gamma, strategy, members, defense_kwargs, seed = args
    colors = skewed(n, minority=minority)
    deviation = plan(strategy, frozenset(members)) if strategy else None
    cfg = ProtocolConfig(
        colors=colors, gamma=gamma, seed=seed, deviation=deviation,
        defenses=Defenses(**defense_kwargs),
    )
    res = run_protocol(cfg)
    decided = set(res.decisions.values())
    split = res.outcome is None and None not in decided and len(decided) > 1
    return res.outcome == "blue", res.outcome is None, split


def run(opts: E9Options = E9Options()) -> Table:
    table = Table(
        headers=["defenses", "gamma", "attack", "attacker win rate",
                 "fail rate", "silent split rate"],
        title=f"E9  Defence ablations (n = {opts.n}, trials = {opts.trials})",
    )
    colors = skewed(opts.n, minority=opts.minority)
    blue0 = (colors.index("blue"),)
    blues4 = tuple(
        i for i, c in enumerate(colors) if c == "blue"
    )[:4]
    seeds = [opts.seed + 37 * i for i in range(opts.trials)]

    cases: list[tuple[dict, float, str | None, tuple]] = [
        ({}, opts.gamma, "underbid_klie", blue0),
        ({"verify_k": False}, opts.gamma, "underbid_klie", blue0),
        ({}, opts.gamma, "underbid_alter", blue0),
        ({"verify_ledger": False}, opts.gamma, "underbid_alter", blue0),
        ({}, opts.gamma, "underbid_drop", blue0),
        ({"verify_omissions": False}, opts.gamma, "underbid_drop", blue0),
        # Coherence: at a starvation-level gamma Find-Min sometimes fails;
        # with coherence that surfaces as ⊥, without it as a silent split.
        ({}, 0.75, None, ()),
        ({"coherence": False}, 0.75, None, ()),
        # Exposure window: the pooled attack against decreasing gamma,
        # and against a protocol with no Commitment phase at all (nobody
        # is ever exposed -> the attack wins outright).
        ({}, 2.5, "pooled", blues4),
        ({}, 1.0, "pooled", blues4),
        ({}, 0.5, "pooled", blues4),
        ({"commitment": False}, 2.5, "pooled", blues4),
    ]

    for defense_kwargs, gamma, strategy, members in cases:
        args = [
            (opts.n, opts.minority, gamma, strategy, members,
             defense_kwargs, s)
            for s in seeds
        ]
        rows = run_trials(_trial, args, parallel=opts.parallel)
        wins = sum(1 for w, _, _ in rows if w)
        fails = sum(1 for _, f, _ in rows if f)
        splits = sum(1 for _, _, s in rows if s)
        table.add_row(
            Defenses(**defense_kwargs).describe(),
            gamma,
            strategy if strategy else "none (honest)",
            wins / opts.trials,
            fails / opts.trials,
            splits / opts.trials,
        )
    return table
