"""Routing Monte-Carlo trial batches to the right simulation tier.

:func:`run_trials_fast` is the front door for every honest-run
experiment: given one color configuration and a list of per-trial seeds
it returns a :class:`repro.fastpath.batch.FastBatchResult` regardless of
which engine did the work.  Engines, from fastest to highest fidelity:

``batch``
    The trial-axis batched fastpath (statistical mode) — the default
    for Monte-Carlo tables.
``batch-parity``
    The batched fastpath in seed-parity mode: per-trial results are
    bit-identical to ``simulate_protocol_fast`` for the same seeds.
``process``
    Per-trial ``simulate_protocol_fast`` fanned out over a process pool
    (:func:`repro.experiments.runner.run_trials`).  Since the batched
    fastpath landed this is the *fallback*, not the default — it is the
    debugger-friendly tier and the cross-check for the batch engines.
``agent``
    The exact agent engine (``run_protocol``), for fidelity spot checks.
    Two batch fields have no agent-engine counterpart and are reported
    as ``-1`` sentinels: ``find_min_rounds`` and
    ``min_commitment_pulls_received``.

``engine="auto"`` picks ``batch``: the statistical engine's working set
is bounded (fixed-size blocks of (block, n) arrays) for every n the
int64 guards allow, so there is no workload where the per-trial
fallbacks win — they exist as explicit opt-ins for verification and
debugging.  See DESIGN.md §3 for the tier fidelity contract.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.core.protocol import ProtocolConfig, run_protocol
from repro.experiments.runner import run_trials
from repro.fastpath.batch import (
    FastBatchResult,
    batch_from_runs,
    simulate_protocol_fast_batch,
)
from repro.fastpath.simulate import FastRunResult, simulate_protocol_fast

__all__ = ["choose_engine", "run_trials_fast"]

_ENGINES = ("auto", "batch", "batch-parity", "process", "agent")


def choose_engine(
    n: int,
    n_trials: int,
    gamma: float = 3.0,
    max_chunk_elements: int | None = None,
) -> str:
    """The ``auto`` routing policy, exposed for tests and callers.

    Currently unconditional: the statistical batch engine dominates the
    per-trial tiers on both wall-clock and peak memory at every
    (n, trials) the guards admit (the process pool would multiply
    per-run draw tensors by the worker count).  Kept as a function so
    future policies (e.g. fidelity-driven routing) have one home.
    """
    return "batch"


def _fast_worker(
    args: tuple[tuple[Hashable, ...], float, frozenset[int], int]
) -> FastRunResult:
    colors, gamma, faulty, seed = args
    return simulate_protocol_fast(colors, gamma=gamma, faulty=faulty,
                                  seed=seed)


def _agent_worker(
    args: tuple[tuple[Hashable, ...], float, frozenset[int], int]
) -> FastRunResult:
    colors, gamma, faulty, seed = args
    res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty, seed=seed,
    ))
    return FastRunResult(
        n=res.n,
        n_active=res.n - len(faulty),
        outcome=res.outcome,
        winner=res.winner,
        rounds=res.rounds,
        min_votes=res.good.min_votes,
        max_votes=res.good.max_votes,
        k_collision=res.good.k_collision,
        find_min_agreement=res.good.find_min_agreement,
        find_min_rounds=-1,                   # not observed by the engine
        min_commitment_pulls_received=-1,     # not observed by the engine
        total_messages=res.metrics.total_messages,
        total_bits=res.metrics.total_bits,
        max_message_bits=res.metrics.max_message_bits,
    )


def run_trials_fast(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    engine: str = "auto",
    parallel: bool = True,
    max_workers: int | None = None,
    max_chunk_elements: int | None = None,
) -> FastBatchResult:
    """Run one honest-run Monte-Carlo workload on the chosen engine.

    ``parallel``/``max_workers`` only affect the per-trial engines
    (``process``/``agent``); the batch engines are single-process by
    design.  Results are deterministic in ``seeds`` on every engine.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {_ENGINES}")
    colors = tuple(colors)
    seeds = [int(s) for s in seeds]
    if engine == "auto":
        engine = choose_engine(
            len(colors), len(seeds), gamma, max_chunk_elements
        )
    if engine in ("batch", "batch-parity"):
        return simulate_protocol_fast_batch(
            colors, seeds, gamma=gamma, faulty=faulty,
            seed_parity=(engine == "batch-parity"),
            max_chunk_elements=max_chunk_elements,
        )

    if faulty is None or isinstance(faulty, (set, frozenset)):
        faulty_list = [frozenset(faulty or ())] * len(seeds)
    else:
        faulty_list = [frozenset(f) for f in faulty]
        if len(faulty_list) != len(seeds):
            raise ValueError(
                f"got {len(faulty_list)} fault sets for {len(seeds)} trials"
            )
    worker = _fast_worker if engine == "process" else _agent_worker
    runs = run_trials(
        worker,
        [(colors, gamma, f, s) for f, s in zip(faulty_list, seeds)],
        parallel=parallel,
        max_workers=max_workers,
    )
    return batch_from_runs(runs, colors)
