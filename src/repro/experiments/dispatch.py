"""Routing Monte-Carlo trial batches to the right simulation tier.

:func:`run_trials_fast` is the front door for every honest-run
experiment: given one color configuration and a list of per-trial seeds
it returns a :class:`repro.fastpath.batch.FastBatchResult` regardless of
which engine did the work.  Engines, from fastest to highest fidelity:

``batch``
    The trial-axis batched fastpath (statistical mode) — the default
    for Monte-Carlo tables.
``batch-parity``
    The batched fastpath in seed-parity mode: per-trial results are
    bit-identical to ``simulate_protocol_fast`` for the same seeds.
``process``
    Per-trial ``simulate_protocol_fast`` fanned out over a process pool
    (:func:`repro.experiments.runner.run_trials`).  Since the batched
    fastpath landed this is the *fallback*, not the default — it is the
    debugger-friendly tier and the cross-check for the batch engines.
``agent``
    The exact agent engine (``run_protocol``), for fidelity spot checks.
    Two batch fields have no agent-engine counterpart and are reported
    as ``-1`` sentinels: ``find_min_rounds`` and
    ``min_commitment_pulls_received``.

``engine="auto"`` picks ``batch``: the statistical engine's working set
is bounded (fixed-size blocks of (block, n) arrays) for every n the
int64 guards allow, so there is no workload where the per-trial
fallbacks win — they exist as explicit opt-ins for verification and
debugging.  See DESIGN.md §3 for the tier fidelity contract.

:func:`run_deviation_trials_fast` is the corresponding front door for
the *deviation* experiments (E7–E9): paired honest/deviant workloads
routed to the vectorised strategy tier (``batch-strategy``, the
default) or to the exact agent engine (``process``/``agent``), always
returning a :class:`repro.fastpath.strategies.StrategyBatchResult`.
See DESIGN.md §5 for the strategy tier's fidelity contract.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.agents.plans import plan as make_plan
from repro.core.defenses import FULL_DEFENSES, Defenses
from repro.core.protocol import ProtocolConfig, run_protocol
from repro.experiments.runner import run_trials
from repro.fastpath.batch import (
    FastBatchResult,
    batch_from_runs,
    simulate_protocol_fast_batch,
)
from repro.fastpath.simulate import FastRunResult, simulate_protocol_fast
from repro.fastpath.strategies import (
    StrategyBatchResult,
    simulate_strategy_fast_batch,
)

__all__ = [
    "choose_engine",
    "run_deviation_trials_fast",
    "run_trials_fast",
]

_ENGINES = ("auto", "batch", "batch-parity", "process", "agent")
_DEVIATION_ENGINES = ("auto", "batch-strategy", "process", "agent")


def choose_engine(
    n: int,
    n_trials: int,
    gamma: float = 3.0,
    max_chunk_elements: int | None = None,
) -> str:
    """The ``auto`` routing policy, exposed for tests and callers.

    Currently unconditional: the statistical batch engine dominates the
    per-trial tiers on both wall-clock and peak memory at every
    (n, trials) the guards admit (the process pool would multiply
    per-run draw tensors by the worker count).  Kept as a function so
    future policies (e.g. fidelity-driven routing) have one home.
    """
    return "batch"


def _fast_worker(
    args: tuple[tuple[Hashable, ...], float, frozenset[int], int]
) -> FastRunResult:
    colors, gamma, faulty, seed = args
    return simulate_protocol_fast(colors, gamma=gamma, faulty=faulty,
                                  seed=seed)


def _agent_worker(
    args: tuple[tuple[Hashable, ...], float, frozenset[int], int]
) -> FastRunResult:
    colors, gamma, faulty, seed = args
    res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty, seed=seed,
    ))
    return FastRunResult(
        n=res.n,
        n_active=res.n - len(faulty),
        outcome=res.outcome,
        winner=res.winner,
        rounds=res.rounds,
        min_votes=res.good.min_votes,
        max_votes=res.good.max_votes,
        k_collision=res.good.k_collision,
        find_min_agreement=res.good.find_min_agreement,
        find_min_rounds=-1,                   # not observed by the engine
        min_commitment_pulls_received=-1,     # not observed by the engine
        total_messages=res.metrics.total_messages,
        total_bits=res.metrics.total_bits,
        max_message_bits=res.metrics.max_message_bits,
    )


def run_trials_fast(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    engine: str = "auto",
    parallel: bool = True,
    max_workers: int | None = None,
    max_chunk_elements: int | None = None,
) -> FastBatchResult:
    """Run one honest-run Monte-Carlo workload on the chosen engine.

    ``parallel``/``max_workers`` only affect the per-trial engines
    (``process``/``agent``); the batch engines are single-process by
    design.  Results are deterministic in ``seeds`` on every engine.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {_ENGINES}")
    colors = tuple(colors)
    seeds = [int(s) for s in seeds]
    if engine == "auto":
        engine = choose_engine(
            len(colors), len(seeds), gamma, max_chunk_elements
        )
    if engine in ("batch", "batch-parity"):
        return simulate_protocol_fast_batch(
            colors, seeds, gamma=gamma, faulty=faulty,
            seed_parity=(engine == "batch-parity"),
            max_chunk_elements=max_chunk_elements,
        )

    if faulty is None or isinstance(faulty, (set, frozenset)):
        faulty_list = [frozenset(faulty or ())] * len(seeds)
    else:
        faulty_list = [frozenset(f) for f in faulty]
        if len(faulty_list) != len(seeds):
            raise ValueError(
                f"got {len(faulty_list)} fault sets for {len(seeds)} trials"
            )
    worker = _fast_worker if engine == "process" else _agent_worker
    runs = run_trials(
        worker,
        [(colors, gamma, f, s) for f, s in zip(faulty_list, seeds)],
        parallel=parallel,
        max_workers=max_workers,
    )
    return batch_from_runs(runs, colors)


# ---------------------------------------------------------------------------
# Deviation (coalition strategy) workloads
# ---------------------------------------------------------------------------

def _run_result_to_fast(
    res, colors: tuple[Hashable, ...], n_faulty: int
) -> FastRunResult:
    """Compact a ``RunResult`` into the batch record shape.

    When the engine reports a winning color without a unique
    certificate owner (same-color certificates from different owners),
    ``winner`` falls back to the smallest owner among the followers'
    final certificates — the same representative the strategy fastpath
    uses.
    """
    winner = res.winner
    if winner is None and res.outcome is not None:
        nodes = res.extras.get("nodes", {})
        owners = [
            nodes[i].min_certificate.owner
            for i in res.decisions
            if i in nodes
            and getattr(nodes[i], "min_certificate", None) is not None
        ]
        winner = min(owners) if owners else next(
            i for i, c in enumerate(colors) if c == res.outcome
        )
    return FastRunResult(
        n=res.n,
        n_active=res.n - n_faulty,
        outcome=res.outcome,
        winner=winner,
        rounds=res.rounds,
        min_votes=res.good.min_votes,
        max_votes=res.good.max_votes,
        k_collision=res.good.k_collision,
        find_min_agreement=res.good.find_min_agreement,
        find_min_rounds=-1,                   # not observed by the engine
        min_commitment_pulls_received=-1,     # not observed by the engine
        total_messages=res.metrics.total_messages,
        total_bits=res.metrics.total_bits,
        max_message_bits=res.metrics.max_message_bits,
    )


def _deviation_worker(
    args: tuple[tuple[Hashable, ...], float, str | None, tuple[int, ...],
                tuple[int, ...], Defenses, int]
) -> tuple[FastRunResult, FastRunResult, bool, bool, bool, int]:
    """One paired (honest, deviant) agent-engine trial."""
    colors, gamma, strategy, members, faulty, defenses, seed = args
    faulty_set = frozenset(faulty)
    honest_res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty_set, seed=seed,
        defenses=defenses,
    ))
    deviation = (
        make_plan(strategy, frozenset(members)) if strategy and members
        else None
    )
    dev_res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty_set, seed=seed,
        deviation=deviation, defenses=defenses,
    ))
    decided = set(dev_res.decisions.values())
    split = (
        dev_res.outcome is None and None not in decided and len(decided) > 1
    )
    detected = bool(dev_res.failed_agents)
    forged = False
    exposed = 0
    for node in dev_res.extras.get("nodes", {}).values():
        shared = getattr(node, "shared", None)
        if shared is not None:
            exposure = getattr(shared, "exposure", None)
            if exposure is not None:
                exposed = sum(1 for pullers in exposure.values() if pullers)
            if getattr(shared, "forged", None) is not None:
                forged = True
        if getattr(node, "forged", None) is not None:
            forged = True
    return (
        _run_result_to_fast(honest_res, colors, len(faulty_set)),
        _run_result_to_fast(dev_res, colors, len(faulty_set)),
        detected, split, forged, exposed,
    )


def run_deviation_trials_fast(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    strategy: str | None,
    members: Iterable[int] = frozenset(),
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] = frozenset(),
    defenses: Defenses = FULL_DEFENSES,
    engine: str = "auto",
    parallel: bool = True,
    max_workers: int | None = None,
) -> StrategyBatchResult:
    """Run one paired honest/deviant Monte-Carlo workload.

    Engines:

    ``batch-strategy``
        The vectorised strategy tier
        (:func:`repro.fastpath.strategies.simulate_strategy_fast_batch`)
        — the default via ``auto``; simulates both runs of every paired
        trial on shared draws.
    ``process`` / ``agent``
        The exact agent engine, two ``run_protocol`` calls per seed
        (paired via the shared seed tree), fanned over the process pool
        or run inline.  The two per-trial fields the engine does not
        observe are ``-1`` sentinels, as in :func:`run_trials_fast`.

    Returns a :class:`~repro.fastpath.strategies.StrategyBatchResult`
    regardless of engine.
    """
    if engine not in _DEVIATION_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {_DEVIATION_ENGINES}"
        )
    colors = tuple(colors)
    seeds = [int(s) for s in seeds]
    members = frozenset(members)
    if engine == "auto":
        engine = "batch-strategy"
    if engine == "batch-strategy":
        return simulate_strategy_fast_batch(
            colors, seeds, strategy, members, gamma=gamma, faulty=faulty,
            defenses=defenses,
        )

    args = [
        (colors, gamma, strategy, tuple(sorted(members)),
         tuple(sorted(faulty)), defenses, s)
        for s in seeds
    ]
    rows = run_trials(
        _deviation_worker, args,
        parallel=(parallel and engine == "process"),
        max_workers=max_workers,
    )
    honest_runs = [r[0] for r in rows]
    dev_runs = [r[1] for r in rows]
    return StrategyBatchResult(
        strategy=strategy or "honest_shadow",
        members=tuple(sorted(members)),
        honest=batch_from_runs(honest_runs, colors),
        deviant=batch_from_runs(dev_runs, colors),
        detected=np.array([r[2] for r in rows], dtype=bool),
        split=np.array([r[3] for r in rows], dtype=bool),
        forged=np.array([r[4] for r in rows], dtype=bool),
        exposed_members=np.array([r[5] for r in rows], dtype=np.int64),
    )
