"""Routing Monte-Carlo trial batches to the right simulation tier.

:func:`run_trials_fast` is the front door for every honest-run
experiment: given one color configuration and a list of per-trial seeds
it returns a :class:`repro.fastpath.batch.FastBatchResult` regardless of
which engine did the work.  Engines, from fastest to highest fidelity:

``batch``
    The trial-axis batched fastpath (statistical mode) — the default
    for Monte-Carlo tables.
``batch-parity``
    The batched fastpath in seed-parity mode: per-trial results are
    bit-identical to ``simulate_protocol_fast`` for the same seeds.
``process``
    Per-trial ``simulate_protocol_fast`` fanned out over a process pool
    (:func:`repro.experiments.runner.run_trials`).  Since the batched
    fastpath landed this is the *fallback*, not the default — it is the
    debugger-friendly tier and the cross-check for the batch engines.
``agent``
    The exact agent engine (``run_protocol``), for fidelity spot checks.
    Two batch fields have no agent-engine counterpart and are reported
    as ``-1`` sentinels: ``find_min_rounds`` and
    ``min_commitment_pulls_received``.

``engine="auto"`` picks ``batch``: the statistical engine's working set
is bounded (fixed-size blocks of (block, n) arrays) for every n the
int64 guards allow, so there is no workload where the per-trial
fallbacks win — they exist as explicit opt-ins for verification and
debugging.  See DESIGN.md §3 for the tier fidelity contract.

:func:`run_deviation_trials_fast` is the corresponding front door for
the *deviation* experiments (E7–E9): paired honest/deviant workloads
routed to the vectorised strategy tier (``batch-strategy``, the
default) or to the exact agent engine (``process``/``agent``), always
returning a :class:`repro.fastpath.strategies.StrategyBatchResult`.
See DESIGN.md §5 for the strategy tier's fidelity contract.

:func:`run_graph_trials_fast` and :func:`run_async_trials_fast` are the
front doors for the open-problem workloads (E10).  Graph-restricted
Protocol P routes to the batched CSR tier
(:mod:`repro.fastpath.graphs`; ``batch`` statistical / ``batch-parity``
bit-exact) or to the per-agent ``run_graph_protocol``
(``process``/``agent``); the sequential GOSSIP model routes to the
lockstep tick simulator (``batch``) or to the scalar reference loop
(``process``/``agent`` — there is no message-level engine for the
sequential model; the scalar tick loop *is* the reference tier).  See
DESIGN.md §8 for both fidelity contracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.agents.plans import plan as make_plan
from repro.core.defenses import FULL_DEFENSES, Defenses
from repro.core.protocol import ProtocolConfig, run_protocol
from repro.experiments.runner import run_trials
from repro.extensions.async_gossip import (
    async_min_ticks,
    async_min_ticks_batch,
    run_async_leader_election,
    run_async_leader_election_batch,
)
from repro.extensions.families import GraphCSR, csr_from_networkx
from repro.fastpath.batch import (
    FastBatchResult,
    batch_from_runs,
    simulate_protocol_fast_batch,
)
from repro.fastpath.graphs import GraphBatchResult, simulate_graph_fast_batch
from repro.fastpath.simulate import FastRunResult, simulate_protocol_fast
from repro.fastpath.strategies import (
    StrategyBatchResult,
    simulate_strategy_fast_batch,
)
from repro.util.faults import normalise_faulty
from repro.util.rng import SeedTree

__all__ = [
    "AsyncBatchResult",
    "choose_engine",
    "run_async_trials_fast",
    "run_deviation_trials_fast",
    "run_graph_trials_fast",
    "run_trials_fast",
]

_ENGINES = ("auto", "batch", "batch-parity", "process", "agent")
_DEVIATION_ENGINES = ("auto", "batch-strategy", "process", "agent")
_GRAPH_ENGINES = ("auto", "batch", "batch-parity", "process", "agent")
_ASYNC_ENGINES = ("auto", "batch", "process", "agent")


def choose_engine(
    n: int,
    n_trials: int,
    gamma: float = 3.0,
    max_chunk_elements: int | None = None,
) -> str:
    """The ``auto`` routing policy, exposed for tests and callers.

    Currently unconditional: the statistical batch engine dominates the
    per-trial tiers on both wall-clock and peak memory at every
    (n, trials) the guards admit (the process pool would multiply
    per-run draw tensors by the worker count).  Kept as a function so
    future policies (e.g. fidelity-driven routing) have one home.
    """
    return "batch"


def _fast_worker(
    args: tuple[tuple[Hashable, ...], float, frozenset[int], int]
) -> FastRunResult:
    colors, gamma, faulty, seed = args
    return simulate_protocol_fast(colors, gamma=gamma, faulty=faulty,
                                  seed=seed)


def _agent_worker(
    args: tuple[tuple[Hashable, ...], float, frozenset[int], int]
) -> FastRunResult:
    colors, gamma, faulty, seed = args
    res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty, seed=seed,
    ))
    return FastRunResult(
        n=res.n,
        n_active=res.n - len(faulty),
        outcome=res.outcome,
        winner=res.winner,
        rounds=res.rounds,
        min_votes=res.good.min_votes,
        max_votes=res.good.max_votes,
        k_collision=res.good.k_collision,
        find_min_agreement=res.good.find_min_agreement,
        find_min_rounds=-1,                   # not observed by the engine
        min_commitment_pulls_received=-1,     # not observed by the engine
        total_messages=res.metrics.total_messages,
        total_bits=res.metrics.total_bits,
        max_message_bits=res.metrics.max_message_bits,
    )


def run_trials_fast(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    engine: str = "auto",
    parallel: bool = True,
    max_workers: int | None = None,
    max_chunk_elements: int | None = None,
) -> FastBatchResult:
    """Run one honest-run Monte-Carlo workload on the chosen engine.

    ``parallel``/``max_workers`` only affect the per-trial engines
    (``process``/``agent``); the batch engines are single-process by
    design.  Results are deterministic in ``seeds`` on every engine.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {_ENGINES}")
    colors = tuple(colors)
    seeds = [int(s) for s in seeds]
    if engine == "auto":
        engine = choose_engine(
            len(colors), len(seeds), gamma, max_chunk_elements
        )
    if engine in ("batch", "batch-parity"):
        return simulate_protocol_fast_batch(
            colors, seeds, gamma=gamma, faulty=faulty,
            seed_parity=(engine == "batch-parity"),
            max_chunk_elements=max_chunk_elements,
        )

    if faulty is None or isinstance(faulty, (set, frozenset)):
        faulty_list = [frozenset(faulty or ())] * len(seeds)
    else:
        faulty_list = [frozenset(f) for f in faulty]
        if len(faulty_list) != len(seeds):
            raise ValueError(
                f"got {len(faulty_list)} fault sets for {len(seeds)} trials"
            )
    worker = _fast_worker if engine == "process" else _agent_worker
    runs = run_trials(
        worker,
        [(colors, gamma, f, s) for f, s in zip(faulty_list, seeds)],
        parallel=parallel,
        max_workers=max_workers,
    )
    return batch_from_runs(runs, colors)


# ---------------------------------------------------------------------------
# Deviation (coalition strategy) workloads
# ---------------------------------------------------------------------------

def _run_result_to_fast(
    res, colors: tuple[Hashable, ...], n_faulty: int
) -> FastRunResult:
    """Compact a ``RunResult`` into the batch record shape.

    When the engine reports a winning color without a unique
    certificate owner (same-color certificates from different owners),
    ``winner`` falls back to the smallest owner among the followers'
    final certificates — the same representative the strategy fastpath
    uses.
    """
    winner = res.winner
    if winner is None and res.outcome is not None:
        nodes = res.extras.get("nodes", {})
        owners = [
            nodes[i].min_certificate.owner
            for i in res.decisions
            if i in nodes
            and getattr(nodes[i], "min_certificate", None) is not None
        ]
        winner = min(owners) if owners else next(
            i for i, c in enumerate(colors) if c == res.outcome
        )
    return FastRunResult(
        n=res.n,
        n_active=res.n - n_faulty,
        outcome=res.outcome,
        winner=winner,
        rounds=res.rounds,
        min_votes=res.good.min_votes,
        max_votes=res.good.max_votes,
        k_collision=res.good.k_collision,
        find_min_agreement=res.good.find_min_agreement,
        find_min_rounds=-1,                   # not observed by the engine
        min_commitment_pulls_received=-1,     # not observed by the engine
        total_messages=res.metrics.total_messages,
        total_bits=res.metrics.total_bits,
        max_message_bits=res.metrics.max_message_bits,
    )


def _deviation_worker(
    args: tuple[tuple[Hashable, ...], float, str | None, tuple[int, ...],
                tuple[int, ...], Defenses, int]
) -> tuple[FastRunResult, FastRunResult, bool, bool, bool, int]:
    """One paired (honest, deviant) agent-engine trial."""
    colors, gamma, strategy, members, faulty, defenses, seed = args
    faulty_set = frozenset(faulty)
    honest_res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty_set, seed=seed,
        defenses=defenses,
    ))
    deviation = (
        make_plan(strategy, frozenset(members)) if strategy and members
        else None
    )
    dev_res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty_set, seed=seed,
        deviation=deviation, defenses=defenses,
    ))
    decided = set(dev_res.decisions.values())
    split = (
        dev_res.outcome is None and None not in decided and len(decided) > 1
    )
    detected = bool(dev_res.failed_agents)
    forged = False
    exposed = 0
    for node in dev_res.extras.get("nodes", {}).values():
        shared = getattr(node, "shared", None)
        if shared is not None:
            exposure = getattr(shared, "exposure", None)
            if exposure is not None:
                exposed = sum(1 for pullers in exposure.values() if pullers)
            if getattr(shared, "forged", None) is not None:
                forged = True
        if getattr(node, "forged", None) is not None:
            forged = True
    return (
        _run_result_to_fast(honest_res, colors, len(faulty_set)),
        _run_result_to_fast(dev_res, colors, len(faulty_set)),
        detected, split, forged, exposed,
    )


def run_deviation_trials_fast(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    strategy: str | None,
    members: Iterable[int] = frozenset(),
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] = frozenset(),
    defenses: Defenses = FULL_DEFENSES,
    engine: str = "auto",
    parallel: bool = True,
    max_workers: int | None = None,
) -> StrategyBatchResult:
    """Run one paired honest/deviant Monte-Carlo workload.

    Engines:

    ``batch-strategy``
        The vectorised strategy tier
        (:func:`repro.fastpath.strategies.simulate_strategy_fast_batch`)
        — the default via ``auto``; simulates both runs of every paired
        trial on shared draws.
    ``process`` / ``agent``
        The exact agent engine, two ``run_protocol`` calls per seed
        (paired via the shared seed tree), fanned over the process pool
        or run inline.  The two per-trial fields the engine does not
        observe are ``-1`` sentinels, as in :func:`run_trials_fast`.

    Returns a :class:`~repro.fastpath.strategies.StrategyBatchResult`
    regardless of engine.
    """
    if engine not in _DEVIATION_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {_DEVIATION_ENGINES}"
        )
    colors = tuple(colors)
    seeds = [int(s) for s in seeds]
    members = frozenset(members)
    if engine == "auto":
        engine = "batch-strategy"
    if engine == "batch-strategy":
        return simulate_strategy_fast_batch(
            colors, seeds, strategy, members, gamma=gamma, faulty=faulty,
            defenses=defenses,
        )

    args = [
        (colors, gamma, strategy, tuple(sorted(members)),
         tuple(sorted(faulty)), defenses, s)
        for s in seeds
    ]
    rows = run_trials(
        _deviation_worker, args,
        parallel=(parallel and engine == "process"),
        max_workers=max_workers,
    )
    honest_runs = [r[0] for r in rows]
    dev_runs = [r[1] for r in rows]
    return StrategyBatchResult(
        strategy=strategy or "honest_shadow",
        members=tuple(sorted(members)),
        honest=batch_from_runs(honest_runs, colors),
        deviant=batch_from_runs(dev_runs, colors),
        detected=np.array([r[2] for r in rows], dtype=bool),
        split=np.array([r[3] for r in rows], dtype=bool),
        forged=np.array([r[4] for r in rows], dtype=bool),
        exposed_members=np.array([r[5] for r in rows], dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# Graph-restricted (E10a) workloads
# ---------------------------------------------------------------------------

def _normalise_graphs(
    graphs, n_trials: int
) -> list[GraphCSR]:
    """One CSR per trial from a single graph / per-trial graphs, in
    either CSR or ``networkx`` form (shared objects stay shared, so the
    batch tier can skip replicating the neighbour arrays)."""
    if isinstance(graphs, GraphCSR) or not isinstance(
        graphs, (list, tuple)
    ):
        one = (graphs if isinstance(graphs, GraphCSR)
               else csr_from_networkx(graphs))
        return [one] * n_trials
    csrs = [
        g if isinstance(g, GraphCSR) else csr_from_networkx(g)
        for g in graphs
    ]
    if len(csrs) == 1:
        csrs = csrs * n_trials
    if len(csrs) != n_trials:
        raise ValueError(f"got {len(csrs)} graphs for {n_trials} trials")
    return csrs


def _graph_agent_worker(
    args: tuple[GraphCSR, tuple[Hashable, ...], float, tuple[int, ...], int]
) -> tuple[int, bool, int, int, int, bool, int]:
    """One per-agent graph trial, packed into the batch record shape."""
    from repro.extensions.topologies import run_graph_protocol

    csr, colors, gamma, faulty, seed = args
    res = run_graph_protocol(
        csr.to_networkx(), colors, gamma=gamma, seed=seed,
        faulty=frozenset(faulty),
    )
    palette = list(dict.fromkeys(colors))
    return (
        csr.n - len(faulty),
        res.outcome is not None,
        res.winner if res.winner is not None else -1,
        palette.index(res.outcome) if res.outcome is not None else -1,
        res.zero_vote_agents,
        res.split,
        res.failed_agents,
    )


def run_graph_trials_fast(
    graphs,
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    engine: str = "auto",
    parallel: bool = True,
    max_workers: int | None = None,
) -> GraphBatchResult:
    """Run one graph-restricted Monte-Carlo workload on the chosen engine.

    ``graphs`` is one graph shared by every trial or one per trial
    (:class:`~repro.extensions.families.GraphCSR` or ``nx.Graph``).
    Engines:

    ``batch`` (the ``auto`` default)
        The batched CSR tier in statistical mode
        (:func:`repro.fastpath.graphs.simulate_graph_fast_batch`).
    ``batch-parity``
        The same tier replaying each agent's named streams — per-trial
        observables bit-identical to ``run_graph_protocol``.
    ``process`` / ``agent``
        The per-agent engine (``run_graph_protocol``) over the process
        pool, or inline.
    """
    if engine not in _GRAPH_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {_GRAPH_ENGINES}"
        )
    colors = tuple(colors)
    seeds = [int(s) for s in seeds]
    csrs = _normalise_graphs(graphs, len(seeds))
    # Validate once so every tier accepts and rejects the same inputs.
    faulty_list = normalise_faulty(faulty, len(seeds), len(colors))
    if engine == "auto":
        engine = "batch"
    if engine in ("batch", "batch-parity"):
        return simulate_graph_fast_batch(
            csrs, colors, seeds, gamma=gamma, faulty=faulty_list,
            seed_parity=(engine == "batch-parity"),
        )

    rows = run_trials(
        _graph_agent_worker,
        [(c, colors, gamma, tuple(sorted(f)), s)
         for c, f, s in zip(csrs, faulty_list, seeds)],
        parallel=(parallel and engine == "process"),
        max_workers=max_workers,
    )
    cols = list(zip(*rows)) if rows else [[]] * 7
    return GraphBatchResult(
        n=len(colors),
        n_trials=len(seeds),
        colors=colors,
        n_active=np.array(cols[0], dtype=np.int64),
        success=np.array(cols[1], dtype=bool),
        winner=np.array(cols[2], dtype=np.int64),
        outcome_idx=np.array(cols[3], dtype=np.int64),
        zero_vote_agents=np.array(cols[4], dtype=np.int64),
        split=np.array(cols[5], dtype=bool),
        failed_agents=np.array(cols[6], dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# Sequential GOSSIP (E10b) workloads
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AsyncBatchResult:
    """Struct-of-arrays result of B sequential-model trials.

    Each trial runs the E10b pair of measurements: min-aggregation over
    a fresh value vector (``child("vals")`` of the trial seed) and the
    fair leader election (:mod:`repro.extensions.async_gossip`)."""

    n: int
    n_trials: int
    minagg_ticks: np.ndarray         # (B,) int64
    election_converged: np.ndarray   # (B,) bool
    election_winner: np.ndarray      # (B,) int64, -1: budget exhausted
    election_ticks: np.ndarray       # (B,) int64

    def __len__(self) -> int:
        return self.n_trials

    def minagg_ratio(self) -> np.ndarray:
        """Ticks normalised by the classic n log2 n sequential bound."""
        return self.minagg_ticks / (self.n * np.log2(self.n))

    def election_converged_rate(self) -> float:
        if self.n_trials == 0:
            raise ValueError("empty batch has no rates")
        return float(np.count_nonzero(self.election_converged)) \
            / self.n_trials


def _async_values(n: int, seed: int) -> np.ndarray:
    """The E10b min-aggregation workload: n u.a.r. values in [n^3]."""
    return SeedTree(seed).child("vals").generator().integers(n ** 3, size=n)


def _async_agent_worker(
    args: tuple[int, tuple[Hashable, ...], float, int]
) -> tuple[int, bool, int, int]:
    n, colors, factor, seed = args
    ticks = int(async_min_ticks(_async_values(n, seed), seed=seed))
    el = run_async_leader_election(
        colors, seed=seed, tick_budget_factor=factor
    )
    return (ticks, el.converged,
            el.winner if el.winner is not None else -1, el.ticks)


def run_async_trials_fast(
    n: int,
    seeds: Sequence[int],
    *,
    colors: Sequence[Hashable] | None = None,
    tick_budget_factor: float = 8.0,
    engine: str = "auto",
    parallel: bool = True,
    max_workers: int | None = None,
) -> AsyncBatchResult:
    """Run one sequential-model Monte-Carlo workload on the chosen engine.

    ``batch`` (the ``auto`` default) is the lockstep tick simulator —
    tick counts identical to the scalar tier seed-for-seed; ``process``
    fans the scalar reference loop over the process pool; ``agent``
    runs it inline (the sequential model has no message-level engine —
    the scalar tick loop *is* the reference).
    """
    if engine not in _ASYNC_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {_ASYNC_ENGINES}"
        )
    if colors is None:
        colors = tuple(f"id{i}" for i in range(n))
    colors = tuple(colors)
    if len(colors) != n:
        raise ValueError(f"{len(colors)} colors for n={n}")
    seeds = [int(s) for s in seeds]
    if engine == "auto":
        engine = "batch"
    if engine == "batch":
        values = np.stack([_async_values(n, s) for s in seeds]) \
            if seeds else np.zeros((0, n), dtype=np.int64)
        minagg = async_min_ticks_batch(values, seeds) if seeds else \
            np.zeros(0, dtype=np.int64)
        if seeds:
            conv, winner, eticks = run_async_leader_election_batch(
                colors, seeds, tick_budget_factor
            )
        else:
            conv = np.zeros(0, dtype=bool)
            winner = np.zeros(0, dtype=np.int64)
            eticks = np.zeros(0, dtype=np.int64)
        return AsyncBatchResult(
            n=n, n_trials=len(seeds), minagg_ticks=minagg,
            election_converged=conv, election_winner=winner,
            election_ticks=eticks,
        )

    rows = run_trials(
        _async_agent_worker,
        [(n, colors, tick_budget_factor, s) for s in seeds],
        parallel=(parallel and engine == "process"),
        max_workers=max_workers,
    )
    cols = list(zip(*rows)) if rows else [[]] * 4
    return AsyncBatchResult(
        n=n,
        n_trials=len(seeds),
        minagg_ticks=np.array(cols[0], dtype=np.int64),
        election_converged=np.array(cols[1], dtype=bool),
        election_winner=np.array(cols[2], dtype=np.int64),
        election_ticks=np.array(cols[3], dtype=np.int64),
    )
