"""Routing Monte-Carlo trial batches to the right simulation tier.

The four front doors here are thin adapters over the unified
execution-plan layer (:mod:`repro.exec`): each one *compiles* its
workload into an :class:`~repro.exec.plan.ExecutionPlan` — one
engine-name table, one ``auto`` routing policy, one chunking/sharding
policy for all of them — and hands the plan to
:func:`~repro.exec.backends.run_plan`.  Engine names are validated
against the single table in :data:`repro.exec.plan.ENGINES`; an unknown
tier raises the same error (listing the valid tiers) from every door.

:func:`run_trials_fast` is the front door for every honest-run
experiment: given one color configuration and a list of per-trial seeds
it returns a :class:`repro.fastpath.batch.FastBatchResult` regardless of
which engine did the work.  Engines, from fastest to highest fidelity:

``batch``
    The trial-axis batched fastpath (statistical mode) — the default
    for Monte-Carlo tables.
``batch-parity``
    The batched fastpath in seed-parity mode: per-trial results are
    bit-identical to ``simulate_protocol_fast`` for the same seeds.
``process``
    Per-trial ``simulate_protocol_fast`` fanned out over a process pool
    (:func:`repro.exec.pool.run_trials`).  Since the batched fastpath
    landed this is the *fallback*, not the default — it is the
    debugger-friendly tier and the cross-check for the batch engines.
``agent``
    The exact agent engine (``run_protocol``), for fidelity spot checks.
    Two batch fields have no agent-engine counterpart and are reported
    as ``-1`` sentinels: ``find_min_rounds`` and
    ``min_commitment_pulls_received``.

``engine="auto"`` picks ``batch``: the statistical engine's working set
is bounded (fixed-size blocks of (block, n) arrays) for every n the
int64 guards allow, so there is no workload where the per-trial
fallbacks win — they exist as explicit opt-ins for verification and
debugging.  See DESIGN.md §3 for the tier fidelity contract.

:func:`run_deviation_trials_fast` is the corresponding front door for
the *deviation* experiments (E7–E9): paired honest/deviant workloads
routed to the vectorised strategy tier (``batch-strategy``, the
default) or to the exact agent engine (``process``/``agent``), always
returning a :class:`repro.fastpath.strategies.StrategyBatchResult`.
See DESIGN.md §5 for the strategy tier's fidelity contract.

:func:`run_graph_trials_fast` and :func:`run_async_trials_fast` are the
front doors for the open-problem workloads (E10).  Graph-restricted
Protocol P routes to the batched CSR tier
(:mod:`repro.fastpath.graphs`; ``batch`` statistical / ``batch-parity``
bit-exact) or to the per-agent ``run_graph_protocol``
(``process``/``agent``); the sequential GOSSIP model routes to the
lockstep tick simulator (``batch``) or to the scalar reference loop
(``process``/``agent`` — there is no message-level engine for the
sequential model; the scalar tick loop *is* the reference tier).  See
DESIGN.md §8 for both fidelity contracts.

Backends and ``jobs``
---------------------
Every front door also takes ``backend`` (``"auto"``/``"serial"``/
``"parallel"``) and ``jobs``: with ``jobs > 1`` the batched tiers shard
their trial blocks across a process pool, byte-identically to the
serial run (DESIGN.md §9).  ``parallel``/``max_workers`` remain the
per-trial tiers' own pool knobs, exactly as before.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.core.defenses import FULL_DEFENSES, Defenses
from repro.exec.backends import run_plan
from repro.exec.plan import (
    compile_async_plan,
    compile_deviation_plan,
    compile_graph_plan,
    compile_honest_plan,
)
from repro.extensions.async_gossip import AsyncBatchResult
from repro.fastpath.batch import FastBatchResult
from repro.fastpath.graphs import GraphBatchResult
from repro.fastpath.strategies import StrategyBatchResult

__all__ = [
    "AsyncBatchResult",
    "choose_engine",
    "run_async_trials_fast",
    "run_deviation_trials_fast",
    "run_graph_trials_fast",
    "run_trials_fast",
]


def choose_engine(
    n: int,
    n_trials: int,
    gamma: float = 3.0,
    max_chunk_elements: int | None = None,
) -> str:
    """The honest-workload ``auto`` routing policy, exposed for tests.

    Currently unconditional: the statistical batch engine dominates the
    per-trial tiers on both wall-clock and peak memory at every
    (n, trials) the guards admit (the process pool would multiply
    per-run draw tensors by the worker count).  The actual table lives
    in :data:`repro.exec.plan.AUTO_ENGINE`; this wrapper survives for
    callers that want the policy without compiling a plan.
    """
    from repro.exec.plan import AUTO_ENGINE

    return AUTO_ENGINE["honest"]


def run_trials_fast(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    engine: str = "auto",
    backend: str = "auto",
    jobs: int | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
    max_chunk_elements: int | None = None,
) -> FastBatchResult:
    """Run one honest-run Monte-Carlo workload on the chosen engine.

    ``jobs``/``backend`` select the plan backend (sharded multi-core
    for the batch engines); ``parallel``/``max_workers`` only affect
    the per-trial engines (``process``/``agent``).  Results are
    deterministic in ``seeds`` on every engine and identical across
    backends and job counts.
    """
    plan = compile_honest_plan(
        colors, seeds, gamma=gamma, faulty=faulty, engine=engine,
        max_chunk_elements=max_chunk_elements,
    )
    return run_plan(plan, backend=backend, jobs=jobs, parallel=parallel,
                    max_workers=max_workers)


def run_deviation_trials_fast(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    strategy: str | None,
    members: Iterable[int] = frozenset(),
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] = frozenset(),
    defenses: Defenses = FULL_DEFENSES,
    engine: str = "auto",
    backend: str = "auto",
    jobs: int | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
) -> StrategyBatchResult:
    """Run one paired honest/deviant Monte-Carlo workload.

    Engines:

    ``batch-strategy``
        The vectorised strategy tier
        (:func:`repro.fastpath.strategies.simulate_strategy_fast_batch`)
        — the default via ``auto``; simulates both runs of every paired
        trial on shared draws.
    ``process`` / ``agent``
        The exact agent engine, two ``run_protocol`` calls per seed
        (paired via the shared seed tree), fanned over the process pool
        or run inline.  The two per-trial fields the engine does not
        observe are ``-1`` sentinels, as in :func:`run_trials_fast`.

    Returns a :class:`~repro.fastpath.strategies.StrategyBatchResult`
    regardless of engine.
    """
    plan = compile_deviation_plan(
        colors, seeds, strategy, members, gamma=gamma, faulty=faulty,
        defenses=defenses, engine=engine,
    )
    return run_plan(plan, backend=backend, jobs=jobs, parallel=parallel,
                    max_workers=max_workers)


def run_graph_trials_fast(
    graphs,
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    engine: str = "auto",
    backend: str = "auto",
    jobs: int | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
) -> GraphBatchResult:
    """Run one graph-restricted Monte-Carlo workload on the chosen engine.

    ``graphs`` is one graph shared by every trial, one per trial
    (:class:`~repro.extensions.families.GraphCSR` or ``nx.Graph``), or a
    full :class:`~repro.extensions.families.ScenarioWorkload` — an
    artifact-backed workload threads its cache ref into the plan so
    shard workers memory-map the artifact instead of unpickling CSR
    bytes.  Engines:

    ``batch`` (the ``auto`` default)
        The batched CSR tier in statistical mode
        (:func:`repro.fastpath.graphs.simulate_graph_fast_batch`).
    ``batch-parity``
        The same tier replaying each agent's named streams — per-trial
        observables bit-identical to ``run_graph_protocol``.
    ``process`` / ``agent``
        The per-agent engine (``run_graph_protocol``) over the process
        pool, or inline.
    """
    plan = compile_graph_plan(
        graphs, colors, seeds, gamma=gamma, faulty=faulty, engine=engine,
    )
    return run_plan(plan, backend=backend, jobs=jobs, parallel=parallel,
                    max_workers=max_workers)


def run_async_trials_fast(
    n: int,
    seeds: Sequence[int],
    *,
    colors: Sequence[Hashable] | None = None,
    tick_budget_factor: float = 8.0,
    engine: str = "auto",
    backend: str = "auto",
    jobs: int | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
) -> AsyncBatchResult:
    """Run one sequential-model Monte-Carlo workload on the chosen engine.

    ``batch`` (the ``auto`` default) is the lockstep tick simulator —
    tick counts identical to the scalar tier seed-for-seed; ``process``
    fans the scalar reference loop over the process pool; ``agent``
    runs it inline (the sequential model has no message-level engine —
    the scalar tick loop *is* the reference).
    """
    plan = compile_async_plan(
        n, seeds, colors=colors, tick_budget_factor=tick_budget_factor,
        engine=engine,
    )
    return run_plan(plan, backend=backend, jobs=jobs, parallel=parallel,
                    max_workers=max_workers)
