"""Parallel trial execution (compatibility shim).

The implementation moved to :mod:`repro.exec.pool` when the unified
execution-plan layer landed — the pool primitive is shared by the
``process`` engine tier and the parallel plan backend, and the
:mod:`repro.exec` package must not import back into
:mod:`repro.experiments`.  This module keeps the historical import
path alive.
"""

from __future__ import annotations

from repro.exec.pool import default_workers, run_trials

__all__ = ["run_trials", "default_workers"]
