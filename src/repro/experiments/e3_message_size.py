"""E3 — Theorem 4 (message size): the largest message is O(log^2 n) bits.

The largest message of a run is the biggest certificate transmitted: the
most-voted agent's certificate carries Theta(log n) votes of Theta(log n)
bits each.  We measure the per-run maximum message size across n (on the
batched fastpath) and fit it against log^2 n (expected winner) with
log n and n as controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.scaling import fit_against
from repro.analysis.stats import mean_ci
from repro.experiments.dispatch import run_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.workloads import balanced
from repro.util.tables import Table

__all__ = ["E3Options", "run"]


@dataclass(frozen=True)
class E3Options:
    sizes: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096)
    trials: int = 60
    gamma: float = 3.0
    seed: int = 3303
    engine: str = "auto"
    parallel: bool = True
    jobs: int | None = None


@experiment("e3", options=E3Options,
            title="Message size",
            claim="Theorem 4 — the largest message is O(log^2 n) bits",
            kind="honest", seed_strides=(11,))
def run(opts: E3Options = E3Options()) -> tuple[Table, Table]:
    main = Table(
        headers=["n", "max message bits (mean)", "max message bits (max)",
                 "max votes/agent (mean)"],
        title="E3  Message size (Theorem 4: O(log^2 n) bits)",
    )
    means = []
    for n in opts.sizes:
        seeds = [opts.seed + 11 * i for i in range(opts.trials)]
        batch = run_trials_fast(
            balanced(n), seeds, gamma=opts.gamma,
            engine=opts.engine, jobs=opts.jobs, parallel=opts.parallel,
        )
        mean_bits, _ = mean_ci(batch.max_message_bits)
        mean_votes, _ = mean_ci(batch.max_votes)
        main.add_row(
            n, mean_bits, int(batch.max_message_bits.max()), mean_votes
        )
        means.append(mean_bits)

    fits = Table(
        headers=["fitted shape", "slope", "intercept", "R^2"],
        title="E3  Shape fits (log^2 n should win)",
    )
    for shape in ("log^2 n", "log n", "n"):
        a, b, r2 = fit_against(list(opts.sizes), means, shape)
        fits.add_row(shape, a, b, r2)
    return main, fits
