"""E1 — Theorem 4 (fairness): the winning distribution tracks support.

For each workload and network size, run many honest executions and
compare the empirical winning distribution to the initial support
fractions:

* **total-variation distance**, reported next to its *noise floor* — the
  expected TV of a perfectly fair multinomial sample of the same size
  (many-category workloads such as leader election have a large floor;
  fairness is evidenced by the measured TV sitting at the floor, not at
  zero);
* a **chi-square goodness-of-fit p-value**.  For leader election (n
  categories, expected counts below the chi-square validity threshold)
  winners are binned into 8 label groups of equal expected mass first.

Trials run on the batched fastpath (``run_trials_fast``): one array pass
per table cell, win tallies via a single bincount — no per-trial Python
objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np
from scipy import stats as _scipy_stats

from repro.analysis.fairness import (
    chi_square_from_counts,
    empirical_distribution_from_counts,
    expected_distribution,
    total_variation,
)
from repro.experiments.dispatch import run_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.workloads import WORKLOADS
from repro.util.tables import Table

__all__ = ["E1Options", "run", "tv_noise_floor"]


@dataclass(frozen=True)
class E1Options:
    sizes: Sequence[int] = (64, 128, 256)
    workloads: Sequence[str] = ("balanced", "skewed", "multiway", "leader_election")
    trials: int = 400
    gamma: float = 3.0
    seed: int = 2017
    engine: str = "auto"
    parallel: bool = True
    jobs: int | None = None


def tv_noise_floor(expected: dict[Hashable, float], trials: int) -> float:
    """Expected TV of a fair multinomial sample vs its own distribution.

    For each category, ``E|p_hat - p| ~ sqrt(2 p (1-p) / (pi N))`` (normal
    approximation); TV is half the sum.  This is the distance a *perfectly
    fair* protocol would be expected to show — the reproduction criterion
    is "measured TV comparable to the floor", not "TV == 0".
    """
    return 0.5 * sum(
        math.sqrt(2.0 * p * (1.0 - p) / (math.pi * trials))
        for p in expected.values()
    )


def _binned_uniform_pvalue(winners: np.ndarray, n: int, bins: int = 8) -> float:
    """Chi-square for leader election: bin the n winner labels.

    ``winners`` are the winning agent labels of the successful trials —
    for the leader-election workload the label *is* the color.
    """
    if winners.size == 0:
        raise ValueError("no successful runs")
    binned = np.minimum(bins - 1, winners * bins // n)
    observed = np.bincount(binned, minlength=bins)
    expected = [winners.size / bins] * bins
    _stat, pvalue = _scipy_stats.chisquare(observed, expected)
    return float(pvalue)


@experiment("e1", options=E1Options,
            title="Fairness of the winning distribution",
            claim="Theorem 4 — Pr[color c wins] tracks initial support",
            kind="honest", seed_strides=(1000,))
def run(opts: E1Options = E1Options()) -> Table:
    table = Table(
        headers=["workload", "n", "trials", "fail_rate", "TV distance",
                 "TV noise floor", "chi2 p-value", "fair at 5%?"],
        title="E1  Fairness of the winning distribution (Theorem 4)",
    )
    for workload in opts.workloads:
        for n in opts.sizes:
            colors = WORKLOADS[workload](n)
            seeds = [opts.seed + 1000 * i for i in range(opts.trials)]
            batch = run_trials_fast(
                colors, seeds, gamma=opts.gamma,
                engine=opts.engine, jobs=opts.jobs, parallel=opts.parallel,
            )
            counts = batch.winning_counts()
            expected = expected_distribution(colors)
            tv = total_variation(
                empirical_distribution_from_counts(counts), expected
            )
            floor = tv_noise_floor(expected, opts.trials)
            if workload == "leader_election":
                pvalue = _binned_uniform_pvalue(
                    batch.winner[batch.winner >= 0], n
                )
            else:
                pvalue = chi_square_from_counts(counts, expected)[1]
            table.add_row(
                workload, n, opts.trials, batch.fail_rate(), tv, floor,
                pvalue, pvalue > 0.05,
            )
    return table
