"""E8 — positive control: the same attacks demolish undefended baselines.

The equilibrium result is only meaningful if the attacks we test are
genuinely dangerous.  This experiment runs them against protocols without
P's machinery:

* **naive min-gossip** (P without commitment/verification): a single
  ``k = 0`` cheater wins ~always;
* **Hassin–Peleg polling**: a single stubborn agent's color wins ~always
  (and honest convergence needs Theta(n) rounds, vs O(log n) for P);
* **Protocol P** under its strongest lying attack: the attacker never
  wins — the protocol fails instead (the -chi outcome).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean_ci, wilson_interval
from repro.baselines.naive_gossip import run_naive_gossip
from repro.baselines.polling import run_polling
from repro.core.params import ProtocolParams
from repro.experiments.dispatch import run_deviation_trials_fast
from repro.experiments.registry import experiment
from repro.experiments.runner import run_trials
from repro.experiments.workloads import skewed
from repro.util.tables import Table

__all__ = ["E8Options", "run"]


@dataclass(frozen=True)
class E8Options:
    n: int = 64
    minority: float = 0.1   # the attacker supports the 10% color
    trials: int = 100
    gamma: float = 3.0
    seed: int = 8808
    engine: str = "auto"    # Protocol-P rows: auto -> batch-strategy
    parallel: bool = True
    jobs: int | None = None
    # Second size for the round-scaling comparison: polling's Theta(n)
    # absorption versus P's O(log n) schedule only separates at scale.
    scaling_n: int = 512


def _naive_trial(args: tuple[int, float, float, int, bool]) -> tuple[bool, bool]:
    n, minority, gamma, seed, cheat = args
    colors = skewed(n, minority=minority)
    blue0 = colors.index("blue")
    cheaters = frozenset({blue0}) if cheat else frozenset()
    res = run_naive_gossip(colors, seed=seed, gamma=gamma, cheaters=cheaters)
    return res.outcome == "blue", res.outcome is None


def _polling_trial(args: tuple[int, float, int, bool]) -> tuple[bool, bool, int]:
    n, minority, seed, stubborn = args
    colors = skewed(n, minority=minority)
    blue0 = colors.index("blue")
    stub = frozenset({blue0}) if stubborn else frozenset()
    res = run_polling(colors, seed=seed, stubborn=stub)
    return res.outcome == "blue", not res.converged, res.rounds


@experiment("e8", options=E8Options,
            title="Attacks on undefended baselines",
            claim="motivation — the same attacks demolish prior protocols",
            kind="mixed", seed_strides=(31, 53))
def run(opts: E8Options = E8Options()) -> Table:
    table = Table(
        headers=["protocol", "attack", "attacker-color win rate",
                 "win 95% CI", "fail rate", "mean rounds"],
        title=(
            f"E8  Attacks on undefended baselines vs Protocol P "
            f"(n = {opts.n}, attacker supports the {opts.minority:.0%} color)"
        ),
    )
    seeds = [opts.seed + 31 * i for i in range(opts.trials)]

    def ci(wins: int) -> str:
        lo, hi = wilson_interval(wins, opts.trials)
        return f"[{lo:.2f},{hi:.2f}]"

    # Naive gossip: honest, then with one cheater.
    for cheat, label in ((False, "none (honest)"), (True, "k=0 cheater")):
        rows = run_trials(
            _naive_trial,
            [(opts.n, opts.minority, opts.gamma, s, cheat) for s in seeds],
            parallel=opts.parallel, max_workers=opts.jobs,
        )
        wins = sum(1 for w, _ in rows if w)
        fails = sum(1 for _, f in rows if f)
        table.add_row("naive min-gossip", label, wins / opts.trials,
                      ci(wins), fails / opts.trials, None)

    # Polling: honest, then with one stubborn agent.
    for stubborn, label in ((False, "none (honest)"), (True, "stubborn agent")):
        rows = run_trials(
            _polling_trial,
            [(opts.n, opts.minority, s, stubborn) for s in seeds],
            parallel=opts.parallel, max_workers=opts.jobs,
        )
        wins = sum(1 for w, _, _ in rows if w)
        fails = sum(1 for _, f, _ in rows if f)
        rounds, _ = mean_ci([r for _, _, r in rows])
        table.add_row("HP polling", label, wins / opts.trials,
                      ci(wins), fails / opts.trials, rounds)

    # Protocol P: honest, then its strongest single lying attack — one
    # paired workload on the strategy tier (or the agent engine).
    colors = skewed(opts.n, minority=opts.minority)
    blue0 = colors.index("blue")
    res = run_deviation_trials_fast(
        colors, seeds, "underbid_alter", {blue0}, gamma=opts.gamma,
        engine=opts.engine, jobs=opts.jobs, parallel=opts.parallel,
    )
    params_rounds = ProtocolParams(
        n=opts.n, gamma=opts.gamma, num_colors=len(set(colors))
    ).total_rounds
    for batch, label in ((res.honest, "none (honest)"),
                         (res.deviant, "forged-certificate")):
        outcomes = batch.outcomes()
        wins = sum(1 for o in outcomes if o == "blue")
        fails = sum(1 for o in outcomes if o is None)
        table.add_row("Protocol P", label, wins / opts.trials,
                      ci(wins), fails / opts.trials, float(params_rounds))

    # Round scaling: Theta(n) polling vs O(log n) Protocol P at scaling_n.
    big = opts.scaling_n
    poll_rows = run_trials(
        _polling_trial,
        [(big, opts.minority, opts.seed + 53 * i, False)
         for i in range(max(10, opts.trials // 4))],
        parallel=opts.parallel, max_workers=opts.jobs,
    )
    poll_rounds, _ = mean_ci([r for _, _, r in poll_rows])
    p_rounds = ProtocolParams(n=big, gamma=opts.gamma).total_rounds
    table.add_row(f"HP polling @ n={big}", "none (honest)", None, None,
                  None, poll_rounds)
    table.add_row(f"Protocol P @ n={big}", "none (honest)", None, None,
                  None, float(p_rounds))
    return table
