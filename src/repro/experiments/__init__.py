"""The experiment harness: one module per claim of the paper.

Every experiment exposes a ``run(options) -> Table`` (some return several
tables) and is wired to a benchmark in ``benchmarks/``; EXPERIMENTS.md
records the measured tables next to the paper's claims.

===========  ==============================================================
Experiment   Claim
===========  ==============================================================
E1           Theorem 4 — fairness of the winning distribution
E2           Theorem 4 — O(log n) rounds
E3           Theorem 4 — O(log^2 n) message size
E4           headline — o(n^2) messages vs LOCAL baselines
E5           Lemma 3 — good executions happen w.h.p.
E6           Theorem 4 — tolerance of alpha*n worst-case permanent faults
E7           Theorem 7 — whp t-strong equilibrium (deviation gains <= 0)
E8           motivation — undefended baselines are exploitable
E9           ablations — each defence layer is necessary
E10          conclusions — other graphs; sequential GOSSIP
===========  ==============================================================
"""

from repro.experiments import workloads
from repro.experiments.dispatch import (
    choose_engine,
    run_deviation_trials_fast,
    run_trials_fast,
)
from repro.experiments.runner import run_trials

__all__ = [
    "choose_engine",
    "run_deviation_trials_fast",
    "run_trials",
    "run_trials_fast",
    "workloads",
]
