"""The experiment harness: one module per claim of the paper.

Every experiment registers itself via the :func:`experiment` decorator
(binding its options dataclass to its runner) and exposes a
``run(options) -> ExperimentResult``: typed row sections plus run
metadata, whose ``.tables()`` render matches the classic text report
byte-for-byte.  Each experiment is wired to a benchmark in
``benchmarks/``; EXPERIMENTS.md records the measured tables next to the
paper's claims.  Discover experiments through
:func:`get_experiment`/:func:`iter_experiments`.

===========  ==============================================================
Experiment   Claim
===========  ==============================================================
E1           Theorem 4 — fairness of the winning distribution
E2           Theorem 4 — O(log n) rounds
E3           Theorem 4 — O(log^2 n) message size
E4           headline — o(n^2) messages vs LOCAL baselines
E5           Lemma 3 — good executions happen w.h.p.
E6           Theorem 4 — tolerance of alpha*n worst-case permanent faults
E7           Theorem 7 — whp t-strong equilibrium (deviation gains <= 0)
E8           motivation — undefended baselines are exploitable
E9           ablations — each defence layer is necessary
E10          conclusions — other graphs; sequential GOSSIP
===========  ==============================================================
"""

from repro.experiments import workloads
from repro.experiments.dispatch import (
    AsyncBatchResult,
    choose_engine,
    run_async_trials_fast,
    run_deviation_trials_fast,
    run_graph_trials_fast,
    run_trials_fast,
)
from repro.experiments.registry import (
    ExperimentSpec,
    experiment,
    experiment_names,
    get_experiment,
    iter_experiments,
    run_experiment,
)
from repro.experiments.runner import run_trials

__all__ = [
    "AsyncBatchResult",
    "ExperimentSpec",
    "choose_engine",
    "experiment",
    "experiment_names",
    "get_experiment",
    "iter_experiments",
    "run_async_trials_fast",
    "run_deviation_trials_fast",
    "run_experiment",
    "run_graph_trials_fast",
    "run_trials",
    "run_trials_fast",
    "workloads",
]
