"""Command-line interface.

Three subcommands::

    python -m repro run         # one protocol execution, human-readable
    python -m repro experiment  # regenerate an experiment table (E1-E10)
    python -m repro list        # available strategies / workloads / experiments

Examples::

    python -m repro run --n 100 --split 60 --seed 7
    python -m repro run --n 64 --split 90 --strategy underbid_alter --coalition 1
    python -m repro experiment e1 --trials 200
    python -m repro experiment e4
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.agents.plans import STRATEGY_NAMES, plan
from repro.core.protocol import ProtocolConfig, run_protocol
from repro.experiments import workloads
from repro.util.tables import Table

__all__ = ["main", "build_parser"]


def _experiment_registry() -> dict[str, tuple[Callable, Callable]]:
    """name -> (options-class, run-function); imported lazily."""
    from repro.experiments import (
        e1_fairness, e2_rounds, e3_message_size, e4_communication,
        e5_good_executions, e6_faults, e7_equilibrium,
        e8_baseline_attacks, e9_ablations, e10_extensions,
    )
    return {
        "e1": (e1_fairness.E1Options, e1_fairness.run),
        "e2": (e2_rounds.E2Options, e2_rounds.run),
        "e3": (e3_message_size.E3Options, e3_message_size.run),
        "e4": (e4_communication.E4Options, e4_communication.run),
        "e5": (e5_good_executions.E5Options, e5_good_executions.run),
        "e6": (e6_faults.E6Options, e6_faults.run),
        "e7": (e7_equilibrium.E7Options, e7_equilibrium.run),
        "e8": (e8_baseline_attacks.E8Options, e8_baseline_attacks.run),
        "e9": (e9_ablations.E9Options, e9_ablations.run),
        "e10": (e10_extensions.E10Options, e10_extensions.run),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rational fair consensus in the GOSSIP model "
                    "(reproduction of Clementi et al., IPDPS 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute Protocol P once")
    run_p.add_argument("--n", type=int, default=100, help="network size")
    run_p.add_argument("--split", type=float, default=60,
                       help="percentage of agents supporting 'red' "
                            "(the rest support 'blue')")
    run_p.add_argument("--gamma", type=float, default=3.0,
                       help="phase-length constant")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--faults", type=int, default=0,
                       help="number of (prefix) permanent crashes")
    run_p.add_argument("--strategy", choices=STRATEGY_NAMES, default=None,
                       help="coalition strategy (see 'repro list')")
    run_p.add_argument("--coalition", type=int, default=1,
                       help="coalition size (blue supporters deviate)")

    exp_p = sub.add_parser("experiment", help="regenerate an experiment table")
    exp_p.add_argument("name", choices=sorted(_experiment_registry()),
                       help="experiment id (e1..e10)")
    exp_p.add_argument("--trials", type=int, default=None,
                       help="override the default trial count")
    exp_p.add_argument("--serial", action="store_true",
                       help="disable process parallelism")

    sub.add_parser("list", help="show strategies, workloads, experiments")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    reds = round(args.n * args.split / 100)
    colors = ["red"] * reds + ["blue"] * (args.n - reds)
    deviation = None
    if args.strategy:
        blues = [i for i, c in enumerate(colors) if c == "blue"]
        if len(blues) < args.coalition:
            print(f"error: only {len(blues)} blue supporters for a "
                  f"coalition of {args.coalition}", file=sys.stderr)
            return 2
        deviation = plan(args.strategy, frozenset(blues[:args.coalition]))
    faulty = frozenset(range(args.faults))
    result = run_protocol(ProtocolConfig(
        colors=colors, gamma=args.gamma, seed=args.seed,
        faulty=faulty, deviation=deviation,
    ))
    table = Table(headers=["quantity", "value"],
                  title=f"Protocol P on n={args.n} "
                        f"({reds} red / {args.n - reds} blue)")
    table.add_row("outcome", repr(result.outcome))
    table.add_row("winner", result.winner)
    table.add_row("rounds", result.rounds)
    table.add_row("total messages", result.metrics.total_messages)
    table.add_row("total KiB", result.metrics.total_bits / 8192)
    table.add_row("largest message (bits)", result.metrics.max_message_bits)
    table.add_row("good execution", result.good.is_good)
    table.add_row("failed agents", len(result.failed_agents))
    print(table.render())
    return 0 if result.succeeded or deviation else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    opts_cls, run_fn = _experiment_registry()[args.name]
    overrides = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.serial:
        overrides["parallel"] = False
    result = run_fn(opts_cls(**overrides))
    tables = result if isinstance(result, tuple) else (result,)
    for t in tables:
        print(t.render())
        print()
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("strategies:")
    for name in STRATEGY_NAMES:
        print(f"  {name}")
    print("\nworkloads:")
    for name in workloads.WORKLOADS:
        print(f"  {name}")
    print("\nexperiments:")
    for name in sorted(_experiment_registry()):
        print(f"  {name}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    return _cmd_list(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
