"""Command-line interface.

Local subcommands::

    python -m repro run         # one protocol execution, human-readable
    python -m repro experiment  # regenerate an experiment (E1-E10, or all)
    python -m repro list        # available strategies / workloads / experiments
    python -m repro workloads   # inspect / gc the workload-artifact cache

Service subcommands (:mod:`repro.service`; DESIGN.md §11)::

    python -m repro serve            # the job-queue daemon + HTTP JSON API
    python -m repro submit           # submit an experiment to a daemon
    python -m repro jobs             # a daemon's job table
    python -m repro migrate-archive  # import a loose results/ tree into a store

The ``experiment`` subcommand is registry-driven
(:mod:`repro.experiments.registry`): any field of an experiment's
options dataclass can be overridden with ``--set field=value`` (values
are coerced to the field's declared type; comma-separate sequence
elements), results render as text tables or serialise as JSON/CSV, and
``--out DIR`` archives the structured result under its content-hash
resume key (see :mod:`repro.results`).  ``submit`` shares the ``--set``
machinery: the same overrides, coerced the same way, produce the same
content-hash key — so a cell computed by the daemon and one computed
locally dedup against each other.

Examples::

    python -m repro run --n 100 --split 60 --seed 7
    python -m repro run --n 64 --split 90 --strategy underbid_alter --coalition 1
    python -m repro experiment e1 --trials 200
    python -m repro experiment e5 --set sizes=64,256 --set gammas=1.0,3.0
    python -m repro experiment e1 --trials 8 --format json --out results/ci
    python -m repro experiment e10 --jobs 4
    python -m repro experiment e10 --jobs 4 --shard-timeout 60 --max-retries 3
    python -m repro experiment all --trials 20 --serial
    python -m repro experiment all --jobs 4
    python -m repro list --json
    python -m repro serve --store results/repro-store.sqlite3 --port 8765
    python -m repro submit e1 --trials 200 --url http://127.0.0.1:8765
    python -m repro jobs --url http://127.0.0.1:8765
    python -m repro migrate-archive results/sweep
    python -m repro list --json --store results/repro-store.sqlite3
    REPRO_WORKLOAD_CACHE=results/wl python -m repro experiment e10
    python -m repro workloads list --cache results/wl
    python -m repro workloads gc --cache results/wl --dry-run
"""

from __future__ import annotations

import argparse
import ast
import collections.abc
import dataclasses
import json
import os
import sys
import types
import typing
from pathlib import Path
from typing import Any, Sequence

from repro.agents.plans import STRATEGY_NAMES, plan
from repro.core.protocol import ProtocolConfig, run_protocol
from repro.exec.backends import (
    get_fault_policy,
    parse_max_retries,
    parse_shard_timeout,
    set_fault_policy,
)
from repro.experiments import workloads
from repro.experiments.registry import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    iter_experiments,
)
from repro.results import ExperimentResult, csv_sections, save_result
from repro.util.tables import Table

__all__ = ["main", "build_parser"]

_FORMATS = ("table", "json", "csv")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rational fair consensus in the GOSSIP model "
                    "(reproduction of Clementi et al., IPDPS 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute Protocol P once")
    run_p.add_argument("--n", type=int, default=100, help="network size")
    run_p.add_argument("--split", type=float, default=60,
                       help="percentage of agents supporting 'red' "
                            "(the rest support 'blue')")
    run_p.add_argument("--gamma", type=float, default=3.0,
                       help="phase-length constant")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--faults", type=int, default=0,
                       help="number of (prefix) permanent crashes")
    run_p.add_argument("--strategy", choices=STRATEGY_NAMES, default=None,
                       help="coalition strategy (see 'repro list')")
    run_p.add_argument("--coalition", type=int, default=1,
                       help="coalition size (blue supporters deviate)")

    exp_p = sub.add_parser(
        "experiment",
        help="regenerate an experiment (structured results)",
    )
    exp_p.add_argument("name", choices=[*experiment_names(), "all"],
                       help="experiment id (e1..e10), or 'all'")
    exp_p.add_argument("--trials", type=int, default=None,
                       help="override the default trial count "
                            "(same as --set trials=N)")
    exp_p.add_argument("--serial", action="store_true",
                       help="disable process parallelism "
                            "(same as --set parallel=false)")
    exp_p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the parallel plan "
                            "backend (same as --set jobs=N); the batched "
                            "tiers shard trial blocks across N workers, "
                            "byte-identically to a serial run")
    exp_p.add_argument("--shard-timeout", default=None,
                       metavar="SECONDS",
                       help="wall-time budget per trial shard on the "
                            "parallel backend; a shard past it is "
                            "retried on a respawned pool (default: "
                            "no timeout)")
    exp_p.add_argument("--max-retries", default=None, metavar="N",
                       help="failed-shard retries before the shard "
                            "degrades to a serial in-process re-run "
                            "(byte-identical, default: 2)")
    exp_p.add_argument("--set", dest="overrides", action="append",
                       default=[], metavar="FIELD=VALUE",
                       help="override any option field of the experiment; "
                            "repeatable; comma-separate sequence values "
                            "(e.g. --set sizes=64,128)")
    exp_p.add_argument("--format", dest="fmt", choices=_FORMATS,
                       default="table",
                       help="output format on stdout (default: table)")
    exp_p.add_argument("--out", type=Path, default=None, metavar="DIR",
                       help="also archive the structured result (JSON, "
                            "plus CSV with --format csv) under DIR, "
                            "keyed by content hash")

    list_p = sub.add_parser(
        "list", help="show strategies, workloads, experiments")
    list_p.add_argument("--json", dest="as_json", action="store_true",
                        help="machine-readable listing")
    list_p.add_argument("--store", type=Path, default=None, metavar="PATH",
                        help="a result-store database (or a directory "
                             "holding one): the listing then includes "
                             "cached-result counts per experiment "
                             "(default: $REPRO_STORE)")

    serve_p = sub.add_parser(
        "serve",
        help="run the experiment service (job queue + HTTP JSON API)",
    )
    serve_p.add_argument("--store", type=Path,
                         default=Path("results/repro-store.sqlite3"),
                         metavar="PATH",
                         help="sqlite result store backing the service "
                              "(created if missing; default: "
                              "results/repro-store.sqlite3)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8765)
    serve_p.add_argument("--queue-size", type=int, default=256, metavar="N",
                         help="pending-job bound; submissions past it "
                              "get HTTP 429 (default: 256)")
    serve_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="plan-backend workers per executed job "
                              "(prewarms the process pool at start-up)")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")

    submit_p = sub.add_parser(
        "submit",
        help="submit an experiment to a running service",
    )
    submit_p.add_argument("name", choices=experiment_names(),
                          help="experiment id (e1..e10)")
    submit_p.add_argument("--url", default="http://127.0.0.1:8765",
                          help="service endpoint "
                               "(default: http://127.0.0.1:8765)")
    submit_p.add_argument("--trials", type=int, default=None,
                          help="override the default trial count")
    submit_p.add_argument("--set", dest="overrides", action="append",
                          default=[], metavar="FIELD=VALUE",
                          help="override any option field (same coercion "
                               "as 'experiment'; same content-hash key)")
    submit_p.add_argument("--no-wait", action="store_true",
                          help="print the job record and return instead "
                               "of polling to completion")
    submit_p.add_argument("--timeout", type=float, default=600.0,
                          metavar="SECONDS",
                          help="polling deadline with --wait "
                               "(default: 600)")
    submit_p.add_argument("--format", dest="fmt", choices=("table", "json"),
                          default="table",
                          help="how to print the fetched result "
                               "(default: table)")

    jobs_p = sub.add_parser(
        "jobs", help="list a running service's jobs")
    jobs_p.add_argument("--url", default="http://127.0.0.1:8765")
    jobs_p.add_argument("--json", dest="as_json", action="store_true")

    mig_p = sub.add_parser(
        "migrate-archive",
        help="import a loose results/ tree into a sqlite result store",
    )
    mig_p.add_argument("tree", type=Path, metavar="DIR",
                       help="archive directory of <experiment>-<key>.json "
                            "files (walked recursively)")
    mig_p.add_argument("--store", type=Path, default=None, metavar="PATH",
                       help="target store database (default: "
                            "DIR/repro-store.sqlite3)")

    wl_p = sub.add_parser(
        "workloads",
        help="inspect / sweep the workload-artifact cache",
    )
    wl_sub = wl_p.add_subparsers(dest="workloads_command", required=True)
    wl_list = wl_sub.add_parser(
        "list", help="published workload artifacts under the cache root")
    wl_list.add_argument("--cache", type=Path, default=None, metavar="DIR",
                         help="cache root (default: $REPRO_WORKLOAD_CACHE)")
    wl_list.add_argument("--json", dest="as_json", action="store_true",
                         help="machine-readable listing")
    wl_gc = wl_sub.add_parser(
        "gc", help="sweep orphaned temp dirs and quarantined artifacts")
    wl_gc.add_argument("--cache", type=Path, default=None, metavar="DIR",
                       help="cache root (default: $REPRO_WORKLOAD_CACHE)")
    wl_gc.add_argument("--dry-run", action="store_true",
                       help="report gc targets without removing anything")
    wl_gc.add_argument("--all", dest="all_artifacts", action="store_true",
                       help="also remove every published artifact "
                            "(full cache wipe)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    reds = round(args.n * args.split / 100)
    colors = ["red"] * reds + ["blue"] * (args.n - reds)
    deviation = None
    if args.strategy:
        blues = [i for i, c in enumerate(colors) if c == "blue"]
        if len(blues) < args.coalition:
            print(f"error: only {len(blues)} blue supporters for a "
                  f"coalition of {args.coalition}", file=sys.stderr)
            return 2
        deviation = plan(args.strategy, frozenset(blues[:args.coalition]))
    faulty = frozenset(range(args.faults))
    result = run_protocol(ProtocolConfig(
        colors=colors, gamma=args.gamma, seed=args.seed,
        faulty=faulty, deviation=deviation,
    ))
    table = Table(headers=["quantity", "value"],
                  title=f"Protocol P on n={args.n} "
                        f"({reds} red / {args.n - reds} blue)")
    table.add_row("outcome", repr(result.outcome))
    table.add_row("winner", result.winner)
    table.add_row("rounds", result.rounds)
    table.add_row("total messages", result.metrics.total_messages)
    table.add_row("total KiB", result.metrics.total_bits / 8192)
    table.add_row("largest message (bits)", result.metrics.max_message_bits)
    table.add_row("good execution", result.good.is_good)
    table.add_row("failed agents", len(result.failed_agents))
    print(table.render())
    return 0 if result.succeeded or deviation else 1


# ---------------------------------------------------------------------------
# experiment subcommand: overrides, formats, archiving
# ---------------------------------------------------------------------------

class _OverrideError(ValueError):
    """A --set override that cannot be applied (exit code 2)."""


def _parse_overrides(pairs: Sequence[str]) -> dict[str, str]:
    """Split ``FIELD=VALUE`` strings (raw values; coerced per experiment)."""
    out: dict[str, str] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise _OverrideError(
                f"malformed --set {pair!r}: expected FIELD=VALUE"
            )
        out[name.strip()] = value
    return out


_TRUE = ("true", "yes", "on", "1")
_FALSE = ("false", "no", "off", "0")


def _coerce_value(text: str, hint: Any) -> Any:
    """Coerce an override string to an options field's declared type."""
    origin = typing.get_origin(hint)
    if origin is typing.Union or origin is getattr(types, "UnionType", ()):
        # Optional[T] / T | None: coerce to the first non-None member
        # ("none" spells the null itself, e.g. --set jobs=none).
        if text.strip().lower() in ("none", "null"):
            return None
        elem = next(
            (a for a in typing.get_args(hint) if a is not type(None)), None
        )
        return _coerce_value(text, elem)
    if origin in (collections.abc.Sequence, tuple, list) or hint in (
        tuple, list,
    ):
        args = [a for a in typing.get_args(hint) if a is not Ellipsis]
        elem = args[0] if args else None
        items = [t.strip() for t in text.split(",") if t.strip() != ""]
        return tuple(_coerce_value(item, elem) for item in items)
    if hint is bool:
        low = text.strip().lower()
        if low in _TRUE:
            return True
        if low in _FALSE:
            return False
        raise ValueError(f"expected a boolean, got {text!r}")
    if hint is int:
        return int(text)
    if hint is float:
        return float(text)
    if hint is str:
        return text
    # No usable hint (e.g. unparameterised field): best-effort literal.
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _coerce_overrides(
    spec: ExperimentSpec,
    raw: dict[str, str],
    *,
    skip_unknown: bool = False,
) -> dict[str, Any]:
    """Validate override names against the options dataclass and coerce.

    Unknown fields raise :class:`_OverrideError` listing the valid
    fields (exit 2), or are skipped with a note in ``all`` mode where
    option schemas differ between experiments.
    """
    try:
        hints = typing.get_type_hints(spec.options_cls)
    except Exception:  # pragma: no cover - unresolvable annotations
        hints = {}
    valid = [f.name for f in spec.option_fields()]
    out: dict[str, Any] = {}
    for name, text in raw.items():
        if name not in valid:
            if skip_unknown:
                print(
                    f"note: {spec.name} has no option field {name!r}; "
                    "skipped", file=sys.stderr,
                )
                continue
            raise _OverrideError(
                f"unknown option field {name!r} for {spec.name}; "
                f"valid fields: {', '.join(valid)}"
            )
        try:
            out[name] = _coerce_value(text, hints.get(name))
        except (ValueError, SyntaxError) as exc:
            raise _OverrideError(
                f"bad value for {spec.name} option {name!r}: {exc}"
            ) from exc
    return out


def _emit_result(result: ExperimentResult, fmt: str,
                 out_dir: Path | None) -> None:
    if fmt == "table":
        for table in result.tables():
            print(table.render())
            print()
    elif fmt == "json":
        print(json.dumps(result.to_json_dict(), indent=2))
    else:  # csv
        for section, text in zip(result.sections, csv_sections(result)):
            if section.title:
                print(f"# {section.title}")
            print(text, end="")
            print()
    if out_dir is not None:
        formats = ("json", "csv") if fmt == "csv" else ("json",)
        for path in save_result(result, out_dir, formats=formats):
            print(f"saved: {path}", file=sys.stderr)


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = experiment_names() if args.name == "all" else [args.name]
    sweep = args.name == "all"
    if args.shard_timeout is not None or args.max_retries is not None:
        # Flags arrive as raw strings: the shared validators reject
        # non-numeric, NaN and negative values with an error naming the
        # flag and the accepted form (exit 2), instead of argparse's
        # bare type error or a silently poisonous float("nan").
        policy_fields: dict[str, Any] = {}
        try:
            if args.shard_timeout is not None:
                policy_fields["shard_timeout_s"] = parse_shard_timeout(
                    str(args.shard_timeout), "--shard-timeout"
                )
            if args.max_retries is not None:
                retries = parse_max_retries(
                    str(args.max_retries), "--max-retries"
                )
                if retries is not None:
                    policy_fields["max_retries"] = retries
            set_fault_policy(
                dataclasses.replace(get_fault_policy(), **policy_fields)
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        raw = _parse_overrides(args.overrides)
        if args.trials is not None and "trials" in raw:
            raise _OverrideError(
                "conflicting --trials and --set trials=...; pick one"
            )
        if args.serial and "parallel" in raw:
            raise _OverrideError(
                "conflicting --serial and --set parallel=...; pick one"
            )
        if args.jobs is not None and "jobs" in raw:
            raise _OverrideError(
                "conflicting --jobs and --set jobs=...; pick one"
            )
        if args.trials is not None:
            raw["trials"] = str(args.trials)
        if args.serial:
            raw["parallel"] = "false"
        if args.jobs is not None:
            raw["jobs"] = str(args.jobs)
        # Validate and build every options instance up front, so a bad
        # override exits 2 before any experiment runs (or archives).
        runs = []
        for name in names:
            spec = get_experiment(name)
            overrides = _coerce_overrides(spec, raw, skip_unknown=sweep)
            try:
                runs.append((spec, spec.options_cls(**overrides)))
            except TypeError as exc:
                raise _OverrideError(
                    f"cannot build {spec.options_cls.__name__}: {exc}"
                ) from exc
    except _OverrideError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.workloads import active_cache, cache_stats

    cache = active_cache()
    before = cache_stats().as_dict() if cache is not None else None
    for spec, opts in runs:
        result = spec.run(opts)
        _emit_result(result, args.fmt, args.out)
        if sweep:
            print(_wall_time_summary(result), file=sys.stderr)
    if cache is not None:
        after = cache_stats().as_dict()
        delta = {k: after[k] - before[k] for k in after}
        print(
            f"[workloads] cache {cache.root}: hits={delta['hits']} "
            f"misses={delta['misses']} "
            f"sampled_edges={delta['sampled_edges']}",
            file=sys.stderr,
        )
    return 0


def _wall_time_summary(result: ExperimentResult) -> str:
    """One compact per-experiment line for ``experiment all`` (stderr)."""
    meta = result.meta
    wall = f"{meta.wall_time_s:.2f}s" if meta.wall_time_s is not None \
        else "-"
    parts = [f"[{result.experiment}] {wall}"]
    if meta.backend is not None:
        parts.append(f"backend={meta.backend}")
    if meta.jobs is not None:
        parts.append(f"jobs={meta.jobs}")
    if meta.shards is not None:
        parts.append(f"shards={meta.shards}")
    return "  ".join(parts)


# ---------------------------------------------------------------------------
# service subcommands: serve, submit, jobs, migrate-archive
# ---------------------------------------------------------------------------

def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.api import ExperimentService

    if args.queue_size < 1:
        print(f"error: --queue-size must be >= 1, got {args.queue_size}",
              file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    service = ExperimentService(
        args.store, host=args.host, port=args.port,
        queue_size=args.queue_size, jobs=args.jobs, verbose=args.verbose,
    )
    print(f"serving experiments on {service.url} "
          f"(store: {service.store.path}, queue: {args.queue_size}"
          + (f", jobs: {args.jobs}" if args.jobs else "") + ")",
          file=sys.stderr)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    spec = get_experiment(args.name)
    try:
        raw = _parse_overrides(args.overrides)
        if args.trials is not None and "trials" in raw:
            raise _OverrideError(
                "conflicting --trials and --set trials=...; pick one"
            )
        if args.trials is not None:
            raw["trials"] = str(args.trials)
        overrides = _coerce_overrides(spec, raw)
        spec.options_cls(**overrides)  # validate before the network hop
    except (_OverrideError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    try:
        submission = client.submit(spec.name, overrides)
        if submission.get("cached"):
            print(f"cache hit: result {submission['key']} served from "
                  "the store (no execution)", file=sys.stderr)
        else:
            print(f"submitted job {submission['id']} "
                  f"(key {submission['key']})", file=sys.stderr)
        if args.no_wait:
            print(json.dumps(submission, indent=2))
            return 0
        terminal = client.wait(submission, timeout_s=args.timeout)
        if terminal.get("id") is not None:
            wall = terminal.get("run_wall_s")
            note = "served from cache" if terminal.get("cached") else (
                f"ran in {wall:.2f}s" if wall is not None else "ran"
            )
            print(f"job {terminal['id']}: {note}", file=sys.stderr)
        doc = client.result(terminal["key"])
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3 if exc.status == 429 else 1
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = ExperimentResult.from_json_dict(doc)
    _emit_result(result, args.fmt, None)
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    try:
        jobs = ServiceClient(args.url).jobs()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps({"jobs": jobs}, indent=2))
        return 0
    table = Table(
        headers=["id", "experiment", "state", "cached", "key",
                 "queue wait (s)", "run wall (s)"],
        title=f"jobs at {args.url}", floatfmt=".3g",
    )
    for job in jobs:
        table.add_row(job["id"], job["experiment"], job["state"],
                      job["cached"], job["key"],
                      job.get("queue_wait_s"), job.get("run_wall_s"))
    print(table.render())
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore

    if not args.tree.is_dir():
        print(f"error: {args.tree} is not a directory", file=sys.stderr)
        return 2
    target = args.store if args.store is not None else None
    with (ResultStore(target) if target is not None
          else ResultStore.for_dir(args.tree)) as store:
        report = store.import_tree(args.tree)
        print(f"migrated {args.tree} -> {store.path}: {report.summary()}")
        for name in report.corrupt_files:
            print(f"  corrupt: {name}", file=sys.stderr)
    return 0


def _workloads_cache(args: argparse.Namespace):
    """Resolve the cache root for a ``workloads`` verb (flag, then env)."""
    from repro.workloads import ENV_VAR, WorkloadCache

    root = args.cache or os.environ.get(ENV_VAR)
    if not root:
        print(f"error: no cache root; pass --cache or set ${ENV_VAR}",
              file=sys.stderr)
        return None
    return WorkloadCache(root)


def _cmd_workloads(args: argparse.Namespace) -> int:
    cache = _workloads_cache(args)
    if cache is None:
        return 2
    if args.workloads_command == "list":
        artifacts = cache.artifacts()
        if args.as_json:
            print(json.dumps({
                "root": str(cache.root),
                "artifacts": [
                    {
                        "name": a.path.name,
                        "key": a.key,
                        "spec": a.spec,
                        "trials": a.trials,
                        "graphs": int(a.manifest["graphs"]),
                        "sampled_edges": a.sampled_edges,
                        "bytes": int(a.manifest["bytes"]),
                    }
                    for a in artifacts
                ],
                "orphans": [p.name for p in cache.orphans()],
            }, indent=2))
            return 0
        table = Table(
            headers=["artifact", "scenario", "n", "trials", "edges", "KiB"],
            title=f"workload cache at {cache.root}", floatfmt=".1f",
        )
        for a in artifacts:
            table.add_row(a.path.name, a.spec["scenario"], a.spec["n"],
                          a.trials, a.sampled_edges,
                          int(a.manifest["bytes"]) / 1024)
        print(table.render())
        orphans = cache.orphans()
        print(f"orphans: {len(orphans)}")
        for p in orphans:
            print(f"  {p.name}")
        return 0
    # gc
    report = cache.gc(dry_run=args.dry_run,
                      all_artifacts=args.all_artifacts)
    verb = "would remove" if args.dry_run else "removed"
    print(f"workload cache gc at {report['root']}: "
          f"orphans: {len(report['orphans'])}"
          + (f", artifacts: {len(report['artifacts_removed'])}"
             if args.all_artifacts else ""))
    for name in report["orphans"] + report["artifacts_removed"]:
        print(f"  {verb}: {name}")
    return 0


def _store_listing(store_path: Path) -> dict[str, Any] | None:
    """``repro list``'s store stanza (``None`` when nothing usable)."""
    from repro.service.store import ResultStore, locate_store

    db = locate_store(store_path)
    if db is None or not db.is_file():
        return None
    with ResultStore(db) as store:
        return store.stats()


def _cmd_list(args: argparse.Namespace) -> int:
    store_stats = None
    store_path = args.store or os.environ.get("REPRO_STORE")
    if store_path:
        store_stats = _store_listing(Path(store_path))
        if store_stats is None:
            print(f"note: no result store at {store_path}",
                  file=sys.stderr)
    if args.as_json:
        cached = (store_stats or {}).get("by_experiment", {})
        listing = {
            "strategies": list(STRATEGY_NAMES),
            "workloads": list(workloads.WORKLOADS),
            "experiments": [
                {
                    "name": spec.name,
                    "title": spec.title,
                    "claim": spec.claim,
                    "kind": spec.kind,
                    "options_type": (
                        f"{spec.options_cls.__module__}."
                        f"{spec.options_cls.__qualname__}"
                    ),
                    "options": json.loads(json.dumps(
                        dataclasses.asdict(spec.default_options()),
                        default=str,
                    )),
                    **(
                        {"cached_results": cached.get(spec.name, 0)}
                        if store_stats is not None else {}
                    ),
                }
                for spec in iter_experiments()
            ],
        }
        if store_stats is not None:
            listing["store"] = store_stats
        print(json.dumps(listing, indent=2))
        return 0
    print("strategies:")
    for name in STRATEGY_NAMES:
        print(f"  {name}")
    print("\nworkloads:")
    for name in workloads.WORKLOADS:
        print(f"  {name}")
    print("\nexperiments:")
    cached = (store_stats or {}).get("by_experiment", {})
    for spec in iter_experiments():
        note = ""
        if store_stats is not None:
            note = f"  [{cached.get(spec.name, 0)} cached]"
        print(f"  {spec.name:<4} {spec.title} ({spec.claim}){note}")
    if store_stats is not None:
        print(f"\nstore: {store_stats['path']} "
              f"({store_stats['results']} results)")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "experiment": _cmd_experiment,
    "list": _cmd_list,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "migrate-archive": _cmd_migrate,
    "workloads": _cmd_workloads,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
