"""The adversary: permanent fault patterns and coalition builders.

The paper's fault model is *worst-case permanent*: before round 0 an
adversary that knows the protocol crashes up to ``alpha * n`` agents; no
further adversarial action is allowed.  :mod:`repro.adversary.faults`
provides representative worst-case placements.  Coalitions (the rational
adversary of Theorem 7) are built by :mod:`repro.adversary.coalitions`.
"""

from repro.adversary.coalitions import (
    coalition_size_schedules,
    color_coalition,
    random_coalition,
)
from repro.adversary.faults import (
    color_targeted_faults,
    prefix_faults,
    random_faults,
)

__all__ = [
    "coalition_size_schedules",
    "color_coalition",
    "color_targeted_faults",
    "prefix_faults",
    "random_coalition",
    "random_faults",
]
