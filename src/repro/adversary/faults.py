"""Permanent fault patterns chosen by the worst-case adversary.

The adversary acts once, before round 0, knowing the protocol (but not
the agents' future coin flips).  Because Protocol P treats all labels
symmetrically and samples peers uniformly, *placement* of faults cannot
matter for correctness — only the count does — but the experiment suite
still exercises several placements to demonstrate that:

* :func:`random_faults` — a random subset (the "average" adversary);
* :func:`prefix_faults` — the lowest labels (adversary attacks the
  tie-break order: our Find-Min breaks ties toward small labels);
* :func:`color_targeted_faults` — crash supporters of one color first
  (the nastiest placement for *fairness over initial supporters*; the
  paper defines fairness over *active* agents, and E6 shows the protocol
  is exactly fair w.r.t. the post-crash configuration).
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

__all__ = ["random_faults", "prefix_faults", "color_targeted_faults"]


def _count(n: int, alpha: float) -> int:
    if not 0 <= alpha < 1:
        raise ValueError(f"fault fraction must be in [0, 1), got {alpha}")
    count = math.floor(alpha * n)
    if count >= n:  # defensive; alpha < 1 should prevent this
        count = n - 1
    return count


def random_faults(n: int, alpha: float, rng: np.random.Generator) -> frozenset[int]:
    """Crash ``floor(alpha * n)`` agents chosen uniformly at random."""
    count = _count(n, alpha)
    return frozenset(int(x) for x in rng.choice(n, size=count, replace=False))


def prefix_faults(n: int, alpha: float) -> frozenset[int]:
    """Crash the ``floor(alpha * n)`` smallest labels."""
    return frozenset(range(_count(n, alpha)))


def color_targeted_faults(
    colors: Sequence[Hashable], target_color: Hashable, alpha: float
) -> frozenset[int]:
    """Crash supporters of ``target_color`` first, then fill with others.

    Models an adversary trying to erase one opinion from the network
    before the protocol starts.
    """
    n = len(colors)
    count = _count(n, alpha)
    supporters = [i for i, c in enumerate(colors) if c == target_color]
    others = [i for i, c in enumerate(colors) if c != target_color]
    chosen = supporters[:count]
    if len(chosen) < count:
        chosen.extend(others[: count - len(chosen)])
    return frozenset(chosen)
