"""Coalition builders for the equilibrium experiments.

Theorem 7 covers any coalition of size ``t = o(n / log n)``.  The
experiments sweep representative sizes (1, sqrt(n), n/log^2 n) and two
membership structures: random members, and all supporters of one color
(the coalition with the most aligned incentives).
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Sequence

import numpy as np

__all__ = ["random_coalition", "color_coalition", "coalition_size_schedules"]


def random_coalition(
    n: int,
    t: int,
    rng: np.random.Generator,
    exclude: frozenset[int] = frozenset(),
) -> frozenset[int]:
    """``t`` coalition members chosen u.a.r. among non-excluded labels."""
    pool = [i for i in range(n) if i not in exclude]
    if t > len(pool):
        raise ValueError(f"cannot pick {t} members from {len(pool)} candidates")
    return frozenset(int(x) for x in rng.choice(pool, size=t, replace=False))


def color_coalition(
    colors: Sequence[Hashable],
    color: Hashable,
    t: int | None = None,
    exclude: frozenset[int] = frozenset(),
) -> frozenset[int]:
    """The (first ``t``) supporters of ``color`` — maximally aligned."""
    supporters = [
        i for i, c in enumerate(colors) if c == color and i not in exclude
    ]
    if t is not None:
        supporters = supporters[:t]
    if not supporters:
        raise ValueError(f"no eligible supporter of {color!r}")
    return frozenset(supporters)


def coalition_size_schedules() -> dict[str, Callable[[int], int]]:
    """Named coalition-size schedules t(n) used by the E7 sweep.

    All honour the theorem's ``t = o(n / log n)`` regime (the largest,
    ``n/log^2 n``, is the canonical just-inside-the-bound choice).
    """
    return {
        "single": lambda n: 1,
        "sqrt": lambda n: max(1, math.isqrt(n)),
        "n_over_log2": lambda n: max(1, int(n / (math.log2(n) ** 2))),
    }
