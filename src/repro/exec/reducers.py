"""Streaming reducers: merge per-shard results back into one batch.

The parallel backend splits a plan into trial shards and gets one
struct-of-arrays result per shard (:class:`FastBatchResult`,
:class:`StrategyBatchResult`, :class:`GraphBatchResult` or
:class:`AsyncBatchResult`).  :class:`ShardReducer` folds them back
together *in shard order, as they arrive*: per-trial arrays concatenate
along the trial axis, ``n_trials`` sums, nested batch results recurse,
and every other field (``n``, ``rounds``, ``colors``, ``strategy``,
...) must agree across shards — a disagreement means the shards were
cut from different workloads and is an error, never silently resolved.

Because shard boundaries sit on the plan's stream quantum
(:mod:`repro.exec.plan`), the merged arrays are bit-identical to what
the serial backend produces, independent of worker count and of the
order shards *complete* in (the reducer consumes them in shard index
order).  Memory stays bounded by the per-trial records themselves: a
shard's O(B_shard) summary arrays are the only thing that travels back
from a worker (never the engine's internal (B, n, q) draw tensors), so
the reducer's peak is ~2x the merged result — O(B) at any trial count.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping, TypeVar

import numpy as np

__all__ = ["ShardReducer", "merge_shards", "merge_stubs"]

R = TypeVar("R")


def _merge_field(name: str, values: list[Any]) -> Any:
    first = values[0]
    if isinstance(first, np.ndarray):
        return np.concatenate(values)
    if name == "n_trials":
        return int(sum(values))
    if dataclasses.is_dataclass(first) and not isinstance(first, type):
        return _merge_results(values)
    for index, value in enumerate(values[1:], start=1):
        if value != first:
            raise ValueError(
                f"shards disagree on field {name!r}: shard 0 has "
                f"{first!r}, shard {index} has {value!r} — the shards "
                "were cut from different workloads"
            )
    return first


def _merge_results(shards: list[Any]) -> Any:
    cls = type(shards[0])
    if any(type(s) is not cls for s in shards[1:]):
        raise ValueError(
            f"cannot merge mixed shard types "
            f"{sorted({type(s).__name__ for s in shards})}"
        )
    merged = {
        f.name: _merge_field(f.name, [getattr(s, f.name) for s in shards])
        for f in dataclasses.fields(cls)
    }
    return cls(**merged)


class ShardReducer:
    """Fold shard results one at a time; :meth:`result` emits the merge.

    A single shard passes through untouched (object identity), so the
    serial backend and one-shard parallel runs pay nothing.
    """

    def __init__(self) -> None:
        self._shards: list[Any] = []

    def add(self, shard: Any) -> None:
        if shard is None:
            raise ValueError("shard result is None (worker failed?)")
        self._shards.append(shard)

    def result(self) -> Any:
        if not self._shards:
            raise ValueError("no shards to merge")
        if len(self._shards) == 1:
            return self._shards[0]
        return _merge_results(self._shards)


def merge_stubs(
    stubs: list[Mapping[str, Any]], cls: type
) -> dict[str, Any]:
    """Merge per-shard *scalar stubs* — the zero-copy reducer path.

    On the shared-memory transport a shard's arrays never travel back
    through the pool pipe: workers write them into the result segment
    in place, and only the non-array fields (``n``, ``colors``,
    ``rounds``, ...) return as a nested dict per shard
    (:func:`repro.exec.shm.scalar_stub`).  This merges those stubs in
    shard-index order with exactly the field semantics of
    :func:`merge_shards` — ``n_trials`` sums, nested batch results
    recurse, everything else must agree across shards (same
    cut-from-different-workloads diagnostics) — so the two reducer
    paths accept and reject identical shard sets.  The merged result's
    arrays are then full-length *views* of the segment
    (:func:`repro.exec.shm.build_batch`); no array is ever copied.
    """
    if not stubs:
        raise ValueError("no shards to merge")
    nested = dict(getattr(cls, "NESTED_BATCH_FIELDS", ()))
    merged: dict[str, Any] = {}
    for name in stubs[0]:
        values = [stub[name] for stub in stubs]
        if name in nested:
            merged[name] = merge_stubs(values, nested[name])
        else:
            merged[name] = _merge_field(name, values)
    return merged


def merge_shards(shards: Iterable[R]) -> R:
    """Merge an iterable of shard results in iteration order.

    Consumes lazily (pool ``map`` results fold as workers finish) and
    returns the single merged batch.
    """
    reducer = ShardReducer()
    for shard in shards:
        reducer.add(shard)
    return reducer.result()
