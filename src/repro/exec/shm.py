"""Zero-copy shared-memory transport for the parallel backend.

The sharded backend used to pay for parallelism twice at every shard
boundary: the sub-plan pickled into the worker, and the shard's whole
struct-of-arrays result pickled back out and concatenated by the
reducer.  This module removes both round-trips:

* **One control segment per run** holds the pickled sub-plans (each
  shard's slice pickled exactly once, so retries and pool respawns
  re-read bytes instead of re-pickling) plus the result layout.
* **One result segment per run** holds the merged result's trial-axis
  tensors, laid out field by field.  Workers attach by name and write
  their shard's ``[lo, hi)`` slice of every array *in place*; only a
  tiny scalar stub (``n``, ``colors``, ``rounds``, ...) travels back
  through the pool pipe.  The final merge is **zero-copy**: the merged
  arrays are NumPy views over the parent's own mapping of the segment
  — no concatenation, no second copy (``repro.exec.reducers``).

Which arrays exist at what dtype is declared by the batch-result
classes themselves via the **out-buffer protocol**: a class-level
``ARRAY_FIELDS`` tuple of ``(field, dtype)`` pairs, plus
``NESTED_BATCH_FIELDS`` for results that embed other batch results
(the strategy tier's honest/deviant pair).  A result type without the
protocol simply falls back to the pickling transport.

Ownership and unlink contract (DESIGN.md §9)
--------------------------------------------
The **parent owns both segments, exclusively**.  Workers attach by
name, immediately deregister the attachment from their resource
tracker (the parent's registration is the only one), and never unlink.
The parent unlinks on *every* exit path — success, worker crash, shard
timeout, serial degradation, ``KeyboardInterrupt`` — via an idempotent
``close()`` in a ``finally`` block.  Unlinking happens as soon as the
merged result is constructed: on POSIX the mapping stays valid for the
life of the result arrays while the ``/dev/shm`` entry is already
gone, so a crash *after* the run can no longer leak a segment.  The
only leak window is a hard kill of the parent between create and
unlink, which no userspace design can close.

A worker SIGKILLed mid-write leaves a torn slice; that is harmless by
construction, because a shard's slice is only trusted once the
worker's scalar stub returns, and every retry (and the serial
degradation path) rewrites the full slice.
"""

from __future__ import annotations

import os
import pickle
import secrets
from dataclasses import dataclass, fields as _dc_fields
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Mapping

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "ResultLayout",
    "batch_schema",
    "build_batch",
    "export_batch",
    "plan_layout",
    "repo_segments",
    "retain",
    "scalar_stub",
    "shm_enabled",
    "supports_buffers",
]

#: Every segment this module creates carries this name prefix, so leak
#: checks (tests, CI) can count our segments without false positives.
SEGMENT_PREFIX = "repro_exec_"

#: Field offsets are aligned to cache lines; adjacent shards then only
#: ever share a line at their own boundary, never across fields.
_ALIGN = 64

_FALSY = ("0", "false", "no", "off")


def shm_enabled(environ: Mapping[str, str] | None = None) -> bool:
    """Whether the zero-copy transport is active (default: yes).

    ``REPRO_SHM=0`` falls back to the pickling transport — the
    debugging escape hatch, and what the cross-path byte-identity
    tests compare against.
    """
    env = os.environ if environ is None else environ
    return env.get("REPRO_SHM", "").strip().lower() not in _FALSY


def supports_buffers(cls: type) -> bool:
    """Does ``cls`` implement the out-buffer protocol?"""
    return bool(getattr(cls, "ARRAY_FIELDS", ())) or bool(
        getattr(cls, "NESTED_BATCH_FIELDS", ())
    )


def batch_schema(cls: type, prefix: str = "") -> tuple[
    tuple[str, np.dtype], ...
]:
    """Ordered ``(path, dtype)`` pairs of every trial-axis array.

    Nested batch results contribute dotted paths (``honest.winner``),
    so one flat schema describes the whole result tree.
    """
    entries: list[tuple[str, np.dtype]] = []
    for name, dtype in getattr(cls, "ARRAY_FIELDS", ()):
        entries.append((prefix + name, np.dtype(dtype)))
    for name, sub in getattr(cls, "NESTED_BATCH_FIELDS", ()):
        entries.extend(batch_schema(sub, prefix=f"{prefix}{name}."))
    return tuple(entries)


@dataclass(frozen=True)
class ResultLayout:
    """Where each result array lives inside the result segment.

    ``slots`` maps the schema's dotted paths to ``(dtype string,
    byte offset)``; the layout is computed once by the parent and
    shipped to workers through the control segment, so both sides
    address the same bytes.
    """

    n_trials: int
    slots: tuple[tuple[str, str, int], ...]   # (path, dtype.str, offset)
    size: int

    def views(self, shm: shared_memory.SharedMemory) -> dict[str, np.ndarray]:
        """Full-length array views over a mapping of the segment."""
        return {
            path: np.ndarray(
                (self.n_trials,), dtype=np.dtype(dtype), buffer=shm.buf,
                offset=offset,
            )
            for path, dtype, offset in self.slots
        }


def plan_layout(cls: type, n_trials: int) -> ResultLayout:
    """Lay the result tree of ``cls`` out field by field."""
    offset = 0
    slots: list[tuple[str, str, int]] = []
    for path, dtype in batch_schema(cls):
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        slots.append((path, dtype.str, offset))
        offset += dtype.itemsize * n_trials
    return ResultLayout(n_trials=n_trials, slots=tuple(slots),
                        size=max(offset, 1))


# ---------------------------------------------------------------------------
# The out-buffer protocol: export / stub / rebuild
# ---------------------------------------------------------------------------

def _get_path(result: Any, path: str) -> Any:
    for part in path.split("."):
        result = getattr(result, part)
    return result


def export_batch(
    result: Any,
    views: Mapping[str, np.ndarray],
    lo: int,
    hi: int,
    *,
    fault: Any = None,
) -> None:
    """Write every array of ``result`` into its ``[lo, hi)`` slice.

    Dtype mismatches raise instead of casting — a silent cast could
    round-trip different bytes than the serial backend produced.
    ``fault`` is the chaos hook: a :class:`~repro.exec.chaos.ShardChaos`
    with ``kill_mid_write`` set makes the worker die after half the
    fields, leaving a genuinely torn slice for the recovery paths.
    """
    schema = batch_schema(type(result))
    kill_after = len(schema) // 2 if (
        fault is not None and getattr(fault, "kill_mid_write", False)
    ) else None
    for index, (path, dtype) in enumerate(schema):
        if kill_after is not None and index == kill_after:
            fault.die()
        arr = _get_path(result, path)
        view = views[path]
        if arr.dtype != view.dtype:
            raise TypeError(
                f"out-buffer dtype mismatch for {path!r}: result has "
                f"{arr.dtype}, layout declares {view.dtype}"
            )
        view[lo:hi] = arr


def scalar_stub(result: Any) -> dict[str, Any]:
    """The non-array fields of a batch result, nested as dicts.

    This is all that travels back from a worker on the zero-copy
    transport; the reducer cross-checks stubs across shards exactly
    like the pickling path cross-checks full results.
    """
    cls = type(result)
    array_names = {name for name, _ in getattr(cls, "ARRAY_FIELDS", ())}
    nested = dict(getattr(cls, "NESTED_BATCH_FIELDS", ()))
    stub: dict[str, Any] = {}
    for field in _dc_fields(cls):
        if field.name in array_names:
            continue
        value = getattr(result, field.name)
        stub[field.name] = (
            scalar_stub(value) if field.name in nested else value
        )
    return stub


def build_batch(
    cls: type,
    stub: Mapping[str, Any],
    views: Mapping[str, np.ndarray],
    prefix: str = "",
) -> Any:
    """Reassemble a batch result from a merged stub plus array views.

    The arrays handed in are the full-length views over the result
    segment — the zero-copy merge: no concatenation ever happens.
    """
    nested = dict(getattr(cls, "NESTED_BATCH_FIELDS", ()))
    kwargs = dict(stub)
    for name, _ in getattr(cls, "ARRAY_FIELDS", ()):
        kwargs[name] = views[prefix + name]
    for name, sub in nested.items():
        kwargs[name] = build_batch(sub, stub[name], views,
                                   prefix=f"{prefix}{name}.")
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# Segments: parent-owned blocks, worker-side attach cache
# ---------------------------------------------------------------------------

def _fresh_name() -> str:
    return f"{SEGMENT_PREFIX}{secrets.token_hex(8)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering with a resource tracker.

    ``SharedMemory(name=...)`` registers every attachment for cleanup,
    but the parent's registration (made at create time) is the one and
    only canonical owner.  A second registration is actively harmful:
    under the ``fork`` context the tracker is *shared*, so a worker
    unregistering its attachment would delete the parent's entry (and a
    worker exiting without unregistering would unlink the segment out
    from under the parent).  Suppressing the register call during
    attach keeps the tracker's books exactly right on every start
    method.  Pool tasks run single-threaded, so the swap is race-free.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class OwnedSegment:
    """A parent-owned shared-memory block with an idempotent unlink.

    ``unlink()`` removes the name system-wide but leaves this process's
    mapping valid, so result views built over ``buf`` survive it; it is
    safe (and expected) to call from ``finally`` blocks on every path.
    """

    def __init__(self, size: int) -> None:
        self._shm = shared_memory.SharedMemory(
            create=True, size=size, name=_fresh_name()
        )
        self._linked = True

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    @property
    def shm(self) -> shared_memory.SharedMemory:
        return self._shm

    def write(self, payload: bytes, offset: int = 0) -> None:
        self._shm.buf[offset:offset + len(payload)] = payload

    def unlink(self) -> None:
        if self._linked:
            self._linked = False
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


# Result segments whose views escaped into a merged result.  A merged
# batch holds ndarray views over the segment's mapping; if the
# SharedMemory object were finalised while those views live, its
# ``__del__`` → ``close()`` would trip a BufferError on the exported
# memoryview.  Retaining the (already unlinked) segment for the life
# of the process sidesteps the whole finalisation race: the mapping is
# needed as long as the arrays anyway, and an unlinked segment holds
# no /dev/shm entry — only the pages the result itself uses.
_retained: list["OwnedSegment"] = []


def retain(segment: "OwnedSegment") -> None:
    """Keep ``segment``'s mapping alive for the rest of the process."""
    _retained.append(segment)


# Worker-side attach cache: pool workers are long-lived, so one run's
# segments are attached once per worker, not once per shard.  Keyed by
# segment name; a task naming a different segment evicts the old one
# (its per-task views are gone by then, so the close cannot fail).
_attached: dict[str, tuple[str, Any]] = {}


def attached(kind: str, name: str) -> shared_memory.SharedMemory:
    """Attach (or reuse) the named segment inside a pool worker."""
    cached = _attached.get(kind)
    if cached is not None and cached[0] == name:
        return cached[1]
    if cached is not None:
        try:
            cached[1].close()
        except BufferError:
            # A live export view (shouldn't happen between tasks);
            # dropping the reference still frees it with the process.
            pass
    shm = _attach_untracked(name)
    _attached[kind] = (name, shm)
    return shm


def repo_segments() -> list[str]:
    """Names of live ``repro_exec_*`` segments (the leak check).

    Reads ``/dev/shm`` where it exists (Linux); elsewhere returns an
    empty list, which keeps the leak tests vacuously green rather than
    wrong.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(
        entry for entry in os.listdir(root)
        if entry.startswith(SEGMENT_PREFIX)
    )


# ---------------------------------------------------------------------------
# Control segment: pickled sub-plans + layout, readable by shard index
# ---------------------------------------------------------------------------

_HEADER_LEN_BYTES = 8


def pack_control(
    layout: ResultLayout,
    bounds: list[tuple[int, int]],
    plan_pickles: list[bytes],
) -> bytes:
    """Serialise the run's control block.

    Layout: ``[8-byte header length][pickled header][plan 0][plan 1]…``
    — the header carries each plan's span, so a worker unpickles *only*
    its shard's bytes.
    """
    spans = []
    offset = 0
    for blob in plan_pickles:
        spans.append((offset, len(blob)))
        offset += len(blob)
    header = pickle.dumps(
        {"layout": layout, "bounds": list(bounds), "spans": spans},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    prefix = len(header).to_bytes(_HEADER_LEN_BYTES, "big")
    return b"".join([prefix, header, *plan_pickles])


def read_control_header(buf: memoryview) -> dict[str, Any]:
    """Parse the header of a control segment (worker side)."""
    header_len = int.from_bytes(bytes(buf[:_HEADER_LEN_BYTES]), "big")
    start = _HEADER_LEN_BYTES
    header = pickle.loads(buf[start:start + header_len])
    header["plans_offset"] = start + header_len
    return header


def read_control_plan(buf: memoryview, header: Mapping[str, Any],
                      shard_index: int) -> Any:
    """Unpickle shard ``shard_index``'s sub-plan from the control block."""
    offset, length = header["spans"][shard_index]
    start = header["plans_offset"] + offset
    return pickle.loads(buf[start:start + length])
