"""Deterministic fault injection for the execution layer.

The fault-tolerance machinery in :mod:`repro.exec.backends` (shard
retry, pool respawn, timeout recovery, serial degradation) and the
crash-safe persistence in :mod:`repro.results`/:mod:`repro.study` are
only trustworthy if they are *exercised* — this module is the harness
that exercises them from ordinary pytest tests and the CI chaos job.

A :class:`ChaosConfig` is a pure description of a fault schedule: every
decision ("does shard 3's first attempt get killed?", "is this archive
write truncated?") is a SHA-256 hash of the chaos seed and the
injection site, so a given config injects *exactly* the same faults on
every run, on every machine — chaos runs are as reproducible as the
experiments they disturb.

Three injection sites:

``shard_chaos(shard, attempt)``
    Consulted by the parallel backend when it submits a shard to the
    process pool.  The resulting :class:`ShardChaos` travels to the
    worker (it is picklable) and is applied *before* the shard
    computes: ``kill`` terminates the worker with ``os._exit`` (the
    pool observes ``BrokenProcessPool``), ``delay_s`` sleeps first
    (driving the shard past a configured timeout).  Attempts at or
    beyond ``max_faulty_attempts`` always run clean, so recovery is
    guaranteed to converge; the serial degradation path never consults
    chaos at all — it is the trusted fallback.

``truncates(name)``
    Consulted after an archive file is (atomically) published: a hit
    truncates the *final* file to half its bytes, simulating the torn
    write a crash mid-write would have left behind a non-atomic writer
    (or a corrupted disk).  Resume paths must quarantine and recompute
    such files, never crash on them.

Activation is explicit and scoped: :func:`install` sets the active
config for a ``with`` block (the backend and the archive writers check
:func:`active_config`).  Nothing is injected unless a config is
installed — ``REPRO_CHAOS=1`` does not silently fault ordinary runs;
it gates the heavier chaos *tests* (:func:`chaos_enabled`) and
:meth:`ChaosConfig.from_env` builds the config those tests install.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = [
    "ChaosConfig",
    "ShardChaos",
    "active_config",
    "chaos_enabled",
    "install",
]

#: Exit status a chaos-killed worker dies with (visible in core dumps /
#: strace sessions as "this was injected, not a real crash").
KILL_EXIT_CODE = 113

_TRUTHY = ("1", "true", "yes", "on")


def chaos_enabled(environ: Mapping[str, str] | None = None) -> bool:
    """Whether the environment opts into the heavy chaos suite
    (``REPRO_CHAOS=1``, the CI chaos job's switch)."""
    env = os.environ if environ is None else environ
    return env.get("REPRO_CHAOS", "").strip().lower() in _TRUTHY


@dataclass(frozen=True)
class ShardChaos:
    """The faults injected into one (shard, attempt) worker execution.

    ``kill`` dies *before* the shard computes; ``kill_mid_write`` lets
    the shard compute and dies halfway through exporting its arrays
    into the shared-memory result segment — the torn-slice case the
    zero-copy transport must survive (the slice is rewritten whole on
    retry, so a half-written shard can never reach the merged result).
    On the pickling transport, where there is no in-place write to
    tear, ``kill_mid_write`` degrades to dying after compute, before
    the result is returned — the closest equivalent fault.
    """

    kill: bool = False
    delay_s: float = 0.0
    kill_mid_write: bool = False

    def apply(self) -> None:
        """Run inside the pool worker, before the shard computes."""
        if self.delay_s > 0.0:
            time.sleep(self.delay_s)
        if self.kill:
            self.die()

    def die(self) -> None:
        """Terminate the worker with the injected-fault exit status."""
        os._exit(KILL_EXIT_CODE)


@dataclass(frozen=True)
class ChaosConfig:
    """A seed-derived, fully deterministic fault schedule.

    Rates are per-site probabilities in ``[0, 1]``; the draw for a site
    is ``sha256(seed | site | indices)`` mapped to ``[0, 1)``, so two
    runs with the same config fault identically.  ``max_faulty_attempts``
    bounds how many consecutive submissions of one shard may fault
    (attempts past it always run clean), which keeps every schedule
    recoverable by bounded retry.
    """

    seed: int = 0
    kill_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.25
    truncate_rate: float = 0.0
    max_faulty_attempts: int = 1

    def _uniform(self, *site: object) -> float:
        payload = "|".join(str(s) for s in (self.seed, *site))
        digest = hashlib.sha256(payload.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def shard_chaos(self, shard: int, attempt: int) -> ShardChaos:
        """The fault plan for submission ``attempt`` of ``shard``."""
        if attempt >= self.max_faulty_attempts:
            return ShardChaos()
        kill = self._uniform("kill", shard, attempt) < self.kill_rate
        delay = self._uniform("delay", shard, attempt) < self.delay_rate
        # Half the injected kills strike mid-write instead of pre-compute,
        # so every chaos run exercises the torn-slice recovery path too.
        mid = kill and self._uniform("mid", shard, attempt) < 0.5
        return ShardChaos(
            kill=kill and not mid,
            delay_s=self.delay_s if delay else 0.0,
            kill_mid_write=mid,
        )

    def truncates(self, name: str) -> bool:
        """Whether the archive file ``name`` gets a torn (half) write."""
        return self._uniform("truncate", name) < self.truncate_rate

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None
    ) -> "ChaosConfig | None":
        """The config the CI chaos job's environment describes.

        Returns ``None`` unless ``REPRO_CHAOS`` is truthy; the
        individual knobs default to a schedule that exercises every
        recovery path (kills, delays and truncations all enabled).
        """
        env = os.environ if environ is None else environ
        if not chaos_enabled(env):
            return None
        return cls(
            seed=int(env.get("REPRO_CHAOS_SEED", "0")),
            kill_rate=float(env.get("REPRO_CHAOS_KILL_RATE", "0.5")),
            delay_rate=float(env.get("REPRO_CHAOS_DELAY_RATE", "0.25")),
            delay_s=float(env.get("REPRO_CHAOS_DELAY_S", "0.25")),
            truncate_rate=float(env.get("REPRO_CHAOS_TRUNCATE_RATE", "0.5")),
        )


_active: ChaosConfig | None = None


def active_config() -> ChaosConfig | None:
    """The installed chaos config, or ``None`` (no injection)."""
    return _active


@contextmanager
def install(config: ChaosConfig) -> Iterator[ChaosConfig]:
    """Activate ``config`` for the block (restores the previous one).

    Chaos decisions are made in the parent process (the backend ships
    each worker its precomputed :class:`ShardChaos`), so installing in
    the test process is enough — pool workers need no setup.
    """
    global _active
    previous = _active
    _active = config
    try:
        yield config
    finally:
        _active = previous
