"""Process-pool trial execution (the per-trial fan-out primitive).

Monte-Carlo experiments run hundreds of independent simulations; this
module fans them out over processes (simulations are CPU-bound pure
Python/NumPy, so threads would serialise on the GIL — the standard HPC
recipe here is process-level parallelism over trials).

Workers must be module-level callables (pickling), and every trial gets
its seed explicitly — results are independent of worker count and
scheduling order.  This is the primitive under both the ``process``
engine tier (one task per trial) and the parallel plan backend (one
task per trial *shard*, :mod:`repro.exec.backends`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["run_trials", "default_workers"]

T = TypeVar("T")
A = TypeVar("A")


def default_workers() -> int:
    """Worker count: leave a couple of cores for the OS, cap at 16.

    ``os.cpu_count()`` may return ``None`` (the platform cannot tell);
    that means one worker, never a crash.
    """
    cpus = os.cpu_count()
    if cpus is None:
        return 1
    return max(1, min(16, cpus - 2))


def run_trials(
    worker: Callable[[A], T],
    args: Sequence[A] | Iterable[A],
    *,
    parallel: bool = True,
    max_workers: int | None = None,
    chunksize: int | None = None,
) -> list[T]:
    """Run ``worker`` over every element of ``args``; order-preserving.

    ``parallel=False`` (or a single work item) executes inline, which is
    also the debugger-friendly path.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(
            f"max_workers must be >= 1, got {max_workers} "
            "(pass None for the machine default)"
        )
    args = list(args)
    if not args:
        return []
    if not parallel or len(args) == 1:
        return [worker(a) for a in args]
    workers = max_workers if max_workers is not None else default_workers()
    if workers <= 1:
        return [worker(a) for a in args]
    if chunksize is None:
        chunksize = max(1, len(args) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, args, chunksize=chunksize))
