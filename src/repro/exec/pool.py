"""Process-pool trial execution (the per-trial fan-out primitive).

Monte-Carlo experiments run hundreds of independent simulations; this
module fans them out over processes (simulations are CPU-bound pure
Python/NumPy, so threads would serialise on the GIL — the standard HPC
recipe here is process-level parallelism over trials).

Workers must be module-level callables (pickling), and every trial gets
its seed explicitly — results are independent of worker count and
scheduling order.  This is the primitive under both the ``process``
engine tier (one task per trial) and the parallel plan backend (one
task per trial *shard*, :mod:`repro.exec.backends`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "acquire_pool",
    "available_cpus",
    "default_workers",
    "kill_pool",
    "mp_context",
    "prewarm",
    "release_pool",
    "run_trials",
    "shutdown_warm_pool",
    "warm_pool_stats",
]

T = TypeVar("T")
A = TypeVar("A")


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the process: inside a
    cgroup cpuset (containers, CI runners, ``taskset``) it happily
    claims 64 cores while the scheduler grants 2 — and a pool sized to
    the machine then timeslices itself into *negative* speedup while
    benchmarks archive it as a parallel win.  ``sched_getaffinity``
    reports the granted set; fall back to ``cpu_count`` only where the
    call does not exist (macOS) or fails.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass
    return os.cpu_count() or 1


def default_workers() -> int:
    """Worker count: leave a couple of cores for the OS, cap at 16.

    Sized from :func:`available_cpus` (the affinity mask), not the raw
    machine core count — see there for why the distinction matters.
    """
    return max(1, min(16, available_cpus() - 2))


_mp_context: multiprocessing.context.BaseContext | None = None


def _main_reimportable() -> bool:
    """Can worker processes re-import ``__main__``?

    ``forkserver`` (like ``spawn``) replays the main module in every
    worker.  That works for ``python -m ...`` and for scripts that
    exist on disk, but a ``python - <<EOF`` heredoc or an embedded
    interpreter leaves ``__main__.__file__`` pointing at ``<stdin>`` —
    workers would die on import before running a single task.
    Interactive sessions (no ``__file__`` at all) are fine:
    multiprocessing skips main-module replay for them.
    """
    import sys

    main = sys.modules.get("__main__")
    if main is None:
        return True
    if getattr(main, "__spec__", None) is not None:
        return True  # python -m: re-imported by module name
    path = getattr(main, "__file__", None)
    if path is None:
        return True  # interactive: no main replay attempted
    return os.path.exists(path)


def mp_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every repro pool is built from.

    Prefers ``forkserver`` with :mod:`numpy` (and the backend module's
    worker functions) preloaded: workers then inherit a warm
    interpreter from one long-lived server instead of re-importing
    numpy per spawned process, and — unlike plain ``fork`` — never
    inherit the parent's thread/lock state mid-flight.  Falls back to
    ``fork`` where the main module cannot be replayed (heredoc
    scripts), and to the platform default where neither exists.
    """
    global _mp_context
    if _mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        if "forkserver" in methods and _main_reimportable():
            ctx = multiprocessing.get_context("forkserver")
            ctx.set_forkserver_preload(["numpy", "repro.exec.backends"])
        elif "fork" in methods:
            ctx = multiprocessing.get_context("fork")
        else:
            ctx = multiprocessing.get_context()
        _mp_context = ctx
    return _mp_context


# ---------------------------------------------------------------------------
# Warm pool: one forkserver-backed pool shared across plan executions
# ---------------------------------------------------------------------------
#
# Pool start-up used to be paid per run_plan call (and the old fork
# context re-imported nothing but re-initialised everything).  With the
# forkserver context (numpy preloaded, see mp_context) the first pool
# is the only expensive one — after a healthy run the pool parks here
# and the next run of the same width reuses its warm workers.  Faulted
# runs never park a pool: breakage or a hung worker always replaces it
# with a fresh one mid-run, and the replacement only parks after it
# finishes a run cleanly.
#
# This is also the experiment service's pool-sharing point: a daemon
# serving many jobs from one process keeps exactly one parked pool
# between jobs (repro.service.daemon), and prewarm() lets it pay the
# spawn cost at start-up instead of on the first submission.

_warm_pool: ProcessPoolExecutor | None = None
_warm_workers = 0
_warm_lock = threading.Lock()
_pool_counters = {"acquires": 0, "warm_hits": 0, "prewarmed": 0}


def kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dying workers."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except Exception:  # racing a worker that already exited
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def _new_pool(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers, mp_context=mp_context())


def acquire_pool(workers: int) -> ProcessPoolExecutor:
    """A pool of ``workers`` processes — the parked warm one if it fits."""
    global _warm_pool, _warm_workers
    with _warm_lock:
        pool, width = _warm_pool, _warm_workers
        _warm_pool = None
        _pool_counters["acquires"] += 1
        if pool is not None and width == workers and \
                not getattr(pool, "_broken", False):
            _pool_counters["warm_hits"] += 1
            return pool
    if pool is not None:
        kill_pool(pool)
    return _new_pool(workers)


def release_pool(pool: ProcessPoolExecutor, workers: int) -> None:
    """Park a healthy pool for the next acquirer; drop broken ones."""
    global _warm_pool, _warm_workers
    if getattr(pool, "_broken", False):
        kill_pool(pool)
        return
    with _warm_lock:
        if _warm_pool is None:
            _warm_pool, _warm_workers = pool, workers
            return
    # another pool parked meanwhile
    pool.shutdown(wait=False, cancel_futures=True)


def prewarm(workers: int | None = None) -> int:
    """Park a freshly spawned pool of ``workers`` ahead of first use.

    Idempotent: an already-parked pool of the right width is kept.  A
    parked pool of a *different* width is replaced (the next acquirer
    would kill it anyway).  Returns the parked width.
    """
    workers = default_workers() if workers is None else int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    global _warm_pool, _warm_workers
    with _warm_lock:
        if _warm_pool is not None and _warm_workers == workers and \
                not getattr(_warm_pool, "_broken", False):
            return workers
        stale, _warm_pool = _warm_pool, None
    if stale is not None:
        kill_pool(stale)
    pool = _new_pool(workers)
    _pool_counters["prewarmed"] += 1
    release_pool(pool, workers)
    return workers


def shutdown_warm_pool() -> None:
    """Drop the parked pool (atexit, and the tests' reset hook)."""
    global _warm_pool
    with _warm_lock:
        pool, _warm_pool = _warm_pool, None
    if pool is not None:
        kill_pool(pool)


def warm_pool_stats() -> dict[str, object]:
    """Observability for pool sharing (served by ``GET /stats``)."""
    with _warm_lock:
        return {
            "parked": _warm_pool is not None,
            "workers": _warm_workers if _warm_pool is not None else 0,
            **_pool_counters,
        }


atexit.register(shutdown_warm_pool)


def run_trials(
    worker: Callable[[A], T],
    args: Sequence[A] | Iterable[A],
    *,
    parallel: bool = True,
    max_workers: int | None = None,
    chunksize: int | None = None,
) -> list[T]:
    """Run ``worker`` over every element of ``args``; order-preserving.

    ``parallel=False`` (or a single work item) executes inline, which is
    also the debugger-friendly path.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(
            f"max_workers must be >= 1, got {max_workers} "
            "(pass None for the machine default)"
        )
    args = list(args)
    if not args:
        return []
    if not parallel or len(args) == 1:
        return [worker(a) for a in args]
    workers = max_workers if max_workers is not None else default_workers()
    if workers <= 1:
        return [worker(a) for a in args]
    if chunksize is None:
        chunksize = max(1, len(args) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers, mp_context=mp_context()) as pool:
        return list(pool.map(worker, args, chunksize=chunksize))
