"""Execution plans: one compiled description of a Monte-Carlo workload.

Every fastpath front door in :mod:`repro.experiments.dispatch` used to
re-implement the same three steps — validate the requested engine,
normalise the workload inputs, pick a trial-chunking — with four
slightly different spellings.  This module is the single home for all
of it: a front door *compiles* an :class:`ExecutionPlan` (workload
kind, engine, normalised options, seed spine, shard quantum) exactly
once, and a pluggable backend (:mod:`repro.exec.backends`) runs it.

Engine naming
-------------
:data:`ENGINES` is the one table of valid tiers per workload kind and
:data:`AUTO_ENGINE` the one ``auto`` routing policy; every front door
rejects an unknown tier with the same message (listing the valid
tiers) via :func:`resolve_engine`.

Shard quantum
-------------
``plan.shard_quantum`` is the trial-block granularity at which the
plan may be split without changing any result bit.  The per-trial
engines (``process``/``agent``), the parity modes, and the sequential
tick simulator derive one random stream per *trial*, so their quantum
is 1.  The statistical batch engines derive one stream per fixed-size
*block* of trials (``stat_block_trials`` / ``strategy_block_trials`` /
``graph_block_trials`` — functions of the workload shape only, never
of the backend), so their quantum is that block: a shard boundary at a
block multiple reproduces exactly the streams the unsharded run would
have derived, which is what makes the parallel backend's output
byte-identical to the serial one at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Hashable, Iterable, Mapping, Sequence

from repro.core.defenses import FULL_DEFENSES, Defenses
from repro.core.params import ProtocolParams
from repro.extensions.families import (
    GraphCSR,
    ScenarioWorkload,
    csr_from_networkx,
)
from repro.fastpath.batch import stat_block_trials
from repro.fastpath.graphs import graph_block_trials
from repro.fastpath.strategies import strategy_block_trials
from repro.util.faults import normalise_faulty

__all__ = [
    "AUTO_ENGINE",
    "BATCH_ENGINES",
    "ENGINES",
    "ExecutionPlan",
    "compile_async_plan",
    "compile_deviation_plan",
    "compile_graph_plan",
    "compile_honest_plan",
    "resolve_engine",
    "shard_size_hint",
]

#: The single engine-name table: valid tiers per workload kind.
ENGINES: dict[str, tuple[str, ...]] = {
    "honest": ("auto", "batch", "batch-parity", "process", "agent"),
    "deviation": ("auto", "batch-strategy", "process", "agent"),
    "graph": ("auto", "batch", "batch-parity", "process", "agent"),
    "async": ("auto", "batch", "process", "agent"),
}

#: The single ``auto`` routing table (DESIGN.md §1): the batched tiers
#: dominate the per-trial fallbacks on wall-clock and peak memory for
#: every workload the int64 guards admit.
AUTO_ENGINE: dict[str, str] = {
    "honest": "batch",
    "deviation": "batch-strategy",
    "graph": "batch",
    "async": "batch",
}

#: Engines the parallel backend may shard into trial blocks.  The
#: per-trial tiers are excluded: ``process`` owns its own pool and
#: ``agent`` is the inline debugging tier.
BATCH_ENGINES = frozenset({"batch", "batch-parity", "batch-strategy"})

#: Plan-option entries holding one value per trial; :meth:`ExecutionPlan
#: .slice` cuts these alongside the seed spine.
_PER_TRIAL_OPTIONS = ("faulty_list", "csrs")


def resolve_engine(kind: str, engine: str) -> str:
    """Validate ``engine`` against the single table and resolve ``auto``.

    Raises ``ValueError`` listing the valid tiers — the one error every
    front door emits for an unknown tier name.
    """
    try:
        valid = ENGINES[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {kind!r}; known: {tuple(ENGINES)}"
        ) from None
    if engine not in valid:
        raise ValueError(
            f"unknown engine {engine!r} for {kind} workloads; "
            f"valid tiers: {valid}"
        )
    return AUTO_ENGINE[kind] if engine == "auto" else engine


@dataclass(frozen=True)
class ExecutionPlan:
    """One compiled Monte-Carlo workload, ready for any backend.

    ``options`` holds the normalised engine inputs (picklable, so a
    sliced plan travels to pool workers as-is); ``engine`` is always a
    concrete tier (``auto`` resolves at compile time, the original
    request is kept for result metadata).
    """

    kind: str                     # honest | deviation | graph | async
    engine: str                   # resolved tier, never "auto"
    requested_engine: str
    seeds: tuple[int, ...]        # the trial seed spine, one per trial
    options: Mapping[str, Any]
    shard_quantum: int = 1

    @property
    def n_trials(self) -> int:
        return len(self.seeds)

    def slice(self, lo: int, hi: int) -> "ExecutionPlan":
        """The sub-plan of trials ``[lo, hi)``.

        Cuts the seed spine and every per-trial option entry; shared
        options (colors, gamma, ...) are carried by reference.  Results
        of slices cut at ``shard_quantum`` multiples concatenate to the
        unsliced plan's results bit-for-bit.
        """
        options = dict(self.options)
        for key in _PER_TRIAL_OPTIONS:
            if options.get(key) is not None:
                options[key] = options[key][lo:hi]
        ref = options.get("workload")
        if ref is not None:
            options["workload"] = ref.narrow(lo, hi)
        return replace(self, seeds=self.seeds[lo:hi], options=options)

    def __getstate__(self):
        # Cached-workload plans pickle *without* their CSR bytes: shard
        # workers re-attach the memory-mapped artifact through the
        # workload ref, so the control segment carries ~100 bytes per
        # shard instead of every neighbour array.  The in-memory copy
        # survives in the parent (slices are fresh dataclass instances),
        # keeping the serial-degrade fallback intact.
        state = dict(self.__dict__)
        options = state.get("options")
        if isinstance(options, dict) \
                and options.get("workload") is not None \
                and options.get("csrs") is not None:
            options = dict(options)
            options["csrs"] = None
            state["options"] = options
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


# ---------------------------------------------------------------------------
# Shard-size auto-tuning
# ---------------------------------------------------------------------------

#: Measured cost per (agent · trial), seconds, per engine tier — fit
#: from the serial timings in BENCH_fastpath.json / BENCH_parallel.json
#: (e.g. E7 batch-strategy: 3.75 ms/trial at n=512 → ~7.3 µs per
#: agent·trial; E10a graph batch: 2.65 ms/trial at n=512).  These feed
#: a *sizing heuristic only*: shard sizes are always rounded to the
#: plan's quantum, so a stale constant can cost wall-clock, never a
#: result bit.
_PER_AGENT_TRIAL_COST_S: dict[tuple[str, str], float] = {
    ("honest", "batch"): 2.0e-8,
    ("honest", "batch-parity"): 2.0e-6,
    ("deviation", "batch-strategy"): 7.5e-6,
    ("graph", "batch"): 5.0e-6,
    ("graph", "batch-parity"): 5.0e-6,
    ("async", "batch"): 6.0e-6,
}

#: Target wall-clock per shard.  Large enough that per-shard overhead
#: (task dispatch, one control-block unpickle) stays under ~1%, small
#: enough that the retry unit after a worker crash or timeout is cheap
#: and the pool load-balances across unequal cores.
_TARGET_SHARD_S = 0.2


def _plan_agents(plan: "ExecutionPlan") -> int:
    if plan.kind == "async":
        return int(plan.options["n"])
    return len(plan.options["colors"])


def shard_size_hint(plan: "ExecutionPlan", jobs: int) -> int | None:
    """The tuned shard size (in trials) for running ``plan`` on ``jobs``
    workers, or ``None`` when no cost table entry exists (callers fall
    back to the fixed shards-per-job heuristic).

    Pure arithmetic over the plan shape and the measured cost table —
    deterministic, and only ever a multiple of ``plan.shard_quantum``,
    so tuning can never move a shard boundary off a stream-quantum
    multiple (the byte-identity contract, DESIGN.md §9).
    """
    cost = _PER_AGENT_TRIAL_COST_S.get((plan.kind, plan.engine))
    if cost is None or jobs < 1:
        return None
    per_trial_s = cost * max(1, _plan_agents(plan))
    target_trials = max(1, int(_TARGET_SHARD_S / per_trial_s))
    # Never fewer than one shard per worker: an even split bounds the
    # shard size from above so small workloads still use every core.
    even_trials = -(-plan.n_trials // jobs)
    quantum = max(1, plan.shard_quantum)
    trials = min(target_trials, even_trials)
    return max(quantum, trials // quantum * quantum)


# ---------------------------------------------------------------------------
# Compilers: one per workload kind (= per dispatch front door)
# ---------------------------------------------------------------------------

def compile_honest_plan(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    engine: str = "auto",
    max_chunk_elements: int | None = None,
) -> ExecutionPlan:
    """Compile one honest-run workload (the ``run_trials_fast`` inputs)."""
    resolved = resolve_engine("honest", engine)
    colors = tuple(colors)
    seeds = tuple(int(s) for s in seeds)
    faulty_list = tuple(normalise_faulty(faulty, len(seeds)))
    quantum = stat_block_trials(len(colors)) if resolved == "batch" else 1
    return ExecutionPlan(
        kind="honest",
        engine=resolved,
        requested_engine=engine,
        seeds=seeds,
        options={
            "colors": colors,
            "gamma": float(gamma),
            "faulty_list": faulty_list,
            "max_chunk_elements": max_chunk_elements,
        },
        shard_quantum=quantum,
    )


def compile_deviation_plan(
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    strategy: str | None,
    members: Iterable[int] = frozenset(),
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] = frozenset(),
    defenses: Defenses = FULL_DEFENSES,
    engine: str = "auto",
) -> ExecutionPlan:
    """Compile one paired honest/deviant workload (E7–E9 inputs)."""
    resolved = resolve_engine("deviation", engine)
    colors = tuple(colors)
    seeds = tuple(int(s) for s in seeds)
    members = frozenset(members)
    faulty = frozenset(faulty)
    quantum = 1
    if resolved == "batch-strategy":
        params = ProtocolParams(
            n=len(colors), gamma=gamma, num_colors=len(set(colors))
        )
        quantum = strategy_block_trials(len(colors) - len(faulty), params.q)
    return ExecutionPlan(
        kind="deviation",
        engine=resolved,
        requested_engine=engine,
        seeds=seeds,
        options={
            "colors": colors,
            "strategy": strategy,
            "members": members,
            "gamma": float(gamma),
            "faulty": faulty,
            "defenses": defenses,
        },
        shard_quantum=quantum,
    )


def normalise_graphs(graphs: Any, n_trials: int) -> list[GraphCSR]:
    """One CSR per trial from a single graph / per-trial graphs, in
    either CSR or ``networkx`` form (shared objects stay shared, so the
    batch tier can skip replicating the neighbour arrays)."""
    if isinstance(graphs, GraphCSR) or not isinstance(
        graphs, (list, tuple)
    ):
        one = (graphs if isinstance(graphs, GraphCSR)
               else csr_from_networkx(graphs))
        return [one] * n_trials
    csrs = [
        g if isinstance(g, GraphCSR) else csr_from_networkx(g)
        for g in graphs
    ]
    if len(csrs) == 1:
        csrs = csrs * n_trials
    if len(csrs) != n_trials:
        raise ValueError(f"got {len(csrs)} graphs for {n_trials} trials")
    return csrs


def compile_graph_plan(
    graphs: Any,
    colors: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    gamma: float = 3.0,
    faulty: frozenset[int] | Iterable[frozenset[int]] | None = frozenset(),
    engine: str = "auto",
) -> ExecutionPlan:
    """Compile one graph-restricted workload (the E10a inputs).

    ``graphs`` may also be a :class:`~repro.extensions.families
    .ScenarioWorkload`: its per-trial CSRs feed the plan as usual, and
    when it is artifact-backed (``wl.ref``) the plan records the
    workload ref so shard workers attach the memory-mapped artifact
    instead of receiving repickled CSR bytes.
    """
    resolved = resolve_engine("graph", engine)
    colors = tuple(colors)
    seeds = tuple(int(s) for s in seeds)
    workload_ref = None
    if isinstance(graphs, ScenarioWorkload):
        workload_ref = graphs.ref
        graphs = graphs.csrs
    csrs = normalise_graphs(graphs, len(seeds))
    # Validate once so every tier accepts and rejects the same inputs.
    faulty_list = tuple(normalise_faulty(faulty, len(seeds), len(colors)))
    quantum = 1
    if resolved == "batch":
        params = ProtocolParams(
            n=len(colors), gamma=gamma, num_colors=len(set(colors))
        )
        quantum = graph_block_trials(len(colors), params.q)
    return ExecutionPlan(
        kind="graph",
        engine=resolved,
        requested_engine=engine,
        seeds=seeds,
        options={
            "colors": colors,
            "gamma": float(gamma),
            "faulty_list": faulty_list,
            "csrs": csrs,
            "workload": workload_ref,
        },
        shard_quantum=quantum,
    )


def compile_async_plan(
    n: int,
    seeds: Sequence[int],
    *,
    colors: Sequence[Hashable] | None = None,
    tick_budget_factor: float = 8.0,
    engine: str = "auto",
) -> ExecutionPlan:
    """Compile one sequential-model workload (the E10b inputs).

    Every async tier derives per-trial streams, so the shard quantum is
    always 1.
    """
    resolved = resolve_engine("async", engine)
    if colors is None:
        colors = tuple(f"id{i}" for i in range(n))
    colors = tuple(colors)
    if len(colors) != n:
        raise ValueError(f"{len(colors)} colors for n={n}")
    seeds = tuple(int(s) for s in seeds)
    return ExecutionPlan(
        kind="async",
        engine=resolved,
        requested_engine=engine,
        seeds=seeds,
        options={
            "n": int(n),
            "colors": colors,
            "tick_budget_factor": float(tick_budget_factor),
        },
        shard_quantum=1,
    )
