"""The unified execution-plan layer.

One sharded, multi-core backend behind every fastpath front door:

* :mod:`repro.exec.plan` — compile a workload (kind, engine, options,
  seed spine, shard quantum) into an :class:`ExecutionPlan`; the single
  engine-name table and ``auto`` routing policy live here.
* :mod:`repro.exec.backends` — run a plan on the ``serial`` backend
  (bit-identical to the historical in-process behaviour) or the
  ``parallel`` backend (quantum-aligned trial shards over a process
  pool, per-shard seeds sliced from the plan's spine, results merged by
  streaming reducers).  ``run_plan`` output is byte-identical across
  backends, worker counts and shard layouts.
* :mod:`repro.exec.reducers` — shard-order merge of struct-of-arrays
  batch results.
* :mod:`repro.exec.pool` — the process-pool primitive shared by the
  ``process`` tier and the parallel backend, plus the parked warm pool
  reused across runs (and across the experiment service's jobs;
  ``prewarm``/``warm_pool_stats``).
* :mod:`repro.exec.chaos` — deterministic fault injection (worker
  kills, shard delays, torn archive writes) exercising the recovery
  paths above; see DESIGN.md §10 for the fault-tolerance contract.

The experiment front doors (:mod:`repro.experiments.dispatch`) are thin
adapters over this package; see DESIGN.md §9 for the sharding and
merge semantics.
"""

from repro.exec.backends import (
    BACKENDS,
    ExecRecord,
    FaultPolicy,
    collect_execution,
    fault_policy,
    get_fault_policy,
    parse_max_retries,
    parse_shard_timeout,
    resolve_backend,
    run_plan,
    set_fault_policy,
)
from repro.exec.chaos import ChaosConfig, ShardChaos, chaos_enabled
from repro.exec.plan import (
    AUTO_ENGINE,
    BATCH_ENGINES,
    ENGINES,
    ExecutionPlan,
    compile_async_plan,
    compile_deviation_plan,
    compile_graph_plan,
    compile_honest_plan,
    resolve_engine,
    shard_size_hint,
)
from repro.exec.pool import (
    available_cpus,
    default_workers,
    mp_context,
    prewarm,
    run_trials,
    shutdown_warm_pool,
    warm_pool_stats,
)
from repro.exec.reducers import ShardReducer, merge_shards, merge_stubs
from repro.exec.shm import shm_enabled

__all__ = [
    "AUTO_ENGINE",
    "BACKENDS",
    "BATCH_ENGINES",
    "ENGINES",
    "ChaosConfig",
    "ExecRecord",
    "ExecutionPlan",
    "FaultPolicy",
    "ShardChaos",
    "ShardReducer",
    "available_cpus",
    "chaos_enabled",
    "collect_execution",
    "fault_policy",
    "compile_async_plan",
    "compile_deviation_plan",
    "compile_graph_plan",
    "compile_honest_plan",
    "default_workers",
    "get_fault_policy",
    "merge_shards",
    "merge_stubs",
    "mp_context",
    "parse_max_retries",
    "parse_shard_timeout",
    "prewarm",
    "resolve_backend",
    "resolve_engine",
    "run_plan",
    "run_trials",
    "set_fault_policy",
    "shard_size_hint",
    "shm_enabled",
    "shutdown_warm_pool",
    "warm_pool_stats",
]
