"""Pluggable plan backends: serial (in-process) and parallel (sharded).

:func:`run_plan` is the one entry point: it takes a compiled
:class:`~repro.exec.plan.ExecutionPlan` and executes it on a backend —

``serial``
    Today's behaviour, bit-identical: the plan's engine runs over the
    whole trial list in this process.

``parallel``
    The plan is cut into trial shards at multiples of its
    ``shard_quantum`` and fanned over a process pool of ``jobs``
    workers; per-shard seeds are the corresponding slices of the plan's
    seed spine, and shard results stream back through
    :mod:`repro.exec.reducers` in shard-index order.  Because shard
    boundaries respect the engines' stream quantum, the merged result
    is byte-identical to the serial backend at any ``jobs`` — the
    backend choice is pure mechanics, never part of a result's
    identity.

``auto``
    ``parallel`` when ``jobs > 1``, else ``serial``.

Only the batched tiers shard (:data:`~repro.exec.plan.BATCH_ENGINES`);
the ``process`` tier keeps its own per-trial pool (``jobs`` caps its
worker count) and ``agent`` stays inline by design.  A plan whose
workload is smaller than one stream quantum falls back to serial — the
engines' block streams cannot be cut finer without changing results.

Every run is recorded with the telemetry collector
(:func:`collect_execution`), which is how experiment metadata learns
the backend, job count and shard count that produced a result.

Fault tolerance
---------------
The parallel backend assumes workers can die.  Each shard submission
is governed by the active :class:`FaultPolicy`: a failed shard (worker
exception, ``BrokenProcessPool`` after a worker was killed, or a shard
running past ``shard_timeout_s``) is retried with exponential backoff
— respawning the pool whenever it broke or a hung worker had to be
reclaimed — and a shard that keeps failing past ``max_retries``
*degrades*: it re-runs serially in this process.  Because per-shard
seeds are deterministic slices of the plan's seed spine, every
recovery path (retry on a fresh worker, respawned pool, serial
degradation) reproduces exactly the bytes the unfaulted run would
have produced; faults cost wall time, never correctness.  The
recovery counters (retries, failures, degradations, recovery wall
time) land in :class:`ExecRecord` and from there in ``ResultMeta``.
:mod:`repro.exec.chaos` injects faults deterministically so all of
this stays tested.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

import numpy as np

from repro.agents.plans import plan as make_plan
from repro.exec import chaos
from repro.exec import shm as shm_transport
from repro.core.defenses import Defenses
from repro.core.protocol import ProtocolConfig, run_protocol
from repro.exec.plan import BATCH_ENGINES, ExecutionPlan, shard_size_hint
from repro.exec.pool import (
    _new_pool,
    acquire_pool as _acquire_pool,
    default_workers,
    kill_pool as _kill_pool,
    mp_context,
    release_pool as _release_pool,
    run_trials,
)
from repro.exec.reducers import merge_shards, merge_stubs
from repro.extensions.async_gossip import (
    AsyncBatchResult,
    async_min_ticks,
    async_min_ticks_batch,
    async_minagg_values,
    run_async_leader_election,
    run_async_leader_election_batch,
)
from repro.extensions.families import GraphCSR
from repro.fastpath.batch import (
    FastBatchResult,
    batch_from_runs,
    simulate_protocol_fast_batch,
)
from repro.fastpath.graphs import GraphBatchResult, simulate_graph_fast_batch
from repro.fastpath.simulate import FastRunResult, simulate_protocol_fast
from repro.fastpath.strategies import (
    StrategyBatchResult,
    simulate_strategy_fast_batch,
)

__all__ = [
    "BACKENDS",
    "ExecRecord",
    "FaultPolicy",
    "collect_execution",
    "fault_policy",
    "get_fault_policy",
    "parse_max_retries",
    "parse_shard_timeout",
    "resolve_backend",
    "run_plan",
    "set_fault_policy",
]

BACKENDS = ("auto", "serial", "parallel")

#: Target shards per worker when no measured shard-size hint exists
#: for the plan's engine (``repro.exec.plan.shard_size_hint``): a
#: little oversharding smooths out uneven shard costs without
#: multiplying the per-shard dispatch overhead.
_SHARDS_PER_JOB = 2


# ---------------------------------------------------------------------------
# Telemetry: how result metadata learns what actually ran
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExecRecord:
    """One plan execution, as seen by an active telemetry collector.

    The recovery fields are zero on a fault-free run: ``retries``
    counts shard resubmissions after a fault, ``shard_failures`` the
    individual failure events (worker exception / broken pool /
    timeout), ``degraded_shards`` the shards that exhausted their
    retry budget and re-ran serially in-process, ``recovery_wall_s``
    the wall time spent on backoff, pool respawns and serial re-runs.

    ``jobs`` is what was *requested*; ``workers`` is the pool size
    that actually ran (capped by the shard count, 1 on the serial
    path) — benchmarks must archive the latter, or a 4-job run on a
    1-CPU box reads as a parallel measurement.  ``transport`` names
    the shard-result channel: ``shm`` (zero-copy shared memory),
    ``pickle`` (the fallback), or ``inline`` (no shard ever left the
    process).
    """

    kind: str
    engine: str
    backend: str      # the backend that actually ran ("serial"/"parallel")
    jobs: int
    shards: int
    n_trials: int
    wall_time_s: float
    retries: int = 0
    shard_failures: int = 0
    degraded_shards: int = 0
    recovery_wall_s: float = 0.0
    workers: int = 1
    transport: str = "inline"


_collectors: list[list[ExecRecord]] = []


@contextmanager
def collect_execution() -> Iterator[list[ExecRecord]]:
    """Collect every :func:`run_plan` record issued inside the block.

    Collectors nest (each sees the records of its own scope, inner
    scopes included); the experiment registry wraps each run in one to
    stamp ``backend``/``jobs``/``shards`` into the result metadata.
    """
    records: list[ExecRecord] = []
    _collectors.append(records)
    try:
        yield records
    finally:
        # Remove by identity: list.remove compares by value, and two
        # nested collectors are value-equal whenever the outer held no
        # records when the inner opened — it would detach the wrong one.
        _collectors[:] = [c for c in _collectors if c is not records]


def _record(record: ExecRecord) -> None:
    for collector in _collectors:
        collector.append(record)


# ---------------------------------------------------------------------------
# Fault policy: how the parallel backend survives failing shards
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultPolicy:
    """Retry/timeout/degradation knobs for the parallel backend.

    ``shard_timeout_s`` is the wall-time budget of one shard submission
    (queue wait included); ``None`` disables the timeout.  A shard that
    fails more than ``max_retries`` times degrades to a serial
    in-process re-run — slower, byte-identical — so a study completes
    even under a persistently failing pool.  ``backoff_base_s`` /
    ``backoff_factor`` shape the exponential pause between retry
    rounds.  These are execution-only knobs: like ``jobs``, they can
    never change a result's bytes (DESIGN.md §10).
    """

    shard_timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.shard_timeout_s is not None and (
            math.isnan(self.shard_timeout_s) or self.shard_timeout_s <= 0
        ):
            raise ValueError(
                f"shard_timeout_s must be > 0 or None, got "
                f"{self.shard_timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )

    def backoff_s(self, round_index: int) -> float:
        """The pause before retry round ``round_index`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor ** round_index


_DEFAULT_POLICY = FaultPolicy()
_policy_override: FaultPolicy | None = None


def set_fault_policy(policy: FaultPolicy | None) -> None:
    """Set the process-wide fault policy (``None`` restores defaults).

    The CLI's ``--shard-timeout``/``--max-retries`` flags land here;
    per-call overrides go through ``run_plan(..., policy=...)``.
    """
    global _policy_override
    _policy_override = policy


def parse_shard_timeout(raw: str, source: str) -> float | None:
    """Parse a shard-timeout value from ``source`` (an env var or CLI
    flag name, used verbatim in the error).

    Accepts a positive number of seconds (``12.5``); an empty string
    means "unset" (``None``).  Rejects non-numeric text, NaN, zero and
    negatives — ``float("nan")`` would silently disable every deadline
    comparison, which is how a typo'd knob used to turn the timeout
    machinery off without a word.
    """
    text = raw.strip()
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"{source} must be a positive number of seconds "
            f"(shard_timeout_s), got {raw!r}"
        ) from None
    if math.isnan(value) or value <= 0:
        raise ValueError(
            f"{source} must be a positive number of seconds "
            f"(shard_timeout_s), got {raw!r}"
        )
    return value


def parse_max_retries(raw: str, source: str) -> int | None:
    """Parse a retry budget from ``source`` (env var or CLI flag name).

    Accepts a non-negative integer (``0`` disables retries but keeps
    serial degradation); an empty string means "unset" (``None``).
    Rejects non-integer text (``two``, ``1.5``) and negatives.
    """
    text = raw.strip()
    if not text:
        return None
    try:
        value = int(text)
    except ValueError:
        raise ValueError(
            f"{source} must be a non-negative integer (max_retries), "
            f"got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(
            f"{source} must be a non-negative integer (max_retries), "
            f"got {raw!r}"
        )
    return value


def get_fault_policy() -> FaultPolicy:
    """The active fault policy.

    Priority: :func:`set_fault_policy` override, then the
    ``REPRO_SHARD_TIMEOUT`` / ``REPRO_MAX_RETRIES`` environment knobs,
    then the defaults (no timeout, 2 retries).  Malformed knobs raise
    ``ValueError`` naming the variable and the accepted form — never a
    bare ``float()``/``int()`` traceback, and never a silently
    accepted NaN or negative.
    """
    if _policy_override is not None:
        return _policy_override
    timeout_raw = os.environ.get("REPRO_SHARD_TIMEOUT")
    retries_raw = os.environ.get("REPRO_MAX_RETRIES")
    if timeout_raw is None and retries_raw is None:
        return _DEFAULT_POLICY
    timeout = (
        parse_shard_timeout(timeout_raw, "REPRO_SHARD_TIMEOUT")
        if timeout_raw is not None else None
    )
    retries = (
        parse_max_retries(retries_raw, "REPRO_MAX_RETRIES")
        if retries_raw is not None else None
    )
    return FaultPolicy(
        shard_timeout_s=timeout,
        max_retries=(
            retries if retries is not None else _DEFAULT_POLICY.max_retries
        ),
    )


@contextmanager
def fault_policy(policy: FaultPolicy) -> Iterator[FaultPolicy]:
    """Scoped :func:`set_fault_policy` (restores the previous policy)."""
    previous = _policy_override
    set_fault_policy(policy)
    try:
        yield policy
    finally:
        set_fault_policy(previous)


@dataclass
class _Recovery:
    """Mutable recovery counters for one parallel plan execution."""

    retries: int = 0
    failures: int = 0
    degraded: int = 0
    wall_s: float = 0.0


# ---------------------------------------------------------------------------
# Backend selection and the public entry point
# ---------------------------------------------------------------------------

def resolve_backend(backend: str, jobs: int | None) -> tuple[str, int]:
    """Validate the backend name and normalise the worker count.

    ``jobs=None`` means "unspecified": serial under ``auto``, the
    machine default under an explicit ``parallel``.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known: {BACKENDS}"
        )
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
    if backend == "auto":
        backend = "parallel" if jobs is not None and jobs > 1 else "serial"
    if backend == "parallel" and jobs is None:
        jobs = default_workers()
    return backend, (jobs if jobs is not None else 1)


def run_plan(
    plan: ExecutionPlan,
    *,
    backend: str = "auto",
    jobs: int | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
    policy: FaultPolicy | None = None,
) -> Any:
    """Execute a compiled plan and return its engine's batch result.

    ``parallel``/``max_workers`` are the per-trial tiers' legacy knobs
    (the ``process`` engine's own pool); ``jobs`` is the plan-level
    worker count; ``policy`` overrides the process-wide
    :func:`get_fault_policy` for this run.  Results are deterministic
    in the plan alone — no backend, job count, shard layout or fault
    recovery leaks into them.
    """
    backend, jobs = resolve_backend(backend, jobs)
    policy = policy if policy is not None else get_fault_policy()
    start = time.perf_counter()
    shards = 1
    workers = 1
    transport = "inline"
    recovery = _Recovery()
    if (
        backend == "parallel"
        and jobs > 1
        and plan.engine in BATCH_ENGINES
        and plan.n_trials > plan.shard_quantum
    ):
        result, shards, recovery, workers, transport = _run_parallel(
            plan, jobs, policy
        )
        ran = "parallel" if shards > 1 else "serial"
    else:
        if plan.engine == "process" and max_workers is None and jobs > 1:
            max_workers = jobs
        result = _compute(plan, parallel=parallel, max_workers=max_workers)
        ran = "serial"
    _record(ExecRecord(
        kind=plan.kind, engine=plan.engine, backend=ran, jobs=jobs,
        shards=shards, n_trials=plan.n_trials,
        wall_time_s=time.perf_counter() - start,
        retries=recovery.retries,
        shard_failures=recovery.failures,
        degraded_shards=recovery.degraded,
        recovery_wall_s=recovery.wall_s,
        workers=workers,
        transport=transport,
    ))
    return result


# ---------------------------------------------------------------------------
# The parallel backend: quantum-aligned trial shards over a process pool
# ---------------------------------------------------------------------------

def shard_bounds(
    n_trials: int, quantum: int, jobs: int,
    size: int | None = None,
) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` trial shards, every ``lo`` on a quantum
    multiple.

    ``size`` is the tuned shard size from
    :func:`repro.exec.plan.shard_size_hint` (already a quantum
    multiple); without one, the shard size falls back to the smallest
    quantum multiple that keeps the shard count near
    ``jobs * _SHARDS_PER_JOB``.  Only the last shard may be shorter.
    Any quantum-aligned cut yields the same merged result, so the
    layout is free to chase load balance.
    """
    if n_trials <= 0:
        return []
    if size is None:
        target = max(1, math.ceil(n_trials / (jobs * _SHARDS_PER_JOB)))
        size = quantum * math.ceil(target / quantum)
    return [
        (lo, min(lo + size, n_trials)) for lo in range(0, n_trials, size)
    ]


# ---------------------------------------------------------------------------
# Shard-result transports: how a shard's output reaches the parent
# ---------------------------------------------------------------------------

#: The batch-result class each workload kind's batched tiers produce —
#: what the shared-memory transport sizes its result segment from.
_RESULT_TYPES: dict[str, type] = {
    "honest": FastBatchResult,
    "deviation": StrategyBatchResult,
    "graph": GraphBatchResult,
    "async": AsyncBatchResult,
}


class _PickleTransport:
    """The legacy channel: shard results pickle through the pool pipe.

    Kept as the ``REPRO_SHM=0`` escape hatch, the fallback when a
    result type lacks the out-buffer protocol or shared memory cannot
    be allocated, and the reference the zero-copy path is
    byte-compared against in tests.
    """

    name = "pickle"

    def __init__(self, bounds: list[tuple[int, int]],
                 shard_plans: list[ExecutionPlan]) -> None:
        self._shard_plans = shard_plans
        self._results: dict[int, Any] = {}

    def task(self, idx: int,
             spec: "chaos.ShardChaos | None") -> tuple[Any, Any]:
        return _compute_shard, (self._shard_plans[idx], spec)

    def absorb(self, idx: int, value: Any) -> None:
        self._results[idx] = value

    def degrade(self, idx: int) -> None:
        self._results[idx] = _compute(self._shard_plans[idx], parallel=False)

    def finish(self, n_shards: int) -> Any:
        return merge_shards(self._results[i] for i in range(n_shards))

    def close(self) -> None:
        pass


class _ShmTransport:
    """The zero-copy channel (DESIGN.md §9).

    The parent allocates one result segment sized for the *merged*
    result and one control segment holding the layout plus every
    shard's pickled sub-plan; workers attach by name, write their
    ``[lo, hi)`` slice of each array in place and return only a scalar
    stub.  ``finish`` merges the stubs and builds the result over
    full-length views of the segment — the arrays are never copied or
    concatenated — then unlinks both segments (the parent's mapping
    outlives the unlink).  ``close`` is idempotent and called on every
    exit path, so no code path can leak a ``/dev/shm`` entry past the
    run.
    """

    name = "shm"

    def __init__(self, plan: ExecutionPlan, bounds: list[tuple[int, int]],
                 shard_plans: list[ExecutionPlan], cls: type) -> None:
        self._cls = cls
        self._bounds = bounds
        self._shard_plans = shard_plans
        self._layout = shm_transport.plan_layout(cls, plan.n_trials)
        self._stubs: dict[int, dict[str, Any]] = {}
        self._closed = False
        self._data = shm_transport.OwnedSegment(self._layout.size)
        try:
            blob = shm_transport.pack_control(
                self._layout, bounds,
                [pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL)
                 for p in shard_plans],
            )
            self._ctrl = shm_transport.OwnedSegment(len(blob))
            self._ctrl.write(blob)
        except BaseException:
            self._data.unlink()
            raise
        self._views = self._layout.views(self._data.shm)

    def task(self, idx: int,
             spec: "chaos.ShardChaos | None") -> tuple[Any, Any]:
        return _compute_shard_shm, (
            self._ctrl.name, self._data.name, idx, spec
        )

    def absorb(self, idx: int, value: Any) -> None:
        self._stubs[idx] = value

    def degrade(self, idx: int) -> None:
        # The serial degradation path writes the shard's slice from the
        # parent itself — same views, same bytes, no pool involved.
        lo, hi = self._bounds[idx]
        result = _compute(self._shard_plans[idx], parallel=False)
        shm_transport.export_batch(result, self._views, lo, hi)
        self._stubs[idx] = shm_transport.scalar_stub(result)

    def finish(self, n_shards: int) -> Any:
        stub = merge_stubs(
            [self._stubs[i] for i in range(n_shards)], self._cls
        )
        result = shm_transport.build_batch(self._cls, stub, self._views)
        # The merged arrays are views over the data segment: retain the
        # mapping for the life of the process *before* unlinking, so the
        # segment object can never be finalised under the arrays.
        shm_transport.retain(self._data)
        self.close()
        return result

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._ctrl.unlink()
            self._data.unlink()


def _make_transport(
    plan: ExecutionPlan, bounds: list[tuple[int, int]],
    shard_plans: list[ExecutionPlan],
) -> "_ShmTransport | _PickleTransport":
    cls = _RESULT_TYPES.get(plan.kind)
    if (
        shm_transport.shm_enabled()
        and cls is not None
        and shm_transport.supports_buffers(cls)
    ):
        try:
            return _ShmTransport(plan, bounds, shard_plans, cls)
        except OSError:
            pass  # no usable shared memory on this box: pickle instead
    return _PickleTransport(bounds, shard_plans)


def _compute_shard(
    args: tuple[ExecutionPlan, "chaos.ShardChaos | None"]
) -> Any:
    """Pool worker (pickle transport): run one shard's sub-plan serially.

    The second element is the shard's injected fault plan (``None``
    outside chaos runs), applied before the computation so recovery
    paths are exercised by deterministic schedules.  ``kill_mid_write``
    has no in-place write to tear here; it degrades to dying after the
    compute, before the result can be returned.
    """
    shard_plan, spec = args
    if spec is not None:
        spec.apply()
    result = _compute(shard_plan, parallel=False)
    if spec is not None and spec.kill_mid_write:
        spec.die()
    return result


def _compute_shard_shm(
    args: tuple[str, str, int, "chaos.ShardChaos | None"]
) -> dict[str, Any]:
    """Pool worker (shm transport): compute a shard and write it in place.

    The task travels as two segment names plus a shard index: the
    worker reads its sub-plan out of the control segment (pickled once
    by the parent, re-read on every retry), computes it, writes every
    result array's ``[lo, hi)`` slice into the data segment and returns
    only the scalar stub.  Segment attachments are cached per worker
    process and deregistered from the worker's resource tracker — the
    parent alone owns cleanup.
    """
    ctrl_name, data_name, shard_index, spec = args
    ctrl = shm_transport.attached("ctrl", ctrl_name)
    header = shm_transport.read_control_header(ctrl.buf)
    shard_plan = shm_transport.read_control_plan(
        ctrl.buf, header, shard_index
    )
    if spec is not None:
        spec.apply()
    result = _compute(shard_plan, parallel=False)
    data = shm_transport.attached("data", data_name)
    views = header["layout"].views(data)
    lo, hi = header["bounds"][shard_index]
    shm_transport.export_batch(result, views, lo, hi, fault=spec)
    return shm_transport.scalar_stub(result)


# ---------------------------------------------------------------------------
# Warm pool: parked and reused across plan executions.  The park/
# acquire machinery lives in repro.exec.pool (it is shared state: the
# experiment service's daemon prewarms and reuses the same pool across
# jobs); this backend only acquires, releases and kills pools.
# ---------------------------------------------------------------------------


def _run_parallel(
    plan: ExecutionPlan, jobs: int, policy: FaultPolicy
) -> tuple[Any, int, _Recovery, int, str]:
    """The fault-tolerant sharded backend.

    Shards are submitted in rounds: each round fans the remaining
    shards over the pool and drains completions.  A worker exception
    marks its shard failed (retried next round); a broken pool or a
    shard past its timeout kills and respawns the pool (hung workers
    cannot be reclaimed any other way) and the round restarts with
    whatever is left.  A shard that fails more than
    ``policy.max_retries`` times re-runs serially in this process —
    the trusted degradation path, byte-identical because shard seeds
    are deterministic slices of the plan's spine.

    Shard results travel on a transport: zero-copy shared memory where
    the result type supports it (``_ShmTransport``), pickling
    otherwise.  The transport is closed — shared memory unlinked — on
    every exit path, faulted ones included.
    """
    size = shard_size_hint(plan, jobs)
    bounds = shard_bounds(plan.n_trials, plan.shard_quantum, jobs, size=size)
    recovery = _Recovery()
    if len(bounds) <= 1:
        return _compute(plan, parallel=False), 1, recovery, 1, "inline"
    shard_plans = [plan.slice(lo, hi) for lo, hi in bounds]
    n_shards = len(bounds)
    workers = min(jobs, n_shards)
    transport = _make_transport(plan, bounds, shard_plans)
    cfg = chaos.active_config()
    submissions = [0] * n_shards      # chaos attempt index per shard
    failures = [0] * n_shards
    remaining = set(range(n_shards))
    round_no = 0
    pool = _acquire_pool(workers)
    try:
        while remaining:
            for idx in sorted(remaining):
                if failures[idx] > policy.max_retries:
                    # Degrade: the shard re-runs serially in-process
                    # (never through chaos or the pool), so the study
                    # completes with identical bytes.
                    t0 = time.perf_counter()
                    transport.degrade(idx)
                    recovery.degraded += 1
                    recovery.wall_s += time.perf_counter() - t0
                    remaining.discard(idx)
            if not remaining:
                break
            if round_no > 0 and policy.backoff_base_s > 0:
                pause = policy.backoff_s(round_no - 1)
                time.sleep(pause)
                recovery.wall_s += pause
            round_no += 1
            pool = _run_round(
                pool, transport, remaining, submissions,
                failures, policy, cfg, recovery, workers,
            )
        merged = transport.finish(n_shards)
    except BaseException:
        # KeyboardInterrupt (and anything else unrecoverable): cancel
        # queued shards and kill in-flight workers before propagating.
        _kill_pool(pool)
        raise
    finally:
        # Idempotent: the success path already closed via finish();
        # every other path unlinks the shared memory right here.
        transport.close()
    _release_pool(pool, workers)
    return merged, n_shards, recovery, workers, transport.name


def _run_round(
    pool: ProcessPoolExecutor,
    transport: "_ShmTransport | _PickleTransport",
    remaining: set[int],
    submissions: list[int],
    failures: list[int],
    policy: FaultPolicy,
    cfg: "chaos.ChaosConfig | None",
    recovery: _Recovery,
    workers: int,
) -> ProcessPoolExecutor:
    """Submit every remaining shard once and drain completions.

    Completed shards leave ``remaining``; failed ones stay for the
    next round with their failure count bumped.  Returns the pool to
    use next — a fresh one whenever this round broke the old pool
    (worker death) or had to reclaim a hung worker (shard timeout).
    """
    pending: dict[Future, int] = {}
    deadlines: dict[int, float] = {}
    broke = False
    timed_out = False
    try:
        for idx in sorted(remaining):
            spec = cfg.shard_chaos(idx, submissions[idx]) if cfg else None
            if submissions[idx] > 0:
                recovery.retries += 1
            submissions[idx] += 1
            fn, args = transport.task(idx, spec)
            future = pool.submit(fn, args)
            pending[future] = idx
            if policy.shard_timeout_s is not None:
                deadlines[idx] = time.monotonic() + policy.shard_timeout_s
    except BrokenProcessPool:
        broke = True
    while pending and not broke:
        timeout = None
        if deadlines:
            timeout = max(0.0, min(deadlines.values()) - time.monotonic())
        done, _ = wait(pending, timeout=timeout,
                       return_when=FIRST_COMPLETED)
        for future in done:
            idx = pending.pop(future)
            deadlines.pop(idx, None)
            try:
                value = future.result()
            except BrokenProcessPool:
                failures[idx] += 1
                recovery.failures += 1
                broke = True
            except Exception:
                # A picklable worker exception: the pool survives, the
                # shard retries next round.
                failures[idx] += 1
                recovery.failures += 1
            else:
                transport.absorb(idx, value)
                remaining.discard(idx)
        now = time.monotonic()
        expired = [i for i, dl in deadlines.items() if dl <= now]
        if expired:
            for idx in expired:
                failures[idx] += 1
                recovery.failures += 1
            broke = True
            timed_out = True
    if pending and broke:
        # A break abandons the round's in-flight futures, but the
        # executor has already failed the ones it accepted — and a
        # *submit-time* break (a warm pool's worker dying before the
        # round finished fanning out) can exit the drain loop above
        # without running it once.  Sweep what completes so those
        # failure events are counted, not silently dropped; after a
        # shard timeout the stragglers belong to hung workers, so only
        # already-done futures are taken.
        done, _ = wait(pending, timeout=0.0 if timed_out else 1.0)
        for future in done:
            idx = pending.pop(future)
            try:
                value = future.result()
            except Exception:
                failures[idx] += 1
                recovery.failures += 1
            else:
                transport.absorb(idx, value)
                remaining.discard(idx)
    if broke:
        t0 = time.perf_counter()
        _kill_pool(pool)
        pool = _new_pool(workers)
        recovery.wall_s += time.perf_counter() - t0
    return pool


# ---------------------------------------------------------------------------
# The serial backend: one engine route per workload kind
# ---------------------------------------------------------------------------

def _compute(
    plan: ExecutionPlan,
    *,
    parallel: bool = True,
    max_workers: int | None = None,
) -> Any:
    """Run the whole plan in-process on its engine (the serial backend)."""
    compute = _COMPUTE[plan.kind]
    return compute(plan, parallel, max_workers)


def _compute_honest(
    plan: ExecutionPlan, parallel: bool, max_workers: int | None
) -> FastBatchResult:
    opt = plan.options
    seeds = list(plan.seeds)
    if plan.engine in ("batch", "batch-parity"):
        return simulate_protocol_fast_batch(
            opt["colors"], seeds, gamma=opt["gamma"],
            faulty=opt["faulty_list"],
            seed_parity=(plan.engine == "batch-parity"),
            max_chunk_elements=opt["max_chunk_elements"],
        )
    worker = _fast_worker if plan.engine == "process" else _agent_worker
    runs = run_trials(
        worker,
        [(opt["colors"], opt["gamma"], f, s)
         for f, s in zip(opt["faulty_list"], seeds)],
        parallel=(parallel and plan.engine == "process"),
        max_workers=max_workers,
    )
    return batch_from_runs(runs, opt["colors"])


def _compute_deviation(
    plan: ExecutionPlan, parallel: bool, max_workers: int | None
) -> StrategyBatchResult:
    opt = plan.options
    seeds = list(plan.seeds)
    if plan.engine == "batch-strategy":
        return simulate_strategy_fast_batch(
            opt["colors"], seeds, opt["strategy"], opt["members"],
            gamma=opt["gamma"], faulty=opt["faulty"],
            defenses=opt["defenses"],
        )
    args = [
        (opt["colors"], opt["gamma"], opt["strategy"],
         tuple(sorted(opt["members"])), tuple(sorted(opt["faulty"])),
         opt["defenses"], s)
        for s in seeds
    ]
    rows = run_trials(
        _deviation_worker, args,
        parallel=(parallel and plan.engine == "process"),
        max_workers=max_workers,
    )
    honest_runs = [r[0] for r in rows]
    dev_runs = [r[1] for r in rows]
    return StrategyBatchResult(
        strategy=opt["strategy"] or "honest_shadow",
        members=tuple(sorted(opt["members"])),
        honest=batch_from_runs(honest_runs, opt["colors"]),
        deviant=batch_from_runs(dev_runs, opt["colors"]),
        detected=np.array([r[2] for r in rows], dtype=bool),
        split=np.array([r[3] for r in rows], dtype=bool),
        forged=np.array([r[4] for r in rows], dtype=bool),
        exposed_members=np.array([r[5] for r in rows], dtype=np.int64),
    )


def _compute_graph(
    plan: ExecutionPlan, parallel: bool, max_workers: int | None
) -> GraphBatchResult:
    opt = plan.options
    seeds = list(plan.seeds)
    csrs = opt["csrs"]
    if csrs is None:
        # Cached-workload plan shipped without its CSR bytes: re-attach
        # the memory-mapped artifact (shared per worker process) and
        # slice this shard's trial window.
        ref = opt.get("workload")
        if ref is None:
            raise ValueError("graph plan has neither csrs nor workload ref")
        csrs = ref.csrs()
    if plan.engine in ("batch", "batch-parity"):
        return simulate_graph_fast_batch(
            csrs, opt["colors"], seeds, gamma=opt["gamma"],
            faulty=list(opt["faulty_list"]),
            seed_parity=(plan.engine == "batch-parity"),
        )
    rows = run_trials(
        _graph_agent_worker,
        [(c, opt["colors"], opt["gamma"], tuple(sorted(f)), s)
         for c, f, s in zip(csrs, opt["faulty_list"], seeds)],
        parallel=(parallel and plan.engine == "process"),
        max_workers=max_workers,
    )
    cols = list(zip(*rows)) if rows else [[]] * 7
    return GraphBatchResult(
        n=len(opt["colors"]),
        n_trials=len(seeds),
        colors=opt["colors"],
        n_active=np.array(cols[0], dtype=np.int64),
        success=np.array(cols[1], dtype=bool),
        winner=np.array(cols[2], dtype=np.int64),
        outcome_idx=np.array(cols[3], dtype=np.int64),
        zero_vote_agents=np.array(cols[4], dtype=np.int64),
        split=np.array(cols[5], dtype=bool),
        failed_agents=np.array(cols[6], dtype=np.int64),
    )


def _compute_async(
    plan: ExecutionPlan, parallel: bool, max_workers: int | None
) -> AsyncBatchResult:
    opt = plan.options
    n = opt["n"]
    seeds = list(plan.seeds)
    if plan.engine == "batch":
        values = np.stack([async_minagg_values(n, s) for s in seeds]) \
            if seeds else np.zeros((0, n), dtype=np.int64)
        minagg = async_min_ticks_batch(values, seeds) if seeds else \
            np.zeros(0, dtype=np.int64)
        if seeds:
            conv, winner, eticks = run_async_leader_election_batch(
                opt["colors"], seeds, opt["tick_budget_factor"]
            )
        else:
            conv = np.zeros(0, dtype=bool)
            winner = np.zeros(0, dtype=np.int64)
            eticks = np.zeros(0, dtype=np.int64)
        return AsyncBatchResult(
            n=n, n_trials=len(seeds), minagg_ticks=minagg,
            election_converged=conv, election_winner=winner,
            election_ticks=eticks,
        )
    rows = run_trials(
        _async_agent_worker,
        [(n, opt["colors"], opt["tick_budget_factor"], s) for s in seeds],
        parallel=(parallel and plan.engine == "process"),
        max_workers=max_workers,
    )
    cols = list(zip(*rows)) if rows else [[]] * 4
    return AsyncBatchResult(
        n=n,
        n_trials=len(seeds),
        minagg_ticks=np.array(cols[0], dtype=np.int64),
        election_converged=np.array(cols[1], dtype=bool),
        election_winner=np.array(cols[2], dtype=np.int64),
        election_ticks=np.array(cols[3], dtype=np.int64),
    )


_COMPUTE = {
    "honest": _compute_honest,
    "deviation": _compute_deviation,
    "graph": _compute_graph,
    "async": _compute_async,
}


# ---------------------------------------------------------------------------
# Per-trial engine workers (module-level: pool workers must pickle)
# ---------------------------------------------------------------------------

def _fast_worker(
    args: tuple[tuple[Hashable, ...], float, frozenset[int], int]
) -> FastRunResult:
    colors, gamma, faulty, seed = args
    return simulate_protocol_fast(colors, gamma=gamma, faulty=faulty,
                                  seed=seed)


def _agent_worker(
    args: tuple[tuple[Hashable, ...], float, frozenset[int], int]
) -> FastRunResult:
    colors, gamma, faulty, seed = args
    res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty, seed=seed,
    ))
    return FastRunResult(
        n=res.n,
        n_active=res.n - len(faulty),
        outcome=res.outcome,
        winner=res.winner,
        rounds=res.rounds,
        min_votes=res.good.min_votes,
        max_votes=res.good.max_votes,
        k_collision=res.good.k_collision,
        find_min_agreement=res.good.find_min_agreement,
        find_min_rounds=-1,                   # not observed by the engine
        min_commitment_pulls_received=-1,     # not observed by the engine
        total_messages=res.metrics.total_messages,
        total_bits=res.metrics.total_bits,
        max_message_bits=res.metrics.max_message_bits,
    )


def _run_result_to_fast(
    res, colors: tuple[Hashable, ...], n_faulty: int
) -> FastRunResult:
    """Compact a ``RunResult`` into the batch record shape.

    When the engine reports a winning color without a unique
    certificate owner (same-color certificates from different owners),
    ``winner`` falls back to the smallest owner among the followers'
    final certificates — the same representative the strategy fastpath
    uses.
    """
    winner = res.winner
    if winner is None and res.outcome is not None:
        nodes = res.extras.get("nodes", {})
        owners = [
            nodes[i].min_certificate.owner
            for i in res.decisions
            if i in nodes
            and getattr(nodes[i], "min_certificate", None) is not None
        ]
        winner = min(owners) if owners else next(
            i for i, c in enumerate(colors) if c == res.outcome
        )
    return FastRunResult(
        n=res.n,
        n_active=res.n - n_faulty,
        outcome=res.outcome,
        winner=winner,
        rounds=res.rounds,
        min_votes=res.good.min_votes,
        max_votes=res.good.max_votes,
        k_collision=res.good.k_collision,
        find_min_agreement=res.good.find_min_agreement,
        find_min_rounds=-1,                   # not observed by the engine
        min_commitment_pulls_received=-1,     # not observed by the engine
        total_messages=res.metrics.total_messages,
        total_bits=res.metrics.total_bits,
        max_message_bits=res.metrics.max_message_bits,
    )


def _deviation_worker(
    args: tuple[tuple[Hashable, ...], float, str | None, tuple[int, ...],
                tuple[int, ...], Defenses, int]
) -> tuple[FastRunResult, FastRunResult, bool, bool, bool, int]:
    """One paired (honest, deviant) agent-engine trial."""
    colors, gamma, strategy, members, faulty, defenses, seed = args
    faulty_set = frozenset(faulty)
    honest_res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty_set, seed=seed,
        defenses=defenses,
    ))
    deviation = (
        make_plan(strategy, frozenset(members)) if strategy and members
        else None
    )
    dev_res = run_protocol(ProtocolConfig(
        colors=list(colors), gamma=gamma, faulty=faulty_set, seed=seed,
        deviation=deviation, defenses=defenses,
    ))
    decided = set(dev_res.decisions.values())
    split = (
        dev_res.outcome is None and None not in decided and len(decided) > 1
    )
    detected = bool(dev_res.failed_agents)
    forged = False
    exposed = 0
    for node in dev_res.extras.get("nodes", {}).values():
        shared = getattr(node, "shared", None)
        if shared is not None:
            exposure = getattr(shared, "exposure", None)
            if exposure is not None:
                exposed = sum(1 for pullers in exposure.values() if pullers)
            if getattr(shared, "forged", None) is not None:
                forged = True
        if getattr(node, "forged", None) is not None:
            forged = True
    return (
        _run_result_to_fast(honest_res, colors, len(faulty_set)),
        _run_result_to_fast(dev_res, colors, len(faulty_set)),
        detected, split, forged, exposed,
    )


def _graph_agent_worker(
    args: tuple[GraphCSR, tuple[Hashable, ...], float, tuple[int, ...], int]
) -> tuple[int, bool, int, int, int, bool, int]:
    """One per-agent graph trial, packed into the batch record shape."""
    from repro.extensions.topologies import run_graph_protocol

    csr, colors, gamma, faulty, seed = args
    res = run_graph_protocol(
        csr.to_networkx(), colors, gamma=gamma, seed=seed,
        faulty=frozenset(faulty),
    )
    palette = list(dict.fromkeys(colors))
    return (
        csr.n - len(faulty),
        res.outcome is not None,
        res.winner if res.winner is not None else -1,
        palette.index(res.outcome) if res.outcome is not None else -1,
        res.zero_vote_agents,
        res.split,
        res.failed_agents,
    )


def _async_agent_worker(
    args: tuple[int, tuple[Hashable, ...], float, int]
) -> tuple[int, bool, int, int]:
    n, colors, factor, seed = args
    ticks = int(async_min_ticks(async_minagg_values(n, seed), seed=seed))
    el = run_async_leader_election(
        colors, seed=seed, tick_budget_factor=factor
    )
    return (ticks, el.converged,
            el.winner if el.winner is not None else -1, el.ticks)
