"""Structured experiment results: typed records, persistence, resume keys.

Every experiment ``run()`` returns an :class:`ExperimentResult` — the
table *data* (typed row records grouped into :class:`ResultSection`\\ s)
plus the run metadata (options, seed spine, engine tier, wall time,
package version).  The rendered text of :meth:`ExperimentResult.tables`
is byte-identical to the pre-redesign print-only output for the same
options (regression-tested against ``tests/golden/``), while the same
object serialises losslessly to JSON/JSONL/CSV and round-trips through
:func:`load_result`.

Persistence model
-----------------
A result is addressed by its **content-hash key**:
``result_key(experiment, options)`` — a SHA-256 prefix of the canonical
JSON of the (experiment name, options) pair.  ``save_result`` writes
``<experiment>-<key>.json`` into an output directory; anything that can
re-derive the options (a :class:`repro.study.Study` resuming a sweep,
the CLI re-running a cell) checks for that file first and loads instead
of re-running.  See DESIGN.md §7 for the schema and resume semantics.

Cell values are normalised to JSON-native scalars (``None``/bool/int/
float/str; NumPy scalars via ``.item()``, anything else via ``str``) at
record time, which is render-neutral for every type the experiments
emit.

Crash safety
------------
Every writer publishes atomically: the document is written to a
same-directory temp file, fsynced, and renamed over the destination
(:func:`atomic_write_text`).  A SIGKILL mid-write therefore leaves
either the previous version or nothing — never a truncated archive
that a later resume would have to guess about.  (Resume paths still
quarantine corrupt files defensively — pre-1.4 archives and bad disks
exist; see :meth:`repro.study.Study.run` and DESIGN.md §10.)
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.util.tables import Table

__all__ = [
    "SCHEMA",
    "ExperimentResult",
    "ResultMeta",
    "ResultSection",
    "atomic_write_text",
    "build_meta",
    "canonical_json",
    "find_result",
    "load_result",
    "result_key",
    "result_path",
    "save_result",
    "write_csv",
    "write_json",
    "write_jsonl",
]

#: Schema tag stamped into every serialised result.
SCHEMA = "repro.experiment-result/v1"

_FORMATS = ("json", "jsonl", "csv", "txt")


def _package_version() -> str:
    from repro import __version__  # deferred: repro/__init__ imports us

    return __version__


def _normalize_cell(value: Any) -> Any:
    """Coerce a table cell to a JSON-native scalar.

    NumPy scalars collapse via ``.item()``; anything that is not
    ``None``/bool/int/float/str after that falls back to ``str``.  The
    conversion is render-neutral: ``Table`` formats the normalised value
    to the same text as the original.
    """
    if value is None:
        return None
    item = getattr(value, "item", None)
    if item is not None:  # NumPy scalar (np.float64 subclasses float too)
        try:
            value = item()
        except (ValueError, TypeError):
            pass
    if isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _jsonify(value: Any) -> Any:
    """Recursively convert a value to plain JSON types (lists, dicts)."""
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonify(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return _normalize_cell(value)


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, jsonified values."""
    return json.dumps(_jsonify(value), sort_keys=True, separators=(",", ":"))


def result_key(experiment: str, options: Mapping[str, Any]) -> str:
    """Content-hash key of an (experiment, options) cell.

    Stable across save/load (tuples and lists canonicalise identically)
    and across processes; used as the resume key for sweeps.
    """
    payload = canonical_json({"experiment": experiment, "options": options})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ResultSection:
    """One table of an experiment result, as data.

    ``headers``/``rows`` hold the typed cell values; ``title`` and
    ``floatfmt`` carry everything :class:`~repro.util.tables.Table`
    needs to re-render the section byte-for-byte.
    """

    headers: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    title: str = ""
    floatfmt: str = ".4g"

    @classmethod
    def from_table(cls, table: Table) -> "ResultSection":
        """Capture a rendered-table's data, normalising every cell."""
        return cls(
            headers=tuple(str(h) for h in table.headers),
            rows=tuple(
                tuple(_normalize_cell(c) for c in row) for row in table.rows
            ),
            title=table.title,
            floatfmt=table.floatfmt,
        )

    def table(self) -> Table:
        """Rebuild the renderable :class:`Table` (byte-identical text)."""
        t = Table(headers=list(self.headers), title=self.title,
                  floatfmt=self.floatfmt)
        for row in self.rows:
            t.add_row(*row)
        return t

    def records(self) -> list[dict[str, Any]]:
        """Rows as header-keyed dicts, in insertion order."""
        return self.table().records()

    def column(self, name: str) -> list[Any]:
        """All values of the named column."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "floatfmt": self.floatfmt,
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ResultSection":
        return cls(
            headers=tuple(data["headers"]),
            rows=tuple(tuple(row) for row in data["rows"]),
            title=data.get("title", ""),
            floatfmt=data.get("floatfmt", ".4g"),
        )


@dataclass(frozen=True)
class ResultMeta:
    """Provenance of one experiment run.

    ``seed_spine`` records how per-trial seeds derive from the base seed
    (base + stride * trial-index, one stride per workload family);
    ``engine`` is the requested simulation tier, ``resolved_engine`` the
    tier ``auto`` routed to (DESIGN.md §1).

    ``backend``/``jobs``/``shards`` record how the run was *executed*
    (DESIGN.md §9): the plan backend (``serial``/``parallel``; the
    latter whenever any workload of the run sharded across the process
    pool), the worker count requested, and the total trial shards the
    run's workloads were cut into.  Execution mechanics never affect
    result values — these fields live in the metadata precisely because
    they are not part of a result's identity (or its resume key).

    ``retries``/``shard_failures``/``degraded_shards``/
    ``recovery_wall_s`` make fault recovery observable (DESIGN.md §10):
    shard resubmissions after a fault, individual failure events
    (worker crash / broken pool / timeout), shards that exhausted their
    retry budget and re-ran serially in-process, and the wall time
    recovery cost.  All zero on a fault-free run — and, like the other
    execution fields, guaranteed not to correlate with result bytes.
    """

    version: str = ""
    wall_time_s: float | None = None
    engine: str | None = None
    resolved_engine: str | None = None
    backend: str | None = None
    jobs: int | None = None
    shards: int | None = None
    retries: int = 0
    shard_failures: int = 0
    degraded_shards: int = 0
    recovery_wall_s: float = 0.0
    seed_spine: Mapping[str, Any] = field(default_factory=dict)
    created_unix: float | None = None

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "wall_time_s": self.wall_time_s,
            "engine": self.engine,
            "resolved_engine": self.resolved_engine,
            "backend": self.backend,
            "jobs": self.jobs,
            "shards": self.shards,
            "retries": self.retries,
            "shard_failures": self.shard_failures,
            "degraded_shards": self.degraded_shards,
            "recovery_wall_s": self.recovery_wall_s,
            "seed_spine": _jsonify(self.seed_spine),
            "created_unix": self.created_unix,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ResultMeta":
        return cls(
            version=data.get("version", ""),
            wall_time_s=data.get("wall_time_s"),
            engine=data.get("engine"),
            resolved_engine=data.get("resolved_engine"),
            backend=data.get("backend"),
            jobs=data.get("jobs"),
            shards=data.get("shards"),
            retries=data.get("retries", 0),
            shard_failures=data.get("shard_failures", 0),
            degraded_shards=data.get("degraded_shards", 0),
            recovery_wall_s=data.get("recovery_wall_s", 0.0),
            seed_spine=dict(data.get("seed_spine", {})),
            created_unix=data.get("created_unix"),
        )


@dataclass(frozen=True)
class ExperimentResult:
    """A structured experiment outcome: sections of typed rows + metadata.

    ``options`` is the plain-dict form of the experiment's options
    dataclass (tuples become lists after a JSON round trip; the
    content-hash :attr:`key` is invariant to that).
    """

    experiment: str
    options: Mapping[str, Any]
    sections: tuple[ResultSection, ...]
    title: str = ""
    claim: str = ""
    options_type: str = ""
    meta: ResultMeta = field(default_factory=ResultMeta)

    @property
    def key(self) -> str:
        """Content-hash resume key of this (experiment, options) cell."""
        return result_key(self.experiment, self.options)

    def tables(self) -> tuple[Table, ...]:
        """The renderable tables — byte-identical to the legacy output."""
        return tuple(s.table() for s in self.sections)

    def render(self) -> str:
        """All sections rendered, double-newline separated."""
        return "\n\n".join(t.render() for t in self.tables())

    def records(self) -> list[dict[str, Any]]:
        """Every row of every section as a flat list of dicts.

        Each record carries its section index under ``"section"`` so
        multi-table experiments stay distinguishable.
        """
        out = []
        for i, section in enumerate(self.sections):
            for rec in section.records():
                out.append({"section": i, **rec})
        return out

    def column(self, name: str) -> list[Any]:
        """The named column from the first section that has it."""
        for section in self.sections:
            if name in section.headers:
                return section.column(name)
        raise KeyError(f"no column named {name!r} in any section")

    def canonical(self) -> str:
        """Canonical JSON text (equality-comparable across round trips)."""
        return canonical_json(self.to_json_dict())

    def payload_json(self) -> str:
        """Canonical JSON of everything except the ``meta`` block.

        The metadata records *how* a result was produced (wall time,
        backend, job count, timestamps) and therefore differs between
        otherwise identical runs; the payload is what determinism
        guarantees cover.  Two runs of the same (experiment, options)
        cell — serial or parallel, any ``jobs`` — must produce
        byte-identical payloads (CI diffs them, DESIGN.md §9).
        """
        doc = self.to_json_dict()
        doc.pop("meta", None)
        return canonical_json(doc)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "experiment": self.experiment,
            "title": self.title,
            "claim": self.claim,
            "options_type": self.options_type,
            "options": _jsonify(self.options),
            "key": self.key,
            "meta": self.meta.to_json_dict(),
            "sections": [s.to_json_dict() for s in self.sections],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"unsupported result schema {schema!r} (expected {SCHEMA!r})"
            )
        return cls(
            experiment=data["experiment"],
            options=dict(data.get("options", {})),
            sections=tuple(
                ResultSection.from_json_dict(s)
                for s in data.get("sections", [])
            ),
            title=data.get("title", ""),
            claim=data.get("claim", ""),
            options_type=data.get("options_type", ""),
            meta=ResultMeta.from_json_dict(data.get("meta", {})),
        )


# ---------------------------------------------------------------------------
# Writers and loaders
# ---------------------------------------------------------------------------

def atomic_write_text(path: str | Path, text: str) -> Path:
    """Crash-safe publish: temp file in the target directory + rename.

    The bytes are flushed and fsynced before the rename, so a crash at
    any point leaves either the complete new document or the previous
    state of ``path`` — never a truncated file.  (The rename is atomic
    on POSIX; temp files are pid-suffixed so concurrent writers cannot
    collide.)  Under an installed chaos config the *published* file may
    then be deliberately torn, exercising the quarantine paths that
    guard against pre-atomic archives and disk corruption.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    _chaos_tear(path)
    return path


def _chaos_tear(path: Path) -> None:
    """Fault injection: truncate a just-published archive to half.

    Active only inside :func:`repro.exec.chaos.install` blocks (the
    import is deferred — nothing here runs on ordinary saves).
    """
    from repro.exec import chaos  # deferred: results has no exec dependency

    cfg = chaos.active_config()
    if cfg is not None and cfg.truncates(path.name):
        data = path.read_text()
        path.write_text(data[: len(data) // 2])


def write_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write the full result as an indented JSON document (atomically)."""
    return atomic_write_text(
        path,
        json.dumps(result.to_json_dict(), indent=2, sort_keys=False) + "\n",
    )


def write_jsonl(result: ExperimentResult, path: str | Path) -> Path:
    """Write one JSON object per table row (streaming-friendly).

    Each line carries the experiment name, resume key and section index
    next to the header-keyed row values, so concatenated JSONL files
    from many runs stay self-describing.
    """
    key = result.key
    lines = []
    for rec in result.records():
        line = {"experiment": result.experiment, "key": key, **rec}
        lines.append(json.dumps(_jsonify(line), sort_keys=False))
    return atomic_write_text(path, "".join(f"{line}\n" for line in lines))


def csv_sections(result: ExperimentResult) -> list[str]:
    """Each section as CSV text (header row first, ``None`` as empty)."""
    texts = []
    for section in result.sections:
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(section.headers)
        for row in section.rows:
            writer.writerow(["" if c is None else c for c in row])
        texts.append(buf.getvalue())
    return texts


def write_csv(result: ExperimentResult, path: str | Path) -> list[Path]:
    """Write each section as a CSV file.

    Single-section results write exactly ``path``; multi-section results
    write ``path.with_suffix(".N.csv")`` per section, N from 0.
    """
    path = Path(path)
    texts = csv_sections(result)
    if len(texts) == 1:
        return [atomic_write_text(path, texts[0])]
    paths = []
    for i, text in enumerate(texts):
        paths.append(atomic_write_text(path.with_suffix(f".{i}.csv"), text))
    return paths


def save_result(
    result: ExperimentResult,
    out_dir: str | Path,
    formats: Sequence[str] = ("json",),
) -> list[Path]:
    """Persist a result under its content-hash key.

    Writes ``<experiment>-<key>.<ext>`` into ``out_dir`` for each
    requested format (``json``, ``jsonl``, ``csv``, ``txt``) and returns
    the paths.  The JSON file is the round-trippable source of truth;
    the others are export conveniences.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{result.experiment}-{result.key}"
    paths: list[Path] = []
    for fmt in formats:
        if fmt not in _FORMATS:
            raise ValueError(f"unknown format {fmt!r}; known: {_FORMATS}")
        target = out_dir / f"{stem}.{fmt}"
        if fmt == "json":
            paths.append(write_json(result, target))
        elif fmt == "jsonl":
            paths.append(write_jsonl(result, target))
        elif fmt == "csv":
            paths.extend(write_csv(result, target))
        else:
            paths.append(atomic_write_text(target, result.render() + "\n"))
    return paths


def load_result(path: str | Path) -> ExperimentResult:
    """Load a result saved by :func:`write_json`/:func:`save_result`."""
    return ExperimentResult.from_json_dict(json.loads(Path(path).read_text()))


def result_path(
    out_dir: str | Path, experiment: str, options: Mapping[str, Any]
) -> Path:
    """Where :func:`save_result` puts an (experiment, options) cell."""
    return (
        Path(out_dir) / f"{experiment}-{result_key(experiment, options)}.json"
    )


def find_result(
    out_dir: str | Path, experiment: str, options: Mapping[str, Any]
) -> ExperimentResult | None:
    """The saved result of an (experiment, options) cell, if present.

    This is the resume primitive: compute the content-hash key and load
    the stored cell instead of re-running.  When ``out_dir`` is (or
    contains) a :class:`repro.service.store.ResultStore` database, the
    store answers first; otherwise — and on a store miss — the loose
    ``<experiment>-<key>.json`` file is consulted.  Returns ``None``
    when the cell has not been computed (or was saved elsewhere); a
    file that exists but cannot be parsed raises — resume paths decide
    whether to quarantine it (:meth:`repro.study.Study.run` does).
    """
    key = result_key(experiment, options)
    from repro.service.store import find_stored  # deferred: no sqlite cost
                                                 # on the loose-JSON path

    stored = find_stored(out_dir, key)
    if stored is not None:
        return stored
    path = Path(out_dir)
    if path.suffix.lower() in (".sqlite3", ".sqlite", ".db"):
        return None  # configured as a database: no loose-file fallback
    path = path / f"{experiment}-{key}.json"
    if not path.is_file():
        return None
    return load_result(path)


def build_meta(
    *,
    wall_time_s: float | None = None,
    engine: str | None = None,
    resolved_engine: str | None = None,
    backend: str | None = None,
    jobs: int | None = None,
    shards: int | None = None,
    retries: int = 0,
    shard_failures: int = 0,
    degraded_shards: int = 0,
    recovery_wall_s: float = 0.0,
    seed_spine: Mapping[str, Any] | None = None,
) -> ResultMeta:
    """A :class:`ResultMeta` stamped with the package version and time."""
    return ResultMeta(
        version=_package_version(),
        wall_time_s=wall_time_s,
        engine=engine,
        resolved_engine=resolved_engine,
        backend=backend,
        jobs=jobs,
        shards=shards,
        retries=retries,
        shard_failures=shard_failures,
        degraded_shards=degraded_shards,
        recovery_wall_s=recovery_wall_s,
        seed_spine=dict(seed_spine or {}),
        created_unix=time.time(),
    )
