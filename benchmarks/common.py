"""Shared plumbing for the benchmark suite.

Two families of scripts share this module:

* the ten **experiment benchmarks** (``bench_e1_fairness.py`` ...)
  regenerate one experiment each, print its tables and archive them
  under ``results/`` — :func:`run_experiment_bench` is their pytest
  body and :func:`main_experiment` their standalone ``__main__`` driver
  (with ``--trials``/``--jobs``/``--set`` overrides);
* the **perf benchmarks** (``bench_fastpath_batch.py``,
  ``bench_strategies.py``, ``bench_graphs.py``, ``bench_parallel.py``)
  time engine tiers against each other and archive their numbers to
  ``BENCH_<name>.json`` at the repo root — :func:`best_of`,
  :func:`machine_info`, :func:`write_bench` and :func:`main_perf` are
  their shared skeleton.

Before this module each script carried its own copy of the repo-root
resolution, timing loop, machine stanza, JSON writer and ``__main__``
block; keep new benchmarks on these helpers instead.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.results import ExperimentResult, write_json
from repro.util.tables import Table

__all__ = [
    "REPO_ROOT",
    "RESULTS_DIR",
    "archive",
    "bench_json_path",
    "best_of",
    "machine_info",
    "main_experiment",
    "main_perf",
    "run_experiment_bench",
    "write_bench",
]

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"


# ---------------------------------------------------------------------------
# Experiment benchmarks
# ---------------------------------------------------------------------------

def archive(name: str, *items: Table | ExperimentResult) -> str:
    """Archive tables/results under ``results/``; return the rendered text.

    Writes the classic ``<name>.txt`` render and, for structured
    :class:`ExperimentResult` inputs, the round-trippable
    ``<name>.json`` document next to it (numbered when several results
    share one benchmark).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    tables: list[Table] = []
    results = [i for i in items if isinstance(i, ExperimentResult)]
    for i, result in enumerate(results):
        suffix = f".{i}" if len(results) > 1 else ""
        write_json(result, RESULTS_DIR / f"{name}{suffix}.json")
    for item in items:
        if isinstance(item, ExperimentResult):
            tables.extend(item.tables())
        else:
            tables.append(item)
    text = "\n\n".join(t.render() for t in tables)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def run_experiment_bench(
    benchmark: Any, emit: Callable[..., None], name: str,
    run: Callable[..., ExperimentResult], opts: Any,
) -> ExperimentResult:
    """The shared pytest body of every experiment benchmark: time one
    ``run(opts)`` pass and emit/archive the result."""
    result = benchmark.pedantic(run, args=(opts,), rounds=1, iterations=1)
    emit(name, result)
    return result


def main_experiment(
    name: str,
    run: Callable[..., ExperimentResult],
    opts: Any,
    argv: Sequence[str] | None = None,
) -> int:
    """Standalone driver: ``python benchmarks/bench_<name>.py [...]``.

    Runs the benchmark's experiment at its benchmark options (with
    optional ``--trials``/``--jobs`` overrides), prints the tables and
    archives them exactly like the pytest path.
    """
    parser = argparse.ArgumentParser(
        description=f"Regenerate the {name} benchmark tables standalone"
    )
    parser.add_argument("--trials", type=int, default=None,
                        help="override the benchmark trial count")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel plan-backend workers")
    args = parser.parse_args(argv)
    overrides = {
        k: v for k, v in (("trials", args.trials), ("jobs", args.jobs))
        if v is not None
    }
    if overrides:
        opts = dataclasses.replace(opts, **overrides)
    result = run(opts)
    wall = result.meta.wall_time_s
    print(archive(name, result))
    if wall is not None:
        print(f"\n[{name}] {wall:.2f}s", end="")
        if result.meta.backend is not None:
            print(f"  backend={result.meta.backend}"
                  f"  shards={result.meta.shards}", end="")
        print()
    return 0


# ---------------------------------------------------------------------------
# Perf benchmarks
# ---------------------------------------------------------------------------

def bench_json_path(name: str) -> Path:
    """``BENCH_<name>.json`` at the repo root (the perf trajectory log)."""
    return REPO_ROOT / f"BENCH_{name}.json"


def best_of(repeats: int, fn: Callable[[], Any]) -> float:
    """Best wall-clock of ``repeats`` calls (the standard timing loop)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def machine_info() -> dict[str, Any]:
    """The machine stanza every perf JSON carries.

    ``cpus`` is the machine's core count; ``effective_cpus`` the CPUs
    this process may actually run on (the affinity mask — smaller under
    cgroup cpusets and ``taskset``).  Speedup claims must be judged
    against the latter.
    """
    from repro.exec.pool import available_cpus

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "effective_cpus": available_cpus(),
    }


def write_bench(name: str, results: dict) -> Path:
    """Write a perf benchmark's JSON document; returns the path."""
    path = bench_json_path(name)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main_perf(
    name: str,
    measure: Callable[[], dict],
    report: Callable[[dict], Table],
    argv: Sequence[str] | None = None,
) -> int:
    """Standalone driver shared by the perf benchmarks' ``__main__``."""
    parser = argparse.ArgumentParser(
        description=f"Run the {name} perf benchmark standalone"
    )
    parser.add_argument("--json-only", action="store_true",
                        help="skip the rendered table, print the JSON path")
    args = parser.parse_args(argv)
    results = measure()
    path = write_bench(name, results)
    if not args.json_only:
        print(report(results).render())
    print(f"\nwrote {path}")
    return 0
