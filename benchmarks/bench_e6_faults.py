"""E6 — worst-case permanent faults (Theorem 4's alpha < 1 tolerance).

Reproduces: for any constant fault fraction alpha, a suitable
gamma(alpha) keeps success w.h.p., and the winning distribution stays
fair *relative to the active agents* — even when the adversary crashes
one color's supporters first.  Expected shape: gamma=4 rows succeed at
every alpha; the small-gamma rows start failing at large alpha (the
gamma(alpha) dependence made visible).
"""

from repro.experiments.e6_faults import E6Options, run
from common import main_experiment, run_experiment_bench

OPTS = E6Options(
    n=256,
    alphas=(0.0, 0.2, 0.4, 0.6, 0.8),
    gammas=(2.0, 4.0, 10.0),
    placements=("random", "color_targeted"),
    trials=200,
)


def test_e6_faults(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e6_faults",
                                  run, OPTS)
    table, = result.tables()
    rows = list(zip(
        table.column("placement"), table.column("alpha"),
        table.column("gamma"), table.column("success rate"),
        table.column("TV vs active support"),
    ))
    # A sufficient gamma(alpha) exists for every alpha < 1.  Find-Min
    # pulls hit an active agent with probability 1-alpha, so gamma(alpha)
    # grows like 1/(1-alpha): gamma=10 covers the whole sweep, gamma=4
    # covers alpha <= 0.4 (matching the theorem's "suitable gamma(alpha)").
    for placement, alpha, gamma, success, tv in rows:
        if gamma >= 10.0:
            assert success > 0.97, (placement, alpha)
            assert tv < 0.12, (placement, alpha)
        if gamma >= 4.0 and alpha <= 0.4:
            assert success > 0.97, (placement, alpha, gamma)
    # The gamma(alpha) dependence: at alpha=0.8 success is monotone in
    # gamma (heavier faults need a longer schedule).
    by_gamma = {
        g: min(s for p, a, gg, s, _ in rows if a == 0.8 and gg == g)
        for g in OPTS.gammas
    }
    assert by_gamma[2.0] <= by_gamma[4.0] + 0.02
    assert by_gamma[4.0] <= by_gamma[10.0] + 0.02


if __name__ == "__main__":
    raise SystemExit(main_experiment("e6_faults", run, OPTS))
