"""Perf benchmark: agent-engine deviation loop vs the strategy tier.

Times the full E7 workload — every default strategy × coalition size at
paper scale (n = 512, 2000 paired trials per cell) — on the vectorised
``batch-strategy`` engine, against the agent-engine path it replaced.
The agent engine needs ~1 s per *paired trial* at n = 512, so timing
the full grid there would take hours; instead the benchmark measures a
per-trial sample per strategy and extrapolates (the JSON records both
the raw sample timings and the extrapolation, clearly labelled).

A second, fully *measured* point runs both engines end-to-end at a
small size (n = 64) so the speedup claim does not rest on
extrapolation alone.

Acceptance bar (ISSUE 2): >= 20x on the n = 512 grid.  Results are
archived to ``BENCH_strategies.json`` at the repo root.

Runs standalone too:
``PYTHONPATH=src python benchmarks/bench_strategies.py``
"""

from __future__ import annotations

import time

from repro.experiments.dispatch import run_deviation_trials_fast
from repro.experiments.e7_equilibrium import _DEFAULT_STRATEGIES
from repro.experiments.workloads import skewed
from repro.util.tables import Table
from common import bench_json_path, machine_info, main_perf, write_bench

RESULT_PATH = bench_json_path("strategies")

# The headline grid: ISSUE 2's acceptance point.
HEADLINE_N = 512
HEADLINE_TRIALS = 2000
COALITION_SIZES = (1, 4)
GAMMA = 2.5
MINORITY = 0.25
# Agent-engine sample size per strategy for the extrapolation.
AGENT_SAMPLE_TRIALS = 2
# Fully measured cross-check point.
SMALL_N = 64
SMALL_TRIALS = 60
SMALL_STRATEGIES = ("silent", "underbid_alter", "pooled")


def _members(colors: list[str], t: int) -> frozenset[int]:
    blues = [i for i, c in enumerate(colors) if c == "blue"]
    return frozenset(blues[:t])


def _grid_cells(n: int) -> list[tuple[str, int]]:
    return [(s, t) for s in _DEFAULT_STRATEGIES for t in COALITION_SIZES]


def measure() -> dict:
    colors = skewed(HEADLINE_N, minority=MINORITY)
    cells = _grid_cells(HEADLINE_N)
    seeds = list(range(HEADLINE_TRIALS))

    # --- batch-strategy engine: the full grid, measured end-to-end.
    t0 = time.perf_counter()
    gains = {}
    for strategy, t in cells:
        res = run_deviation_trials_fast(
            colors, seeds, strategy, _members(colors, t), gamma=GAMMA,
            engine="batch-strategy",
        )
        gains[f"{strategy}/t={t}"] = round(res.paired_gain("blue")[0], 4)
    batch_grid_s = time.perf_counter() - t0

    # --- agent engine: per-trial samples, extrapolated to the grid.
    samples = {}
    per_trial = []
    for strategy in _DEFAULT_STRATEGIES:
        t0 = time.perf_counter()
        run_deviation_trials_fast(
            colors, list(range(AGENT_SAMPLE_TRIALS)), strategy,
            _members(colors, COALITION_SIZES[-1]), gamma=GAMMA,
            engine="agent", parallel=False,
        )
        dt = (time.perf_counter() - t0) / AGENT_SAMPLE_TRIALS
        samples[strategy] = round(dt, 3)
        per_trial.append(dt)
    mean_trial_s = sum(per_trial) / len(per_trial)
    agent_grid_est_s = mean_trial_s * HEADLINE_TRIALS * len(cells)

    # --- fully measured small point (no extrapolation).
    small_colors = skewed(SMALL_N, minority=MINORITY)
    small_seeds = list(range(SMALL_TRIALS))
    t0 = time.perf_counter()
    for strategy in SMALL_STRATEGIES:
        run_deviation_trials_fast(
            small_colors, small_seeds, strategy,
            _members(small_colors, 2), gamma=GAMMA,
            engine="batch-strategy",
        )
    small_batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for strategy in SMALL_STRATEGIES:
        run_deviation_trials_fast(
            small_colors, small_seeds, strategy,
            _members(small_colors, 2), gamma=GAMMA,
            engine="agent", parallel=False,
        )
    small_agent_s = time.perf_counter() - t0

    return {
        "benchmark": "strategies",
        "gamma": GAMMA,
        "machine": machine_info(),
        "headline": {
            "n": HEADLINE_N,
            "paired_trials": HEADLINE_TRIALS,
            "grid_cells": len(cells),
            "strategies": list(_DEFAULT_STRATEGIES),
            "coalition_sizes": list(COALITION_SIZES),
            "batch_grid_s": round(batch_grid_s, 2),
            "agent_per_trial_sample_s": samples,
            "agent_sample_trials_per_strategy": AGENT_SAMPLE_TRIALS,
            "agent_grid_estimated_s": round(agent_grid_est_s, 1),
            "speedup_vs_agent_estimate": round(
                agent_grid_est_s / batch_grid_s, 1
            ),
            "paired_gain_chi1": gains,
        },
        "measured_small_point": {
            "n": SMALL_N,
            "paired_trials": SMALL_TRIALS,
            "strategies": list(SMALL_STRATEGIES),
            "batch_s": round(small_batch_s, 3),
            "agent_s": round(small_agent_s, 3),
            "speedup_measured": round(small_agent_s / small_batch_s, 1),
        },
    }


def report(results: dict) -> Table:
    head = results["headline"]
    small = results["measured_small_point"]
    table = Table(
        headers=["workload", "batch-strategy (s)", "agent engine (s)",
                 "speedup"],
        title="Strategy tier vs agent engine (E7 deviation grid)",
    )
    table.add_row(
        f"E7 grid n={head['n']}, {head['paired_trials']} paired trials x "
        f"{head['grid_cells']} cells",
        head["batch_grid_s"],
        f"{head['agent_grid_estimated_s']} (extrapolated)",
        f"{head['speedup_vs_agent_estimate']}x",
    )
    table.add_row(
        f"measured point n={small['n']}, {small['paired_trials']} trials x "
        f"{len(small['strategies'])} strategies",
        small["batch_s"],
        f"{small['agent_s']} (measured)",
        f"{small['speedup_measured']}x",
    )
    return table


def run() -> dict:
    results = measure()
    write_bench("strategies", results)
    return results


def test_strategy_tier_speedup(benchmark, emit):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("strategies_speedup", report(results))
    head = results["headline"]
    # ISSUE 2 acceptance bar: >= 20x on the full E7 grid at n = 512.
    assert head["speedup_vs_agent_estimate"] >= 20.0
    # The fully measured point must clear the same bar without any
    # extrapolation.
    assert results["measured_small_point"]["speedup_measured"] >= 20.0
    # Theorem 7 at scale: nothing profitable anywhere on the grid.
    assert all(g <= 0.05 for g in head["paired_gain_chi1"].values())
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    raise SystemExit(main_perf("strategies", measure, report))
