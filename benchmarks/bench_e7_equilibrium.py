"""E7 — whp t-strong equilibrium (Theorem 7).

Reproduces: for every implemented deviation strategy and coalition size,
the members' expected-utility gain (chi = 1) is <= 0 up to Monte-Carlo
noise.  Expected shape: lying strategies show a large NEGATIVE gain
(detection -> protocol failure -> -chi), passive strategies show ~0 gain,
and nothing is significantly positive.
"""

from repro.experiments.e7_equilibrium import E7Options, run
from common import main_experiment, run_experiment_bench

OPTS = E7Options(
    n=48,
    minority=0.25,
    coalition_sizes=(1, 4),
    trials=150,
    gamma=2.5,
    chi=1.0,
)


def test_e7_equilibrium(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e7_equilibrium",
                                  run, OPTS)
    table, = result.tables()
    # Theorem 7: no strategy is significantly profitable.
    for profitable in table.column("profitable?"):
        assert not profitable
    # Lying strategies are strictly harmful (fail w.h.p. -> gain ~ -1-ish).
    rows = dict(zip(
        zip(table.column("strategy"), table.column("t")),
        table.column("gain (chi=1)"),
    ))
    for lying in ("underbid_alter", "underbid_drop", "underbid_klie",
                  "griefing", "pooled_gamble"):
        assert rows[(lying, 1)] < -0.5, lying
    # The rational pooled attack falls back to honesty: gains ~ 0 and no
    # failures caused.
    devf = dict(zip(
        zip(table.column("strategy"), table.column("t")),
        table.column("deviant fail"),
    ))
    assert devf[("pooled", 4)] < 0.05


if __name__ == "__main__":
    raise SystemExit(main_experiment("e7_equilibrium", run, OPTS))
