"""E1 — fairness of the winning distribution (Theorem 4).

Reproduces: Pr[color c wins] = fraction of active agents supporting c,
for every initial configuration.  Expected shape: TV distance at the
fair-sampling noise floor, and chi-square p-values not rejecting
fairness (with a Bonferroni-style family threshold: 12 tests).
"""

from repro.experiments.e1_fairness import E1Options, run
from common import main_experiment, run_experiment_bench

OPTS = E1Options(
    sizes=(64, 128, 256),
    workloads=("balanced", "skewed", "multiway", "leader_election"),
    trials=400,
    gamma=3.0,
)


def test_e1_fairness(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e1_fairness",
                                  run, OPTS)
    table, = result.tables()
    rows = len(table.rows)
    # TV at (or near) the fair-sampling noise floor everywhere.
    for tv, floor in zip(table.column("TV distance"),
                         table.column("TV noise floor")):
        assert tv < max(0.05, 3.0 * floor)
    # No protocol failures.
    for fails in table.column("fail_rate"):
        assert fails < 0.02
    # Chi-square: no rejection at the family-corrected threshold, and the
    # large majority of rows pass the raw 5% cut too.
    pvalues = table.column("chi2 p-value")
    assert all(p > 0.05 / rows for p in pvalues)
    assert sum(1 for p in pvalues if p > 0.05) >= rows - 2


if __name__ == "__main__":
    raise SystemExit(main_experiment("e1_fairness", run, OPTS))
