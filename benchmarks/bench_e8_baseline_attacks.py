"""E8 — positive control: undefended baselines are exploitable.

Reproduces the motivation for Protocol P's machinery: the same rational
attacks that gain nothing against P win outright against (a) min-gossip
without verification (k=0 cheater) and (b) Hassin-Peleg polling
(stubborn agent) — and polling additionally needs Theta(n) rounds versus
P's O(log n).
"""

from repro.experiments.e8_baseline_attacks import E8Options, run
from common import main_experiment, run_experiment_bench

OPTS = E8Options(n=64, minority=0.1, trials=100, gamma=3.0)


def test_e8_baseline_attacks(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e8_baseline_attacks",
                                  run, OPTS)
    table, = result.tables()
    rows = {
        (p, a): (w, f)
        for p, a, w, f in zip(
            table.column("protocol"), table.column("attack"),
            table.column("attacker-color win rate"),
            table.column("fail rate"),
        )
    }
    # Honest runs: the 10%-color wins about 10% of the time everywhere.
    for proto in ("naive min-gossip", "HP polling", "Protocol P"):
        w, _ = rows[(proto, "none (honest)")]
        assert 0.02 < w < 0.25, proto
    # One cheater takes over the undefended baselines...
    assert rows[("naive min-gossip", "k=0 cheater")][0] > 0.95
    assert rows[("HP polling", "stubborn agent")][0] > 0.9
    # ...but never wins against Protocol P (the protocol fails instead).
    w, f = rows[("Protocol P", "forged-certificate")]
    assert w == 0.0
    assert f > 0.95
    # Speed gap: polling needs Theta(n) rounds, P needs O(log n) — they
    # separate at scale (at n=64 polling's ~0.7n is still below P's
    # 4*ceil(3 log2 n) schedule; at n=512 it is far above).
    rounds = dict(zip(
        zip(table.column("protocol"), table.column("attack")),
        table.column("mean rounds"),
    ))
    big = OPTS.scaling_n
    assert rounds[(f"HP polling @ n={big}", "none (honest)")] > \
        2 * rounds[(f"Protocol P @ n={big}", "none (honest)")]
    # Growth rates: polling rounds grow ~8x for 8x the agents; P's only
    # logarithmically.
    assert rounds[(f"HP polling @ n={big}", "none (honest)")] > \
        3 * rounds[("HP polling", "none (honest)")]
    assert rounds[(f"Protocol P @ n={big}", "none (honest)")] < \
        2 * rounds[("Protocol P", "none (honest)")]


if __name__ == "__main__":
    raise SystemExit(main_experiment("e8_baseline_attacks", run, OPTS))
