"""Perf benchmark: the experiment service under concurrent load.

A load generator drives a live :class:`ExperimentService` (real HTTP,
real sqlite store, one daemon worker) with hundreds of concurrent
submissions over a small grid of distinct E1 cells:

* **cold phase** — every submission races every other; the first
  arrival per cell executes, the rest coalesce onto its job or hit the
  store once published.  This is the mixed hit/miss regime a shared
  daemon actually serves.
* **warm phase** — the same grid resubmitted after full publication:
  every submission must be answered straight from the store (no job,
  no execution).

Measured per submission: **submit-to-result latency** — POST /jobs to
holding the full result document — reported as p50/p99 per phase,
plus the daemon's cache-hit rate and the queue's coalesce counter.

Acceptance bars (asserted in the pytest body):

* each distinct cell executed **exactly once** across both phases —
  the at-most-once dedup contract under load;
* the warm phase is pure cache (zero executions);
* zero failed submissions, zero 429s (the grid coalesces well below
  the queue bound).

Results are archived to ``BENCH_service.json`` at the repo root.

Runs standalone too:
``PYTHONPATH=src python benchmarks/bench_service.py``
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.service.api import ExperimentService
from repro.service.client import ServiceClient, ServiceError
from repro.util.tables import Table
from common import bench_json_path, machine_info, main_perf, write_bench

RESULT_PATH = bench_json_path("service")

#: Distinct E1 cells in the grid (each a different seed -> its own key).
DISTINCT_CELLS = 20
#: Total submissions fired concurrently in the cold phase.
COLD_SUBMISSIONS = 300
#: Submissions in the warm (pure store-hit) phase.
WARM_SUBMISSIONS = 150
#: Concurrent client threads (the "users").
CLIENTS = 16

#: The cell template: tiny but real E1 runs (sync sweep, serial).
CELL = dict(sizes=(16,), workloads=("balanced",), trials=6, parallel=False)
BASE_SEED = 7100


def _cell_options(i: int) -> dict:
    return {**CELL, "seed": BASE_SEED + i}


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[int(idx)]


def _fire(url: str, submissions: list[dict], *,
          clients: int = CLIENTS) -> dict:
    """Fire ``submissions`` from ``clients`` threads; collect latencies.

    Each worker thread pops the next submission, measures POST-to-
    document wall time, and tags the sample with how it was served
    (``executed`` / ``coalesced`` / ``store``).
    """
    lock = threading.Lock()
    queue = list(submissions)
    latencies: list[float] = []
    served: dict[str, int] = {"store": 0, "job": 0}
    errors: list[str] = []
    client = ServiceClient(url, timeout_s=60)
    barrier = threading.Barrier(clients)

    def worker() -> None:
        barrier.wait()
        while True:
            with lock:
                if not queue:
                    return
                body = queue.pop()
            t0 = time.perf_counter()
            try:
                sub = client.submit(body["experiment"], body["options"])
                terminal = client.wait(sub, timeout_s=120, poll_s=0.002)
                client.result(terminal["key"])
            except (ServiceError, TimeoutError, OSError) as exc:
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                continue
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)
                served["store" if sub["id"] is None else "job"] += 1

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return {
        "submissions": len(submissions),
        "clients": clients,
        "errors": errors,
        "served_from_store": served["store"],
        "served_via_job": served["job"],
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 2),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 2),
        "max_ms": round(max(latencies) * 1000, 2),
    }


def measure() -> dict:
    cold = [
        {"experiment": "e1", "options": _cell_options(i % DISTINCT_CELLS)}
        for i in range(COLD_SUBMISSIONS)
    ]
    warm = [
        {"experiment": "e1", "options": _cell_options(i % DISTINCT_CELLS)}
        for i in range(WARM_SUBMISSIONS)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "bench-store.sqlite3"
        with ExperimentService(store, port=0) as svc:
            svc.daemon.poll_s = 0.01
            cold_stats = _fire(svc.url, cold)
            mid = svc.daemon.stats()
            warm_stats = _fire(svc.url, warm)
            daemon = svc.daemon.stats()
            queue = svc.queue.stats()
            store_rows = svc.store.stats()["results"]
    return {
        "benchmark": "service_load",
        "machine": machine_info(),
        "grid": {
            "distinct_cells": DISTINCT_CELLS,
            "cell": {k: list(v) if isinstance(v, tuple) else v
                     for k, v in CELL.items()},
        },
        "cold": cold_stats,
        "warm": warm_stats,
        "executed": daemon["executed"],
        "executed_cold": mid["executed"],
        # Cache hits across every serving path: the front door's store
        # answers (no job created) plus the daemon's store-served jobs.
        "cache_hits": (cold_stats["served_from_store"]
                       + warm_stats["served_from_store"]
                       + daemon["cache_hits"]),
        "cache_hit_rate": round(
            (cold_stats["served_from_store"]
             + warm_stats["served_from_store"] + daemon["cache_hits"])
            / (COLD_SUBMISSIONS + WARM_SUBMISSIONS), 4,
        ),
        "daemon_cache_hits": daemon["cache_hits"],
        "coalesced": queue["coalesced"],
        "rejected": queue["rejected"],
        "store_results": store_rows,
    }


def report(results: dict) -> Table:
    table = Table(
        headers=["phase", "submissions", "clients", "p50 (ms)", "p99 (ms)",
                 "max (ms)", "via store", "via job"],
        title=f"Service load: {results['grid']['distinct_cells']} distinct "
              f"cells, {results['executed']} executions, "
              f"cache-hit rate {results['cache_hit_rate']}, "
              f"{results['coalesced']} coalesced",
    )
    for phase in ("cold", "warm"):
        p = results[phase]
        table.add_row(phase, p["submissions"], p["clients"], p["p50_ms"],
                      p["p99_ms"], p["max_ms"], p["served_from_store"],
                      p["served_via_job"])
    return table


def run() -> dict:
    results = measure()
    write_bench("service", results)
    return results


def test_service_load(benchmark, emit):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("service_load", report(results))
    assert not results["cold"]["errors"]
    assert not results["warm"]["errors"]
    # The dedup contract under load: one execution per distinct cell,
    # all of them in the cold phase; the warm phase is pure cache.
    assert results["executed"] == DISTINCT_CELLS
    assert results["executed_cold"] == DISTINCT_CELLS
    assert results["warm"]["served_from_store"] == WARM_SUBMISSIONS
    # Backpressure never triggered: coalescing kept the queue shallow.
    assert results["rejected"] == 0
    assert results["store_results"] == DISTINCT_CELLS
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    raise SystemExit(main_perf("service", measure, report))
