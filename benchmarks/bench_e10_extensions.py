"""E10 — open problems: other graph classes; sequential GOSSIP.

Explores the two directions the paper's conclusions suggest, at the
batched-tier scale (the per-agent engine capped this benchmark at
n = 64 with 30 trials; the CSR tier runs n = 256 with 200 trials per
scenario in seconds).  Expected shape: expander-like graphs behave like
the complete graph; the ring and torus break termination (Find-Min
cannot traverse their diameter in O(log n) rounds); the star breaks
fairness (leaves receive no votes); sequential min-aggregation costs
Theta(n log n) ticks (flat normalised ratio across sizes).
"""

from repro.experiments.e10_extensions import E10Options, run
from common import main_experiment, run_experiment_bench

OPTS = E10Options(n=256, trials=200, gamma=3.0,
                  async_sizes=(64, 256, 1024))


def test_e10_extensions(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e10_extensions",
                                  run, OPTS)
    topo, asy = result.tables()
    success = dict(zip(topo.column("graph"), topo.column("success rate")))
    patched = dict(zip(topo.column("graph"),
                       topo.column("mean patched edges")))
    zero = dict(zip(topo.column("graph"),
                    topo.column("mean zero-vote agents")))
    assert success["complete"] > 0.95
    assert success["er_dense"] > 0.9
    assert success["ring"] < 0.1       # diameter kills the O(log n) schedule
    assert success["complete"] >= success["er_sparse"]
    # The star disenfranchises its leaves: the zero-vote hazard dominates.
    assert zero["star"] > OPTS.n / 2
    # Patching is explicit: the sparse families report their added edges,
    # the structurally connected families report none.
    assert patched["er_sparse"] > 0
    assert patched["complete"] == 0 and patched["ring"] == 0
    # Churn keeps the run valid (permanent-fault machinery end to end).
    assert 0.0 <= success["regular8+churn"] <= 1.0
    # Sequential gossip: ticks / (n log2 n) stays bounded (Theta shape).
    ratios = asy.column("min-agg ticks / (n log2 n)")
    assert all(0.1 < r < 10 for r in ratios)
    assert max(ratios) / min(ratios) < 4


if __name__ == "__main__":
    raise SystemExit(main_experiment("e10_extensions", run, OPTS))
