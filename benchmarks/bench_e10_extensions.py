"""E10 — open problems: other graph classes; sequential GOSSIP.

Explores the two directions the paper's conclusions suggest.
Expected shape: dense graphs behave like the complete graph; the ring
breaks termination (Find-Min cannot traverse diameter n/2 in O(log n)
rounds); sequential min-aggregation costs Theta(n log n) ticks (flat
normalised ratio across sizes).
"""

from repro.experiments.e10_extensions import E10Options, run

OPTS = E10Options(n=64, trials=30, gamma=3.0, async_sizes=(64, 256, 1024))


def test_e10_extensions(benchmark, emit):
    result = benchmark.pedantic(run, args=(OPTS,), rounds=1, iterations=1)
    emit("e10_extensions", result)
    topo, asy = result.tables()
    success = dict(zip(topo.column("graph"), topo.column("success rate")))
    assert success["complete"] > 0.95
    assert success["er_dense"] > 0.9
    assert success["ring"] < 0.1       # diameter kills the O(log n) schedule
    assert success["complete"] >= success["er_sparse"]
    # Sequential gossip: ticks / (n log2 n) stays bounded (Theta shape).
    ratios = asy.column("min-agg ticks / (n log2 n)")
    assert all(0.1 < r < 10 for r in ratios)
    assert max(ratios) / min(ratios) < 4
