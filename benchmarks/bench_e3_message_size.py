"""E3 — O(log^2 n) message size (Theorem 4).

Reproduces: the largest message of a run (the most-voted agent's
certificate: Theta(log n) votes of Theta(log n) bits) grows like log^2 n.
Expected shape: the log^2 n fit wins with R^2 ~ 1; log n and n fits are
visibly worse.
"""

from repro.experiments.e3_message_size import E3Options, run
from common import main_experiment, run_experiment_bench

OPTS = E3Options(
    sizes=(64, 128, 256, 512, 1024, 2048, 4096),
    trials=50,
    gamma=3.0,
)


def test_e3_message_size(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e3_message_size",
                                  run, OPTS)
    main, fits = result.tables()
    r2 = dict(zip(fits.column("fitted shape"), fits.column("R^2")))
    assert r2["log^2 n"] > 0.995
    assert r2["log^2 n"] > r2["log n"]
    assert r2["log^2 n"] > r2["n"]


if __name__ == "__main__":
    raise SystemExit(main_experiment("e3_message_size", run, OPTS))
