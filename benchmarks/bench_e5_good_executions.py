"""E5 — good executions happen w.h.p. (Lemma 3).

Reproduces: with a sufficient gamma, the three good-execution events
(everyone voted-upon, distinct k values, Find-Min agreement) hold with
probability -> 1, improving in both n and gamma.  Also reports the
Lemma 6.1 observable (minimum Commitment pulls any agent received).
"""

from repro.experiments.e5_good_executions import E5Options, run
from common import main_experiment, run_experiment_bench

OPTS = E5Options(
    sizes=(64, 256, 1024),
    gammas=(1.0, 2.0, 3.0),
    trials=300,
)


def test_e5_good_executions(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e5_good_executions",
                                  run, OPTS)
    table, = result.tables()
    rows = {
        (n, g): rate
        for n, g, rate in zip(
            table.column("n"), table.column("gamma"),
            table.column("good rate"),
        )
    }
    collisions = {
        (n, g): c
        for n, g, c in zip(
            table.column("n"), table.column("gamma"),
            table.column("k collisions"),
        )
    }
    # gamma >= 2 is already comfortably good at every size...
    for n in OPTS.sizes:
        assert rows[(n, 2.0)] > 0.95
        assert rows[(n, 3.0)] > 0.97
        # ...and gamma buys probability monotonically (up to MC noise).
        assert rows[(n, 3.0)] >= rows[(n, 1.0)]
    # "W.h.p." in n: at gamma=3 the bad-execution rate vanishes with n.
    assert rows[(1024, 3.0)] >= rows[(64, 3.0)]
    assert rows[(1024, 3.0)] > 0.995
    # k-collisions follow the birthday bound n^2 / (2 m) = 1/(2n)
    # (Lemma 3.2's w.h.p. distinctness): rare at n=64, almost gone at
    # n=1024 (expected hits over 300 trials ~ 0.15, so allow the
    # occasional one rather than pinning a specific random stream).
    for (n, _g), c in collisions.items():
        assert c / OPTS.trials < 4.0 / n
    assert collisions[(1024, 3.0)] <= 2


if __name__ == "__main__":
    raise SystemExit(main_experiment("e5_good_executions", run, OPTS))
