"""Perf benchmark: per-agent graph runs vs the batched CSR tier.

Times the full E10a workload — every scenario of the default matrix at
the new paper-scale defaults (n = 512, 500 trials per scenario) — on
the batched ``batch`` engine, against the per-agent
``run_graph_protocol`` path it replaced.  The agent engine needs
~0.5–1 s per trial at n = 512, so timing the full grid there would take
the better part of an hour; instead the benchmark measures per-trial
samples per scenario and extrapolates (the JSON records both the raw
sample timings and the extrapolation, clearly labelled).

A second, fully *measured* point runs both engines end-to-end at a
small size (n = 64) so the speedup claim does not rest on extrapolation
alone, and a third point times the sequential-model lockstep tier
against its scalar reference.

Graph sampling is shared input for every engine (both tiers consume the
same prebuilt CSRs), so it is timed separately and excluded from the
speedup ratio.  The *sampling split* section then times the input
pipeline on its own: the vectorized samplers uncached, a cold pass
through the workload-artifact cache (sample + publish), and a warm pass
(attach-only, from a fresh process state) — the cold/warm cache point
``BENCH_graphs.json`` records for the ROADMAP's "sampling is the
bottleneck" item.

Acceptance bars: >= 20x on the n = 512 E10a grid (ISSUE 4), and the
warm-cache sampling pass >= 10x under the recorded 25.6 s per-edge-
Python cold point (ISSUE 9).  Results are archived to
``BENCH_graphs.json`` at the repo root.

Runs standalone too:
``PYTHONPATH=src python benchmarks/bench_graphs.py``
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.experiments.dispatch import (
    run_async_trials_fast,
    run_graph_trials_fast,
)
from repro.experiments.e10_extensions import _DEFAULT_SCENARIOS
from repro.experiments.workloads import balanced
from repro.extensions.families import sample_scenario_workload
from repro.util.tables import Table
from repro.workloads import (
    cache_stats,
    cached_scenario_workload,
    detach_artifacts,
    reset_cache_stats,
    workload_cache,
)
from common import bench_json_path, machine_info, main_perf, write_bench

RESULT_PATH = bench_json_path("graphs")

#: The cold per-edge-Python sampling point BENCH_graphs.json recorded
#: before the vectorized samplers + artifact cache landed (ISSUE 9's
#: >= 10x warm-cache acceptance bar is measured against it).
RECORDED_COLD_REFERENCE_S = 25.6

# The headline grid: ISSUE 4's acceptance point (the E10a defaults).
HEADLINE_N = 512
HEADLINE_TRIALS = 500
GAMMA = 3.0
CHURN_RATE = 0.05
BASE_SEED = 1010
# Agent-engine sample size per scenario for the extrapolation.
AGENT_SAMPLE_TRIALS = 2
# Fully measured cross-check point.
SMALL_N = 64
SMALL_TRIALS = 40
SMALL_SCENARIOS = ("er_dense", "regular8", "star")
# Sequential-model point.
ASYNC_N = 1024
ASYNC_TRIALS = 160


def _workload(scenario: str, n: int, trials: int):
    """The exact E10a workload definition (one source of truth)."""
    wl = sample_scenario_workload(
        scenario, n, trials, BASE_SEED, churn_rate=CHURN_RATE
    )
    return wl.csrs, list(wl.faulty), list(wl.seeds)


def _measure_sampling_split() -> dict:
    """The input-pipeline point: uncached vs cache-cold vs cache-warm.

    All three passes produce the full n = 512 E10a scenario grid.  The
    warm pass detaches the process-wide artifact handles first, so it
    measures a genuine re-attach (manifest parse + mmap) rather than a
    dictionary lookup.
    """
    with tempfile.TemporaryDirectory(prefix="bench-wl-") as td:
        with workload_cache(td):
            reset_cache_stats()
            t0 = time.perf_counter()
            for sc in _DEFAULT_SCENARIOS:
                cached_scenario_workload(
                    sc, HEADLINE_N, HEADLINE_TRIALS, BASE_SEED,
                    churn_rate=CHURN_RATE,
                )
            cold_s = time.perf_counter() - t0
            cold = cache_stats().as_dict()

            detach_artifacts()
            reset_cache_stats()
            t0 = time.perf_counter()
            for sc in _DEFAULT_SCENARIOS:
                cached_scenario_workload(
                    sc, HEADLINE_N, HEADLINE_TRIALS, BASE_SEED,
                    churn_rate=CHURN_RATE,
                )
            warm_s = time.perf_counter() - t0
            warm = cache_stats().as_dict()
        detach_artifacts()
        reset_cache_stats()
    return {
        "n": HEADLINE_N,
        "trials_per_scenario": HEADLINE_TRIALS,
        "scenarios": list(_DEFAULT_SCENARIOS),
        "recorded_cold_reference_s": RECORDED_COLD_REFERENCE_S,
        "cache_cold_s": round(cold_s, 3),
        "cache_warm_s": round(warm_s, 4),
        "sampled_edges_cold": cold["sampled_edges"],
        "sampled_edges_warm": warm["sampled_edges"],
        "warm_speedup_vs_recorded_cold": round(
            RECORDED_COLD_REFERENCE_S / warm_s, 1
        ),
        "cold_speedup_vs_recorded_cold": round(
            RECORDED_COLD_REFERENCE_S / cold_s, 1
        ),
    }


def measure() -> dict:
    colors = balanced(HEADLINE_N)

    # --- shared input: sample every scenario's graphs once.
    t0 = time.perf_counter()
    workloads = {
        sc: _workload(sc, HEADLINE_N, HEADLINE_TRIALS)
        for sc in _DEFAULT_SCENARIOS
    }
    sampling_s = time.perf_counter() - t0

    # --- the input pipeline on its own: uncached / cold / warm.
    sampling_split = _measure_sampling_split()
    sampling_split["uncached_vectorized_s"] = round(sampling_s, 3)

    # --- batch engine: the full grid, measured end-to-end.
    t0 = time.perf_counter()
    rates = {}
    for sc, (csrs, faulty, seeds) in workloads.items():
        res = run_graph_trials_fast(
            csrs, colors, seeds, gamma=GAMMA, faulty=faulty, engine="batch",
        )
        rates[sc] = {
            "success": round(res.success_rate(), 4),
            "zero_vote_mean": round(res.zero_vote_mean(), 2),
            "split": round(res.split_rate(), 4),
        }
    batch_grid_s = time.perf_counter() - t0

    # --- agent engine: per-trial samples, extrapolated to the grid.
    samples = {}
    per_trial = []
    for sc, (csrs, faulty, seeds) in workloads.items():
        sub_faulty = (
            faulty[:AGENT_SAMPLE_TRIALS] if isinstance(faulty, list)
            else faulty
        )
        t0 = time.perf_counter()
        run_graph_trials_fast(
            csrs[:AGENT_SAMPLE_TRIALS], colors, seeds[:AGENT_SAMPLE_TRIALS],
            gamma=GAMMA, faulty=sub_faulty, engine="agent", parallel=False,
        )
        dt = (time.perf_counter() - t0) / AGENT_SAMPLE_TRIALS
        samples[sc] = round(dt, 3)
        per_trial.append(dt)
    mean_trial_s = sum(per_trial) / len(per_trial)
    agent_grid_est_s = mean_trial_s * HEADLINE_TRIALS * len(workloads)

    # --- fully measured small point (no extrapolation).
    small_colors = balanced(SMALL_N)
    small = {
        sc: _workload(sc, SMALL_N, SMALL_TRIALS) for sc in SMALL_SCENARIOS
    }
    t0 = time.perf_counter()
    for sc, (csrs, faulty, seeds) in small.items():
        run_graph_trials_fast(
            csrs, small_colors, seeds, gamma=GAMMA, faulty=faulty,
            engine="batch",
        )
    small_batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for sc, (csrs, faulty, seeds) in small.items():
        run_graph_trials_fast(
            csrs, small_colors, seeds, gamma=GAMMA, faulty=faulty,
            engine="agent", parallel=False,
        )
    small_agent_s = time.perf_counter() - t0

    # --- sequential model: lockstep tier vs the scalar reference.
    async_seeds = list(range(ASYNC_TRIALS))
    t0 = time.perf_counter()
    run_async_trials_fast(ASYNC_N, async_seeds, engine="batch")
    async_batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_async_trials_fast(
        ASYNC_N, async_seeds, engine="agent", parallel=False
    )
    async_scalar_s = time.perf_counter() - t0

    return {
        "benchmark": "graphs",
        "gamma": GAMMA,
        "machine": machine_info(),
        "headline": {
            "n": HEADLINE_N,
            "trials_per_scenario": HEADLINE_TRIALS,
            "scenarios": list(_DEFAULT_SCENARIOS),
            "graph_sampling_s_shared_input": round(sampling_s, 2),
            "batch_grid_s": round(batch_grid_s, 2),
            "agent_per_trial_sample_s": samples,
            "agent_sample_trials_per_scenario": AGENT_SAMPLE_TRIALS,
            "agent_grid_estimated_s": round(agent_grid_est_s, 1),
            "speedup_vs_agent_estimate": round(
                agent_grid_est_s / batch_grid_s, 1
            ),
            "scenario_rates": rates,
        },
        "sampling_split": sampling_split,
        "measured_small_point": {
            "n": SMALL_N,
            "trials_per_scenario": SMALL_TRIALS,
            "scenarios": list(SMALL_SCENARIOS),
            "batch_s": round(small_batch_s, 3),
            "agent_s": round(small_agent_s, 3),
            "speedup_measured": round(small_agent_s / small_batch_s, 1),
        },
        "sequential_model_point": {
            "n": ASYNC_N,
            "trials": ASYNC_TRIALS,
            "lockstep_batch_s": round(async_batch_s, 2),
            "scalar_s": round(async_scalar_s, 2),
            "speedup_measured": round(async_scalar_s / async_batch_s, 1),
        },
    }


def report(results: dict) -> Table:
    head = results["headline"]
    small = results["measured_small_point"]
    asy = results["sequential_model_point"]
    table = Table(
        headers=["workload", "batch tier (s)", "reference tier (s)",
                 "speedup"],
        title="Graph & async tiers vs their reference engines (E10)",
    )
    table.add_row(
        f"E10a grid n={head['n']}, {head['trials_per_scenario']} trials x "
        f"{len(head['scenarios'])} scenarios",
        head["batch_grid_s"],
        f"{head['agent_grid_estimated_s']} (extrapolated)",
        f"{head['speedup_vs_agent_estimate']}x",
    )
    table.add_row(
        f"measured point n={small['n']}, {small['trials_per_scenario']} "
        f"trials x {len(small['scenarios'])} scenarios",
        small["batch_s"],
        f"{small['agent_s']} (measured)",
        f"{small['speedup_measured']}x",
    )
    table.add_row(
        f"sequential model n={asy['n']}, {asy['trials']} trials",
        asy["lockstep_batch_s"],
        f"{asy['scalar_s']} (measured)",
        f"{asy['speedup_measured']}x",
    )
    split = results["sampling_split"]
    table.add_row(
        f"sampling grid cold cache (vs recorded {split['recorded_cold_reference_s']}s)",
        split["cache_cold_s"],
        f"{split['recorded_cold_reference_s']} (recorded)",
        f"{split['cold_speedup_vs_recorded_cold']}x",
    )
    table.add_row(
        "sampling grid warm cache (attach-only)",
        split["cache_warm_s"],
        f"{split['recorded_cold_reference_s']} (recorded)",
        f"{split['warm_speedup_vs_recorded_cold']}x",
    )
    return table


def run() -> dict:
    results = measure()
    write_bench("graphs", results)
    return results


def test_graph_tier_speedup(benchmark, emit):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("graphs_speedup", report(results))
    head = results["headline"]
    # ISSUE 4 acceptance bar: >= 20x on the full E10a grid at n = 512.
    assert head["speedup_vs_agent_estimate"] >= 20.0
    # The fully measured point must clear the same bar without any
    # extrapolation.
    assert results["measured_small_point"]["speedup_measured"] >= 20.0
    # The open-problem shape survives the tier change: expanders succeed,
    # the ring's diameter kills the O(log n) schedule, the star's leaves
    # are disenfranchised.
    rates = head["scenario_rates"]
    assert rates["complete"]["success"] > 0.95
    assert rates["ring"]["success"] < 0.1
    assert rates["star"]["zero_vote_mean"] > head["n"] / 2
    # ISSUE 9 acceptance bar: the warm-cache sampling pass for the
    # full n = 512 grid is >= 10x under the recorded 25.6s cold point,
    # and samples nothing (pure attach).
    split = results["sampling_split"]
    assert split["warm_speedup_vs_recorded_cold"] >= 10.0
    assert split["sampled_edges_warm"] == 0
    assert split["sampled_edges_cold"] > 0
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    raise SystemExit(main_perf("graphs", measure, report))
