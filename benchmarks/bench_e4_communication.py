"""E4 — o(n^2) message complexity (headline claim).

Reproduces: Protocol P uses O(n log n) messages and O(n log^3 n) bits per
run, versus Theta(n^2) messages for the LOCAL-model commit-reveal
election of the prior work.  Expected shape: the message ratio P/LOCAL
falls with n and crosses below 1 at small n; P's totals fit n log n and
n log^3 n far better than n^2.
"""

from repro.experiments.e4_communication import E4Options, run
from common import main_experiment, run_experiment_bench

OPTS = E4Options(
    sizes=(32, 64, 128, 256, 512, 1024, 2048),
    trials=20,
    gamma=3.0,
)


def test_e4_communication(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e4_communication",
                                  run, OPTS)
    main, fits = result.tables()
    ratios = main.column("msg ratio (P/LOCAL)")
    assert ratios[-1] < 0.5           # decisively cheaper at n = 2048
    assert ratios[-1] < ratios[0]     # advantage grows with n
    fit = {
        (q, s): r2
        for q, s, r2 in zip(
            fits.column("quantity"), fits.column("fitted shape"),
            fits.column("R^2"),
        )
    }
    assert fit[("P messages", "n log n")] > 0.999
    assert fit[("P bits", "n log^3 n")] > 0.99


if __name__ == "__main__":
    raise SystemExit(main_experiment("e4_communication", run, OPTS))
