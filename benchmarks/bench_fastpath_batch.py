"""Perf benchmark: per-trial fastpath loop vs the trial-axis batch.

Times ``simulate_protocol_fast`` looped over seeds against
``simulate_protocol_fast_batch`` (both the default statistical mode and
the bit-exact seed-parity mode) at several (n, trials) points, prints
the comparison table, and archives the numbers to ``BENCH_fastpath.json``
at the repo root so future PRs can track the perf trajectory.

Runs standalone too:  ``PYTHONPATH=src python benchmarks/bench_fastpath_batch.py``
"""

from __future__ import annotations

from repro.experiments.workloads import balanced
from repro.fastpath.batch import simulate_protocol_fast_batch
from repro.fastpath.simulate import simulate_protocol_fast
from repro.util.tables import Table
from common import bench_json_path, best_of, machine_info, main_perf, \
    write_bench

RESULT_PATH = bench_json_path("fastpath")

# (n, trials): the headline point is (512, 1000); the flanking points
# show the speedup holding across the experiment suite's range.
POINTS = ((128, 2000), (512, 1000), (2048, 200))
GAMMA = 3.0


def measure() -> dict:
    points = []
    for n, trials in POINTS:
        colors = balanced(n)
        seeds = list(range(trials))
        warm = seeds[: min(16, trials)]
        simulate_protocol_fast(colors, gamma=GAMMA, seed=0)
        simulate_protocol_fast_batch(colors, warm, gamma=GAMMA)
        simulate_protocol_fast_batch(colors, warm, gamma=GAMMA,
                                     seed_parity=True)

        per_trial = best_of(2, lambda: [
            simulate_protocol_fast(colors, gamma=GAMMA, seed=s)
            for s in seeds
        ])
        batch = best_of(3, lambda: simulate_protocol_fast_batch(
            colors, seeds, gamma=GAMMA
        ))
        parity = best_of(2, lambda: simulate_protocol_fast_batch(
            colors, seeds, gamma=GAMMA, seed_parity=True
        ))
        points.append({
            "n": n,
            "trials": trials,
            "per_trial_s": round(per_trial, 4),
            "batch_s": round(batch, 4),
            "batch_parity_s": round(parity, 4),
            "speedup_batch": round(per_trial / batch, 1),
            "speedup_parity": round(per_trial / parity, 2),
        })
    return {
        "benchmark": "fastpath_batch",
        "gamma": GAMMA,
        "machine": machine_info(),
        "points": points,
    }


def report(results: dict) -> Table:
    table = Table(
        headers=["n", "trials", "per-trial loop (s)", "batch (s)",
                 "batch speedup", "parity batch (s)", "parity speedup"],
        title="Fastpath: per-trial loop vs trial-axis batch",
    )
    for p in results["points"]:
        table.add_row(
            p["n"], p["trials"], p["per_trial_s"], p["batch_s"],
            f'{p["speedup_batch"]}x', p["batch_parity_s"],
            f'{p["speedup_parity"]}x',
        )
    return table


def run() -> dict:
    results = measure()
    write_bench("fastpath", results)
    return results


def test_fastpath_batch_speedup(benchmark, emit):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fastpath_batch", report(results))
    by_point = {(p["n"], p["trials"]): p for p in results["points"]}
    headline = by_point[(512, 1000)]
    # The acceptance bar: >= 10x at (n=512, trials=1000).  The batch
    # engine typically clears it by a wide margin; keep some slack for
    # noisy CI machines while still catching real regressions.
    assert headline["speedup_batch"] >= 10.0
    # Seed-parity mode must not be slower than the loop it replays.
    assert headline["speedup_parity"] >= 0.9
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    raise SystemExit(main_perf("fastpath", measure, report))
