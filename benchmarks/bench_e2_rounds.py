"""E2 — O(log n) round complexity (Theorem 4).

Reproduces: the fixed schedule is 4*ceil(gamma log2 n) rounds, and the
stochastic Find-Min phase converges within its q-round budget w.h.p.
Expected shape: both quantities fit a*log n + b with R^2 ~ 1, and the
linear-in-n control fit is visibly worse.
"""

from repro.experiments.e2_rounds import E2Options, run
from common import main_experiment, run_experiment_bench

OPTS = E2Options(
    sizes=(64, 128, 256, 512, 1024, 2048, 4096),
    trials=50,
    gamma=3.0,
)


def test_e2_rounds(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e2_rounds",
                                  run, OPTS)
    main, fits = result.tables()
    fit = {
        (q, s): r2
        for q, s, r2 in zip(
            fits.column("quantity"), fits.column("fitted shape"),
            fits.column("R^2"),
        )
    }
    assert fit[("schedule rounds", "log n")] > 0.999
    assert fit[("find-min mean", "log n")] > 0.9
    assert fit[("find-min mean", "log n")] > fit[("find-min mean", "n")]
    # Find-Min always finished inside its budget at gamma = 3.
    for cell in main.column("converged in q"):
        done, total = cell.split("/")
        assert done == total


if __name__ == "__main__":
    raise SystemExit(main_experiment("e2_rounds", run, OPTS))
