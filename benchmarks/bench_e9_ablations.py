"""E9 — defence ablations: every layer of Protocol P is load-bearing.

Reproduces the role of each proof ingredient by switching defences off
one at a time and replaying the attack each defence exists to stop.
Expected shape: with the full protocol every attack fails (win rate 0);
removing one check re-enables exactly its attack (win rate ~ 1); without
Coherence a starved Find-Min turns clean ⊥ into silent split consensus;
and the pooled attack's win rate rises as gamma (hence commitment
coverage) shrinks, reaching ~1 when the Commitment phase is removed.
"""

from repro.experiments.e9_ablations import E9Options, run
from common import main_experiment, run_experiment_bench

OPTS = E9Options(n=48, minority=0.25, trials=80, gamma=2.5)


def test_e9_ablations(benchmark, emit):
    result = run_experiment_bench(benchmark, emit, "e9_ablations",
                                  run, OPTS)
    table, = result.tables()
    rows = {
        (d, g, a): (w, f, s)
        for d, g, a, w, f, s in zip(
            table.column("defenses"), table.column("gamma"),
            table.column("attack"), table.column("attacker win rate"),
            table.column("fail rate"), table.column("silent split rate"),
        )
    }
    g = OPTS.gamma
    # Full defences: every lying attack fails, never wins.
    for attack in ("underbid_klie", "underbid_alter", "underbid_drop"):
        w, f, _ = rows[("full", g, attack)]
        assert w == 0.0 and f > 0.95, attack
    # Each removed check re-enables its attack.
    assert rows[("without verify_k", g, "underbid_klie")][0] > 0.9
    assert rows[("without verify_ledger", g, "underbid_alter")][0] > 0.9
    assert rows[("without verify_omissions", g, "underbid_drop")][0] > 0.9
    # Coherence turns starved-run splits into clean failures.
    _, _, split_with = rows[("full", 0.75, "none (honest)")]
    _, _, split_without = rows[("without coherence", 0.75, "none (honest)")]
    assert split_with == 0.0
    assert split_without > split_with
    # Commitment coverage is the pooled attack's only obstacle.
    assert rows[("without commitment", g, "pooled")][0] > 0.9
    assert rows[("full", g, "pooled")][0] < 0.5


if __name__ == "__main__":
    raise SystemExit(main_experiment("e9_ablations", run, OPTS))
