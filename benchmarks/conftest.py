"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment (the experiment ↔ claim
wiring is tabulated in DESIGN.md §4), prints the rendered tables to the
terminal (so ``pytest benchmarks/ --benchmark-only`` output is the full
results report) and archives both forms under ``results/``: the classic
``<name>.txt`` render and, for structured :class:`ExperimentResult`
inputs, the round-trippable ``<name>.json`` document next to it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.results import ExperimentResult, write_json
from repro.util.tables import Table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def emit(capsys):
    """Print rendered tables unbuffered and archive them to results/.

    Accepts ``Table`` objects and/or ``ExperimentResult``s; results are
    additionally archived as JSON (same stem as the txt) so downstream
    tooling can consume the run without re-parsing text.
    """

    def _emit(name: str, *items: Table | ExperimentResult) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        tables: list[Table] = []
        results = [i for i in items if isinstance(i, ExperimentResult)]
        for i, result in enumerate(results):
            suffix = f".{i}" if len(results) > 1 else ""
            write_json(result, RESULTS_DIR / f"{name}{suffix}.json")
        for item in items:
            if isinstance(item, ExperimentResult):
                tables.extend(item.tables())
            else:
                tables.append(item)
        text = "\n\n".join(t.render() for t in tables)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
            print()

    return _emit
