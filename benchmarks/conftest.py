"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment table (the experiment ↔
claim wiring is tabulated in DESIGN.md §4), prints it to the terminal
(so ``pytest benchmarks/ --benchmark-only`` output is the full results
report) and archives it under ``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.util.tables import Table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def emit(capsys):
    """Print rendered tables unbuffered and archive them to results/."""

    def _emit(name: str, *tables: Table) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(t.render() for t in tables)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
            print()

    return _emit
