"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one experiment (the experiment ↔ claim
wiring is tabulated in DESIGN.md §4), prints the rendered tables to the
terminal (so ``pytest benchmarks/ --benchmark-only`` output is the full
results report) and archives both forms under ``results/``: the classic
``<name>.txt`` render and, for structured :class:`ExperimentResult`
inputs, the round-trippable ``<name>.json`` document next to it.  The
shared writer lives in :mod:`common` (``benchmarks/common.py``), which
also powers the scripts' standalone ``__main__`` paths.
"""

from __future__ import annotations

import pytest

from common import archive
from repro.results import ExperimentResult
from repro.util.tables import Table


@pytest.fixture
def emit(capsys):
    """Print rendered tables unbuffered and archive them to results/."""

    def _emit(name: str, *items: Table | ExperimentResult) -> None:
        text = archive(name, *items)
        with capsys.disabled():
            print()
            print(text)
            print()

    return _emit
