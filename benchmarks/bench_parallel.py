"""Perf benchmark: the parallel plan backend vs the serial baseline.

Times the sharded multi-core backend (``jobs=4``) against the serial
backend on E7- and E10-sized workloads — the grids the execution-plan
layer exists for:

* **E7 point** — one paper-scale deviation cell (n = 512, 2000 paired
  trials on the ``batch-strategy`` tier; stream quantum 151 trials, so
  the plan shards into ~8 blocks at 4 workers);
* **E10a point** — one paper-scale graph scenario (``er_dense`` at
  n = 512, 500 trials on the batched CSR tier);
* **E10b point** — the sequential-model lockstep simulator (n = 1024,
  240 trials; per-trial streams, quantum 1).

Every point also *verifies* the byte-identity contract (DESIGN.md §9):
the parallel result must equal the serial one field for field before
its timing is recorded.

Acceptance bar: >= 3x measured speedup at ``jobs=4`` on an E7- or
E10-sized grid — asserted only when the *effective* CPU count (the
affinity mask, not ``os.cpu_count()``) is >= 4; on narrower boxes the
gate is skipped with an explicit log line and every point is flagged
``cpu_limited`` (workers timeslicing fewer cores is not parallelism).
Each point archives the worker count that actually ran and the
shard-result transport (``shm``/``pickle``).  Results are archived to
``BENCH_parallel.json`` at the repo root.

Runs standalone too:
``PYTHONPATH=src python benchmarks/bench_parallel.py``
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.exec import collect_execution
from repro.exec.pool import available_cpus
from repro.experiments.dispatch import (
    run_async_trials_fast,
    run_deviation_trials_fast,
    run_graph_trials_fast,
)
from repro.experiments.workloads import balanced, skewed
from repro.extensions.families import sample_scenario_workload
from repro.util.tables import Table
from common import best_of, bench_json_path, machine_info, main_perf, \
    write_bench

RESULT_PATH = bench_json_path("parallel")

JOBS = 4
GAMMA = 3.0
# E7-sized cell: paper scale, one strategy, paired trials (2x the E7
# default trial count, so per-shard compute dwarfs the pool overhead).
E7_N = 512
E7_TRIALS = 4000
E7_STRATEGY = "underbid_alter"
# E10a-sized cell: paper scale, one scenario.
E10A_N = 512
E10A_TRIALS = 1000
E10A_SCENARIO = "er_dense"
# E10b-sized cell: sequential model.
E10B_N = 1024
E10B_TRIALS = 400
BASE_SEED = 55


def _batches_equal(a, b) -> bool:
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, np.ndarray):
            if not np.array_equal(x, y):
                return False
        elif dataclasses.is_dataclass(x) and not isinstance(x, type):
            if not _batches_equal(x, y):
                return False
        elif x != y:
            return False
    return True


def _point(name: str, fn) -> dict:
    """Time serial vs jobs=JOBS on one workload; verify byte-identity.

    Archives the pool width that actually ran (``workers``) and the
    shard-result transport alongside the timings, and flags the point
    ``cpu_limited`` when the affinity mask grants fewer CPUs than the
    workers used — a "speedup" measured there is workers timeslicing
    one another, not parallelism, and must never be quoted as a win.
    """
    serial_res = fn(jobs=None)          # warm + reference
    with collect_execution() as records:
        parallel_res = fn(jobs=JOBS)
    rec = records[-1]
    identical = _batches_equal(serial_res, parallel_res)
    serial_s = best_of(2, lambda: fn(jobs=None))
    parallel_s = best_of(2, lambda: fn(jobs=JOBS))
    effective = available_cpus()
    point = {
        "workload": name,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "identical": identical,
        "workers": rec.workers,
        "transport": rec.transport,
        "cpu_limited": effective < rec.workers,
    }
    if point["cpu_limited"]:
        print(f"[bench_parallel] WARNING: {name}: jobs={JOBS} ran "
              f"{rec.workers} workers on {effective} effective CPU(s) — "
              "speedup is not a parallel measurement on this box")
    return point


def measure() -> dict:
    colors7 = skewed(E7_N, 0.25)
    members = frozenset({colors7.index("blue")})
    seeds7 = [BASE_SEED + 23 * i for i in range(E7_TRIALS)]

    wl = sample_scenario_workload(
        E10A_SCENARIO, E10A_N, E10A_TRIALS, BASE_SEED
    )
    colors10 = balanced(E10A_N)
    seeds10b = [BASE_SEED + 43 * i for i in range(E10B_TRIALS)]

    points = [
        _point(
            f"E7 deviation cell n={E7_N}, {E7_TRIALS} paired trials "
            f"({E7_STRATEGY})",
            lambda jobs: run_deviation_trials_fast(
                colors7, seeds7, E7_STRATEGY, members, gamma=GAMMA,
                jobs=jobs,
            ),
        ),
        _point(
            f"E10a graph cell {E10A_SCENARIO} n={E10A_N}, "
            f"{E10A_TRIALS} trials",
            lambda jobs: run_graph_trials_fast(
                wl.csrs, colors10, wl.seeds, gamma=GAMMA,
                faulty=wl.faulty, jobs=jobs,
            ),
        ),
        _point(
            f"E10b sequential model n={E10B_N}, {E10B_TRIALS} trials",
            lambda jobs: run_async_trials_fast(
                E10B_N, seeds10b, jobs=jobs,
            ),
        ),
    ]
    return {
        "benchmark": "parallel_backend",
        "jobs": JOBS,
        "machine": machine_info(),
        "points": points,
        "best_speedup": max(p["speedup"] for p in points),
        "all_identical": all(p["identical"] for p in points),
    }


def report(results: dict) -> Table:
    table = Table(
        headers=["workload", "serial (s)", f"jobs={results['jobs']} (s)",
                 "speedup", "workers", "transport", "byte-identical"],
        title="Parallel plan backend vs serial baseline",
    )
    for p in results["points"]:
        speedup = f'{p["speedup"]}x'
        if p.get("cpu_limited"):
            speedup += " (cpu-limited)"
        table.add_row(
            p["workload"], p["serial_s"], p["parallel_s"], speedup,
            p.get("workers", "?"), p.get("transport", "?"), p["identical"],
        )
    return table


def run() -> dict:
    results = measure()
    write_bench("parallel", results)
    return results


def test_parallel_backend_speedup(benchmark, emit):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("parallel_backend", report(results))
    # The determinism contract holds unconditionally, on any machine.
    assert results["all_identical"]
    # The speedup bar only binds where the hardware can express it:
    # judged against the affinity mask, not the machine core count.
    cpus = results["machine"]["effective_cpus"]
    if cpus >= JOBS:
        assert results["best_speedup"] >= 3.0
    else:
        print(f"[bench_parallel] SKIPPING >=3x speedup gate: "
              f"effective CPUs {cpus} < jobs={JOBS}")
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    raise SystemExit(main_perf("parallel", measure, report))
