"""Sampler-conformance tier: vectorized == scalar, byte for byte.

The numpy-native samplers in :mod:`repro.extensions.families` (single
and batch) and the scalar per-edge references consume the *same*
pre-drawn uniform tensors, so their outputs must agree exactly — not
statistically, bit for bit.  This suite pins that contract per family,
plus the structural invariants of the sampled graphs (hypothesis), and
the end-to-end guarantee the workload cache rides on: the e10 result
payload is byte-identical with the cache off, cold, and warm.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.extensions.families import (
    DETERMINISTIC_KINDS,
    GRAPH_KINDS,
    PATCHED_KINDS,
    GraphCSR,
    sample_churn_faulty,
    sample_graph,
    sample_graph_batch,
    sample_graph_reference,
    sample_scenario_workload,
)
from repro.util.faults import (
    decode_fault_sets,
    encode_fault_sets,
    normalise_faulty,
)
from repro.workloads import (
    cached_scenario_workload,
    detach_artifacts,
    workload_cache,
)

SIZES = (8, 24, 64)
SEEDS = (0, 1, 1010)


def assert_same_sample(a, b) -> None:
    assert a.kind == b.kind
    assert a.patched_edges == b.patched_edges
    assert np.array_equal(a.csr.indptr, b.csr.indptr)
    assert np.array_equal(a.csr.nbrs, b.csr.nbrs)


def connected(csr: GraphCSR) -> bool:
    seen = np.zeros(csr.n, dtype=bool)
    stack = [0]
    seen[0] = True
    while stack:
        u = stack.pop()
        for v in csr.neighbors(u):
            if not seen[v]:
                seen[v] = True
                stack.append(int(v))
    return bool(seen.all())


class TestScalarReferenceParity:
    """The headline contract: fast sampler == scalar reference, per seed."""

    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    @pytest.mark.parametrize("n", SIZES)
    def test_reference_byte_identity(self, kind, n):
        for seed in SEEDS:
            assert_same_sample(
                sample_graph(kind, n, seed),
                sample_graph_reference(kind, n, seed),
            )

    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_batch_matches_per_seed(self, kind):
        seeds = [1010 + 41 * i for i in range(7)]
        batch = sample_graph_batch(kind, 24, seeds)
        assert len(batch) == len(seeds)
        for s, got in zip(seeds, batch):
            assert_same_sample(got, sample_graph(kind, 24, s))

    def test_batch_shares_deterministic_samples(self):
        # The batch tier's block-adjacency fast path keys on object
        # identity — deterministic kinds must share one sample.
        for kind in DETERMINISTIC_KINDS:
            batch = sample_graph_batch(kind, 16, [3, 44, 85])
            assert all(s is batch[0] for s in batch)

    def test_batch_empty_and_validation(self):
        assert sample_graph_batch("ba", 16, []) == []
        with pytest.raises(ValueError, match="unknown graph kind"):
            sample_graph_batch("mystery", 16, [1])
        with pytest.raises(ValueError, match="n >= 4"):
            sample_graph_reference("ba", 2, 1)


class TestSamplerProperties:
    """Hypothesis invariants of the vectorized samplers."""

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(5, 80), seed=st.integers(0, 2**31 - 1))
    def test_ba_connected_and_bounded(self, n, seed):
        # BA attaches every new vertex to an existing one: connected by
        # construction (never patched), with at most m*(n-m) edges.
        g = sample_graph("ba", n, seed)
        m = min(4, n - 1)
        assert g.patched_edges == 0
        assert connected(g.csr)
        assert g.csr.edge_count() <= m * (n - m)
        assert g.csr.nbrs.size % 2 == 0

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(5, 80), seed=st.integers(0, 2**31 - 1))
    def test_ws_connected_after_patch(self, n, seed):
        g = sample_graph("ws", n, seed)
        assert connected(g.csr)
        # Rewiring never adds edges beyond the lattice count.
        half = max(1, min(8, n - 2) // 2)
        assert g.csr.edge_count() <= n * half + g.patched_edges

    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(sorted(PATCHED_KINDS)),
        n=st.integers(5, 64),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_patch_counts_match_reference(self, kind, n, seed):
        fast = sample_graph(kind, n, seed)
        ref = sample_graph_reference(kind, n, seed)
        assert fast.patched_edges == ref.patched_edges
        assert connected(fast.csr)

    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from(GRAPH_KINDS),
        n=st.integers(5, 64),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_csr_well_formed(self, n, kind, seed):
        csr = sample_graph(kind, n, seed).csr
        assert csr.indptr.shape == (n + 1,)
        assert csr.indptr[0] == 0 and csr.indptr[-1] == csr.nbrs.size
        assert np.all(np.diff(csr.indptr) >= 0)
        # Degree sum == 2E (handshake), labels in range, rows sorted,
        # no self loops.
        assert int(csr.degrees.sum()) == csr.nbrs.size
        if csr.nbrs.size:
            assert csr.nbrs.min() >= 0 and csr.nbrs.max() < n
        for u in (0, n // 2, n - 1):
            row = csr.neighbors(u)
            assert np.all(np.diff(row) > 0)  # sorted, no duplicates
            assert u not in row

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(4, 128),
        rate=st.floats(0.0, 0.9),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_churn_sets_respect_normalise_faulty(self, n, rate, seed):
        f = sample_churn_faulty(n, rate, seed)
        # Labels valid for n agents — normalise_faulty must accept.
        [back] = normalise_faulty(f, 1, n)
        assert back == f
        assert len(f) <= n - 2  # at least two agents stay alive

    @settings(max_examples=25, deadline=None)
    @given(
        sets=st.lists(
            st.frozensets(st.integers(0, 63), max_size=8), max_size=6
        )
    )
    def test_fault_set_encoding_round_trips(self, sets):
        labels, offsets = encode_fault_sets(sets)
        assert labels.dtype == np.int64 and offsets.dtype == np.int64
        assert offsets.shape == (len(sets) + 1,)
        assert decode_fault_sets(labels, offsets) == list(sets)


class TestWorkloadParity:
    """Scenario workloads through the cache: cold == warm == uncached."""

    def assert_same_workload(self, a, b) -> None:
        assert a.scenario == b.scenario
        assert a.seeds == b.seeds
        assert tuple(a.faulty) == tuple(b.faulty)
        assert len(a.samples) == len(b.samples)
        for x, y in zip(a.samples, b.samples):
            assert_same_sample(x, y)

    @pytest.mark.parametrize("scenario", ["ba", "ring", "regular8+churn"])
    def test_cache_roundtrip_byte_identity(self, scenario, tmp_path):
        plain = sample_scenario_workload(scenario, 16, 5, 1010)
        with workload_cache(tmp_path):
            cold = cached_scenario_workload(scenario, 16, 5, 1010)
            detach_artifacts()
            warm = cached_scenario_workload(scenario, 16, 5, 1010)
        self.assert_same_workload(plain, cold)
        self.assert_same_workload(plain, warm)
        assert cold.ref is not None and warm.ref is not None
        # Cached views are read-only memory maps: nothing downstream
        # can mutate the shared artifact.
        assert not warm.csrs[0].nbrs.flags.writeable

    def test_e10_payload_identical_cache_on_and_off(self, tmp_path):
        from golden_opts import GOLDEN_OPTS
        from repro.experiments.registry import get_experiment

        spec = get_experiment("e10")
        opts = spec.options_cls(**GOLDEN_OPTS["e10"])
        off = spec.run(opts).payload_json()
        with workload_cache(tmp_path):
            cold = spec.run(opts).payload_json()
            detach_artifacts()
            warm = spec.run(opts).payload_json()
        assert off == cold
        assert off == warm
