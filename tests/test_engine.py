"""Tests for the synchronous GOSSIP engine and its model enforcement."""

from __future__ import annotations

import pytest

from repro.gossip.actions import Idle, Pull, Push
from repro.gossip.engine import GossipEngine, ProtocolViolation
from repro.gossip.messages import NO_REPLY, Blob
from repro.gossip.metrics import MessageMetrics
from repro.gossip.node import FaultyNode, Node
from repro.gossip.trace import EventTrace


class Recorder(Node):
    """A passive node logging everything it observes."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.pushes: list[tuple[int, object, int]] = []
        self.requests: list[tuple[int, str, int]] = []
        self.replies: list[tuple[int, object, int]] = []
        self.timeouts: list[tuple[int, int]] = []
        self.reply_with: object = NO_REPLY
        self.next_action = None

    def begin_round(self, rnd):
        action, self.next_action = self.next_action, None
        return action

    def on_push(self, sender, payload, rnd):
        self.pushes.append((sender, payload, rnd))

    def on_pull_request(self, requester, topic, rnd):
        self.requests.append((requester, topic, rnd))
        return self.reply_with

    def on_pull_reply(self, responder, payload, rnd):
        self.replies.append((responder, payload, rnd))

    def on_pull_timeout(self, target, rnd):
        self.timeouts.append((target, rnd))


def make_network(n: int) -> tuple[dict[int, Recorder], GossipEngine]:
    nodes = {i: Recorder(i) for i in range(n)}
    return nodes, GossipEngine(nodes, trace=EventTrace())


class TestDelivery:
    def test_push_delivered_with_true_sender(self):
        nodes, engine = make_network(3)
        nodes[0].next_action = Push(2, Blob(5, "hello"))
        engine.run_round()
        assert nodes[2].pushes == [(0, Blob(5, "hello"), 0)]

    def test_pull_round_trip(self):
        nodes, engine = make_network(3)
        nodes[1].reply_with = Blob(7, "data")
        nodes[0].next_action = Pull(1, "topic")
        engine.run_round()
        assert nodes[1].requests == [(0, "topic", 0)]
        assert nodes[0].replies == [(1, Blob(7, "data"), 0)]

    def test_no_reply_becomes_timeout(self):
        nodes, engine = make_network(2)
        nodes[0].next_action = Pull(1, "t")
        engine.run_round()
        assert nodes[0].timeouts == [(1, 0)]
        assert nodes[0].replies == []

    def test_pull_on_faulty_times_out(self):
        nodes = {0: Recorder(0), 1: FaultyNode(1)}
        engine = GossipEngine(nodes)
        nodes[0].next_action = Pull(1, "t")
        engine.run_round()
        assert nodes[0].timeouts == [(1, 0)]

    def test_idle_and_none_equivalent(self):
        nodes, engine = make_network(2)
        nodes[0].next_action = Idle()
        engine.run_round()  # must not raise; nothing delivered
        assert engine.metrics.total_messages == 0

    def test_multiple_receives_in_one_round(self):
        # GOSSIP: at most one ACTIVE op each, but unlimited passive receives.
        nodes, engine = make_network(4)
        for i in (0, 1, 2):
            nodes[i].next_action = Push(3, Blob(1, i))
        engine.run_round()
        assert [p[0] for p in nodes[3].pushes] == [0, 1, 2]


class TestReplySnapshotSemantics:
    def test_information_moves_one_hop_per_round(self):
        """A reply must not expose data pushed to the responder this round."""

        class Holder(Recorder):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.value = None

            def on_push(self, sender, payload, rnd):
                super().on_push(sender, payload, rnd)
                self.value = payload.data

            def on_pull_request(self, requester, topic, rnd):
                # Replies are gathered before pushes are delivered, so
                # self.value must still be None in round 0.
                return Blob(1, self.value)

        nodes = {0: Recorder(0), 1: Holder(1), 2: Recorder(2)}
        engine = GossipEngine(nodes)
        nodes[0].next_action = Push(1, Blob(1, "secret"))
        nodes[2].next_action = Pull(1, "t")
        engine.run_round()
        # Node 2 pulled node 1 in the same round node 0 pushed to it:
        # the reply reflects the start-of-round state.
        assert nodes[2].replies[0][1].data is None
        assert nodes[1].value == "secret"


class TestModelEnforcement:
    def test_self_gossip_rejected(self):
        nodes, engine = make_network(2)
        nodes[0].next_action = Push(0, Blob(1))
        with pytest.raises(ProtocolViolation):
            engine.run_round()

    def test_unknown_target_rejected(self):
        nodes, engine = make_network(2)
        nodes[1].next_action = Pull(99, "t")
        with pytest.raises(ProtocolViolation):
            engine.run_round()

    def test_invalid_action_type_rejected(self):
        nodes, engine = make_network(2)
        nodes[0].next_action = "push-two-messages-please"
        with pytest.raises(ProtocolViolation):
            engine.run_round()

    def test_node_id_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GossipEngine({0: Recorder(1)})

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            GossipEngine({})


class TestMetrics:
    def test_push_accounting(self):
        nodes, engine = make_network(4)  # label_bits(4) = 2 -> header 4 bits
        nodes[0].next_action = Push(1, Blob(10))
        engine.run_round()
        m = engine.metrics
        assert m.pushes == 1
        assert m.total_bits == 4 + 10
        assert m.max_message_bits == 14

    def test_pull_accounting(self):
        nodes, engine = make_network(4)
        nodes[1].reply_with = Blob(20)
        nodes[0].next_action = Pull(1, "t")
        engine.run_round()
        m = engine.metrics
        assert m.pull_requests == 1
        assert m.pull_replies == 1
        # request: header+topic; reply: header+payload
        assert m.total_bits == (4 + 2) + (4 + 20)
        assert m.max_message_bits == 24

    def test_unanswered_pull_counts_request_only(self):
        nodes, engine = make_network(4)
        nodes[0].next_action = Pull(1, "t")
        engine.run_round()
        assert engine.metrics.pull_requests == 1
        assert engine.metrics.pull_replies == 0

    def test_round_counter_and_per_round(self):
        nodes, engine = make_network(2)
        nodes[0].next_action = Push(1, Blob(1))
        engine.run_round()
        engine.run_round()
        assert engine.metrics.rounds == 2
        assert engine.metrics.per_round_messages == [1, 0]

    def test_merge(self):
        a, b = MessageMetrics(), MessageMetrics()
        a.start_round(); a.record_push(10)
        b.start_round(); b.record_push(30)
        a.merge(b)
        assert a.pushes == 2
        assert a.max_message_bits == 30
        assert a.rounds == 2


class TestTrace:
    def test_trace_records_every_exchange(self):
        nodes, engine = make_network(3)
        nodes[1].reply_with = Blob(1)
        nodes[0].next_action = Push(2, Blob(1))
        nodes[2].next_action = Pull(1, "t")
        engine.run_round()
        kinds = sorted(e.kind for e in engine.trace)
        assert kinds == ["pull_reply", "pull_request", "push"]

    def test_trace_round_filter(self):
        nodes, engine = make_network(2)
        nodes[0].next_action = Push(1, Blob(1))
        engine.run_round()
        engine.run_round()
        assert len(engine.trace.in_round(0)) == 1
        assert len(engine.trace.in_round(1)) == 0
