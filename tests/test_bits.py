"""Tests for bit-size accounting helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bits_for_range,
    color_bits,
    label_bits,
    round_index_bits,
    vote_bits,
)


class TestBitsForRange:
    def test_domain_of_one_costs_one_bit(self):
        assert bits_for_range(1) == 1

    def test_powers_of_two(self):
        assert bits_for_range(2) == 1
        assert bits_for_range(256) == 8
        assert bits_for_range(1024) == 10

    def test_non_powers_round_up(self):
        assert bits_for_range(3) == 2
        assert bits_for_range(1000) == 10
        assert bits_for_range(1025) == 11

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            bits_for_range(0)

    @given(st.integers(min_value=2, max_value=10**9))
    def test_property_encodable(self, size):
        # 2^bits must cover the domain, and bits must be minimal.
        b = bits_for_range(size)
        assert 2 ** b >= size
        assert 2 ** (b - 1) < size


class TestDomainHelpers:
    def test_vote_bits_is_three_label_bits_for_powers_of_two(self):
        # m = n^3 => log2 m = 3 log2 n exactly when n is a power of two.
        n = 64
        assert vote_bits(n ** 3) == 3 * label_bits(n)

    def test_label_bits_small(self):
        assert label_bits(2) == 1

    def test_color_bits_monotone(self):
        assert color_bits(2) <= color_bits(5) <= color_bits(100)

    def test_round_index_bits(self):
        assert round_index_bits(8) == 3
