"""Tests for fault patterns and coalition builders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.coalitions import (
    coalition_size_schedules,
    color_coalition,
    random_coalition,
)
from repro.adversary.faults import (
    color_targeted_faults,
    prefix_faults,
    random_faults,
)
from repro.util.rng import SeedTree


class TestFaultPatterns:
    def test_prefix_count(self):
        assert prefix_faults(100, 0.25) == frozenset(range(25))

    def test_zero_alpha_no_faults(self):
        assert prefix_faults(64, 0.0) == frozenset()

    def test_random_count_and_range(self):
        rng = SeedTree(1).generator()
        faults = random_faults(100, 0.3, rng)
        assert len(faults) == 30
        assert all(0 <= f < 100 for f in faults)

    def test_random_deterministic_given_stream(self):
        a = random_faults(50, 0.2, SeedTree(5).generator())
        b = random_faults(50, 0.2, SeedTree(5).generator())
        assert a == b

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            prefix_faults(10, 1.0)
        with pytest.raises(ValueError):
            random_faults(10, -0.1, SeedTree(0).generator())

    def test_color_targeted_hits_target_first(self):
        colors = ["r"] * 10 + ["b"] * 10
        faults = color_targeted_faults(colors, "r", 0.25)  # 5 faults
        assert all(colors[f] == "r" for f in faults)
        assert len(faults) == 5

    def test_color_targeted_spills_over(self):
        colors = ["r"] * 3 + ["b"] * 17
        faults = color_targeted_faults(colors, "r", 0.5)  # 10 faults
        assert len(faults) == 10
        assert {0, 1, 2} <= faults  # all reds crashed first

    @given(st.integers(min_value=4, max_value=256),
           st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=40)
    def test_property_never_crashes_everyone(self, n, alpha):
        faults = prefix_faults(n, alpha)
        assert len(faults) < n


class TestCoalitions:
    def test_random_size_and_exclusion(self):
        rng = SeedTree(2).generator()
        excl = frozenset(range(10))
        c = random_coalition(40, 5, rng, exclude=excl)
        assert len(c) == 5
        assert not (c & excl)

    def test_random_too_large_rejected(self):
        rng = SeedTree(3).generator()
        with pytest.raises(ValueError):
            random_coalition(10, 11, rng)

    def test_color_coalition_members_support_color(self):
        colors = ["r", "b", "r", "b", "b"]
        c = color_coalition(colors, "b")
        assert c == frozenset({1, 3, 4})

    def test_color_coalition_truncates(self):
        colors = ["b"] * 10
        c = color_coalition(colors, "b", t=3)
        assert c == frozenset({0, 1, 2})

    def test_color_coalition_empty_rejected(self):
        with pytest.raises(ValueError):
            color_coalition(["r", "r"], "b")

    def test_size_schedules_respect_theorem_regime(self):
        import math
        schedules = coalition_size_schedules()
        for name, f in schedules.items():
            for n in (64, 1024, 65536):
                t = f(n)
                assert 1 <= t, name
                # t = o(n / log n): check t stays under n/log2(n) at scale.
                assert t <= n / math.log2(n), (name, n)

    def test_schedule_growth(self):
        schedules = coalition_size_schedules()
        assert schedules["single"](4096) == 1
        assert schedules["sqrt"](4096) == 64
        assert schedules["n_over_log2"](4096) == 4096 // 144
