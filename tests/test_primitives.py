"""Tests for the classic gossip primitives (known convergence behaviour)."""

from __future__ import annotations

import math

import pytest

from repro.gossip.primitives import (
    rounds_until_spread,
    run_min_aggregation,
    run_pull_broadcast,
    run_push_rumor,
)


class TestPushRumor:
    def test_spreads_to_everyone(self):
        n = 64
        rounds = 4 * int(math.log2(n)) + 8
        informed = run_push_rumor(n, rounds, seed=1)
        assert all(informed)

    def test_does_not_spread_without_source_rounds(self):
        informed = run_push_rumor(16, 0, seed=1)
        assert sum(informed) == 1

    def test_faulty_nodes_stay_uninformed(self):
        n = 32
        faulty = frozenset({5, 9})
        informed = run_push_rumor(n, 40, seed=2, faulty=faulty)
        assert not informed[5] and not informed[9]
        assert all(informed[i] for i in range(n) if i not in faulty)


class TestPullBroadcast:
    def test_spreads_to_everyone(self):
        n = 64
        rounds = 4 * int(math.log2(n)) + 8
        informed = run_pull_broadcast(n, rounds, seed=3)
        assert all(informed)

    def test_tolerates_linear_faults(self):
        # Lemma 3.3: pull-broadcast still completes with alpha*n faults,
        # given slightly more rounds.
        n = 64
        faulty = frozenset(range(1, n, 3))  # ~n/3 faulty
        rounds = 8 * int(math.log2(n)) + 16
        informed = run_pull_broadcast(n, rounds, seed=4, faulty=faulty)
        assert all(informed[i] for i in range(n) if i not in faulty)


class TestRoundsUntilSpread:
    @pytest.mark.parametrize("mechanism", ["pull", "push"])
    def test_logarithmic_scaling(self, mechanism):
        """Spreading time grows like log n: measure at two sizes."""
        r_small = rounds_until_spread(32, seed=5, mechanism=mechanism)
        r_big = rounds_until_spread(256, seed=5, mechanism=mechanism)
        # log2(256)/log2(32) = 1.6; allow generous slack but require that
        # 8x more nodes costs far less than 8x more rounds.
        assert r_big < 4 * r_small
        assert r_small >= int(math.log2(32))  # can at best double per round

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            rounds_until_spread(8, mechanism="smoke-signals")


class TestMinAggregation:
    def test_converges_to_global_min(self):
        values = [50, 3, 99, 17, 42, 8, 77, 23] * 4  # n = 32
        rounds = 6 * int(math.log2(len(values))) + 10
        finals = run_min_aggregation(values, rounds, seed=6)
        assert all(v == 3 for v in finals)

    def test_faulty_min_never_surfaces(self):
        # The minimum value sits on a faulty node; active nodes must
        # converge to the minimum among ACTIVE nodes instead.
        values = [0 if i == 4 else 100 + i for i in range(16)]
        faulty = frozenset({4})
        finals = run_min_aggregation(values, 60, seed=7, faulty=faulty)
        active_min = min(v for i, v in enumerate(values) if i != 4)
        assert all(
            finals[i] == active_min for i in range(16) if i not in faulty
        )

    def test_zero_rounds_keeps_initial_values(self):
        values = [5, 1, 9]
        finals = run_min_aggregation(values, 0, seed=8)
        assert finals == values
