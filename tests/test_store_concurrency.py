"""Concurrent writers against one :class:`ResultStore` database.

The store's concurrency contract (DESIGN.md §11): separate *processes*
writing the same sqlite database all succeed — WAL mode plus a
``busy_timeout`` queues writers instead of failing them; identical
payloads under one key are idempotent; a *different* payload under an
existing key is refused with an error naming the key; and a writer
SIGKILLed mid-put leaves the store readable (sqlite transactions are
all-or-nothing).

Writers here are real subprocesses (not threads), synchronised on a
start-marker file so their write windows genuinely overlap.  Results
are synthesised cheaply in the children — what's under test is the
store, not the experiments.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.results import ExperimentResult, ResultSection, build_meta
from repro.service.store import ResultStore, StoreConflictError

from test_exec_faults import needs_chaos_env

SRC = str(Path(__file__).resolve().parent.parent / "src")


def synthetic_result(seed: int, value: float = 1.0) -> ExperimentResult:
    """A tiny result whose key depends on ``seed`` only (not ``value``)."""
    return ExperimentResult(
        experiment="zz_conc",
        options={"seed": seed, "trials": 2},
        sections=(ResultSection(headers=("trial", "x"),
                                rows=((0, value), (1, value + seed))),),
        title="synthetic", claim="store-concurrency fixture",
        options_type="tests.Synthetic",
        meta=build_meta(wall_time_s=0.0),
    )


# The writer child: waits for the go-marker, then puts a run of
# synthetic results.  Prints PUT/DUP counts; exits 3 on a conflict,
# printing the error so the parent can assert the key is named.
_WRITER = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    sys.path.insert(0, {tests!r})
    from pathlib import Path
    from repro.service.store import ResultStore, StoreConflictError
    from test_store_concurrency import synthetic_result

    db, marker, lo, hi, value = (
        sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]),
        float(sys.argv[5]),
    )
    store = ResultStore(db)
    deadline = time.monotonic() + 10
    while not Path(marker).exists():
        if time.monotonic() > deadline:
            sys.exit("writer never released")
        time.sleep(0.001)
    new = dup = 0
    try:
        for seed in range(lo, hi):
            if store.put(synthetic_result(seed, value=value)):
                new += 1
            else:
                dup += 1
    except StoreConflictError as exc:
        print(f"conflict: {{exc}}", flush=True)
        sys.exit(3)
    print(f"new={{new}} dup={{dup}}", flush=True)
""")


def _spawn_writer(db: Path, marker: Path, lo: int, hi: int,
                  value: float = 1.0) -> subprocess.Popen:
    code = _WRITER.format(src=SRC, tests=str(Path(__file__).parent))
    return subprocess.Popen(
        [sys.executable, "-c", code, str(db), str(marker),
         str(lo), str(hi), str(value)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _release_and_wait(marker: Path, *writers: subprocess.Popen):
    marker.touch()
    outs = []
    for w in writers:
        out, err = w.communicate(timeout=60)
        outs.append((w.returncode, out, err))
    return outs


class TestConcurrentWriters:
    def test_two_processes_disjoint_keys(self, tmp_path):
        db, marker = tmp_path / "c.sqlite3", tmp_path / "go"
        a = _spawn_writer(db, marker, 0, 25)
        b = _spawn_writer(db, marker, 25, 50)
        results = _release_and_wait(marker, a, b)
        for rc, out, err in results:
            assert rc == 0, err
            assert "new=25 dup=0" in out
        with ResultStore(db) as store:
            assert store.stats()["results"] == 50
            # Spot-check payload integrity after the contended writes.
            r7 = store.get(synthetic_result(7).key)
            assert r7.payload_json() == synthetic_result(7).payload_json()

    def test_two_processes_same_keys_idempotent(self, tmp_path):
        db, marker = tmp_path / "c.sqlite3", tmp_path / "go"
        a = _spawn_writer(db, marker, 0, 25)
        b = _spawn_writer(db, marker, 0, 25)
        results = _release_and_wait(marker, a, b)
        new = dup = 0
        for rc, out, err in results:
            assert rc == 0, err
            fields = dict(kv.split("=") for kv in out.split())
            new += int(fields["new"])
            dup += int(fields["dup"])
        # Every key written exactly once; every re-put a harmless dup.
        assert new == 25
        assert dup == 25
        with ResultStore(db) as store:
            assert store.stats()["results"] == 25

    def test_cross_process_conflict_names_key(self, tmp_path):
        db, marker = tmp_path / "c.sqlite3", tmp_path / "go"
        victim = synthetic_result(0, value=1.0)
        with ResultStore(db) as store:
            store.put(victim)
        # Same keys, different payloads (value differs): the child must
        # refuse with an error naming the clashing key, not overwrite.
        w = _spawn_writer(db, marker, 0, 5, value=2.0)
        [(rc, out, err)] = _release_and_wait(marker, w)
        assert rc == 3, (out, err)
        assert "conflict:" in out
        assert victim.key in out
        with ResultStore(db) as store:
            # The held row is untouched.
            assert store.get(victim.key).payload_json() \
                == victim.payload_json()

    def test_in_process_conflict_attributes(self, tmp_path):
        with ResultStore(tmp_path / "c.sqlite3") as store:
            store.put(synthetic_result(1, value=1.0))
            with pytest.raises(StoreConflictError) as err:
                store.put(synthetic_result(1, value=9.0))
            assert err.value.key == synthetic_result(1).key
            assert err.value.experiment == "zz_conc"
            assert err.value.key in str(err.value)

    @needs_chaos_env
    def test_sigkill_mid_put_leaves_store_readable(self, tmp_path):
        """SIGKILL a writer mid-stream: no torn rows, store stays live."""
        db, marker = tmp_path / "c.sqlite3", tmp_path / "go"
        w = _spawn_writer(db, marker, 0, 100_000)  # far more than it gets
        marker.touch()
        # Let it write for a moment, then kill without warning.
        deadline = time.monotonic() + 10
        while not db.exists() and time.monotonic() < deadline:
            time.sleep(0.005)
        time.sleep(0.15)
        os.kill(w.pid, signal.SIGKILL)
        w.wait(timeout=30)
        assert w.returncode == -signal.SIGKILL
        with ResultStore(db) as store:
            stats = store.stats()
            n = stats["results"]
            assert n >= 1  # it got *something* in before dying
            # Every surviving row is complete: the key answers with a
            # parseable document whose payload matches a fresh synth.
            for seed in range(min(n, 50)):
                r = store.get(synthetic_result(seed).key)
                if r is None:
                    continue
                assert r.payload_json() \
                    == synthetic_result(seed).payload_json()
            # And the store still accepts writes.
            assert store.put(synthetic_result(10**6)) is True
            assert store.stats()["results"] == n + 1
