"""Tests for the structured-results layer: registry, records, persistence.

The heart of this file is the two acceptance properties of the results
redesign:

* **byte parity** — for fixed seeds, ``ExperimentResult.tables()``
  renders byte-identically to the pre-redesign print-only output
  (captured in ``tests/golden/`` before the refactor, with the exact
  options recorded in ``tests/golden_opts.py``);
* **round trip** — ``save_result`` → ``load_result`` reproduces the
  in-memory result (canonical JSON, resume key and rendered text all
  equal).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from golden_opts import GOLDEN_OPTS
from repro.experiments.registry import (
    experiment_names,
    get_experiment,
    iter_experiments,
    options_dict,
    run_experiment,
)
from repro.results import (
    ExperimentResult,
    ResultSection,
    load_result,
    result_key,
    save_result,
    write_csv,
    write_jsonl,
)
from repro.study import Study, derive_cell_seed
from repro.util.tables import Table

GOLDEN_DIR = Path(__file__).parent / "golden"

EXPERIMENTS = experiment_names()


@pytest.fixture(scope="module")
def tiny_results() -> dict[str, ExperimentResult]:
    """Each experiment run once at the golden (tiny, fixed-seed) options."""
    out = {}
    for name in EXPERIMENTS:
        spec = get_experiment(name)
        out[name] = spec.run(spec.options_cls(**GOLDEN_OPTS[name]))
    return out


class TestRegistry:
    def test_all_ten_registered(self):
        assert EXPERIMENTS == [f"e{i}" for i in range(1, 11)]
        for spec in iter_experiments():
            assert spec.options_cls.__name__ == f"{spec.name.upper()}Options"
            assert spec.title and spec.claim

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="e99"):
            get_experiment("e99")

    def test_run_experiment_overrides(self):
        result = run_experiment("e1", sizes=(16,), workloads=("balanced",),
                                trials=4, parallel=False)
        assert isinstance(result, ExperimentResult)
        assert result.options["trials"] == 4

    def test_spec_run_accepts_options_instance(self):
        spec = get_experiment("e1")
        opts = spec.options_cls(**GOLDEN_OPTS["e1"])
        result = spec.run(opts)
        # Recorded options are the dataclass minus the execution-only
        # fields (``jobs`` steers the backend, never the results, and
        # must not perturb the content-hash resume key).
        assert result.options == options_dict(opts)
        expected = dict(dataclasses.asdict(opts))
        expected.pop("jobs")
        assert result.options == expected
        assert "jobs" not in result.options


@pytest.mark.parametrize("name", EXPERIMENTS)
class TestPerExperiment:
    def test_render_matches_pre_redesign_bytes(self, name, tiny_results):
        golden = (GOLDEN_DIR / f"{name}.txt").read_text()
        assert tiny_results[name].render() + "\n" == golden

    def test_save_load_round_trip(self, name, tiny_results, tmp_path):
        result = tiny_results[name]
        (path,) = save_result(result, tmp_path)
        loaded = load_result(path)
        assert loaded.canonical() == result.canonical()
        assert loaded.key == result.key
        assert loaded.render() == result.render()

    def test_metadata_populated(self, name, tiny_results):
        meta = tiny_results[name].meta
        assert meta.version
        assert meta.wall_time_s is not None and meta.wall_time_s >= 0
        assert meta.seed_spine["base"] == GOLDEN_OPTS[name]["seed"]
        assert meta.seed_spine["strides"]


class TestResultRecords:
    def test_records_are_header_keyed(self, tiny_results):
        recs = tiny_results["e1"].records()
        assert len(recs) == 2  # balanced + skewed at one size
        assert recs[0]["workload"] == "balanced"
        assert recs[0]["section"] == 0
        assert isinstance(recs[0]["TV distance"], float)

    def test_multi_section_records_tagged(self, tiny_results):
        recs = tiny_results["e2"].records()
        assert {r["section"] for r in recs} == {0, 1}

    def test_column_searches_sections(self, tiny_results):
        r2 = tiny_results["e2"].column("R^2")  # lives in the second table
        assert len(r2) == 4

    def test_key_depends_on_options(self):
        base = {"trials": 10, "seed": 1}
        assert result_key("e1", base) == result_key("e1", dict(base))
        assert result_key("e1", base) != result_key("e1", {**base, "seed": 2})
        assert result_key("e1", base) != result_key("e2", base)

    def test_key_tuple_list_invariant(self):
        assert result_key("e1", {"sizes": (64, 128)}) == \
            result_key("e1", {"sizes": [64, 128]})


class TestWriters:
    def test_jsonl_one_line_per_row(self, tiny_results, tmp_path):
        result = tiny_results["e2"]
        path = write_jsonl(result, tmp_path / "e2.jsonl")
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert len(lines) == sum(len(s.rows) for s in result.sections)
        assert all(line["experiment"] == "e2" for line in lines)
        assert all(line["key"] == result.key for line in lines)

    def test_csv_per_section(self, tiny_results, tmp_path):
        result = tiny_results["e2"]  # two sections
        paths = write_csv(result, tmp_path / "e2.csv")
        assert len(paths) == 2
        header = paths[0].read_text().splitlines()[0]
        assert header.split(",")[0] == "n"

    def test_save_result_formats(self, tiny_results, tmp_path):
        result = tiny_results["e1"]
        paths = save_result(result, tmp_path,
                            formats=("json", "jsonl", "csv", "txt"))
        assert {p.suffix for p in paths} == {".json", ".jsonl", ".csv", ".txt"}
        stem = f"e1-{result.key}"
        assert all(p.name.startswith(stem) for p in paths)
        txt = next(p for p in paths if p.suffix == ".txt")
        assert txt.read_text() == result.render() + "\n"

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="schema"):
            load_result(path)


class TestSectionNormalisation:
    def test_numpy_cells_become_native(self):
        np = pytest.importorskip("numpy")
        t = Table(headers=["a", "b", "c", "d"])
        t.add_row(np.int64(3), np.float64(0.5), np.bool_(True), None)
        section = ResultSection.from_table(t)
        assert section.rows[0] == (3, 0.5, True, None)
        assert [type(v) for v in section.rows[0][:3]] == [int, float, bool]

    def test_rebuilt_table_renders_identically(self):
        t = Table(headers=["q", "v"], title="T", floatfmt=".3g")
        t.add_row("x", 1.23456)
        t.add_row("y", True)
        assert ResultSection.from_table(t).table().render() == t.render()


class TestStudy:
    def test_grid_validation(self):
        with pytest.raises(ValueError, match="valid fields"):
            Study("e1", {"bogus": [1, 2]})

    def test_cells_and_derived_seeds(self):
        study = Study("e1", {"sizes": [(16,), (24,)]},
                      workloads=("balanced",), trials=4, parallel=False,
                      seed=5)
        cells = study.cells()
        assert [c.assignment for c in cells] == [
            {"sizes": (16,)}, {"sizes": (24,)},
        ]
        seeds = [c.options.seed for c in cells]
        assert seeds[0] != seeds[1]
        assert seeds[0] == derive_cell_seed(5, {"sizes": (16,)})
        assert len({c.key for c in cells}) == 2

    def test_explicit_seed_axis_wins(self):
        study = Study("e1", {"seed": [1, 2]}, trials=4)
        assert [c.options.seed for c in study.cells()] == [1, 2]

    def test_run_and_resume(self, tmp_path):
        study = Study("e1", {"sizes": [(16,), (24,)]},
                      workloads=("balanced",), trials=4, parallel=False,
                      seed=5)
        first = study.run(out_dir=tmp_path)
        assert [c.cached for c in first.cells] == [False, False]
        archives = [p for p in tmp_path.glob("e1-*.json")
                    if "study" not in p.name]
        assert len(archives) == 2
        assert (tmp_path / "e1-study.manifest.json").is_file()

        second = study.run(out_dir=tmp_path)
        assert [c.cached for c in second.cells] == [True, True]
        assert [c.result.canonical() for c in first.cells] == \
            [c.result.canonical() for c in second.cells]

    def test_resume_recomputes_other_version_cells(self, tmp_path):
        study = Study("e1", {"sizes": [(16,)]}, workloads=("balanced",),
                      trials=4, parallel=False, seed=5)
        study.run(out_dir=tmp_path)
        # Forge a version bump in the saved cell: the content-hash key
        # still matches, but the version gate must force a recompute.
        path = next(p for p in tmp_path.glob("e1-*.json")
                    if "study" not in p.name)
        doc = json.loads(path.read_text())
        doc["meta"]["version"] = "0.0.0"
        path.write_text(json.dumps(doc))
        rerun = study.run(out_dir=tmp_path)
        assert [c.cached for c in rerun.cells] == [False]
        assert json.loads(path.read_text())["meta"]["version"] != "0.0.0"

    def test_records_merge_assignment(self, tmp_path):
        study = Study("e1", {"sizes": [(16,)]}, workloads=("balanced",),
                      trials=4, parallel=False)
        recs = study.run().records()
        assert recs[0]["sizes"] == (16,)
        assert recs[0]["n"] == 16
        assert "cell_key" in recs[0]

    def test_empty_grid_is_single_cell(self):
        study = Study("e1", {}, sizes=(16,), workloads=("balanced",),
                      trials=4, parallel=False)
        result = study.run()
        assert len(result.cells) == 1
        assert result.cells[0].assignment == {}
        assert result.manifest()["experiment"] == "e1"
