"""Behavioural tests for the remaining strategies (suppress, target
switching, fabrication) and coalition-blackboard mechanics."""

from __future__ import annotations

from repro.agents.plans import plan
from repro.core.protocol import ProtocolConfig, run_protocol
from tests.conftest import two_color_split


def run_with(strategy, members, seed=0, n=48, gamma=2.5):
    colors = two_color_split(n, 0.75)
    blues = [i for i, c in enumerate(colors) if c == "blue"]
    chosen = frozenset(blues[: members])
    return run_protocol(ProtocolConfig(
        colors=colors, gamma=gamma, seed=seed,
        deviation=plan(strategy, chosen),
    ))


class TestFindMinSuppression:
    def test_network_converges_despite_suppressors(self):
        # t = o(n/log n) suppressors are indistinguishable from extra
        # faults; the schedule absorbs them.
        ok = sum(run_with("findmin_suppress", 4, seed=s).succeeded
                 for s in range(6))
        assert ok == 6

    def test_suppressors_never_fail_the_network(self):
        for s in range(4):
            res = run_with("findmin_suppress", 4, seed=s)
            assert res.failed_agents == ()

    def test_win_distribution_not_biased(self):
        # Suppression cannot make blue win beyond its fair share; over a
        # few runs blue must not sweep.
        wins = sum(run_with("findmin_suppress", 4, seed=s).outcome == "blue"
                   for s in range(8))
        assert wins <= 5


class TestVoteSwitchTargets:
    def test_target_switching_detected_or_neutral(self):
        # Switching targets triggers VOTE_OMITTED at the declared target's
        # certificate whenever that certificate wins; otherwise neutral.
        fails = wins = 0
        for s in range(6):
            res = run_with("vote_switch_targets", 1, seed=s)
            fails += res.outcome is None
            wins += res.outcome == "blue"
        assert wins <= 2  # no systematic gain


class TestFabricatedCertificates:
    def test_fabricated_votes_never_survive(self):
        for s in range(4):
            res = run_with("underbid_fabricate", 1, seed=s)
            assert res.outcome is None  # always detected


class TestCoalitionBlackboard:
    def test_members_register_and_share(self):
        res = run_with("pooled", 3, seed=1)
        nodes = res.extras["nodes"]
        members = [a for a in nodes.values()
                   if type(a).__name__ == "PooledAttackAgent"]
        shared = members[0].shared
        assert all(m.shared is shared for m in members)
        assert set(shared.agents) == {m.node_id for m in members}

    def test_most_common_color_is_blue(self):
        res = run_with("pooled", 3, seed=2)
        nodes = res.extras["nodes"]
        shared = next(a for a in nodes.values()
                      if type(a).__name__ == "PooledAttackAgent").shared
        assert shared.most_common_color() == "blue"
        assert set(shared.members_supporting("blue")) == shared.members

    def test_intra_coalition_votes_rewired(self):
        res = run_with("pooled", 3, seed=3)
        nodes = res.extras["nodes"]
        members = {a.node_id: a for a in nodes.values()
                   if type(a).__name__ == "PooledAttackAgent"}
        for m in members.values():
            intra = [pv for pv in m.intention if pv.target in members]
            assert intra  # every member aims some votes at the coalition
            assert all(pv.target != m.node_id for pv in m.intention)
