"""The public API surface: what README promises must import and work."""

from __future__ import annotations

import importlib

import pytest


class TestTopLevelExports:
    def test_all_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_runs(self):
        from repro import ProtocolConfig, run_protocol

        colors = ["red"] * 60 + ["blue"] * 40
        result = run_protocol(ProtocolConfig(colors=colors, seed=7))
        assert result.outcome in {"red", "blue"}
        assert result.metrics.total_messages > 0

    def test_version_present(self):
        import repro

        assert repro.__version__ == "1.6.0"


class TestSubpackagesImportClean:
    @pytest.mark.parametrize("module", [
        "repro.gossip", "repro.gossip.primitives",
        "repro.core", "repro.agents", "repro.adversary",
        "repro.baselines", "repro.fastpath", "repro.analysis",
        "repro.analysis.theory", "repro.analysis.report",
        "repro.experiments", "repro.experiments.workloads",
        "repro.experiments.registry", "repro.results", "repro.study",
        "repro.extensions", "repro.cli", "repro.util",
        "repro.exec", "repro.exec.plan", "repro.exec.backends",
        "repro.exec.reducers", "repro.exec.pool", "repro.exec.chaos",
    ])
    def test_import(self, module):
        mod = importlib.import_module(module)
        assert mod is not None

    @pytest.mark.parametrize("module", [
        "repro.gossip", "repro.core", "repro.agents", "repro.adversary",
        "repro.baselines", "repro.fastpath", "repro.analysis",
        "repro.extensions", "repro.util", "repro.exec",
    ])
    def test_package_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestDocstrings:
    @pytest.mark.parametrize("module", [
        "repro", "repro.gossip.engine", "repro.core.agent",
        "repro.core.verification", "repro.agents.pooled",
        "repro.fastpath.simulate", "repro.baselines.halpern_vilaca",
    ])
    def test_key_modules_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 100

    def test_public_classes_documented(self):
        from repro.core.agent import HonestAgent
        from repro.core.protocol import ProtocolConfig, run_protocol
        from repro.gossip.engine import GossipEngine

        for obj in (HonestAgent, ProtocolConfig, run_protocol, GossipEngine):
            assert obj.__doc__
