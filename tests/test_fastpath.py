"""Tests for the vectorised fastpath, incl. cross-validation vs the
agent engine (same process, two implementations)."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import ProtocolConfig, run_protocol
from repro.fastpath.simulate import simulate_protocol_fast
from tests.conftest import two_color_split


class TestBasicBehaviour:
    def test_outcome_is_valid_color(self):
        res = simulate_protocol_fast(two_color_split(64, 0.5), seed=1)
        assert res.outcome in {"red", "blue"}
        assert res.succeeded

    def test_deterministic(self):
        colors = two_color_split(128, 0.3)
        a = simulate_protocol_fast(colors, seed=9)
        b = simulate_protocol_fast(colors, seed=9)
        assert a == b

    def test_monochromatic(self):
        res = simulate_protocol_fast(["only"] * 32, seed=2)
        assert res.outcome == "only"

    def test_faulty_never_win(self):
        colors = two_color_split(64, 0.5)
        faulty = frozenset(range(32))  # all reds faulty
        for s in range(5):
            res = simulate_protocol_fast(colors, gamma=5.0,
                                         faulty=faulty, seed=s)
            assert res.outcome == "blue"
            assert res.winner not in faulty

    def test_rounds_match_schedule(self):
        res = simulate_protocol_fast(two_color_split(64, 0.5), gamma=2.0,
                                     seed=3)
        from repro.core.params import ProtocolParams
        assert res.rounds == ProtocolParams(n=64, gamma=2.0).total_rounds

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_protocol_fast(
                ["a", "b"], faulty=frozenset({0, 1}), seed=0
            )

    def test_find_min_rounds_positive_when_agreed(self):
        res = simulate_protocol_fast(two_color_split(256, 0.5), seed=4)
        assert res.find_min_agreement
        assert 1 <= res.find_min_rounds <= res.rounds // 4


class TestGoodExecutionEvents:
    def test_good_at_healthy_parameters(self):
        res = simulate_protocol_fast(two_color_split(256, 0.5), gamma=3.0,
                                     seed=5)
        assert res.is_good
        assert res.min_votes >= 1
        assert not res.k_collision

    def test_vote_concentration(self):
        # Theta(log n) votes: min and max within a reasonable factor.
        res = simulate_protocol_fast(two_color_split(1024, 0.5), gamma=3.0,
                                     seed=6)
        assert res.min_votes >= 5
        assert res.max_votes <= 12 * res.min_votes

    def test_commitment_coverage_positive(self):
        res = simulate_protocol_fast(two_color_split(256, 0.5), gamma=3.0,
                                     seed=7)
        assert res.min_commitment_pulls_received >= 1


class TestCrossValidation:
    """The two engines simulate the same process."""

    def test_message_counts_identical(self):
        colors = two_color_split(64, 0.5)
        agent = run_protocol(ProtocolConfig(colors=colors, gamma=3.0, seed=5))
        fast = simulate_protocol_fast(colors, gamma=3.0, seed=5)
        assert agent.metrics.total_messages == fast.total_messages

    def test_bit_totals_within_model_slack(self):
        colors = two_color_split(64, 0.5)
        agent = run_protocol(ProtocolConfig(colors=colors, gamma=3.0, seed=5))
        fast = simulate_protocol_fast(colors, gamma=3.0, seed=5)
        ratio = agent.metrics.total_bits / fast.total_bits
        assert 0.7 < ratio < 1.5  # winner-cert-size pricing, documented

    def test_max_message_bits_same_order(self):
        colors = two_color_split(64, 0.5)
        agent = run_protocol(ProtocolConfig(colors=colors, gamma=3.0, seed=5))
        fast = simulate_protocol_fast(colors, gamma=3.0, seed=5)
        ratio = agent.metrics.max_message_bits / fast.max_message_bits
        assert 0.5 < ratio < 2.0

    def test_outcome_distributions_statistically_close(self):
        # Same (n, colors): across seeds, both engines must elect 'blue'
        # at a rate near its support (25%). Chi-square would be overkill;
        # compare against a generous binomial band (120 trials).
        colors = two_color_split(32, 0.75)
        trials = 120
        agent_blue = sum(
            run_protocol(
                ProtocolConfig(colors=colors, gamma=2.0, seed=s)
            ).outcome == "blue"
            for s in range(trials)
        )
        fast_blue = sum(
            simulate_protocol_fast(colors, gamma=2.0, seed=s).outcome == "blue"
            for s in range(trials)
        )
        for blue in (agent_blue, fast_blue):
            assert 0.12 * trials < blue < 0.40 * trials
        assert abs(agent_blue - fast_blue) < 0.2 * trials

    def test_schedule_rounds_identical(self):
        colors = two_color_split(48, 0.5)
        agent = run_protocol(ProtocolConfig(colors=colors, gamma=2.5, seed=8))
        fast = simulate_protocol_fast(colors, gamma=2.5, seed=8)
        assert agent.rounds == fast.rounds


class TestFairnessProperty:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_winner_is_active_agent(self, seed):
        colors = two_color_split(64, 0.4)
        faulty = frozenset(range(0, 64, 5))
        res = simulate_protocol_fast(colors, gamma=4.0, faulty=faulty,
                                     seed=seed)
        if res.succeeded:
            assert res.winner not in faulty
            assert res.outcome == colors[res.winner]

    def test_empirical_fairness_two_colors(self):
        colors = two_color_split(64, 0.7)
        wins = Counter(
            simulate_protocol_fast(colors, seed=s).outcome
            for s in range(300)
        )
        frac_red = wins["red"] / 300
        assert 0.6 < frac_red < 0.8  # 0.7 +/- binomial noise
