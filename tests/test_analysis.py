"""Tests for the statistics / fairness / equilibrium / scaling analysis."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.equilibrium import estimate_utility, gain
from repro.analysis.fairness import (
    chi_square_fairness,
    empirical_distribution,
    expected_distribution,
    fail_rate,
    total_variation,
)
from repro.analysis.scaling import SHAPES, fit_against, r_squared
from repro.analysis.stats import mean_ci, wilson_interval


class TestWilson:
    def test_midpoint_interval(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert hi - lo < 0.25

    def test_boundary_zero(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0 < hi < 0.1

    def test_boundary_all(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0
        assert 0.9 < lo < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    @given(st.integers(min_value=1, max_value=10_000), st.data())
    @settings(max_examples=50)
    def test_property_contains_mle(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        lo, hi = wilson_interval(successes, trials)
        assert 0 <= lo <= successes / trials <= hi <= 1


class TestMeanCI:
    def test_exact_for_constant_sample(self):
        mean, half = mean_ci([3.0, 3.0, 3.0])
        assert mean == 3.0 and half == 0.0

    def test_single_sample_infinite_ci(self):
        mean, half = mean_ci([5.0])
        assert mean == 5.0 and math.isinf(half)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])


class TestFairnessMetrics:
    def test_expected_distribution(self):
        colors = ["r", "r", "b", "g"]
        dist = expected_distribution(colors)
        assert dist == {"r": 0.5, "b": 0.25, "g": 0.25}

    def test_expected_distribution_active_subset(self):
        colors = ["r", "r", "b", "g"]
        dist = expected_distribution(colors, active=[2, 3])
        assert dist == {"b": 0.5, "g": 0.5}

    def test_empirical_excludes_failures(self):
        dist = empirical_distribution(["r", None, "r", "b"])
        assert dist == {"r": 2 / 3, "b": 1 / 3}

    def test_fail_rate(self):
        assert fail_rate(["r", None, None, "b"]) == 0.5

    def test_tv_identity(self):
        p = {"a": 0.5, "b": 0.5}
        assert total_variation(p, p) == 0.0

    def test_tv_disjoint(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == 1.0

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=0, max_value=1),
            min_size=1,
        )
    )
    @settings(max_examples=40)
    def test_property_tv_symmetric_bounded(self, raw):
        total = sum(raw.values()) or 1.0
        p = {k: v / total for k, v in raw.items()}
        q = {"a": 0.2, "b": 0.3, "c": 0.5}
        assert total_variation(p, q) == pytest.approx(total_variation(q, p))
        assert 0 <= total_variation(p, q) <= 1 + 1e-9

    def test_chi_square_accepts_matching(self):
        outcomes = ["r"] * 52 + ["b"] * 48
        _stat, p = chi_square_fairness(outcomes, {"r": 0.5, "b": 0.5})
        assert p > 0.05

    def test_chi_square_rejects_skewed(self):
        outcomes = ["r"] * 95 + ["b"] * 5
        _stat, p = chi_square_fairness(outcomes, {"r": 0.5, "b": 0.5})
        assert p < 0.001

    def test_chi_square_impossible_winner(self):
        stat, p = chi_square_fairness(["ghost"], {"r": 1.0, "ghost": 0.0})
        assert math.isinf(stat) and p == 0.0

    def test_chi_square_needs_successes(self):
        with pytest.raises(ValueError):
            chi_square_fairness([None, None], {"r": 1.0})


class TestEquilibrium:
    def test_estimate_utility_fields(self):
        u = estimate_utility(["b", "r", None, "b"], "b", chi=2.0)
        assert u.wins == 2 and u.failures == 1 and u.trials == 4
        assert u.win_prob == 0.5
        assert u.expected_utility == 0.5 - 2.0 * 0.25

    def test_gain_sign(self):
        honest = estimate_utility(["b"] * 3 + ["r"] * 7, "b", chi=1.0)
        worse = estimate_utility(["b"] * 1 + [None] * 9, "b", chi=1.0)
        assert gain(honest, worse) < 0

    def test_gain_requires_same_color_and_chi(self):
        a = estimate_utility(["b"], "b", chi=1.0)
        b = estimate_utility(["r"], "r", chi=1.0)
        with pytest.raises(ValueError):
            gain(a, b)
        c = estimate_utility(["b"], "b", chi=0.0)
        with pytest.raises(ValueError):
            gain(a, c)

    def test_ci_methods(self):
        u = estimate_utility(["b"] * 30 + ["r"] * 70, "b")
        lo, hi = u.win_prob_ci()
        assert lo < 0.3 < hi


class TestScaling:
    def test_perfect_log_fit(self):
        ns = [64, 128, 256, 512]
        values = [5 * math.log2(n) + 3 for n in ns]
        a, b, r2 = fit_against(ns, values, "log n")
        assert a == pytest.approx(5.0)
        assert b == pytest.approx(3.0)
        assert r2 == pytest.approx(1.0)

    def test_wrong_shape_fits_worse(self):
        ns = [64, 128, 256, 512, 1024, 2048]
        values = [7 * math.log2(n) for n in ns]
        _, _, r2_log = fit_against(ns, values, "log n")
        _, _, r2_lin = fit_against(ns, values, "n")
        assert r2_log > r2_lin

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            fit_against([1, 2], [1, 2], "n!")

    def test_length_validation(self):
        with pytest.raises(ValueError):
            fit_against([1], [1], "n")

    def test_r_squared_constant_series(self):
        assert r_squared([2, 2, 2], [2, 2, 2]) == 1.0
        assert r_squared([2, 2, 2], [3, 3, 3]) == 0.0

    def test_all_shapes_evaluate(self):
        for name, f in SHAPES.items():
            assert f(64) > 0, name
