"""The workload-artifact cache contract (DESIGN.md §12).

Keying on the fully normalised spec (the fault-fraction regression),
hit/miss accounting, mmap ownership, quarantine-and-resample of corrupt
or chaos-torn artifacts, exactly-one-winner concurrent publish (real
subprocesses, ``test_store_concurrency`` style), gc of orphans, the CLI
verbs, and the execution-layer integration: plans pickled for shard
workers drop the CSR bytes in favour of the artifact ref, byte-
identically to a serial in-memory run.
"""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.exec import chaos
from repro.exec.plan import compile_graph_plan
from repro.experiments.dispatch import run_graph_trials_fast
from repro.experiments.workloads import balanced
from repro.extensions.families import (
    SAMPLER_VERSION,
    sample_scenario_workload,
)
from repro.workloads import (
    ENV_VAR,
    WorkloadCache,
    WorkloadRef,
    active_cache,
    attach_artifact,
    cache_stats,
    cached_scenario_workload,
    detach_artifacts,
    reset_cache_stats,
    set_workload_cache,
    workload_cache,
    workload_key,
    workload_spec,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def clean_cache_state():
    reset_cache_stats()
    detach_artifacts()
    yield
    set_workload_cache(None)
    reset_cache_stats()
    detach_artifacts()


class TestKeying:
    def test_spec_carries_every_sampling_input(self):
        spec = workload_spec("ws+churn", 32, 10, 1010, churn_rate=0.1)
        assert spec["kind"] == "ws" and spec["churn"] is True
        assert spec["sampler_version"] == SAMPLER_VERSION
        for field in ("n", "trials", "base_seed", "seed_stride",
                      "churn_rate"):
            assert field in spec

    def test_fault_fraction_regression(self):
        # The silent-resample bug: two scenarios sharing a kind but
        # differing only in fault fraction must never share a key.
        a = workload_spec("regular8+churn", 32, 10, 1010, churn_rate=0.05)
        b = workload_spec("regular8+churn", 32, 10, 1010, churn_rate=0.20)
        assert workload_key(a) != workload_key(b)

    def test_churn_rate_normalised_away_for_plain_kinds(self):
        # ...but for non-churn scenarios the rate is not a sampling
        # input, so it must not split identical workloads across keys.
        a = workload_spec("regular8", 32, 10, 1010, churn_rate=0.05)
        b = workload_spec("regular8", 32, 10, 1010, churn_rate=0.20)
        assert workload_key(a) == workload_key(b)

    def test_key_is_sensitive_to_each_field(self):
        base = workload_spec("ba", 32, 10, 1010)
        for tweak in (dict(n=33), dict(trials=11), dict(base_seed=1011),
                      dict(seed_stride=43), dict(sampler_version=-1)):
            other = {**base, **tweak}
            assert workload_key(other) != workload_key(base), tweak

    def test_different_fault_rate_samples_different_fault_sets(self):
        a = sample_scenario_workload("ring+churn", 64, 4, 7,
                                     churn_rate=0.05)
        b = sample_scenario_workload("ring+churn", 64, 4, 7,
                                     churn_rate=0.4)
        assert a.faulty != b.faulty


class TestFetchAndStats:
    def test_miss_then_hit(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        spec = workload_spec("ba", 16, 5, 1010)
        wl = cache.fetch(spec)
        stats = cache_stats()
        assert (stats.misses, stats.hits) == (1, 0)
        assert stats.sampled_edges > 0
        again = cache.fetch(spec)
        assert (cache_stats().misses, cache_stats().hits) == (1, 1)
        assert wl.seeds == again.seeds
        # The hit attaches the same process-wide artifact.
        assert again.ref is not None and wl.ref is not None
        assert again.ref.path == wl.ref.path

    def test_roundtrip_matches_direct_sampling(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        for scenario in ("ba", "ws", "torus", "regular8+churn"):
            spec = workload_spec(scenario, 16, 4, 1010)
            got = cache.fetch(spec)
            detach_artifacts()
            got = cache.fetch(spec)  # force a re-attach from disk
            ref = sample_scenario_workload(scenario, 16, 4, 1010)
            assert got.seeds == ref.seeds
            assert tuple(got.faulty) == tuple(ref.faulty)
            for a, b in zip(got.csrs, ref.csrs):
                assert np.array_equal(a.indptr, b.indptr)
                assert np.array_equal(a.nbrs, b.nbrs)
            assert got.mean_patched_edges == ref.mean_patched_edges

    def test_views_are_readonly_mmaps(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        wl = cache.fetch(workload_spec("ws", 16, 3, 1))
        csr = wl.csrs[0]
        assert isinstance(csr.nbrs, np.memmap)
        assert not csr.nbrs.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            csr.nbrs[0] = 99

    def test_deterministic_kind_stores_one_graph_shared(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        wl = cache.fetch(workload_spec("ring", 12, 6, 1010))
        art = attach_artifact(wl.ref.path)
        assert art.manifest["graphs"] == 1
        # Identity-shared CSRs: the batch tier's block-adjacency fast
        # path replicates nothing.
        assert all(c is wl.csrs[0] for c in wl.csrs)


class TestRobustness:
    def test_corrupt_manifest_quarantined_and_resampled(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        spec = workload_spec("ba", 16, 4, 1010)
        first = cache.fetch(spec)
        detach_artifacts()
        path = Path(first.ref.path)
        (path / "manifest.json").write_text('{"schema": "trunca')
        again = cache.fetch(spec)
        assert cache_stats().quarantined == 1
        assert path.with_name(path.name + ".corrupt").is_dir()
        assert again.seeds == first.seeds
        # The rebuilt artifact is attachable and complete.
        detach_artifacts()
        assert cache.fetch(spec).ref is not None

    def test_truncated_array_quarantined(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        spec = workload_spec("ws", 16, 4, 1010)
        wl = cache.fetch(spec)
        detach_artifacts()
        path = Path(wl.ref.path)
        data = (path / "nbrs.npy").read_bytes()
        (path / "nbrs.npy").write_bytes(data[: len(data) // 2])
        again = cache.fetch(spec)
        assert cache_stats().quarantined == 1
        assert again.ref is not None

    def test_mismatched_spec_quarantined(self, tmp_path):
        # An artifact squatting on a key it doesn't describe (manual
        # tampering, bad copy) is treated as corruption.
        cache = WorkloadCache(tmp_path)
        spec = workload_spec("ba", 16, 4, 1010)
        wl = cache.fetch(spec)
        detach_artifacts()
        mpath = Path(wl.ref.path) / "manifest.json"
        doc = json.loads(mpath.read_text())
        doc["spec"]["base_seed"] = 999
        mpath.write_text(json.dumps(doc))
        cache.fetch(spec)
        assert cache_stats().quarantined == 1

    def test_chaos_torn_publish_recovers(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        spec = workload_spec("ba", 16, 4, 1010)
        with chaos.install(chaos.ChaosConfig(seed=7, truncate_rate=1.0)):
            wl = cache.fetch(spec)
        # The publish was torn *after* the atomic rename, but the
        # freshly sampled in-memory workload is still served.
        assert wl.seeds == sample_scenario_workload("ba", 16, 4,
                                                    1010).seeds
        # The torn artifact is quarantined on next fetch, then rebuilt.
        again = cache.fetch(spec)
        assert cache_stats().quarantined == 1
        assert again.ref is not None
        detach_artifacts()
        assert cache.fetch(spec).ref is not None


# The concurrent writer child: waits on the go-marker, then fetches the
# same spec as the parent — both processes race to publish one key.
_WRITER = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    from pathlib import Path
    from repro.workloads import WorkloadCache, workload_spec

    root, marker = sys.argv[1], sys.argv[2]
    deadline = time.monotonic() + 10
    while not Path(marker).exists():
        if time.monotonic() > deadline:
            sys.exit("writer never released")
        time.sleep(0.001)
    cache = WorkloadCache(root)
    wl = cache.fetch(workload_spec("ws", 48, 12, 1010))
    print(f"ref={{wl.ref.path if wl.ref else None}}", flush=True)
""")


class TestConcurrentPublish:
    def test_two_processes_one_artifact(self, tmp_path):
        marker = tmp_path / "go"
        code = _WRITER.format(src=SRC)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", code, str(tmp_path), str(marker)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for _ in range(2)
        ]
        marker.touch()
        for p in procs:
            out, err = p.communicate(timeout=60)
            assert p.returncode == 0, err
            assert "ref=" in out and "None" not in out
        # Exactly one artifact, no leftover temp dirs, attachable.
        dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(dirs) == 1
        assert ".tmp." not in dirs[0].name
        assert WorkloadCache(tmp_path).orphans() == []
        art = attach_artifact(dirs[0])
        assert art.trials == 12


class TestGc:
    def _litter(self, cache: WorkloadCache) -> None:
        (cache.root / "ws-deadbeef.tmp.12345").mkdir()
        corrupt = cache.root / "ba-feedface.corrupt"
        corrupt.mkdir()
        (corrupt / "manifest.json").write_text("{}")

    def test_gc_dry_run_then_sweep(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        cache.fetch(workload_spec("ba", 16, 3, 1))
        self._litter(cache)
        report = cache.gc(dry_run=True)
        assert sorted(report["orphans"]) == [
            "ba-feedface.corrupt", "ws-deadbeef.tmp.12345",
        ]
        assert (tmp_path / "ws-deadbeef.tmp.12345").exists()
        report = cache.gc()
        assert not cache.orphans()
        assert len(cache.artifacts()) == 1  # published artifact survives

    def test_gc_all_wipes_artifacts(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        cache.fetch(workload_spec("ba", 16, 3, 1))
        cache.gc(all_artifacts=True)
        assert cache.artifacts() == []


class TestCli:
    def test_list_and_gc_verbs(self, tmp_path, capsys):
        from repro.cli import main

        WorkloadCache(tmp_path).fetch(workload_spec("ba", 16, 3, 1))
        (tmp_path / "ws-aaaa.tmp.1").mkdir()
        assert main(["workloads", "list", "--cache", str(tmp_path),
                     "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert len(listing["artifacts"]) == 1
        assert listing["artifacts"][0]["spec"]["scenario"] == "ba"
        assert listing["orphans"] == ["ws-aaaa.tmp.1"]

        assert main(["workloads", "gc", "--cache", str(tmp_path),
                     "--dry-run"]) == 0
        assert "orphans: 1" in capsys.readouterr().out
        assert main(["workloads", "gc", "--cache", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["workloads", "gc", "--cache", str(tmp_path)]) == 0
        assert "orphans: 0" in capsys.readouterr().out

    def test_requires_cache_root(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv(ENV_VAR, raising=False)
        assert main(["workloads", "list"]) == 2
        assert ENV_VAR in capsys.readouterr().err

    def test_env_activation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        cache = active_cache()
        assert cache is not None and cache.root == tmp_path
        monkeypatch.delenv(ENV_VAR)
        assert active_cache() is None


class TestExecutionIntegration:
    def test_plan_pickle_drops_csr_bytes(self, tmp_path):
        with workload_cache(tmp_path):
            wl = cached_scenario_workload("ba", 32, 8, 1010)
        plan = compile_graph_plan(wl, balanced(32), wl.seeds,
                                  faulty=wl.faulty)
        blob = pickle.dumps(plan)
        clone = pickle.loads(blob)
        assert clone.options["csrs"] is None
        ref = clone.options["workload"]
        assert isinstance(ref, WorkloadRef)
        # The worker-side resolution: attach + slice.
        csrs = ref.csrs()
        assert len(csrs) == 8
        assert np.array_equal(csrs[0].nbrs, wl.csrs[0].nbrs)
        # Shipping the ref beats shipping the arrays.
        assert len(blob) < len(pickle.dumps(wl.csrs))

    def test_plan_without_ref_keeps_csrs(self):
        wl = sample_scenario_workload("ba", 16, 4, 1010)
        plan = compile_graph_plan(wl, balanced(16), wl.seeds,
                                  faulty=wl.faulty)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.options["csrs"] is not None

    def test_slice_narrows_workload_ref(self, tmp_path):
        with workload_cache(tmp_path):
            wl = cached_scenario_workload("ws", 16, 10, 1010)
        plan = compile_graph_plan(wl, balanced(16), wl.seeds,
                                  faulty=wl.faulty)
        shard = plan.slice(4, 8)
        ref = shard.options["workload"]
        assert (ref.lo, ref.hi) == (4, 8)
        assert len(shard.options["csrs"]) == 4
        assert len(ref.csrs()) == 4

    def test_sharded_cached_run_matches_serial_uncached(self, tmp_path):
        wl0 = sample_scenario_workload("ba", 32, 12, 1010)
        serial = run_graph_trials_fast(
            wl0.csrs, balanced(32), wl0.seeds, faulty=wl0.faulty,
            parallel=False,
        )
        with workload_cache(tmp_path):
            wl = cached_scenario_workload("ba", 32, 12, 1010)
            sharded = run_graph_trials_fast(
                wl, balanced(32), wl.seeds, faulty=wl.faulty, jobs=2,
            )
        for field in ("success", "winner", "n_active",
                      "zero_vote_agents", "split", "failed_agents"):
            assert np.array_equal(getattr(serial, field),
                                  getattr(sharded, field)), field
