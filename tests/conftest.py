"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.util.rng import SeedTree


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: heavyweight suites (cross-tier conformance matrix, "
        "experiment smoke tests); CI's fast job deselects them with "
        "-m 'not slow', the nightly/full job runs everything",
    )


@pytest.fixture
def params16() -> ProtocolParams:
    """Small but non-trivial parameters (n=16, gamma=2 -> q=8)."""
    return ProtocolParams(n=16, gamma=2.0)


@pytest.fixture
def params64() -> ProtocolParams:
    """Medium parameters for integration tests (n=64, gamma=2 -> q=12)."""
    return ProtocolParams(n=64, gamma=2.0)


@pytest.fixture
def tree() -> SeedTree:
    return SeedTree(123456789)


def two_color_split(n: int, frac_red: float) -> list[str]:
    """A deterministic red/blue initial configuration."""
    reds = round(n * frac_red)
    return ["red"] * reds + ["blue"] * (n - reds)
