"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.util.rng import SeedTree


@pytest.fixture
def params16() -> ProtocolParams:
    """Small but non-trivial parameters (n=16, gamma=2 -> q=8)."""
    return ProtocolParams(n=16, gamma=2.0)


@pytest.fixture
def params64() -> ProtocolParams:
    """Medium parameters for integration tests (n=64, gamma=2 -> q=12)."""
    return ProtocolParams(n=64, gamma=2.0)


@pytest.fixture
def tree() -> SeedTree:
    return SeedTree(123456789)


def two_color_split(n: int, frac_red: float) -> list[str]:
    """A deterministic red/blue initial configuration."""
    reds = round(n * frac_red)
    return ["red"] * reds + ["blue"] * (n - reds)
