"""Smoke + correctness tests for the experiment harness (tiny scales).

Each experiment must run end-to-end, produce a well-formed table, and
show the *direction* of the paper's claim even at toy sizes.  Full-scale
numbers live in benchmarks/ and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import workloads
from repro.experiments.e1_fairness import E1Options, run as run_e1
from repro.experiments.e2_rounds import E2Options, run as run_e2
from repro.experiments.e3_message_size import E3Options, run as run_e3
from repro.experiments.e4_communication import E4Options, run as run_e4
from repro.experiments.e5_good_executions import E5Options, run as run_e5
from repro.experiments.e6_faults import E6Options, run as run_e6
from repro.experiments.runner import default_workers, run_trials


class TestRunner:
    def test_sequential_matches_parallel(self):
        args = list(range(20))
        seq = run_trials(_square, args, parallel=False)
        par = run_trials(_square, args, parallel=True, max_workers=4)
        assert seq == par == [a * a for a in args]

    def test_empty_args(self):
        assert run_trials(_square, []) == []

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_order_preserved(self):
        args = [5, 1, 3]
        assert run_trials(_square, args, parallel=True) == [25, 1, 9]


def _square(x: int) -> int:
    return x * x


class TestWorkloads:
    def test_balanced_split(self):
        colors = workloads.balanced(10)
        assert colors.count("red") == 5 and colors.count("blue") == 5

    def test_skewed_minority(self):
        colors = workloads.skewed(100, 0.1)
        assert colors.count("blue") == 10

    def test_skewed_never_empty_minority(self):
        assert "blue" in workloads.skewed(5, 0.01)

    def test_multiway_partition(self):
        colors = workloads.multiway(100)
        assert len(colors) == 100
        assert set(colors) == {"c0", "c1", "c2", "c3"}

    def test_leader_election_unique(self):
        colors = workloads.leader_election(32)
        assert len(set(colors)) == 32


class TestE1:
    def test_fairness_direction(self):
        table, = run_e1(E1Options(sizes=(32,), workloads=("balanced",),
                                  trials=120, parallel=False)).tables()
        assert len(table.rows) == 1
        tv = table.column("TV distance")[0]
        assert tv < 0.15  # fair up to Monte-Carlo noise
        assert table.column("fail_rate")[0] < 0.05


class TestE2:
    def test_log_fit_beats_linear(self):
        main, fits = run_e2(E2Options(sizes=(32, 64, 128, 256, 512),
                                      trials=10, parallel=False)).tables()
        assert len(main.rows) == 5
        rows = {(r[0], r[1]): r for r in
                zip(fits.column("quantity"), fits.column("fitted shape"),
                    fits.column("R^2"))}
        assert rows[("schedule rounds", "log n")][2] > 0.99
        assert rows[("schedule rounds", "log n")][2] > \
            rows[("schedule rounds", "n")][2]


class TestE3:
    def test_log2_fit_wins(self):
        main, fits = run_e3(E3Options(sizes=(32, 64, 128, 256, 512, 1024),
                                      trials=8, parallel=False)).tables()
        r2 = dict(zip(fits.column("fitted shape"), fits.column("R^2")))
        assert r2["log^2 n"] > 0.98
        assert r2["log^2 n"] > r2["n"]


class TestE4:
    def test_protocol_beats_local_at_scale(self):
        main, _fits = run_e4(E4Options(sizes=(32, 256), trials=5,
                                       parallel=False)).tables()
        ratios = main.column("msg ratio (P/LOCAL)")
        assert ratios[-1] < 1.0        # P wins at n=256
        assert ratios[-1] < ratios[0]  # and the advantage grows


class TestE5:
    def test_gamma_buys_goodness(self):
        table, = run_e5(E5Options(sizes=(64,), gammas=(0.5, 3.0), trials=60,
                                  parallel=False)).tables()
        rates = table.column("good rate")
        assert rates[1] >= rates[0]
        assert rates[1] > 0.9


class TestE6:
    def test_success_with_moderate_faults(self):
        table, = run_e6(E6Options(n=64, alphas=(0.0, 0.4), gammas=(4.0,),
                                  placements=("random",), trials=40,
                                  parallel=False)).tables()
        for rate in table.column("success rate"):
            assert rate > 0.9


@pytest.mark.slow
class TestE7Smoke:
    def test_no_profitable_strategy_at_toy_scale(self):
        from repro.experiments.e7_equilibrium import E7Options, run as run_e7

        table, = run_e7(E7Options(
            n=24, trials=30,
            strategies=("silent", "underbid_alter", "griefing"),
            coalition_sizes=(1,), parallel=False,
        )).tables()
        for profitable in table.column("profitable?"):
            assert not profitable
