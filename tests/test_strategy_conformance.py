"""Cross-tier conformance matrix: agent engine vs batch strategy tier.

Every registered strategy runs on both simulation tiers — the exact
message-level agent engine and the vectorised strategy fastpath — over
paired seed lists, and the tiers are held to the same verdicts:

(a) where the effect spec makes the verdict *deterministic* (griefing's
    guaranteed coherence sabotage, the underbid family's guaranteed
    refutation at conformance parameters, honest_shadow's no-op), the
    per-trial verdicts must be identical across tiers;
(b) everywhere else, win/fail rates must be compatible within
    two-sample binomial bounds;
(c) Theorem 7's row — ``gain <= 0`` up to CI noise — must reproduce on
    *both* tiers for every strategy.

The matrix parameters are chosen so that every "deterministic" verdict
has escape probability < 1e-6 per trial (q = 16 pulls per agent make
the refuted voter's declaration reach some honest ledger essentially
surely), keeping the exact-match assertions flake-free.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.agents.effects import EFFECT_SPECS
from repro.agents.plans import STRATEGY_NAMES
from repro.experiments.dispatch import run_deviation_trials_fast

N = 24
GAMMA = 3.5            # q = 16: detection-escape probability < 1e-6
COLORS = ["red"] * 18 + ["blue"] * 6
BLUES = [i for i, c in enumerate(COLORS) if c == "blue"]
AGENT_TRIALS = 16
BATCH_TRIALS = 600

# Verdict expectations per strategy at the matrix parameters:
#   all_fail  — every trial is ⊥ on both tiers (deterministic up to the
#               <1e-6 escape event);
#   noop      — deviant outcomes equal the paired honest outcomes
#               trial-for-trial on both tiers;
#   stat      — verdicts are stochastic; rates compared within bounds.
EXPECTED = {
    "honest_shadow": "noop",
    "silent": "stat",
    "pretend_faulty": "stat",
    "underbid_alter": "all_fail",
    "underbid_drop": "all_fail",
    "underbid_fabricate": "all_fail",
    "underbid_klie": "all_fail",
    "equivocate": "stat",
    "vote_switch": "stat",
    "vote_switch_targets": "stat",
    "griefing": "all_fail",
    "findmin_suppress": "stat",
    "pooled": "stat",
    "pooled_gamble": "all_fail",
}

COALITION = {
    # Single-member rows keep the agent tier cheap; the pooled family
    # needs t >= 2 for intra-coalition votes (and pooled_gamble's
    # guaranteed refutation needs a vote to alter, which t >= 2 intra
    # targeting provides surely).
    "pooled": 3,
    "pooled_gamble": 2,
    "silent": 2,
    "findmin_suppress": 2,
}


def _members(strategy: str) -> frozenset[int]:
    return frozenset(BLUES[: COALITION.get(strategy, 1)])


def _run(strategy: str, engine: str, trials: int):
    seeds = list(range(trials))
    return run_deviation_trials_fast(
        COLORS, seeds, strategy, _members(strategy), gamma=GAMMA,
        engine=engine, parallel=False,
    )


@pytest.fixture(scope="module")
def agent_results():
    """One agent-engine pass per strategy, shared across the matrix."""
    return {
        name: _run(name, "agent", AGENT_TRIALS) for name in STRATEGY_NAMES
    }


@pytest.fixture(scope="module")
def batch_results():
    return {
        name: _run(name, "batch-strategy", BATCH_TRIALS)
        for name in STRATEGY_NAMES
    }


def rates_compatible(k1: int, n1: int, k2: int, n2: int,
                     z: float = 4.0) -> bool:
    """Two-sample binomial compatibility at ``z`` sigmas (pooled SE,
    half-count continuity floor so boundary rates never divide by 0)."""
    p1, p2 = k1 / n1, k2 / n2
    pooled = (k1 + k2 + 0.5) / (n1 + n2 + 1)
    se = math.sqrt(max(pooled * (1 - pooled), 0.25 / (n1 + n2))
                   * (1 / n1 + 1 / n2))
    return abs(p1 - p2) <= z * se


def test_registry_and_specs_cover_each_other():
    """The effect-spec table and the agent registry are one registry."""
    assert set(EFFECT_SPECS) == set(STRATEGY_NAMES)
    assert set(EXPECTED) == set(STRATEGY_NAMES)


@pytest.mark.slow
@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
def test_verdict_conformance(strategy, agent_results, batch_results):
    agent = agent_results[strategy]
    batch = batch_results[strategy]
    kind = EXPECTED[strategy]

    if kind == "all_fail":
        # (a) deterministic ⊥: identical per-trial verdicts on both
        # tiers — every trial fails, every trial is detected.
        assert (agent.deviant.winner == -1).all(), strategy
        assert (batch.deviant.winner == -1).all(), strategy
        assert agent.detected.all() and batch.detected.all(), strategy
        return

    if kind == "noop":
        # (a) deterministic no-op: the deviant run equals its paired
        # honest run trial-for-trial on each tier.
        assert np.array_equal(agent.deviant.winner, agent.honest.winner)
        assert np.array_equal(batch.deviant.winner, batch.honest.winner)
        assert not agent.detected.any() and not batch.detected.any()
        return

    # (b) stochastic verdicts: rates compatible across tiers.
    a_out = agent.deviant.outcomes()
    b_out = batch.deviant.outcomes()
    a_fail = sum(1 for o in a_out if o is None)
    b_fail = sum(1 for o in b_out if o is None)
    assert rates_compatible(a_fail, AGENT_TRIALS, b_fail, BATCH_TRIALS), (
        f"{strategy}: fail rates {a_fail}/{AGENT_TRIALS} vs "
        f"{b_fail}/{BATCH_TRIALS}"
    )
    a_win = sum(1 for o in a_out if o == "blue")
    b_win = sum(1 for o in b_out if o == "blue")
    assert rates_compatible(a_win, AGENT_TRIALS, b_win, BATCH_TRIALS), (
        f"{strategy}: win rates {a_win}/{AGENT_TRIALS} vs "
        f"{b_win}/{BATCH_TRIALS}"
    )


@pytest.mark.slow
@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
def test_gain_never_positive(strategy, agent_results, batch_results):
    """(c) Theorem 7 on both tiers: no strategy is measurably
    profitable — gain minus its CI half-width stays <= 0."""
    for res in (agent_results[strategy], batch_results[strategy]):
        g, half = res.paired_gain("blue", chi=1.0)
        assert g - half <= 0, (
            f"{strategy} profitable on {res.n_trials}-trial tier: "
            f"gain={g:.3f} ± {half:.3f}"
        )


@pytest.mark.slow
def test_pooled_exposure_gate_matches(agent_results, batch_results):
    """The pooled attack forges iff a member stayed unexposed — on both
    tiers the forgery rate at these parameters is (essentially) zero
    and every member is exposed."""
    agent = agent_results["pooled"]
    batch = batch_results["pooled"]
    assert not agent.forged.any()
    assert not batch.forged.any()
    t = len(_members("pooled"))
    assert (agent.exposed_members == t).all()
    assert (batch.exposed_members == t).all()


@pytest.mark.slow
def test_forgery_flag_conformance(agent_results, batch_results):
    """Strategies that always forge report it identically on both
    tiers."""
    for name in ("underbid_alter", "underbid_drop", "underbid_klie",
                 "underbid_fabricate", "pooled_gamble"):
        assert agent_results[name].forged.all(), name
        assert batch_results[name].forged.all(), name
