"""Tests for protocol parameters and the round schedule."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import Phase, ProtocolParams


class TestDerivedQuantities:
    def test_m_is_n_cubed(self):
        assert ProtocolParams(n=10).m == 1000

    def test_q_formula(self):
        p = ProtocolParams(n=64, gamma=2.0)
        assert p.q == math.ceil(2.0 * math.log2(64)) == 12

    def test_q_at_least_one(self):
        assert ProtocolParams(n=2, gamma=0.1).q == 1

    def test_total_rounds_is_four_phases(self):
        p = ProtocolParams(n=64, gamma=2.0)
        assert p.total_rounds == 4 * p.q

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=1)
        with pytest.raises(ValueError):
            ProtocolParams(n=8, gamma=0)
        with pytest.raises(ValueError):
            ProtocolParams(n=8, num_colors=0)


class TestSchedule:
    def test_phase_order(self):
        p = ProtocolParams(n=16, gamma=1.0)
        q = p.q
        assert p.phase_of(0) == (Phase.COMMITMENT, 0)
        assert p.phase_of(q) == (Phase.VOTING, 0)
        assert p.phase_of(2 * q) == (Phase.FIND_MIN, 0)
        assert p.phase_of(3 * q) == (Phase.COHERENCE, 0)
        assert p.phase_of(4 * q - 1) == (Phase.COHERENCE, q - 1)

    def test_phase_of_out_of_range(self):
        p = ProtocolParams(n=16)
        with pytest.raises(ValueError):
            p.phase_of(-1)
        with pytest.raises(ValueError):
            p.phase_of(p.total_rounds)

    def test_phase_range_partition(self):
        p = ProtocolParams(n=32, gamma=1.5)
        covered = []
        for phase in Phase:
            covered.extend(p.phase_range(phase))
        assert sorted(covered) == list(range(p.total_rounds))

    @given(st.integers(min_value=2, max_value=4096),
           st.floats(min_value=0.25, max_value=8, allow_nan=False))
    def test_property_schedule_consistency(self, n, gamma):
        p = ProtocolParams(n=n, gamma=gamma)
        for phase in Phase:
            r = p.phase_range(phase)
            assert p.phase_of(r.start) == (phase, 0)
            assert p.phase_of(r.stop - 1) == (phase, p.q - 1)


class TestBitModel:
    def test_vote_bits_triple_label_bits_for_pow2(self):
        p = ProtocolParams(n=128)
        assert p.vote_bits == 3 * p.label_bits

    def test_certificate_bits_grow_linearly_in_votes(self):
        p = ProtocolParams(n=64)
        c0 = p.certificate_bits(0)
        c10 = p.certificate_bits(10)
        c20 = p.certificate_bits(20)
        assert c20 - c10 == c10 - c0  # constant per-vote cost

    def test_certificate_is_polylog(self):
        # With Theta(log n) votes the certificate must be O(log^2 n):
        # check the constant is modest at a concrete size.
        p = ProtocolParams(n=1024, gamma=3.0)
        bits = p.certificate_bits(p.q)  # q = Theta(log n) votes
        log2n = math.log2(p.n)
        # Per vote: ~(3+1)*log2 n bits, times q = gamma*log2 n votes,
        # so the constant is about 4*gamma + slack for k/color/owner.
        assert bits <= (4 * 3.0 + 4) * log2n ** 2

    def test_intention_bits(self):
        p = ProtocolParams(n=16, gamma=2.0)
        assert p.intention_bits() == p.q * (p.vote_bits + p.label_bits)
