"""Property-based tests of the full protocol (hypothesis).

Random small configurations — sizes, splits, fault sets, seeds — must
always satisfy the protocol's structural invariants, whatever the random
draws do.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import ProtocolConfig, run_protocol
from repro.fastpath.simulate import simulate_protocol_fast


@st.composite
def configurations(draw):
    n = draw(st.integers(min_value=8, max_value=40))
    reds = draw(st.integers(min_value=0, max_value=n))
    colors = ["red"] * reds + ["blue"] * (n - reds)
    max_faults = max(0, n - 2)
    n_faults = draw(st.integers(min_value=0, max_value=min(max_faults, n // 3)))
    faulty = frozenset(draw(st.permutations(range(n)))[:n_faults])
    seed = draw(st.integers(min_value=0, max_value=10 ** 9))
    return colors, faulty, seed


class TestAgentEngineInvariants:
    @given(configurations())
    @settings(max_examples=25, deadline=None)
    def test_invariants(self, config):
        colors, faulty, seed = config
        res = run_protocol(ProtocolConfig(
            colors=colors, gamma=3.0, faulty=faulty, seed=seed
        ))
        n = len(colors)
        # Outcome is a supported color or ⊥.
        assert res.outcome is None or res.outcome in set(colors)
        # Decisions exist exactly for the active agents.
        assert set(res.decisions) == set(range(n)) - faulty
        if res.succeeded:
            # Consensus: one color, everyone has it, winner active and
            # supporting it.
            assert set(res.decisions.values()) == {res.outcome}
            assert res.winner is not None and res.winner not in faulty
            assert colors[res.winner] == res.outcome
            assert res.failed_agents == ()
        else:
            # Failure is always attributable.
            assert res.failed_agents or \
                len(set(res.decisions.values())) > 1
        # Communication budget: at most one active op per agent-round,
        # each generating at most 2 messages (pull + reply).
        active = n - len(faulty)
        assert res.metrics.total_messages <= 2 * active * res.rounds
        # The schedule is fixed.
        assert res.rounds == res.extras["params"].total_rounds

    @given(st.integers(min_value=0, max_value=10 ** 9))
    @settings(max_examples=10, deadline=None)
    def test_seed_determinism(self, seed):
        colors = ["red"] * 10 + ["blue"] * 6
        a = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=seed))
        b = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=seed))
        assert a.outcome == b.outcome
        assert a.winner == b.winner
        assert a.metrics.total_bits == b.metrics.total_bits
        assert a.good == b.good


class TestEnginesAgreeOnInvariants:
    @given(configurations())
    @settings(max_examples=25, deadline=None)
    def test_fastpath_same_invariants(self, config):
        colors, faulty, seed = config
        res = simulate_protocol_fast(colors, gamma=3.0, faulty=faulty,
                                     seed=seed)
        assert res.outcome is None or res.outcome in set(colors)
        if res.succeeded:
            assert res.winner not in faulty
            assert colors[res.winner] == res.outcome
        assert res.n_active == len(colors) - len(faulty)
        assert res.min_votes <= res.max_votes

    @given(configurations())
    @settings(max_examples=15, deadline=None)
    def test_message_counts_identical_across_engines(self, config):
        colors, faulty, seed = config
        agent = run_protocol(ProtocolConfig(
            colors=colors, gamma=2.0, faulty=faulty, seed=seed
        ))
        fast = simulate_protocol_fast(colors, gamma=2.0, faulty=faulty,
                                      seed=seed)
        # The count of messages is a deterministic function of which
        # pulls hit faulty agents; both engines sample uniformly, so the
        # counts agree exactly only in the fault-free case.
        if not faulty:
            assert agent.metrics.total_messages == fast.total_messages
        else:
            # With faults, counts differ only through reply hit rates:
            # same order of magnitude, same request counts.
            assert 0.5 < agent.metrics.total_messages / fast.total_messages < 2
