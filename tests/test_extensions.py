"""Tests for the open-problem extensions (graphs, sequential gossip)."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.extensions.async_gossip import (
    async_min_ticks,
    run_async_leader_election,
)
from repro.extensions.topologies import run_graph_protocol
from tests.conftest import two_color_split


class TestGraphProtocol:
    def test_complete_graph_matches_protocol_behaviour(self):
        n = 32
        g = nx.complete_graph(n)
        res = run_graph_protocol(g, two_color_split(n, 0.5), gamma=3.0, seed=1)
        assert res.outcome in {"red", "blue"}
        assert res.zero_vote_agents == 0
        assert not res.split

    def test_dense_er_graph_succeeds(self):
        n = 48
        g = nx.gnp_random_graph(n, 0.5, seed=7)
        for i in range(n):  # keep it connected
            g.add_edge(i, (i + 1) % n)
        res = run_graph_protocol(g, two_color_split(n, 0.5), gamma=3.0, seed=2)
        assert res.outcome is not None

    def test_ring_fails_termination(self):
        # Find-Min needs diameter many rounds; a ring's diameter is n/2,
        # far beyond the O(log n) schedule -> no consensus.
        n = 48
        g = nx.cycle_graph(n)
        res = run_graph_protocol(g, two_color_split(n, 0.5), gamma=3.0, seed=3)
        assert res.outcome is None

    def test_node_labels_validated(self):
        g = nx.complete_graph(5)
        g.add_node(99)
        with pytest.raises(ValueError, match="0..n-1"):
            run_graph_protocol(g, ["a"] * 5, seed=0)

    def test_isolated_vertex_rejected(self):
        g = nx.empty_graph(4)
        with pytest.raises(ValueError, match="no neighbours"):
            run_graph_protocol(g, ["a"] * 4, seed=0)

    def test_faulty_on_graph(self):
        n = 32
        g = nx.complete_graph(n)
        res = run_graph_protocol(
            g, two_color_split(n, 0.5), gamma=4.0, seed=4,
            faulty=frozenset({0, 1, 2}),
        )
        assert 0 not in res.decisions


class TestAsyncMin:
    def test_converges(self):
        values = [float(v) for v in (9, 4, 7, 1, 8, 6, 3, 5)]
        ticks = async_min_ticks(values, seed=1)
        # Must terminate well under the default budget.
        assert ticks < 40 * 8 * (math.log2(8) + 1)

    def test_ticks_scale_superlinearly(self):
        t_small = async_min_ticks(list(range(32, 0, -1)), seed=2)
        t_big = async_min_ticks(list(range(256, 0, -1)), seed=2)
        assert t_big > t_small

    def test_nlogn_shape(self):
        # ticks / (n log n) should be roughly flat across sizes.
        ratios = []
        for n in (64, 256):
            vals = list(range(n, 0, -1))
            t = async_min_ticks([float(v) for v in vals], seed=3)
            ratios.append(t / (n * math.log2(n)))
        assert 0.3 < ratios[1] / ratios[0] < 3.0

    def test_faulty_min_ignored(self):
        values = [0.0] + [10.0 + i for i in range(15)]
        ticks = async_min_ticks(values, seed=4, faulty=frozenset({0}))
        # Converged to the active minimum, not the faulty 0.0 — implied
        # by termination (the faulty value never spreads).
        assert ticks < 40 * 16 * (math.log2(16) + 1)

    def test_tiny_network_rejected(self):
        with pytest.raises(ValueError):
            async_min_ticks([1.0])


class TestAsyncElection:
    def test_converges_and_elects(self):
        res = run_async_leader_election(two_color_split(32, 0.5), seed=5)
        assert res.converged
        assert res.outcome in {"red", "blue"}
        assert res.winner is not None

    def test_deterministic(self):
        a = run_async_leader_election(two_color_split(32, 0.5), seed=6)
        b = run_async_leader_election(two_color_split(32, 0.5), seed=6)
        assert a == b

    def test_faulty_cannot_win(self):
        colors = two_color_split(32, 0.5)
        faulty = frozenset(range(16))
        res = run_async_leader_election(colors, seed=7, faulty=faulty)
        if res.converged:
            assert res.winner not in faulty
            assert res.outcome == "blue"

    def test_starved_budget_fails_gracefully(self):
        res = run_async_leader_election(
            two_color_split(64, 0.5), seed=8, tick_budget_factor=0.05
        )
        assert not res.converged
        assert res.outcome is None
