"""Integration tests: full honest runs of Protocol P."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.outcome import FailReason
from repro.core.protocol import ProtocolConfig, run_protocol
from tests.conftest import two_color_split


class TestHonestRuns:
    def test_consensus_on_valid_color(self):
        colors = two_color_split(48, 0.5)
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=1))
        assert res.succeeded
        assert res.outcome in {"red", "blue"}
        assert res.winner is not None

    def test_all_agents_agree(self):
        colors = two_color_split(32, 0.25)
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=2))
        decided = set(res.decisions.values())
        assert len(decided) == 1

    def test_winner_supported_winning_color(self):
        colors = ["a", "b", "c", "d"] * 8
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=3))
        assert res.succeeded
        assert colors[res.winner] == res.outcome

    def test_monochromatic_start_stays(self):
        colors = ["only"] * 24
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=4))
        assert res.outcome == "only"

    def test_rounds_match_schedule(self):
        colors = two_color_split(32, 0.5)
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=5))
        params = res.extras["params"]
        assert res.rounds == params.total_rounds == 4 * params.q

    def test_good_execution_at_reasonable_size(self):
        colors = two_color_split(64, 0.5)
        res = run_protocol(ProtocolConfig(colors=colors, gamma=3.0, seed=6))
        assert res.good.is_good
        assert res.good.min_votes >= 1
        assert not res.good.k_collision
        assert res.good.find_min_agreement

    def test_determinism(self):
        colors = two_color_split(32, 0.4)
        r1 = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=42))
        r2 = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=42))
        assert r1.outcome == r2.outcome
        assert r1.winner == r2.winner
        assert r1.metrics.total_bits == r2.metrics.total_bits

    def test_different_seeds_vary_winner(self):
        colors = two_color_split(32, 0.5)
        winners = {
            run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=s)).winner
            for s in range(8)
        }
        assert len(winners) > 1  # the election is actually random

    def test_validity_many_colors(self):
        # Leader election: every agent supports a unique color (his label).
        colors = [f"id{i}" for i in range(24)]
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=7))
        assert res.succeeded
        assert res.outcome in set(colors)


class TestMessageComplexity:
    def test_active_operations_bounded_by_n_per_round(self):
        colors = two_color_split(32, 0.5)
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=8))
        assert res.metrics.active_operations <= 32 * res.rounds

    def test_subquadratic_total_messages(self):
        n = 64
        colors = two_color_split(n, 0.5)
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=9))
        # Total messages are O(n log n) (each agent, each round, at most
        # one push or one pull+reply): far below all-to-all n^2 rounds.
        assert res.metrics.total_messages < n * res.rounds * 2
        assert res.metrics.total_messages < n * n * 2


class TestFaultyRuns:
    def test_consensus_with_faults(self):
        colors = two_color_split(48, 0.5)
        faulty = frozenset(range(0, 48, 4))  # 25% faulty
        res = run_protocol(
            ProtocolConfig(colors=colors, gamma=3.0, faulty=faulty, seed=10)
        )
        assert res.succeeded
        # Faulty agents are not in the decision map.
        assert not (set(res.decisions) & faulty)

    def test_winner_is_active(self):
        colors = two_color_split(48, 0.5)
        faulty = frozenset(range(24))  # the entire red half is faulty
        # Half the network is faulty: Lemma 3 needs gamma = gamma(alpha)
        # large enough, so use a bigger phase constant than the default.
        res = run_protocol(
            ProtocolConfig(colors=colors, gamma=5.0, faulty=faulty, seed=11)
        )
        assert res.succeeded
        assert res.winner not in faulty
        assert res.outcome == "blue"  # only blue agents are active

    def test_fairness_respects_active_fractions(self):
        # With all red agents faulty, red can never win, across seeds.
        colors = two_color_split(32, 0.5)
        faulty = frozenset(range(16))
        outcomes = Counter(
            run_protocol(
                ProtocolConfig(colors=colors, gamma=5.0, faulty=faulty, seed=s)
            ).outcome
            for s in range(5)
        )
        assert set(outcomes) == {"blue"}


class TestConfigValidation:
    def test_faulty_label_out_of_range(self):
        with pytest.raises(ValueError):
            run_protocol(ProtocolConfig(colors=["a", "b"], faulty=frozenset({5})))

    def test_single_agent_rejected(self):
        with pytest.raises(ValueError):
            run_protocol(ProtocolConfig(colors=["a"]))

    def test_all_faulty_rejected(self):
        with pytest.raises(ValueError):
            run_protocol(
                ProtocolConfig(colors=["a", "b"], faulty=frozenset({0, 1}))
            )


class TestFailurePlumbing:
    def test_fail_reasons_surface_in_result(self):
        # Craft a run that must fail: disable nothing, but check the
        # plumbing via a healthy run first (no failures).
        colors = two_color_split(32, 0.5)
        res = run_protocol(ProtocolConfig(colors=colors, gamma=2.0, seed=12))
        assert res.failed_agents == ()
        assert res.fail_reasons == {}
        assert FailReason  # the enum is part of the public surface
