"""Fixed tiny option sets shared by the golden-capture script and the
byte-parity regression test (tests/test_results.py).

The golden files under ``tests/golden/`` were rendered by the
pre-redesign experiment modules (``run()`` returning bare ``Table``
objects) with exactly these options; the parity test re-runs the
redesigned ``run()`` with the same options and asserts the
``ExperimentResult.tables()`` render is byte-identical.

``e10.txt`` was refreshed when the vectorized graph/async tier landed:
the scenario matrix widened (ba/ws/torus/star + the churn row) and
E10a gained the "mean patched edges" column that makes the formerly
silent connectivity patching of the sparse families visible.  Its
options below pin the refreshed capture.  It was refreshed again when
the numpy-native BA/WS sampler specs replaced the networkx samplers
(SAMPLER_VERSION 2): the ba/ws rows reflect the new specs' draws, and
the sampler-conformance suite pins the new bytes against the scalar
reference implementations.
"""

from __future__ import annotations

GOLDEN_OPTS: dict[str, dict] = {
    "e1": dict(sizes=(32,), workloads=("balanced", "skewed"), trials=40,
               seed=2017, parallel=False),
    "e2": dict(sizes=(32, 64, 128), trials=6, seed=2202, parallel=False),
    "e3": dict(sizes=(32, 64, 128), trials=6, seed=3303, parallel=False),
    "e4": dict(sizes=(32, 64), trials=3, seed=4404, parallel=False),
    "e5": dict(sizes=(32,), gammas=(1.0, 3.0), trials=40, seed=5505,
               parallel=False),
    "e6": dict(n=32, alphas=(0.0, 0.4), gammas=(4.0,),
               placements=("random",), trials=20, seed=6606, parallel=False),
    "e7": dict(n=24, strategies=("silent", "underbid_alter", "griefing"),
               coalition_sizes=(1,), trials=20, seed=7707, parallel=False),
    "e8": dict(n=32, trials=20, scaling_n=64, seed=8808, parallel=False),
    "e9": dict(n=24, trials=20, seed=9909, parallel=False),
    "e10": dict(n=24, trials=6, async_sizes=(16, 32), seed=1010,
                engine="auto", parallel=False),
}
