"""Tests for the Verification phase — each attack signature is detected.

These are the unit-level counterparts of the equilibrium experiments:
every rule in ``verify_certificate`` exists to catch a specific deviation
from Algorithm 1, so each test crafts that deviation by hand.
"""

from __future__ import annotations

import pytest

from repro.core.certificate import Certificate, ReceivedVote
from repro.core.ledger import Ledger
from repro.core.params import ProtocolParams
from repro.core.verification import VerificationCode, verify_certificate
from repro.core.votes import PlannedVote, VoteIntention


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=16, gamma=1.0)  # q = 4


def intention_voting(value: int, target: int, at_round: int,
                     params: ProtocolParams) -> VoteIntention:
    """An intention that votes (value -> target) at ``at_round`` and
    harmless votes elsewhere (targets nobody we care about)."""
    votes = []
    for j in range(params.q):
        if j == at_round:
            votes.append(PlannedVote(value, target))
        else:
            other = 15 if target != 15 else 14
            votes.append(PlannedVote(0, other))
    return VoteIntention(tuple(votes))


class TestHonestCertificates:
    def test_empty_ledger_accepts_consistent_certificate(self, params):
        cert = Certificate.build(
            [ReceivedVote(3, 0, 100), ReceivedVote(4, 1, 200)], "red", 7, params.m
        )
        assert verify_certificate(cert, Ledger(), params).ok

    def test_matching_declaration_accepted(self, params):
        ledger = Ledger()
        ledger.record_intention(3, intention_voting(100, 7, 0, params), rnd=0)
        cert = Certificate.build([ReceivedVote(3, 0, 100)], "red", 7, params.m)
        assert verify_certificate(cert, ledger, params).ok

    def test_faulty_marked_voter_with_no_votes_is_fine(self, params):
        ledger = Ledger()
        ledger.record_faulty(9)
        cert = Certificate.build([ReceivedVote(3, 0, 5)], "red", 7, params.m)
        assert verify_certificate(cert, ledger, params).ok


class TestWellFormedness:
    def test_vote_value_outside_domain(self, params):
        cert = Certificate(0, (ReceivedVote(3, 0, params.m),), "c", 7)
        res = verify_certificate(cert, Ledger(), params)
        assert res.code is VerificationCode.MALFORMED

    def test_round_index_outside_phase(self, params):
        cert = Certificate(5, (ReceivedVote(3, params.q, 5),), "c", 7)
        assert verify_certificate(cert, Ledger(), params).code is \
            VerificationCode.MALFORMED

    def test_self_vote_rejected(self, params):
        cert = Certificate(5, (ReceivedVote(7, 0, 5),), "c", 7)
        assert verify_certificate(cert, Ledger(), params).code is \
            VerificationCode.MALFORMED

    def test_unknown_voter_label(self, params):
        cert = Certificate(5, (ReceivedVote(99, 0, 5),), "c", 7)
        assert verify_certificate(cert, Ledger(), params).code is \
            VerificationCode.MALFORMED

    def test_duplicate_round_votes_rejected(self, params):
        # One push per round per agent: two round-0 votes from agent 3
        # are physically impossible, hence a forgery.
        votes = (ReceivedVote(3, 0, 5), ReceivedVote(3, 0, 9))
        cert = Certificate(14, votes, "c", 7)
        assert verify_certificate(cert, Ledger(), params).code is \
            VerificationCode.DUPLICATE_VOTE


class TestKCheck:
    def test_underbid_k_detected(self, params):
        votes = (ReceivedVote(3, 0, 100),)
        cert = Certificate(0, votes, "c", 7)  # claims k=0, sum is 100
        res = verify_certificate(cert, Ledger(), params)
        assert res.code is VerificationCode.K_MISMATCH

    def test_k_check_can_be_ablated(self, params):
        votes = (ReceivedVote(3, 0, 100),)
        cert = Certificate(0, votes, "c", 7)
        res = verify_certificate(cert, Ledger(), params, check_k=False)
        assert res.ok


class TestLedgerConsistency:
    def test_altered_vote_value_detected(self, params):
        ledger = Ledger()
        ledger.record_intention(3, intention_voting(100, 7, 0, params), rnd=0)
        cert = Certificate.build([ReceivedVote(3, 0, 55)], "c", 7, params.m)
        res = verify_certificate(cert, ledger, params)
        assert res.code is VerificationCode.VOTE_ALTERED

    def test_mistargeted_vote_detected(self, params):
        # Agent 3 declared his round-0 vote for agent 12, but the
        # certificate of owner 7 claims to have received it.
        ledger = Ledger()
        ledger.record_intention(3, intention_voting(100, 12, 0, params), rnd=0)
        cert = Certificate.build([ReceivedVote(3, 0, 100)], "c", 7, params.m)
        res = verify_certificate(cert, ledger, params)
        assert res.code is VerificationCode.VOTE_MISTARGETED

    def test_omitted_vote_detected(self, params):
        # Agent 3 declared a vote for owner 7 that the certificate lacks.
        ledger = Ledger()
        ledger.record_intention(3, intention_voting(100, 7, 0, params), rnd=0)
        cert = Certificate.build([ReceivedVote(4, 1, 9)], "c", 7, params.m)
        res = verify_certificate(cert, ledger, params)
        assert res.code is VerificationCode.VOTE_OMITTED

    def test_omission_check_can_be_ablated(self, params):
        ledger = Ledger()
        ledger.record_intention(3, intention_voting(100, 7, 0, params), rnd=0)
        cert = Certificate.build([ReceivedVote(4, 1, 9)], "c", 7, params.m)
        res = verify_certificate(cert, ledger, params, check_omissions=False)
        assert res.ok

    def test_vote_from_faulty_marked_agent_detected(self, params):
        # Pretend-faulty attack: agent 3 ignored our Commitment pull but
        # then voted; footnote 4 treats his votes as zero.
        ledger = Ledger()
        ledger.record_faulty(3)
        cert = Certificate.build([ReceivedVote(3, 0, 5)], "c", 7, params.m)
        res = verify_certificate(cert, ledger, params)
        assert res.code is VerificationCode.VOTE_FROM_FAULTY

    def test_equivocation_detected_via_either_version(self, params):
        # Two declared versions: the certificate matches version A, but
        # version B disagrees -> inconsistent (a set-union ledger can
        # never be satisfied by an equivocator whose votes matter).
        ledger = Ledger()
        ledger.record_intention(3, intention_voting(100, 7, 0, params), rnd=0)
        ledger.record_intention(3, intention_voting(200, 7, 0, params), rnd=2)
        cert = Certificate.build([ReceivedVote(3, 0, 100)], "c", 7, params.m)
        res = verify_certificate(cert, ledger, params)
        assert not res.ok
        assert res.code in (
            VerificationCode.VOTE_ALTERED, VerificationCode.VOTE_OMITTED
        )

    def test_ledger_check_can_be_ablated(self, params):
        ledger = Ledger()
        ledger.record_intention(3, intention_voting(100, 7, 0, params), rnd=0)
        cert = Certificate.build([ReceivedVote(3, 0, 55)], "c", 7, params.m)
        res = verify_certificate(cert, ledger, params, check_ledger=False)
        assert res.ok

    def test_irrelevant_declarations_ignored(self, params):
        # Ledger knows a voter whose declared votes all target others:
        # certificate without his votes is fine.
        ledger = Ledger()
        ledger.record_intention(3, intention_voting(100, 12, 0, params), rnd=0)
        cert = Certificate.build([ReceivedVote(4, 1, 9)], "c", 7, params.m)
        assert verify_certificate(cert, ledger, params).ok
