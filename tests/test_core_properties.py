"""Property-based tests (hypothesis) for the objects strategies forge.

The deviation strategies manufacture certificates and feed ledgers with
contradictory declarations; these properties pin the invariants that
the detection machinery rides on:

* the certificate wire codec round-trips every well-formed certificate
  and rejects every truncation;
* the ledger's set-union semantics deduplicate declared versions,
  capture equivocation exactly, and keep faulty-marking monotone;
* rewriting any carried vote of a ledger-consistent certificate makes
  Verification fail (the footnote-5 cross-check has no blind spot).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.certificate import Certificate, ReceivedVote, compute_k
from repro.core.ledger import Ledger
from repro.core.params import ProtocolParams
from repro.core.verification import verify_certificate
from repro.core.votes import PlannedVote, VoteIntention

PARAMS = ProtocolParams(n=16, gamma=2.0, num_colors=4)
PALETTE = ["c0", "c1", "c2", "c3"]


def votes_strategy(owner: int, max_votes: int = 8):
    """Well-formed vote lists: valid domains, no duplicate
    (voter, round) pair, never voted-by-owner."""
    pair = st.tuples(
        st.integers(0, PARAMS.n - 1).filter(lambda v: v != owner),
        st.integers(0, PARAMS.q - 1),
    )
    return st.dictionaries(pair, st.integers(0, PARAMS.m - 1),
                           max_size=max_votes).map(
        lambda d: [ReceivedVote(v, r, val) for (v, r), val in d.items()]
    )


certificates = st.integers(0, PARAMS.n - 1).flatmap(
    lambda owner: st.builds(
        Certificate.build,
        votes_strategy(owner),
        st.sampled_from(PALETTE),
        st.just(owner),
        st.just(PARAMS.m),
    )
)


class TestCertificateCodec:
    @given(certificates)
    def test_round_trip(self, cert):
        data = cert.encode(PARAMS, PALETTE)
        assert Certificate.decode(data, PARAMS, PALETTE) == cert

    @given(certificates)
    def test_encoded_length_matches_size_model(self, cert):
        """Wire bytes = 16-bit count frame + exactly the bits
        ``certificate_bits`` prices, rounded up to whole bytes."""
        data = cert.encode(PARAMS, PALETTE)
        assert len(data) == (16 + cert.size_bits(PARAMS) + 7) // 8

    @given(certificates, st.integers(1, 4))
    def test_truncation_rejected(self, cert, cut):
        data = cert.encode(PARAMS, PALETTE)
        truncated = data[: max(0, len(data) - cut)]
        try:
            decoded = Certificate.decode(truncated, PARAMS, PALETTE)
        except ValueError:
            return
        assert decoded != cert  # a shorter frame can never round-trip

    @given(certificates)
    def test_out_of_palette_color_rejected(self, cert):
        import pytest

        bad = Certificate(cert.k, cert.votes, "not-a-color", cert.owner)
        with pytest.raises(ValueError, match="palette"):
            bad.encode(PARAMS, PALETTE)

    @given(certificates)
    def test_round_trip_preserves_self_consistency(self, cert):
        data = cert.encode(PARAMS, PALETTE)
        back = Certificate.decode(data, PARAMS, PALETTE)
        assert back.is_self_consistent(PARAMS.m) \
            == cert.is_self_consistent(PARAMS.m)


def intentions():
    return st.lists(
        st.tuples(st.integers(0, PARAMS.m - 1),
                  st.integers(0, PARAMS.n - 1)),
        min_size=PARAMS.q, max_size=PARAMS.q,
    ).map(lambda vs: VoteIntention(
        tuple(PlannedVote(val, tgt) for val, tgt in vs)
    ))


ledger_ops = st.lists(
    st.one_of(
        st.tuples(st.just("declare"), st.integers(0, 7), intentions(),
                  st.integers(0, PARAMS.q - 1)),
        st.tuples(st.just("faulty"), st.integers(0, 7), st.none(),
                  st.none()),
    ),
    max_size=24,
)


class TestLedgerInvariants:
    @given(ledger_ops)
    def test_set_union_semantics(self, ops):
        """Versions deduplicate; equivocation iff >= 2 distinct
        versions; faulty marking is monotone and order-independent of
        declarations."""
        ledger = Ledger()
        declared: dict[int, list[VoteIntention]] = {}
        marked: set[int] = set()
        for op, voter, intention, rnd in ops:
            if op == "declare":
                ledger.record_intention(voter, intention, rnd)
                bucket = declared.setdefault(voter, [])
                if intention not in bucket:
                    bucket.append(intention)
            else:
                ledger.record_faulty(voter)
                marked.add(voter)

        assert set(ledger.voters()) == set(declared) | marked
        for voter, versions in declared.items():
            rec = ledger.record_for(voter)
            assert rec is not None
            assert rec.versions == versions          # dedup + order
            assert ledger.is_equivocator(voter) == (len(versions) > 1)
        for voter in marked:
            rec = ledger.record_for(voter)
            assert rec is not None and rec.marked_faulty
        assert ledger.num_declared() == sum(
            1 for vs in declared.values() if vs
        )
        assert ledger.num_faulty_marked() == len(marked)

    @given(ledger_ops)
    def test_first_version_round_is_stable(self, ops):
        """Replaying the same operations yields an identical ledger
        (record_for deep-compares through the dataclass)."""
        a, b = Ledger(), Ledger()
        for ledger in (a, b):
            for op, voter, intention, rnd in ops:
                if op == "declare":
                    ledger.record_intention(voter, intention, rnd)
                else:
                    ledger.record_faulty(voter)
        assert a.voters() == b.voters()
        for voter in a.voters():
            assert a.record_for(voter) == b.record_for(voter)


class TestVerificationUnderRewrites:
    """Forge any carried vote of a consistent certificate -> caught."""

    @settings(max_examples=60)
    @given(
        st.data(),
        st.integers(0, PARAMS.n - 1),
    )
    def test_any_value_rewrite_is_caught(self, data, owner):
        # Build a consistent world: voters declare intentions whose
        # owner-targeting slots become the certificate's votes, and the
        # verifier's ledger holds every declaration.
        voters = data.draw(st.lists(
            st.integers(0, PARAMS.n - 1).filter(lambda v: v != owner),
            min_size=1, max_size=4, unique=True,
        ))
        ledger = Ledger()
        votes = []
        for voter in voters:
            slots = []
            for rnd_idx in range(PARAMS.q):
                value = data.draw(st.integers(0, PARAMS.m - 1))
                target = owner if rnd_idx == voter % PARAMS.q else \
                    (owner + 1) % PARAMS.n
                slots.append(PlannedVote(value, target))
                if target == owner:
                    votes.append(ReceivedVote(voter, rnd_idx, value))
            ledger.record_intention(voter, VoteIntention(tuple(slots)), 0)

        cert = Certificate.build(votes, PALETTE[0], owner, PARAMS.m)
        assert verify_certificate(cert, ledger, PARAMS).ok

        # Rewrite one carried vote (keeping the k-sum consistent would
        # require touching a second vote — either way some check fires).
        idx = data.draw(st.integers(0, len(cert.votes) - 1))
        delta = data.draw(st.integers(1, PARAMS.m - 1))
        old = cert.votes[idx]
        forged_votes = list(cert.votes)
        forged_votes[idx] = ReceivedVote(
            old.voter, old.round_index, (old.value + delta) % PARAMS.m
        )
        forged = Certificate(
            compute_k(forged_votes, PARAMS.m), tuple(forged_votes),
            cert.color, owner,
        )
        assert not verify_certificate(forged, ledger, PARAMS).ok

    @settings(max_examples=60)
    @given(st.data())
    def test_dropping_any_vote_is_caught(self, data):
        owner = data.draw(st.integers(0, PARAMS.n - 1))
        voter = data.draw(
            st.integers(0, PARAMS.n - 1).filter(lambda v: v != owner)
        )
        value = data.draw(st.integers(0, PARAMS.m - 1))
        slots = [PlannedVote(value, owner)] + [
            PlannedVote(0, (owner + 1) % PARAMS.n)
        ] * (PARAMS.q - 1)
        ledger = Ledger()
        ledger.record_intention(voter, VoteIntention(tuple(slots)), 0)
        full = Certificate.build(
            [ReceivedVote(voter, 0, value)], PALETTE[0], owner, PARAMS.m
        )
        assert verify_certificate(full, ledger, PARAMS).ok
        dropped = Certificate.build([], PALETTE[0], owner, PARAMS.m)
        assert not verify_certificate(dropped, ledger, PARAMS).ok
