"""Cross-tier conformance matrix for the graph tier.

The batched CSR simulator (:mod:`repro.fastpath.graphs`) is held to the
per-agent engine (:func:`repro.extensions.topologies.run_graph_protocol`)
the same way the strategy tier is held to the agent engine
(``test_strategy_conformance.py``):

(a) **deterministic parity** — in seed-parity mode, every per-trial
    observable (success, winner identity, zero-vote agents, silent
    split, failed agents) is *identical* to the per-agent engine, for
    every graph kind and for the churn scenario;
(b) **rate bounds at scale** — the statistical mode (same mechanism,
    block-level stream) must agree with the parity tier on success /
    zero-vote / split rates within two-sample bounds, per kind, at a
    size where the interesting failures actually occur.

Since (a) pins parity == per-agent exactly, (b) transitively bounds the
statistical tier against the per-agent engine without paying for
thousands of agent-engine runs.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.dispatch import run_graph_trials_fast
from repro.experiments.workloads import balanced
from repro.extensions.families import (
    GRAPH_KINDS,
    PATCHED_KINDS,
    sample_graph,
    sample_scenario_workload,
)
from repro.extensions.topologies import run_graph_protocol

N_SMALL = 24
GAMMA = 3.0
PARITY_TRIALS = 6
CHURN_RATE = 0.15

SCENARIOS = GRAPH_KINDS + ("regular8+churn", "star+churn")

# Rate-bound point: large enough that star/ring failures, zero votes
# and (rare) splits are live phenomena.
N_SCALE = 64
PARITY_SCALE_TRIALS = 150
STAT_SCALE_TRIALS = 900


def _workload(scenario: str, n: int, trials: int, base_seed: int):
    """(csr list, faulty, seeds) for one scenario — the exact workload
    definition E10 runs (``sample_scenario_workload``)."""
    wl = sample_scenario_workload(
        scenario, n, trials, base_seed, churn_rate=CHURN_RATE
    )
    return wl.csrs, list(wl.faulty), list(wl.seeds)


def rates_compatible(k1: int, n1: int, k2: int, n2: int,
                     z: float = 4.0) -> bool:
    """Two-sample binomial compatibility at ``z`` sigmas (pooled SE,
    half-count continuity floor so boundary rates never divide by 0)."""
    p1, p2 = k1 / n1, k2 / n2
    pooled = (k1 + k2 + 0.5) / (n1 + n2 + 1)
    se = math.sqrt(max(pooled * (1 - pooled), 0.25 / (n1 + n2))
                   * (1 / n1 + 1 / n2))
    return abs(p1 - p2) <= z * se


def means_compatible(a: np.ndarray, b: np.ndarray, z: float = 4.0) -> bool:
    """Two-sample mean compatibility (Welch SE, epsilon floor)."""
    sa = a.var(ddof=1) / a.size if a.size > 1 else 0.0
    sb = b.var(ddof=1) / b.size if b.size > 1 else 0.0
    se = math.sqrt(sa + sb) or 1e-9
    return abs(float(a.mean()) - float(b.mean())) <= z * se


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_parity_tier_matches_agent_engine(scenario):
    """(a) seed-parity mode == per-agent engine, observable for
    observable, trial for trial."""
    csrs, faulty, seeds = _workload(scenario, N_SMALL, PARITY_TRIALS, 1010)
    colors = balanced(N_SMALL)
    batch = run_graph_trials_fast(
        csrs, colors, seeds, gamma=GAMMA, faulty=faulty,
        engine="batch-parity",
    )
    for t, seed in enumerate(seeds):
        res = run_graph_protocol(
            csrs[t].to_networkx(), colors, gamma=GAMMA, seed=seed,
            faulty=faulty[t],
        )
        assert bool(batch.success[t]) == (res.outcome is not None), scenario
        assert int(batch.winner[t]) == (
            res.winner if res.winner is not None else -1
        ), scenario
        assert batch.outcomes()[t] == res.outcome, scenario
        assert int(batch.zero_vote_agents[t]) == res.zero_vote_agents, scenario
        assert bool(batch.split[t]) == res.split, scenario
        assert int(batch.failed_agents[t]) == res.failed_agents, scenario


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_agent_dispatch_tier_matches_parity(scenario):
    """The dispatch layer's ``agent`` route packs the per-agent results
    into the identical struct-of-arrays record."""
    csrs, faulty, seeds = _workload(scenario, N_SMALL, 3, 77)
    colors = balanced(N_SMALL)
    parity = run_graph_trials_fast(
        csrs, colors, seeds, gamma=GAMMA, faulty=faulty,
        engine="batch-parity",
    )
    agent = run_graph_trials_fast(
        csrs, colors, seeds, gamma=GAMMA, faulty=faulty,
        engine="agent", parallel=False,
    )
    for field in ("n_active", "success", "winner", "outcome_idx",
                  "zero_vote_agents", "split", "failed_agents"):
        assert np.array_equal(getattr(parity, field), getattr(agent, field)), (
            scenario, field
        )


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_statistical_tier_rates_within_bounds(scenario):
    """(b) statistical mode vs parity mode: success / zero-vote / split
    rates compatible at a size where the failures are live."""
    p_csrs, p_faulty, p_seeds = _workload(
        scenario, N_SCALE, PARITY_SCALE_TRIALS, 2020
    )
    s_csrs, s_faulty, s_seeds = _workload(
        scenario, N_SCALE, STAT_SCALE_TRIALS, 909_000
    )
    colors = balanced(N_SCALE)
    par = run_graph_trials_fast(
        p_csrs, colors, p_seeds, gamma=GAMMA, faulty=p_faulty,
        engine="batch-parity",
    )
    stat = run_graph_trials_fast(
        s_csrs, colors, s_seeds, gamma=GAMMA, faulty=s_faulty,
        engine="batch",
    )
    k1, n1 = int(par.success.sum()), par.n_trials
    k2, n2 = int(stat.success.sum()), stat.n_trials
    assert rates_compatible(k1, n1, k2, n2), (
        f"{scenario}: success {k1}/{n1} vs {k2}/{n2}"
    )
    k1, k2 = int(par.split.sum()), int(stat.split.sum())
    assert rates_compatible(k1, n1, k2, n2), (
        f"{scenario}: split {k1}/{n1} vs {k2}/{n2}"
    )
    assert means_compatible(
        par.zero_vote_agents.astype(float),
        stat.zero_vote_agents.astype(float),
    ), (
        f"{scenario}: zero-vote means {par.zero_vote_mean():.3f} vs "
        f"{stat.zero_vote_mean():.3f}"
    )


def test_shared_graph_broadcast_equals_per_trial_copies():
    """One shared CSR object and n_trials equal copies must simulate
    identically (the broadcast fast path is an optimisation only)."""
    sample = sample_graph("complete", N_SMALL, 0)
    seeds = list(range(8))
    colors = balanced(N_SMALL)
    shared = run_graph_trials_fast(sample.csr, colors, seeds, gamma=GAMMA)
    copies = run_graph_trials_fast(
        [sample_graph("complete", N_SMALL, s).csr for s in seeds],
        colors, seeds, gamma=GAMMA,
    )
    assert np.array_equal(shared.winner, copies.winner)
    assert np.array_equal(shared.zero_vote_agents, copies.zero_vote_agents)


def test_statistical_mode_chunking_invariant():
    """Results are a deterministic function of the seed list; reruns and
    order-preserving reconstructions agree."""
    csrs, faulty, seeds = _workload("er_sparse", N_SMALL, 20, 5)
    colors = balanced(N_SMALL)
    a = run_graph_trials_fast(csrs, colors, seeds, faulty=faulty)
    b = run_graph_trials_fast(csrs, colors, seeds, faulty=faulty)
    assert np.array_equal(a.winner, b.winner)
    assert np.array_equal(a.success, b.success)


def test_patched_kinds_report_patches():
    """Patching is explicit: sparse families report added edges, the
    structurally connected families report none."""
    for kind in GRAPH_KINDS:
        s = sample_graph(kind, 32, 3)
        if kind in PATCHED_KINDS:
            assert s.patched_edges >= 0
        else:
            assert s.patched_edges == 0
        # patched graphs contain the full Hamiltonian cycle
        if kind in PATCHED_KINDS:
            for i in range(32):
                assert (i + 1) % 32 in s.csr.neighbors(i).tolist()


def test_star_breaks_fairness_not_silently():
    """The star's leaves receive (almost) no votes: the zero-vote hazard
    dominates and any successful election is won by a zero-vote leaf."""
    csrs, faulty, seeds = _workload("star", N_SCALE, 300, 13)
    res = run_graph_trials_fast(csrs, balanced(N_SCALE), seeds)
    assert res.zero_vote_mean() > N_SCALE / 2
    assert res.success_rate() < 0.9
    assert not res.split.any()


def test_unknown_engine_rejected():
    sample = sample_graph("ring", 16, 0)
    with pytest.raises(ValueError, match="unknown engine"):
        run_graph_trials_fast(sample.csr, balanced(16), [0], engine="gpu")


def test_isolated_active_vertex_rejected():
    """Both tiers refuse an active agent with no neighbours."""
    import networkx as nx

    g = nx.empty_graph(6)
    g.add_edge(0, 1)
    with pytest.raises(ValueError, match="no neighbours"):
        run_graph_trials_fast(g, balanced(6), [0], engine="batch")


def test_isolated_faulty_agent_is_legal_and_conforms():
    """A faulty agent may be isolated (even as the last node, whose
    empty CSR row sits at the end of the neighbour array); the
    reference engine accepts it and the batch tiers must match."""
    import networkx as nx

    n = 8
    g = nx.complete_graph(n - 1)        # node n-1 has no edges at all
    g.add_node(n - 1)
    colors = balanced(n)
    seeds = [0, 1, 2]
    faulty = frozenset({n - 1})
    parity = run_graph_trials_fast(
        g, colors, seeds, faulty=faulty, engine="batch-parity",
    )
    stat = run_graph_trials_fast(g, colors, seeds, faulty=faulty)
    agent = run_graph_trials_fast(
        g, colors, seeds, faulty=faulty, engine="agent", parallel=False,
    )
    assert np.array_equal(parity.winner, agent.winner)
    assert np.array_equal(parity.success, agent.success)
    assert stat.n_trials == 3 and (stat.n_active == n - 1).all()


def test_out_of_range_faulty_rejected_on_every_engine():
    """Validation happens once in the dispatch layer, so every tier
    rejects the same inputs."""
    sample = sample_graph("ring", 16, 0)
    for engine in ("batch", "batch-parity", "agent"):
        with pytest.raises(ValueError, match="out of range"):
            run_graph_trials_fast(
                sample.csr, balanced(16), [0],
                faulty=frozenset({99}), engine=engine, parallel=False,
            )
