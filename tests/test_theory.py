"""The paper's closed-form quantities against exact/simulated values.

These tests pin the *analysis* of the paper to the *behaviour* of the
simulator: Lemma 8's Chernoff bounds must actually bound the binomial
tails, and the first-order predictions must match Monte-Carlo
measurements of the corresponding events.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.analysis.theory import (
    chernoff_additive,
    chernoff_upper,
    exposure_miss_probability,
    expected_votes_per_agent,
    findmin_expected_rounds,
    k_collision_probability,
)
from repro.experiments.workloads import balanced
from repro.fastpath.simulate import simulate_protocol_fast


class TestChernoffBoundsAreBounds:
    """Lemma 8 claims must upper-bound the exact binomial tails."""

    @given(st.integers(min_value=10, max_value=2000),
           st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_multiplicative_bound_holds(self, n, p, delta):
        mu = n * p
        threshold = (1 + delta) * mu
        if threshold >= n:  # the tail is empty; bound trivially holds
            return
        exact_tail = float(scipy_stats.binom.sf(threshold, n, p))
        assert exact_tail <= chernoff_upper(mu, delta) + 1e-12

    @given(st.integers(min_value=10, max_value=2000),
           st.floats(min_value=0.05, max_value=0.5),
           st.floats(min_value=4.5, max_value=8.0))
    @settings(max_examples=30, deadline=None)
    def test_large_delta_branch_holds(self, n, p, delta):
        mu = n * p
        threshold = (1 + delta) * mu
        if threshold >= n:
            return
        exact_tail = float(scipy_stats.binom.sf(threshold, n, p))
        assert exact_tail <= chernoff_upper(mu, delta) + 1e-12

    @given(st.integers(min_value=10, max_value=2000),
           st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_additive_bound_holds(self, n, p, lam):
        mu = n * p
        exact_tail = float(scipy_stats.binom.sf(mu + lam, n, p))
        assert exact_tail <= chernoff_additive(mu, lam, n) + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper(-1, 1)
        with pytest.raises(ValueError):
            chernoff_upper(1, 0)
        with pytest.raises(ValueError):
            chernoff_additive(1, -1, 10)


class TestPredictionsMatchSimulation:
    def test_expected_votes(self):
        n, gamma, trials = 256, 3.0, 40
        from repro.core.params import ProtocolParams
        params = ProtocolParams(n=n, gamma=gamma)
        predicted = expected_votes_per_agent(n, params.q, n)
        measured = []
        for s in range(trials):
            res = simulate_protocol_fast(balanced(n), gamma=gamma, seed=s)
            measured.append((res.min_votes + res.max_votes) / 2)
        # min/max midpoint is a crude proxy; the real check is the mean
        # sits between the measured extremes.
        assert min(measured) * 0.3 < predicted < max(measured) * 3
        assert predicted == pytest.approx(params.q * (n - 1) / (n - 1))

    def test_collision_rate(self):
        # At n=64 the birthday rate is ~ 1/(2*64) ~ 0.78%; at gamma=1
        # (q=6) voteless pairs (both k=0) contribute about as much again,
        # so the measured rate is compared against the full prediction.
        n, trials = 64, 1500
        birthday = k_collision_probability(n, n ** 3)
        assert birthday == pytest.approx(1 / (2 * n), rel=0.05)
        from repro.core.params import ProtocolParams
        q = ProtocolParams(n=n, gamma=1.0).q
        predicted = k_collision_probability(n, n ** 3, n=n, q=q)
        hits = sum(
            simulate_protocol_fast(balanced(n), gamma=1.0, seed=s).k_collision
            for s in range(trials)
        )
        measured = hits / trials
        # 4-sigma binomial band around the prediction.
        sigma = math.sqrt(predicted * (1 - predicted) / trials)
        assert abs(measured - predicted) < 4 * sigma + 1e-9

    def test_exposure_miss_probability_matches_formula(self):
        # Direct formula check plus the asymptotic shape e^{-q a / n}.
        p = exposure_miss_probability(100, 10, 90)
        assert p == pytest.approx((1 - 1 / 99) ** 900)
        assert p == pytest.approx(math.exp(-900 / 99), rel=0.06)

    def test_findmin_recurrence_tracks_simulation(self):
        n, gamma = 512, 3.0
        from repro.core.params import ProtocolParams
        params = ProtocolParams(n=n, gamma=gamma)
        predicted = findmin_expected_rounds(n, n)
        measured = [
            simulate_protocol_fast(balanced(n), gamma=gamma, seed=s)
            .find_min_rounds
            for s in range(30)
        ]
        mean = sum(measured) / len(measured)
        # Mean-field vs stochastic: same ballpark (within ~45%),
        # and both far below the q-round budget.
        assert predicted < params.q
        assert abs(mean - predicted) / predicted < 0.45

    def test_findmin_slows_with_faults(self):
        # The recurrence predicts the gamma(alpha) effect qualitatively.
        clean = findmin_expected_rounds(256, 256)
        faulty = findmin_expected_rounds(64, 256)  # 75% faults
        assert faulty > clean

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_votes_per_agent(1, 1, 1)
        with pytest.raises(ValueError):
            k_collision_probability(0, 10)
        with pytest.raises(ValueError):
            exposure_miss_probability(1, 1, 1)
        with pytest.raises(ValueError):
            findmin_expected_rounds(10, 5)
