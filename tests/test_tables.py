"""Tests for the plain-text table renderer."""

from __future__ import annotations

import pytest

from repro.util.tables import Table


class TestTable:
    def test_render_contains_headers_and_cells(self):
        t = Table(headers=["n", "rounds"], title="Rounds")
        t.add_row(64, 48)
        out = t.render()
        assert "Rounds" in out
        assert "n" in out and "rounds" in out
        assert "64" in out and "48" in out

    def test_row_width_checked(self):
        t = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_formatting(self):
        t = Table(headers=["x"], floatfmt=".2f")
        t.add_row(3.14159)
        assert "3.14" in t.render()
        assert "3.14159" not in t.render()

    def test_none_renders_dash(self):
        t = Table(headers=["x"])
        t.add_row(None)
        assert t.render().splitlines()[-1].strip() == "-"

    def test_bool_renders_yes_no(self):
        t = Table(headers=["ok"])
        t.add_row(True)
        t.add_row(False)
        lines = t.render().splitlines()
        assert lines[-2].strip() == "yes"
        assert lines[-1].strip() == "no"

    def test_column_extraction(self):
        t = Table(headers=["n", "v"])
        t.extend([(1, 10), (2, 20)])
        assert t.column("v") == [10, 20]

    def test_unknown_column(self):
        t = Table(headers=["n"])
        with pytest.raises(KeyError):
            t.column("missing")

    def test_alignment_is_consistent(self):
        t = Table(headers=["name", "value"])
        t.add_row("a", 1)
        t.add_row("bbbb", 1000)
        lines = t.render().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to the same width
