"""Tests for the trial-axis batched fastpath.

Three contracts, per DESIGN.md §3:

* seed-parity mode reproduces ``simulate_protocol_fast`` bit-for-bit,
  trial by trial, for shared and ragged fault patterns;
* results never depend on the memory chunking, in either mode;
* statistical-mode aggregates match per-trial loops on fixed seed lists
  within Monte-Carlo tolerance (exact mechanisms: fairness, Find-Min,
  message accounting; documented approximation: count extremes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fairness import (
    empirical_distribution_from_counts,
    expected_distribution,
    total_variation,
)
from repro.fastpath.batch import FastBatchResult, batch_from_runs, simulate_protocol_fast_batch
from repro.fastpath.simulate import simulate_protocol_fast
from tests.conftest import two_color_split

_ARRAY_FIELDS = (
    "n_active", "winner", "min_votes", "max_votes", "k_collision",
    "find_min_agreement", "find_min_rounds",
    "min_commitment_pulls_received", "total_messages", "total_bits",
    "max_message_bits",
)


def _assert_batches_equal(a: FastBatchResult, b: FastBatchResult) -> None:
    assert a.n == b.n and a.n_trials == b.n_trials and a.rounds == b.rounds
    for field in _ARRAY_FIELDS:
        got, want = getattr(a, field), getattr(b, field)
        assert got.dtype == want.dtype, field
        assert np.array_equal(got, want), field


class TestSeedParity:
    """seed_parity=True replays the per-run streams exactly."""

    def test_trials_match_per_run_no_faults(self):
        colors = two_color_split(64, 0.4)
        seeds = list(range(17))
        batch = simulate_protocol_fast_batch(colors, seeds, seed_parity=True)
        for i, s in enumerate(seeds):
            assert batch.trial(i) == simulate_protocol_fast(colors, seed=s)

    def test_trials_match_per_run_shared_faults(self):
        colors = two_color_split(60, 0.5)
        faulty = frozenset(range(0, 60, 6))
        seeds = [3 * i + 1 for i in range(12)]
        batch = simulate_protocol_fast_batch(
            colors, seeds, gamma=4.0, faulty=faulty, seed_parity=True
        )
        for i, s in enumerate(seeds):
            assert batch.trial(i) == simulate_protocol_fast(
                colors, gamma=4.0, faulty=faulty, seed=s
            )

    def test_trials_match_per_run_ragged_faults(self):
        colors = two_color_split(48, 0.5)
        seeds = list(range(10))
        faulty = [frozenset(range(0, 48, k)) for k in (3, 4, 6, 8, 12)] * 2
        batch = simulate_protocol_fast_batch(
            colors, seeds, gamma=4.0, faulty=faulty, seed_parity=True
        )
        for i, s in enumerate(seeds):
            assert batch.trial(i) == simulate_protocol_fast(
                colors, gamma=4.0, faulty=faulty[i], seed=s
            )

    def test_matches_batch_from_runs(self):
        colors = two_color_split(32, 0.5)
        seeds = list(range(9))
        runs = [simulate_protocol_fast(colors, seed=s) for s in seeds]
        _assert_batches_equal(
            simulate_protocol_fast_batch(colors, seeds, seed_parity=True),
            batch_from_runs(runs, colors),
        )


class TestChunking:
    """Chunked and unchunked runs produce identical arrays."""

    @pytest.mark.parametrize("seed_parity", [True, False])
    def test_chunk_budget_is_invisible(self, seed_parity):
        colors = two_color_split(40, 0.3)
        seeds = list(range(25))
        unchunked = simulate_protocol_fast_batch(
            colors, seeds, seed_parity=seed_parity
        )
        chunked = simulate_protocol_fast_batch(
            colors, seeds, seed_parity=seed_parity, max_chunk_elements=97
        )
        _assert_batches_equal(unchunked, chunked)

    def test_chunk_budget_is_invisible_ragged(self):
        colors = two_color_split(40, 0.3)
        seeds = list(range(12))
        faulty = [frozenset(range(i % 4)) for i in range(12)]
        unchunked = simulate_protocol_fast_batch(
            colors, seeds, faulty=faulty, seed_parity=True
        )
        chunked = simulate_protocol_fast_batch(
            colors, seeds, faulty=faulty, seed_parity=True,
            max_chunk_elements=1,
        )
        _assert_batches_equal(unchunked, chunked)

    def test_statistical_mode_deterministic(self):
        colors = two_color_split(64, 0.5)
        seeds = list(range(30))
        a = simulate_protocol_fast_batch(colors, seeds)
        b = simulate_protocol_fast_batch(colors, seeds)
        _assert_batches_equal(a, b)
        c = simulate_protocol_fast_batch(colors, [s + 1 for s in seeds])
        assert not np.array_equal(a.total_bits, c.total_bits)


class TestStatisticalAggregates:
    """Default mode matches per-trial loops on the table-level numbers."""

    @pytest.fixture(scope="class")
    def per_run(self):
        colors = two_color_split(64, 0.7)
        runs = [simulate_protocol_fast(colors, seed=s) for s in range(400)]
        return colors, runs

    @pytest.fixture(scope="class")
    def batch(self, per_run):
        colors, _ = per_run
        return simulate_protocol_fast_batch(colors, list(range(400)))

    def test_fairness_deviation(self, per_run, batch):
        colors, runs = per_run
        expected = expected_distribution(colors)
        tv_batch = total_variation(
            empirical_distribution_from_counts(batch.winning_counts()),
            expected,
        )
        loop_counts = {}
        for r in runs:
            if r.outcome is not None:
                loop_counts[r.outcome] = loop_counts.get(r.outcome, 0) + 1
        tv_loop = total_variation(
            empirical_distribution_from_counts(loop_counts), expected
        )
        # Both engines sit at the fair-sampling noise floor (~0.02).
        assert abs(tv_batch - tv_loop) < 0.08
        assert tv_batch < 0.1

    def test_good_execution_rate(self, per_run, batch):
        _, runs = per_run
        loop_rate = sum(r.is_good for r in runs) / len(runs)
        assert abs(batch.good_rate() - loop_rate) < 0.05

    def test_success_rate_and_rounds(self, per_run, batch):
        _, runs = per_run
        loop_success = sum(r.succeeded for r in runs) / len(runs)
        assert abs(batch.success_rate() - loop_success) < 0.05
        loop_fm = np.mean([r.find_min_rounds for r in runs])
        batch_fm = batch.find_min_rounds.mean()
        assert abs(loop_fm - batch_fm) < 0.6

    def test_message_accounting_means(self, per_run, batch):
        _, runs = per_run
        assert batch.total_messages.mean() == pytest.approx(
            np.mean([r.total_messages for r in runs]), rel=0.02
        )
        assert batch.total_bits.mean() == pytest.approx(
            np.mean([r.total_bits for r in runs]), rel=0.05
        )
        assert batch.max_message_bits.mean() == pytest.approx(
            np.mean([r.max_message_bits for r in runs]), rel=0.05
        )

    def test_vote_extremes_close(self, per_run, batch):
        _, runs = per_run
        assert batch.min_votes.mean() == pytest.approx(
            np.mean([r.min_votes for r in runs]), rel=0.15
        )
        assert batch.max_votes.mean() == pytest.approx(
            np.mean([r.max_votes for r in runs]), rel=0.15
        )
        assert batch.min_commitment_pulls_received.mean() == pytest.approx(
            np.mean([r.min_commitment_pulls_received for r in runs]),
            rel=0.15,
        )

    def test_faulty_never_win(self):
        colors = two_color_split(64, 0.5)
        faulty = frozenset(range(32))  # all reds faulty
        batch = simulate_protocol_fast_batch(
            colors, list(range(50)), gamma=5.0, faulty=faulty
        )
        won = batch.winner[batch.winner >= 0]
        assert won.size > 0
        assert not np.isin(won, list(faulty)).any()
        assert set(batch.outcomes()) <= {"blue", None}


class TestResultInterface:
    def test_empty_batch(self):
        batch = simulate_protocol_fast_batch(two_color_split(16, 0.5), [])
        assert len(batch) == 0
        assert batch.outcomes() == []
        with pytest.raises(ValueError):
            batch.success_rate()

    def test_validation(self):
        colors = two_color_split(16, 0.5)
        with pytest.raises(ValueError):
            simulate_protocol_fast_batch(colors, [1], faulty=frozenset(range(16)))
        with pytest.raises(ValueError):
            simulate_protocol_fast_batch(colors, [1], faulty=frozenset({99}))
        with pytest.raises(ValueError):
            simulate_protocol_fast_batch(colors, [1, 2], faulty=[frozenset()])

    def test_is_good_matches_trial_views(self):
        colors = two_color_split(32, 0.5)
        batch = simulate_protocol_fast_batch(colors, list(range(20)))
        for i in range(20):
            assert bool(batch.is_good[i]) == batch.trial(i).is_good
            assert bool(batch.succeeded[i]) == batch.trial(i).succeeded

    def test_winning_counts_match_outcomes(self):
        colors = two_color_split(32, 0.25)
        batch = simulate_protocol_fast_batch(colors, list(range(60)))
        tally = batch.winning_counts()
        outcomes = batch.outcomes()
        for color in ("red", "blue"):
            assert tally.get(color, 0) == sum(o == color for o in outcomes)
