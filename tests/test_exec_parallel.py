"""The unified execution-plan layer: plans, backends, reducers, and the
determinism-under-parallelism contract (DESIGN.md §9).

The headline property: for every front door, ``jobs=k`` (any k) is
byte-identical to ``jobs=1`` is byte-identical to the serial backend —
the parallel backend shards trial blocks only at the engines' stream
quantum, so no backend choice, worker count or shard layout can leak
into a result.  Checked here at three levels:

* front-door arrays (property-style over seed lists and job counts);
* a *real* multi-shard run per shardable engine family (quantum-1
  tiers at small n; the honest statistical tier at n=16384 where its
  block quantum drops to 256 trials);
* full ``ExperimentResult`` payload JSON for one experiment per front
  door (e1 honest, e7 deviation, e10 graph + async).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import (
    AUTO_ENGINE,
    ENGINES,
    ShardReducer,
    collect_execution,
    compile_deviation_plan,
    compile_graph_plan,
    compile_honest_plan,
    merge_shards,
    resolve_backend,
    resolve_engine,
)
from repro.exec.backends import shard_bounds
from repro.exec.plan import shard_size_hint
from repro.experiments.dispatch import (
    run_async_trials_fast,
    run_deviation_trials_fast,
    run_graph_trials_fast,
    run_trials_fast,
)
from repro.experiments.registry import run_experiment
from repro.experiments.workloads import balanced, skewed
from repro.extensions.families import sample_scenario_workload
from repro.fastpath.batch import stat_block_trials
from tests.conftest import two_color_split


def _fields_equal(a, b) -> bool:
    """Every dataclass field of two batch results compares equal."""
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, np.ndarray):
            if not np.array_equal(x, y):
                return False
        elif dataclasses.is_dataclass(x) and not isinstance(x, type):
            if not _fields_equal(x, y):
                return False
        elif x != y:
            return False
    return True


# ---------------------------------------------------------------------------
# Plans: the single engine table, compilation, slicing
# ---------------------------------------------------------------------------

class TestPlans:
    def test_one_auto_table(self):
        assert set(ENGINES) == {"honest", "deviation", "graph", "async"}
        for kind, default in AUTO_ENGINE.items():
            assert resolve_engine(kind, "auto") == default
            assert default in ENGINES[kind]

    @pytest.mark.parametrize("kind", sorted(ENGINES))
    def test_unknown_engine_lists_valid_tiers(self, kind):
        with pytest.raises(ValueError, match="unknown engine") as exc:
            resolve_engine(kind, "warp")
        for tier in ENGINES[kind]:
            assert tier in str(exc.value)

    def test_every_front_door_shares_the_message(self):
        colors = two_color_split(8, 0.5)
        doors = [
            lambda: run_trials_fast(colors, [1], engine="warp"),
            lambda: run_deviation_trials_fast(
                colors, [1], "silent", {0}, engine="warp"
            ),
            lambda: run_graph_trials_fast(
                sample_scenario_workload("complete", 8, 1, 0).csrs,
                colors, [1], engine="warp",
            ),
            lambda: run_async_trials_fast(8, [1], engine="warp"),
        ]
        for door in doors:
            with pytest.raises(ValueError, match="valid tiers"):
                door()

    def test_honest_plan_quantum(self):
        plan = compile_honest_plan(balanced(64), range(10))
        assert plan.engine == "batch"
        assert plan.requested_engine == "auto"
        assert plan.shard_quantum == stat_block_trials(64)
        parity = compile_honest_plan(
            balanced(64), range(10), engine="batch-parity"
        )
        assert parity.shard_quantum == 1

    def test_slice_cuts_seeds_and_per_trial_options(self):
        wl = sample_scenario_workload("regular8+churn", 16, 6, 3,
                                      churn_rate=0.2)
        plan = compile_graph_plan(wl.csrs, balanced(16), wl.seeds,
                                  faulty=wl.faulty)
        sub = plan.slice(2, 5)
        assert sub.seeds == plan.seeds[2:5]
        assert sub.options["csrs"] == plan.options["csrs"][2:5]
        assert sub.options["faulty_list"] == plan.options["faulty_list"][2:5]
        assert sub.options["colors"] is plan.options["colors"]

    def test_deviation_plan_normalises(self):
        plan = compile_deviation_plan(
            skewed(16, 0.25), [3, 4], "silent", [1, 0]
        )
        assert plan.engine == "batch-strategy"
        assert plan.options["members"] == frozenset({0, 1})
        assert plan.kind == "deviation"


# ---------------------------------------------------------------------------
# Backends: selection, shard layout, telemetry
# ---------------------------------------------------------------------------

class TestBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("turbo", None)

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_backend("auto", 0)

    def test_auto_backend_follows_jobs(self):
        assert resolve_backend("auto", None) == ("serial", 1)
        assert resolve_backend("auto", 1) == ("serial", 1)
        assert resolve_backend("auto", 3) == ("parallel", 3)

    def test_explicit_parallel_defaults_workers(self):
        backend, jobs = resolve_backend("parallel", None)
        assert backend == "parallel"
        assert jobs >= 1

    def test_shard_bounds_quantum_aligned(self):
        bounds = shard_bounds(100, 8, jobs=3)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (lo, hi), (lo2, _hi2) in zip(bounds, bounds[1:]):
            assert hi == lo2
            assert lo % 8 == 0
        # Only the last shard may be a partial quantum.
        for lo, hi in bounds[:-1]:
            assert (hi - lo) % 8 == 0

    def test_shard_bounds_quantum_larger_than_workload(self):
        assert shard_bounds(10, 64, jobs=4) == [(0, 10)]

    def test_telemetry_records_shards(self):
        with collect_execution() as records:
            run_trials_fast(balanced(24), range(12), engine="batch-parity",
                            jobs=4)
        (rec,) = records
        assert rec.backend == "parallel"
        assert rec.engine == "batch-parity"
        assert rec.jobs == 4
        assert rec.shards > 1
        assert rec.n_trials == 12

    def test_per_trial_engines_stay_serial_backend(self):
        with collect_execution() as records:
            run_trials_fast(balanced(16), range(3), engine="agent",
                            backend="parallel", jobs=4, parallel=False)
        (rec,) = records
        assert rec.backend == "serial"  # agent tier is inline by design

    def test_collectors_nest(self):
        with collect_execution() as outer:
            run_trials_fast(balanced(16), range(2))
            with collect_execution() as inner:
                run_trials_fast(balanced(16), range(2))
        assert len(inner) == 1
        assert len(outer) == 2

    def test_value_equal_collectors_detach_correctly(self):
        """Regression: an inner collector that opens while the outer is
        still empty is value-equal to it; teardown must detach by
        identity, not ``list.remove`` equality, or the outer scope loses
        every later record (and its own exit raises)."""
        with collect_execution() as outer:
            with collect_execution() as inner:
                pass  # both empty -> value-equal
            run_trials_fast(balanced(16), range(2))
        assert len(outer) == 1
        assert inner == []


# ---------------------------------------------------------------------------
# Reducers
# ---------------------------------------------------------------------------

class TestReducers:
    def test_single_shard_passthrough(self):
        batch = run_trials_fast(balanced(16), range(4))
        assert merge_shards([batch]) is batch

    def test_merge_concatenates_in_order(self):
        colors = balanced(24)
        whole = run_trials_fast(colors, range(10), engine="batch-parity")
        parts = [
            run_trials_fast(colors, range(0, 6), engine="batch-parity"),
            run_trials_fast(colors, range(6, 10), engine="batch-parity"),
        ]
        merged = merge_shards(parts)
        assert merged.n_trials == 10
        assert _fields_equal(merged, whole)

    def test_merge_nested_strategy_batches(self):
        colors = skewed(16, 0.25)
        whole = run_deviation_trials_fast(colors, range(8), "silent", {0})
        merged = merge_shards([
            run_deviation_trials_fast(colors, range(0, 5), "silent", {0}),
            run_deviation_trials_fast(colors, range(5, 8), "silent", {0}),
        ])
        # The strategy tier's quantum exceeds 8 trials at n=16, so the
        # split runs draw different block streams than the whole run —
        # but the merge itself must recurse through the nested honest/
        # deviant batches and sum n_trials.
        assert merged.n_trials == whole.n_trials
        assert merged.honest.n_trials == 8
        assert merged.deviant.n_trials == 8
        assert len(merged.detected) == 8

    def test_mismatched_shards_rejected(self):
        a = run_trials_fast(balanced(16), range(4))
        b = run_trials_fast(balanced(18), range(4))
        with pytest.raises(ValueError, match="disagree"):
            merge_shards([a, b])

    def test_mixed_types_rejected(self):
        a = run_trials_fast(balanced(16), range(4))
        b = run_async_trials_fast(16, range(4))
        with pytest.raises(ValueError, match="mixed"):
            merge_shards([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no shards"):
            ShardReducer().result()


# ---------------------------------------------------------------------------
# Determinism under parallelism: front-door arrays
# ---------------------------------------------------------------------------

class TestFrontDoorDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(
        n_trials=st.integers(min_value=1, max_value=24),
        jobs=st.integers(min_value=2, max_value=5),
        base=st.integers(min_value=0, max_value=2**31),
    )
    def test_honest_parity_sharding_property(self, n_trials, jobs, base):
        """Property: any seed list, any job count — identical batches."""
        colors = balanced(20)
        seeds = [base + 7 * i for i in range(n_trials)]
        serial = run_trials_fast(colors, seeds, engine="batch-parity")
        sharded = run_trials_fast(colors, seeds, engine="batch-parity",
                                  jobs=jobs)
        assert _fields_equal(serial, sharded)

    def test_honest_statistical_real_shards(self):
        """n=16384 drops the stat quantum to 256 trials: 300 trials is
        a genuine 2-shard workload on the statistical engine."""
        n = 1 << 14
        assert stat_block_trials(n) == 256
        colors = balanced(n)
        seeds = list(range(300))
        with collect_execution() as records:
            sharded = run_trials_fast(colors, seeds, jobs=2)
        assert records[0].backend == "parallel"
        assert records[0].shards == 2
        serial = run_trials_fast(colors, seeds)
        assert _fields_equal(serial, sharded)

    def test_graph_front_door_jobs_identical(self):
        wl = sample_scenario_workload("er_dense", 24, 10, 17,
                                      churn_rate=0.05)
        colors = balanced(24)
        for engine in ("batch", "batch-parity"):
            serial = run_graph_trials_fast(
                wl.csrs, colors, wl.seeds, faulty=wl.faulty, engine=engine,
            )
            for jobs in (1, 4):
                again = run_graph_trials_fast(
                    wl.csrs, colors, wl.seeds, faulty=wl.faulty,
                    engine=engine, jobs=jobs,
                )
                assert _fields_equal(serial, again), (engine, jobs)

    def test_async_front_door_jobs_identical(self):
        serial = run_async_trials_fast(16, range(12), colors=balanced(16))
        with collect_execution() as records:
            sharded = run_async_trials_fast(
                16, range(12), colors=balanced(16), jobs=4
            )
        assert records[0].shards > 1
        assert _fields_equal(serial, sharded)

    def test_deviation_front_door_jobs_identical(self):
        colors = skewed(20, 0.25)
        serial = run_deviation_trials_fast(
            colors, range(15), "underbid_alter", {0}
        )
        for jobs in (1, 4):
            again = run_deviation_trials_fast(
                colors, range(15), "underbid_alter", {0}, jobs=jobs
            )
            assert _fields_equal(serial, again), jobs


# ---------------------------------------------------------------------------
# Transports: the zero-copy (shm) and pickling paths agree byte-for-byte
# ---------------------------------------------------------------------------

class TestTransports:
    """Byte-identity of the zero-copy reducer path against the copying
    path, per front door: the same workload runs serial, sharded over
    shared memory (``REPRO_SHM`` default) and sharded over the pickling
    fallback (``REPRO_SHM=0``), and every field of every (possibly
    nested) batch result must match exactly."""

    def _run_three_ways(self, monkeypatch, fn):
        serial = fn(None)
        monkeypatch.delenv("REPRO_SHM", raising=False)
        with collect_execution() as shm_rec:
            over_shm = fn(2)
        monkeypatch.setenv("REPRO_SHM", "0")
        with collect_execution() as pkl_rec:
            over_pickle = fn(2)
        assert shm_rec[0].transport == "shm"
        assert shm_rec[0].backend == "parallel"
        assert pkl_rec[0].transport == "pickle"
        # Same shard layout on both transports: the transport is pure
        # mechanics, the cut is not its decision.
        assert shm_rec[0].shards == pkl_rec[0].shards
        assert _fields_equal(serial, over_shm)
        assert _fields_equal(serial, over_pickle)

    def test_honest_front_door(self, monkeypatch):
        colors = balanced(24)
        self._run_three_ways(monkeypatch, lambda jobs: run_trials_fast(
            colors, range(10), engine="batch-parity", jobs=jobs))

    def test_graph_front_door(self, monkeypatch):
        wl = sample_scenario_workload("er_dense", 24, 8, 29,
                                      churn_rate=0.05)
        colors = balanced(24)
        self._run_three_ways(
            monkeypatch,
            lambda jobs: run_graph_trials_fast(
                wl.csrs, colors, wl.seeds, faulty=wl.faulty,
                engine="batch-parity", jobs=jobs,
            ),
        )

    def test_async_front_door(self, monkeypatch):
        self._run_three_ways(monkeypatch, lambda jobs: run_async_trials_fast(
            16, range(10), colors=balanced(16), jobs=jobs))

    def test_deviation_front_door(self, monkeypatch):
        # n=128 drops the strategy quantum under the trial count, so the
        # nested honest/deviant batches really cross the shm transport.
        from repro.fastpath.strategies import strategy_block_trials
        from repro.core.params import ProtocolParams

        colors = balanced(128)
        params = ProtocolParams(n=128, gamma=3.0, num_colors=2)
        quantum = strategy_block_trials(127, params.q)
        n_trials = 2 * quantum + 3
        self._run_three_ways(
            monkeypatch,
            lambda jobs: run_deviation_trials_fast(
                colors, range(n_trials), "underbid_alter", {0}, jobs=jobs,
            ),
        )


# ---------------------------------------------------------------------------
# Shard-size auto-tuning
# ---------------------------------------------------------------------------

class TestShardTuning:
    def test_hint_is_quantum_multiple(self):
        plan = compile_honest_plan(balanced(1 << 14), range(600))
        hint = shard_size_hint(plan, jobs=2)
        assert hint is not None
        assert hint % plan.shard_quantum == 0
        assert hint >= plan.shard_quantum

    def test_hint_deterministic(self):
        plan = compile_honest_plan(balanced(1 << 14), range(600))
        assert shard_size_hint(plan, 4) == shard_size_hint(plan, 4)

    def test_hint_respects_jobs(self):
        """Small workloads still split one shard per worker: the even
        split bounds the tuned size from above."""
        plan = compile_honest_plan(balanced(24), range(12),
                                   engine="batch-parity")
        assert shard_size_hint(plan, 4) <= -(-plan.n_trials // 4)

    def test_unknown_engine_falls_back(self):
        plan = compile_honest_plan(balanced(16), range(8), engine="agent")
        assert shard_size_hint(plan, 2) is None

    def test_tuning_never_changes_bytes(self):
        """The tuned layout differs from the legacy fixed-shards-per-job
        cut, yet the merged result is identical — shard size is pure
        mechanics."""
        colors = balanced(1 << 14)
        seeds = list(range(300))
        serial = run_trials_fast(colors, seeds)
        sharded = run_trials_fast(colors, seeds, jobs=2)
        assert _fields_equal(serial, sharded)


# ---------------------------------------------------------------------------
# Determinism under parallelism: full experiment payloads
# ---------------------------------------------------------------------------

#: One experiment per front door, at golden-scale options.
_PAYLOAD_CASES = {
    "e1": dict(sizes=(16,), workloads=("balanced", "skewed"), trials=8,
               parallel=False),
    "e7": dict(n=16, strategies=("silent", "underbid_alter"),
               coalition_sizes=(1,), trials=8, parallel=False),
    "e10": dict(n=24, trials=6, scenarios=("complete", "star"),
                async_sizes=(16,), parallel=False),
}


@pytest.mark.parametrize("name", sorted(_PAYLOAD_CASES))
class TestExperimentPayloadDeterminism:
    """Same seed ⇒ byte-identical result JSON at any job count.

    Only the ``meta`` block (wall time, backend, jobs, shards,
    timestamps) may differ between runs — ``payload_json`` is the
    serialisation with it removed, and it must match byte for byte
    across serial, ``jobs=1`` and ``jobs=4``.
    """

    def test_payload_byte_identical_across_jobs(self, name):
        opts = _PAYLOAD_CASES[name]
        serial = run_experiment(name, **opts)
        one = run_experiment(name, jobs=1, **opts)
        four = run_experiment(name, jobs=4, **opts)
        assert serial.payload_json() == one.payload_json()
        assert serial.payload_json() == four.payload_json()
        # The resume key is part of the payload: jobs never perturbs it.
        assert serial.key == one.key == four.key
        # The execution record lands in the metadata instead.
        assert four.meta.jobs == 4
        assert four.meta.backend in ("serial", "parallel")
        assert four.meta.shards >= 1
