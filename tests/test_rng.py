"""Tests for the deterministic seed-tree RNG management."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import SeedTree, derive_key


class TestDeriveKey:
    def test_int_keys_pass_through(self):
        assert derive_key(0) == 0
        assert derive_key(41) == 41

    def test_string_keys_disjoint_from_ints(self):
        # String keys are offset past the 32-bit integer range.
        assert derive_key("voting") >= 1 << 32

    def test_string_keys_stable(self):
        assert derive_key("alpha") == derive_key("alpha")

    def test_distinct_strings_distinct_keys(self):
        assert derive_key("alpha") != derive_key("beta")

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            derive_key(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            derive_key(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            derive_key(1.5)  # type: ignore[arg-type]


class TestSeedTree:
    def test_same_path_same_stream(self):
        a = SeedTree(7).child("x", 3).generator()
        b = SeedTree(7).child("x", 3).generator()
        assert a.integers(1 << 40) == b.integers(1 << 40)

    def test_different_roots_differ(self):
        a = SeedTree(7).child("x").generator()
        b = SeedTree(8).child("x").generator()
        assert a.integers(1 << 40) != b.integers(1 << 40)

    def test_sibling_order_irrelevant(self):
        t1 = SeedTree(7)
        first_then_second = (t1.child("a").generator().integers(1 << 40),
                             t1.child("b").generator().integers(1 << 40))
        t2 = SeedTree(7)
        second_then_first = (t2.child("b").generator().integers(1 << 40),
                             t2.child("a").generator().integers(1 << 40))
        assert first_then_second == (second_then_first[1], second_then_first[0])

    def test_child_requires_path(self):
        with pytest.raises(ValueError):
            SeedTree(7).child()

    def test_nested_vs_flat_paths_equal(self):
        a = SeedTree(7).child("x").child(2).generator()
        b = SeedTree(7).child("x", 2).generator()
        assert a.integers(1 << 40) == b.integers(1 << 40)

    def test_parent_child_streams_differ(self):
        parent = SeedTree(7).generator()
        child = SeedTree(7).child(0).generator()
        assert parent.integers(1 << 40) != child.integers(1 << 40)

    def test_spawn_many_matches_individual_children(self):
        tree = SeedTree(11)
        many = tree.spawn_many(["p", "q"])
        assert many[0].generator().integers(1 << 40) == \
            tree.child("p").generator().integers(1 << 40)
        assert many[1].generator().integers(1 << 40) == \
            tree.child("q").generator().integers(1 << 40)

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert SeedTree(seq).sequence is seq

    @given(st.integers(min_value=0, max_value=2**63 - 1),
           st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=4))
    def test_property_determinism(self, seed, path):
        g1 = SeedTree(seed).child(*path).generator()
        g2 = SeedTree(seed).child(*path).generator()
        assert list(g1.integers(100, size=5)) == list(g2.integers(100, size=5))

    @given(st.integers(min_value=0, max_value=2**32))
    def test_property_sibling_independence_shapes(self, seed):
        # Two named children never alias the same stream.
        tree = SeedTree(seed)
        a = tree.child("left").generator().integers(1 << 60, size=4)
        b = tree.child("right").generator().integers(1 << 60, size=4)
        assert list(a) != list(b)
